(* The IaC debugger (§3.5).

   Reproduces the paper's running example end to end: a VM references a
   NIC in another region; the IaC program is grammatically fine; the
   cloud fails the deployment with the opaque message "Virtual machine
   creation failed because specified NIC is not found" — the NIC
   exists!  The debugger re-derives the real root cause and points at
   the exact lines of the program.

   (Validation would normally catch this pre-deploy; here we deploy
   with validation bypassed to show the runtime path.)

     dune exec examples/debugging.exe *)

module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Debugger = Cloudless_debug.Debugger
module Hcl = Cloudless_hcl

let program =
  {|resource "aws_network_interface" "nic" {
  name   = "frontend-nic"
  region = "us-west-2"
}

resource "aws_virtual_machine" "vm" {
  name    = "frontend"
  nic_ids = [aws_network_interface.nic.id]
  region  = "us-east-1"
}
|}

let () =
  print_endline "=== The IaC debugger: from opaque cloud error to root cause ===\n";
  print_endline program;
  let cloud =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed:5 ()
  in
  let cfg = Hcl.Config.parse ~file:"main.tf" program in
  let instances = (Hcl.Eval.expand cfg).Hcl.Eval.instances in
  let plan = Plan.make ~state:State.empty instances in
  let report =
    Executor.apply cloud ~config:Executor.baseline_config ~state:State.empty
      ~plan ()
  in
  match report.Executor.failed with
  | [] -> print_endline "unexpectedly succeeded"
  | f :: _ ->
      Printf.printf "deployment failed after %.0f simulated seconds.\n\n"
        report.Executor.makespan;
      Printf.printf "what the cloud said:\n  %s: %s\n\n"
        (Hcl.Addr.to_string f.Executor.faddr)
        f.Executor.reason;
      print_endline "what the debugger derives from the program:";
      let d =
        Debugger.diagnose ~cfg ~instances ~addr:f.Executor.faddr
          ~error:f.Executor.reason
      in
      Fmt.pr "%a@." Debugger.pp_diagnosis d;
      print_endline "\n(the same misconfiguration is caught pre-deploy by the";
      print_endline " §3.2 validation pipeline — run examples/lifecycle.exe)"
