examples/quickstart.mli:
