examples/pulumi_style.ml: Cloudless Cloudless_deploy Cloudless_edsl Cloudless_hcl List Printf
