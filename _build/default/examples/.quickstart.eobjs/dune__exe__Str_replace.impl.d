examples/str_replace.ml: Buffer String
