examples/pulumi_style.mli:
