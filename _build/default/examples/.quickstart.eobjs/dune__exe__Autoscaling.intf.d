examples/autoscaling.mli:
