examples/debugging.mli:
