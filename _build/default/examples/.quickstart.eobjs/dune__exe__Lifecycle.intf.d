examples/lifecycle.mli:
