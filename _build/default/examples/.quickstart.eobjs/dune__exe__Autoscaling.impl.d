examples/autoscaling.ml: Cloudless Cloudless_deploy Cloudless_hcl Cloudless_policy Cloudless_state Float List Printf String
