examples/import_refactor.mli:
