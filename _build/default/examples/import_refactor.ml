(* Porting ClickOps infrastructure to IaC (§3.1).

   A "legacy" deployment is created directly through cloud API calls
   (no IaC), then imported Terraformer-style and run through the
   refactoring optimizer.  Prints both programs and the quality
   metrics.

     dune exec examples/import_refactor.exe *)

module Cloud = Cloudless_sim.Cloud
module Synth = Cloudless_synth
module Value = Cloudless_hcl.Value
module Smap = Value.Smap

let attrs kvs =
  Smap.of_seq
    (List.to_seq
       (List.map
          (fun (k, v) -> (k, Value.Vstring v))
          kvs))

(* Build the legacy deployment with raw cloud calls — what an engineer
   clicking through a portal produces. *)
let clickops_deployment () =
  let cloud =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed:77 ()
  in
  let vpc =
    Cloud.create_oob cloud ~script:"portal" ~rtype:"aws_vpc" ~region:"us-east-1"
      ~attrs:(attrs [ ("cidr_block", "10.4.0.0/16"); ("name", "legacy-vpc") ])
  in
  let subnets =
    List.init 4 (fun i ->
        Cloud.create_oob cloud ~script:"portal" ~rtype:"aws_subnet"
          ~region:"us-east-1"
          ~attrs:
            (Smap.add "vpc_id" (Value.Vstring vpc)
               (attrs [ ("cidr_block", Printf.sprintf "10.4.%d.0/24" i) ])))
  in
  List.iteri
    (fun i subnet ->
      ignore
        (Cloud.create_oob cloud ~script:"portal" ~rtype:"aws_instance"
           ~region:"us-east-1"
           ~attrs:
             (Smap.add "subnet_id" (Value.Vstring subnet)
                (attrs
                   [
                     ("ami", "ami-legacy");
                     ("instance_type", "t3.small");
                     ("name", Printf.sprintf "app-%d" i);
                   ]))))
    subnets;
  cloud

let () =
  print_endline "=== Porting a ClickOps deployment to IaC (§3.1) ===\n";
  let cloud = clickops_deployment () in
  Printf.printf "legacy deployment: %d resources created via portal/API\n\n"
    (Cloud.resource_count cloud);

  (* step 1: naive import (Terraformer-style) *)
  let naive = Synth.Importer.import cloud () in
  let m_naive = Synth.Quality.measure naive in
  print_endline "--- naive import (one block per resource, all literals) ---";
  Fmt.pr "metrics: %a@.@." Synth.Quality.pp m_naive;
  (* show just the first two blocks: the full dump is the point *)
  let text = Cloudless_hcl.Config.to_string naive in
  let preview =
    String.concat "\n"
      (List.filteri (fun i _ -> i < 18) (String.split_on_char '\n' text))
  in
  print_endline preview;
  Printf.printf "  ... (%d more lines)\n\n" (m_naive.Synth.Quality.loc - 18);

  (* step 2: the refactoring optimizer *)
  let result = Synth.Refactor.optimize ~modules:false naive in
  let opt = result.Synth.Refactor.optimized in
  let m_opt = Synth.Quality.measure opt in
  print_endline "--- after the refactoring optimizer ---";
  Fmt.pr "metrics: %a@.@." Synth.Quality.pp m_opt;
  print_endline (Cloudless_hcl.Config.to_string opt);

  Printf.printf
    "summary: %d lines -> %d lines; %d blocks -> %d; references recovered\n\
     (%.2f -> %.2f); computed-attribute noise removed (%d -> %d).\n"
    m_naive.Synth.Quality.loc m_opt.Synth.Quality.loc
    m_naive.Synth.Quality.blocks m_opt.Synth.Quality.blocks
    m_naive.Synth.Quality.reference_ratio m_opt.Synth.Quality.reference_ratio
    m_naive.Synth.Quality.literal_noise m_opt.Synth.Quality.literal_noise;

  (* step 3: prove the port is faithful by deploying it elsewhere *)
  let fresh =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed:78 ()
  in
  let reparsed =
    Cloudless_hcl.Config.parse ~file:"port.tf" (Cloudless_hcl.Config.to_string opt)
  in
  let instances = (Cloudless_hcl.Eval.expand reparsed).Cloudless_hcl.Eval.instances in
  let plan = Cloudless_plan.Plan.make ~state:Cloudless_state.State.empty instances in
  let report =
    Cloudless_deploy.Executor.apply fresh
      ~config:Cloudless_deploy.Executor.cloudless_config
      ~state:Cloudless_state.State.empty ~plan ()
  in
  Printf.printf
    "\nfaithfulness: redeploying the optimized program on a fresh cloud\n\
     creates %d resources (legacy had %d) — %s\n"
    (Cloud.resource_count fresh)
    (Cloud.resource_count cloud)
    (if Cloudless_deploy.Executor.succeeded report
        && Cloud.resource_count fresh = Cloud.resource_count cloud
     then "port verified"
     else "MISMATCH")
