(* Policy-driven autoscaling (§3.6).

   The paper's motivating example: "scale out the number of VPN
   gateways and attached tunnels if traffic throughput is close to
   their capacity" — a rule provider-native autoscalers cannot express
   because VPN throughput is not an exposed scaling trigger.

   A deterministic diurnal traffic trace drives telemetry ticks; the
   obs/action policy grows and shrinks the tunnel fleet, and a budget
   policy guards every generated plan.

     dune exec examples/autoscaling.exe *)

module Lifecycle = Cloudless.Lifecycle
module State = Cloudless_state.State
module Value = Cloudless_hcl.Value

let infrastructure =
  {|
resource "aws_vpc" "edge" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}

resource "aws_vpn_gateway" "gw" {
  vpc_id        = aws_vpc.edge.id
  region        = "us-east-1"
  capacity_mbps = 1000
}

resource "aws_vpn_connection" "tunnel" {
  count          = 2
  vpn_gateway_id = aws_vpn_gateway.gw.id
  customer_ip    = "203.0.113.9"
  region         = "us-east-1"
  bandwidth_mbps = 500
}
|}

let policies =
  {|
policy "scale_out_tunnels" {
  on   = "telemetry"
  when = obs.vpn_utilization > 0.8

  action "add_tunnel" {
    kind   = "set_count"
    target = "aws_vpn_connection.tunnel"
    value  = obs.tunnel_count + 1
  }
}

policy "scale_in_tunnels" {
  on   = "telemetry"
  when = obs.vpn_utilization < 0.3 && obs.tunnel_count > 2

  action "drop_tunnel" {
    kind   = "set_count"
    target = "aws_vpn_connection.tunnel"
    value  = obs.tunnel_count - 1
  }
}

policy "budget_guard" {
  on   = "plan"
  when = obs.projected_cost > 2.0

  action "deny" {
    kind    = "deny"
    message = "projected cost ${obs.projected_cost}/hr exceeds the 2.00/hr budget"
  }
}
|}

let tunnels t =
  List.length
    (List.filter
       (fun (r : State.resource_state) -> r.State.rtype = "aws_vpn_connection")
       (State.resources (Lifecycle.state t)))

(* offered load in Mbps over 24 "hours" *)
let trace =
  List.init 24 (fun h ->
      let phase = float_of_int h /. 24. *. 2. *. Float.pi in
      650. +. (480. *. sin phase))

let () =
  print_endline "=== Policy-driven VPN autoscaling (the §3.6 scenario) ===\n";
  let t = Lifecycle.create ~policies () in
  (match Lifecycle.deploy t infrastructure with
  | Ok r ->
      Printf.printf "deployed edge infrastructure: %d resources, %.0fs\n\n"
        (List.length r.Cloudless_deploy.Executor.applied)
        r.Cloudless_deploy.Executor.makespan
  | Error e -> failwith (Lifecycle.error_to_string e));
  Printf.printf "%-6s %-12s %-10s %-12s %s\n" "hour" "load(Mbps)" "tunnels"
    "utilization" "controller decision";
  print_endline (String.make 66 '-');
  List.iteri
    (fun hour load ->
      let n = tunnels t in
      let util = load /. (float_of_int n *. 500.) in
      let result =
        match
          Lifecycle.police t
            ~extra:
              [
                ("vpn_utilization", Value.Vfloat util);
                ("tunnel_count", Value.Vint n);
              ]
        with
        | Ok r -> r
        | Error e -> failwith (Lifecycle.error_to_string e)
      in
      let decision =
        match result.Lifecycle.decisions with
        | [] -> ""
        | ds ->
            String.concat "; "
              (List.map Cloudless_policy.Policy.decision_to_string ds)
      in
      Printf.printf "%-6d %-12.0f %-10d %-12.2f %s\n" hour load n util decision)
    trace;
  Printf.printf
    "\nfinal fleet: %d tunnels — scaled out under the daily peak and back\n\
     in overnight, using a trigger (VPN throughput) no provider-native\n\
     autoscaler exposes.\n"
    (tunnels t)
