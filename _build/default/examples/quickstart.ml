(* Quickstart (reproduces Figure 2 of the paper).

   Parses the paper's example IaC program, validates it, deploys it to
   the simulated cloud, and prints the plan, the apply timeline and the
   resulting state.

     dune exec examples/quickstart.exe *)

module Lifecycle = Cloudless.Lifecycle
module State = Cloudless_state.State
module Cloud = Cloudless_sim.Cloud
module Executor = Cloudless_deploy.Executor

(* The exact program from Figure 2. *)
let figure2 =
  {|/* Simplified Terraform code snippet */

data "aws_region" "current" {}

variable "vmName" {
  type    = string
  default = "cloudless"
}

resource "aws_network_interface" "n1" {
  name     = "example-nic"
  location = data.aws_region.current.name
}

resource "aws_virtual_machine" "vm1" {
  name    = var.vmName
  nic_ids = [aws_network_interface.n1.id]
}
|}

let () =
  print_endline "=== Cloudless quickstart: the paper's Figure 2 program ===\n";
  print_endline figure2;

  let t = Lifecycle.create () in

  (* 1. validate *)
  let report = Lifecycle.validate t figure2 in
  Printf.printf "validate: %s\n"
    (if Cloudless_validate.Validate.ok report then "OK (all four stages pass)"
     else "FAILED");

  (* 2. plan *)
  (match Lifecycle.develop t figure2 with
  | Ok _ -> ()
  | Error e -> failwith (Lifecycle.error_to_string e));
  (match Lifecycle.plan t with
  | Ok (plan, _) ->
      print_endline "\nplan:";
      print_string (Cloudless_plan.Plan.to_string plan)
  | Error e -> failwith (Lifecycle.error_to_string e));

  (* 3. apply *)
  (match Lifecycle.apply t with
  | Ok report ->
      Printf.printf "\napply: %d resources created in %.1f simulated seconds\n"
        (List.length report.Executor.applied)
        report.Executor.makespan
  | Error e -> failwith (Lifecycle.error_to_string e));

  (* 4. inspect state *)
  print_endline "\nstate:";
  List.iter
    (fun (r : State.resource_state) ->
      Printf.printf "  %-32s -> %s in %s\n"
        (Cloudless_hcl.Addr.to_string r.State.addr)
        r.State.cloud_id r.State.region)
    (State.resources (Lifecycle.state t));

  (* 5. idempotence: a second plan is empty *)
  match Lifecycle.plan t with
  | Ok (plan, _) ->
      Printf.printf "\nre-plan: %s\n"
        (if Cloudless_plan.Plan.is_empty plan then
           "no changes (infrastructure matches the program)"
         else "unexpected changes!")
  | Error e -> failwith (Lifecycle.error_to_string e)
