(* The imperative front-end (§2.1's Pulumi model).

   The same infrastructure can be defined by running ordinary OCaml
   code that registers resources — loops instead of count, if instead
   of conditional expressions — and everything downstream (validation,
   planning, policies, deployment) is shared with the declarative
   path.  The program is also rendered back to declarative HCL.

     dune exec examples/pulumi_style.exe *)

module Edsl = Cloudless_edsl.Edsl
module Lifecycle = Cloudless.Lifecycle
module Executor = Cloudless_deploy.Executor

let environments = [ ("staging", 1, false); ("production", 3, true) ]

let stack ctx =
  List.iter
    (fun (env, replicas, with_db) ->
      let vpc =
        Edsl.resource ctx "aws_vpc" (env ^ "_vpc")
          [
            ( "cidr_block",
              Edsl.str (if env = "production" then "10.1.0.0/16" else "10.2.0.0/16") );
            ("region", Edsl.str "us-east-1");
          ]
      in
      let subnet =
        Edsl.resource ctx "aws_subnet" (env ^ "_subnet")
          [
            ("vpc_id", Edsl.ref_ vpc "id");
            ("cidr_block", Edsl.cidrsubnet (Edsl.ref_ vpc "cidr_block") 8 0);
            ("region", Edsl.str "us-east-1");
          ]
      in
      (* host-language loop replaces count *)
      for i = 0 to replicas - 1 do
        ignore
          (Edsl.resource ctx "aws_instance" (Printf.sprintf "%s_app%d" env i)
             [
               ("ami", Edsl.str "ami-2024");
               ("instance_type", Edsl.str "t3.small");
               ("subnet_id", Edsl.ref_ subnet "id");
               ("region", Edsl.str "us-east-1");
             ])
      done;
      (* host-language conditional replaces count = cond ? 1 : 0 *)
      if with_db then
        ignore
          (Edsl.resource ctx "aws_db_instance" (env ^ "_db")
             [
               ("identifier", Edsl.str (env ^ "-db"));
               ("engine", Edsl.str "postgres");
               ("instance_class", Edsl.str "db.m5.large");
               ("region", Edsl.str "us-east-1");
             ]);
      Edsl.export ctx (env ^ "_vpc_id") (Edsl.ref_ vpc "id"))
    environments

let () =
  print_endline "=== Imperative infrastructure definition (Pulumi-style) ===\n";
  let cfg = Edsl.program stack in
  Printf.printf "registered %d resources by running OCaml code\n\n"
    (List.length cfg.Cloudless_hcl.Config.resources);
  print_endline "--- rendered as declarative HCL ---";
  print_string (Cloudless_hcl.Config.to_string cfg);
  let t = Lifecycle.create () in
  match Lifecycle.deploy t (Cloudless_hcl.Config.to_string cfg) with
  | Ok report ->
      Printf.printf
        "\ndeployed via the shared pipeline: %d resources in %.0f simulated \
         seconds\n"
        (List.length report.Executor.applied)
        report.Executor.makespan
  | Error e -> print_endline (Lifecycle.error_to_string e)
