(* Shared test fixtures. *)

(* The exact IaC program from Figure 2 of the paper. *)
let figure2 =
  {|/* Simplified Terraform code snippet */

data "aws_region" "current" {}

variable "vmName" {
  type    = string
  default = "cloudless"
}

resource "aws_network_interface" "n1" {
  name     = "example-nic"
  location = data.aws_region.current.name
}

resource "aws_virtual_machine" "vm1" {
  name    = var.vmName
  nic_ids = [aws_network_interface.n1.id]
}
|}

(* [contains_substring ~sub s] - plain substring search for assertions on
   error messages. *)
let contains_substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* [replace_substring s ~sub ~by] - replace all occurrences. *)
let replace_substring s ~sub ~by =
  let slen = String.length sub in
  let buf = Buffer.create (String.length s) in
  let rec go i =
    if i > String.length s - slen then
      Buffer.add_string buf (String.sub s i (String.length s - i))
    else if String.sub s i slen = sub then begin
      Buffer.add_string buf by;
      go (i + slen)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  if slen = 0 then s
  else begin
    go 0;
    Buffer.contents buf
  end
