(* Tests for the HCL front-end: lexer, parser, printer, addresses,
   reference extraction, CIDR math.  Includes the paper's Figure 2
   program as a fixture (experiment FIG2). *)

open Cloudless_hcl

let check = Alcotest.check
let string_ = Alcotest.string
let int_ = Alcotest.int
let bool_ = Alcotest.bool

(* The exact IaC program from Figure 2 of the paper. *)
let figure2 =
  {|/* Simplified Terraform code snippet */

data "aws_region" "current" {}

variable "vmName" {
  type    = string
  default = "cloudless"
}

resource "aws_network_interface" "n1" {
  name     = "example-nic"
  location = data.aws_region.current.name
}

resource "aws_virtual_machine" "vm1" {
  name    = var.vmName
  nic_ids = [aws_network_interface.n1.id]
}
|}

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let tok_kinds src =
  Lexer.tokenize ~file:"t" src
  |> List.filter_map (fun { Token.tok; _ } ->
         match tok with Token.NEWLINE -> None | t -> Some (Token.describe t))

let test_lex_simple () =
  check (Alcotest.list string_) "idents and symbols"
    [ "identifier \"a\""; "'='"; "integer 1"; "'+'"; "integer 2"; "end of input" ]
    (tok_kinds "a = 1 + 2")

let test_lex_comments () =
  check (Alcotest.list string_) "comments are skipped"
    [ "identifier \"x\""; "'='"; "integer 3"; "end of input" ]
    (tok_kinds "# line\n// line2\n/* block\nstill */ x = 3")

let test_lex_float_vs_traversal () =
  (* 'a.0' must lex as ident dot int, while '1.5' is a float *)
  check (Alcotest.list string_) "dot disambiguation"
    [ "identifier \"a\""; "'.'"; "integer 0"; "number 1.5"; "end of input" ]
    (tok_kinds "a.0 1.5")

let test_lex_string_escapes () =
  match Lexer.tokenize ~file:"t" {|"a\nb\"c"|} with
  | [ { Token.tok = Token.QUOTED [ Token.Lit s ]; _ }; _ ] ->
      check string_ "escapes" "a\nb\"c" s
  | _ -> Alcotest.fail "expected a single literal string"

let test_lex_interp () =
  match Lexer.tokenize ~file:"t" {|"x-${var.name}-y"|} with
  | [ { Token.tok = Token.QUOTED [ Token.Lit "x-"; Token.Interp toks; Token.Lit "-y" ]; _ }; _ ]
    ->
      check int_ "inner token count (var . name EOF)" 4 (List.length toks)
  | _ -> Alcotest.fail "expected interpolation parts"

let test_lex_nested_interp () =
  (* nested braces inside interpolation *)
  match Lexer.tokenize ~file:"t" {|"${ { a = 1 } }"|} with
  | [ { Token.tok = Token.QUOTED [ Token.Interp _ ]; _ }; _ ] -> ()
  | _ -> Alcotest.fail "expected single interp part"

let test_lex_heredoc () =
  let src = "x = <<EOF\nhello\nworld\nEOF\n" in
  let toks = Lexer.tokenize ~file:"t" src in
  let found =
    List.exists
      (fun { Token.tok; _ } ->
        match tok with
        | Token.HEREDOC [ Token.Lit s ] -> s = "hello\nworld\n"
        | _ -> false)
      toks
  in
  check bool_ "heredoc body" true found

let test_lex_heredoc_indent () =
  let src = "x = <<-EOF\n    a\n      b\n    EOF\n" in
  let toks = Lexer.tokenize ~file:"t" src in
  let found =
    List.exists
      (fun { Token.tok; _ } ->
        match tok with
        | Token.HEREDOC [ Token.Lit s ] -> s = "a\n  b\n"
        | _ -> false)
      toks
  in
  check bool_ "indented heredoc strips common prefix" true found

let test_lex_error_position () =
  match Lexer.tokenize ~file:"t" "a = @" with
  | exception Lexer.Error (_, span) ->
      check int_ "error line" 1 (Loc.line span);
      check int_ "error col" 5 span.Loc.start_pos.Loc.col
  | _ -> Alcotest.fail "expected lexer error"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse_expr = Parser.parse_expr_string

let test_parse_precedence () =
  let e = parse_expr "1 + 2 * 3" in
  match e.Ast.desc with
  | Ast.Binop (Ast.Add, _, { Ast.desc = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "expected 1 + (2 * 3)"

let test_parse_comparison_chain () =
  let e = parse_expr "a < b && c >= d" in
  match e.Ast.desc with
  | Ast.Binop (Ast.And, { Ast.desc = Ast.Binop (Ast.Lt, _, _); _ },
               { Ast.desc = Ast.Binop (Ast.Ge, _, _); _ }) -> ()
  | _ -> Alcotest.fail "expected (a<b) && (c>=d)"

let test_parse_ternary () =
  let e = parse_expr "x ? 1 : 2" in
  match e.Ast.desc with
  | Ast.Cond _ -> ()
  | _ -> Alcotest.fail "expected conditional"

let test_parse_traversal () =
  let e = parse_expr "aws_vpc.main.id" in
  match e.Ast.desc with
  | Ast.GetAttr ({ Ast.desc = Ast.GetAttr ({ Ast.desc = Ast.Var "aws_vpc"; _ }, "main"); _ }, "id") -> ()
  | _ -> Alcotest.fail "expected attr chain"

let test_parse_index_and_splat () =
  (match (parse_expr "a.b[0]").Ast.desc with
  | Ast.Index _ -> ()
  | _ -> Alcotest.fail "expected index");
  match (parse_expr "aws_subnet.s[*].id").Ast.desc with
  | Ast.Splat _ -> ()
  | _ -> Alcotest.fail "expected splat"

let test_parse_call_trailing_comma () =
  match (parse_expr "concat([1], [2],)").Ast.desc with
  | Ast.Call ("concat", [ _; _ ], false) -> ()
  | _ -> Alcotest.fail "expected 2-arg call"

let test_parse_call_expand () =
  match (parse_expr "min(values...)").Ast.desc with
  | Ast.Call ("min", [ _ ], true) -> ()
  | _ -> Alcotest.fail "expected expanded call"

let test_parse_for_list () =
  match (parse_expr "[for s in var.list : upper(s) if s != \"\"]").Ast.desc with
  | Ast.ForList { val_var = "s"; cond = Some _; _ } -> ()
  | _ -> Alcotest.fail "expected for-list"

let test_parse_for_map () =
  match (parse_expr "{for k, v in var.m : k => v}").Ast.desc with
  | Ast.ForMap ({ key_var = Some "k"; val_var = "v"; _ }, _) -> ()
  | _ -> Alcotest.fail "expected for-map"

let test_parse_object_multiline () =
  let e = parse_expr "{\n  a = 1\n  b = 2\n}" in
  match e.Ast.desc with
  | Ast.ObjectLit kvs -> check int_ "two entries" 2 (List.length kvs)
  | _ -> Alcotest.fail "expected object"

let test_parse_block_structure () =
  let body = Parser.parse ~file:"t" figure2 in
  check int_ "top-level blocks" 4 (List.length body.Ast.blocks);
  let kinds = List.map (fun b -> b.Ast.btype) body.Ast.blocks in
  check (Alcotest.list string_) "block kinds"
    [ "data"; "variable"; "resource"; "resource" ]
    kinds

let test_parse_error_has_location () =
  match Parser.parse ~file:"t" "resource \"a\" {\n  x = (1\n}" with
  | exception Parser.Error (_, span) ->
      check bool_ "line >= 2" true (Loc.line span >= 2)
  | _ -> Alcotest.fail "expected parse error"

let test_parse_figure2_config () =
  let cfg = Config.parse ~file:"fig2.tf" figure2 in
  check int_ "one variable" 1 (List.length cfg.Config.variables);
  check int_ "one data source" 1 (List.length cfg.Config.data_sources);
  check int_ "two resources" 2 (List.length cfg.Config.resources);
  let v = List.hd cfg.Config.variables in
  check string_ "variable name" "vmName" v.Config.vname;
  check (Alcotest.option string_) "variable type" (Some "string") v.Config.vtype

(* ------------------------------------------------------------------ *)
(* Config extraction                                                   *)
(* ------------------------------------------------------------------ *)

let test_config_meta_args () =
  let cfg =
    Config.parse ~file:"t"
      {|
resource "aws_instance" "web" {
  count         = 3
  ami           = "ami-123"
  depends_on    = [aws_vpc.main]
  lifecycle {
    create_before_destroy = true
    prevent_destroy       = true
    ignore_changes        = [tags]
  }
}
resource "aws_vpc" "main" {
  cidr_block = "10.0.0.0/16"
}
|}
  in
  let r = Option.get (Config.find_resource cfg "aws_instance" "web") in
  check bool_ "count present" true (r.Config.rcount <> None);
  check (Alcotest.list (Alcotest.pair string_ string_)) "depends_on"
    [ ("aws_vpc", "main") ] r.Config.rdepends_on;
  check bool_ "cbd" true r.Config.rlifecycle.Config.create_before_destroy;
  check bool_ "prevent" true r.Config.rlifecycle.Config.prevent_destroy;
  check (Alcotest.list string_) "ignore_changes" [ "tags" ]
    r.Config.rlifecycle.Config.ignore_changes;
  (* meta args must be stripped from the plain body *)
  check bool_ "no count in body" true (Ast.attr r.Config.rbody "count" = None)

let test_config_duplicate_resource () =
  let src = {|
resource "a_b" "x" {}
resource "a_b" "x" {}
|} in
  match Config.parse ~file:"t" src with
  | exception Config.Config_error _ -> ()
  | _ -> Alcotest.fail "expected duplicate-resource error"

let test_config_module () =
  let cfg =
    Config.parse ~file:"t"
      {|
module "net" {
  source = "./network"
  cidr   = "10.0.0.0/16"
}
output "vpc_id" { value = module.net.vpc_id }
|}
  in
  let m = Option.get (Config.find_module cfg "net") in
  check string_ "source" "./network" m.Config.msource;
  check int_ "one arg" 1 (List.length m.Config.margs);
  check int_ "one output" 1 (List.length cfg.Config.outputs)

let test_config_merge () =
  let a = Config.parse ~file:"a.tf" {|
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
variable "x" { default = 1 }
|} in
  let b = Config.parse ~file:"b.tf" {|
resource "aws_subnet" "s" { vpc_id = aws_vpc.v.id }
output "o" { value = var.x }
|} in
  let merged = Config.merge [ a; b ] in
  check int_ "resources merged" 2 (List.length merged.Config.resources);
  check int_ "outputs merged" 1 (List.length merged.Config.outputs);
  check int_ "variables merged" 1 (List.length merged.Config.variables);
  (* cross-file references resolve after merging *)
  let result = Cloudless_hcl.Eval.expand merged in
  check int_ "expands" 2 (List.length result.Cloudless_hcl.Eval.instances);
  (* duplicates across files are rejected *)
  match Config.merge [ a; a ] with
  | exception Config.Config_error _ -> ()
  | _ -> Alcotest.fail "expected duplicate error"

(* ------------------------------------------------------------------ *)
(* Reference extraction                                                *)
(* ------------------------------------------------------------------ *)

let refs_of src =
  Refs.of_expr (parse_expr src) |> List.map Refs.target_to_string

let test_refs_basic () =
  check (Alcotest.list string_) "var+resource"
    [ "var.name"; "aws_vpc.main" ]
    (refs_of {|"${var.name}-${aws_vpc.main.id}"|})

let test_refs_data_module () =
  check (Alcotest.list string_) "data+module"
    [ "data.aws_region.current"; "module.net.vpc_id" ]
    (refs_of "[data.aws_region.current.name, module.net.vpc_id]")

let test_refs_for_bound_vars () =
  (* 's' is bound by the for-expression, not a reference *)
  check (Alcotest.list string_) "bound vars excluded" [ "var.list" ]
    (refs_of "[for s in var.list : s]")

let test_refs_dedup () =
  check (Alcotest.list string_) "no duplicates" [ "var.a" ]
    (refs_of "var.a + var.a")

let test_refs_of_body () =
  let cfg = Config.parse ~file:"t" figure2 in
  let vm = Option.get (Config.find_resource cfg "aws_virtual_machine" "vm1") in
  let targets = Refs.of_body vm.Config.rbody |> List.map Refs.target_to_string in
  check (Alcotest.list string_) "vm refs"
    [ "var.vmName"; "aws_network_interface.n1" ]
    targets

(* ------------------------------------------------------------------ *)
(* Printer round-trips                                                 *)
(* ------------------------------------------------------------------ *)

let normalize src =
  (* parse -> print gives canonical text *)
  Printer.config_to_string (Parser.parse ~file:"t" src)

let test_print_roundtrip_fig2 () =
  (* printing then re-parsing must be a fixpoint *)
  let once = normalize figure2 in
  let twice = normalize once in
  check string_ "printer fixpoint" once twice;
  (* and the re-parsed config must be structurally identical *)
  let c1 = Config.parse ~file:"t" figure2 in
  let c2 = Config.parse ~file:"t" once in
  check int_ "resources preserved"
    (List.length c1.Config.resources)
    (List.length c2.Config.resources)

let test_print_expr_parens () =
  (* a programmatically built (1+2)*3 must print with parens *)
  let e =
    Ast.mk
      (Ast.Binop
         ( Ast.Mul,
           Ast.mk (Ast.Binop (Ast.Add, Ast.mk (Ast.Int 1), Ast.mk (Ast.Int 2))),
           Ast.mk (Ast.Int 3) ))
  in
  check string_ "parens" "(1 + 2) * 3" (Printer.expr_to_string e)

let test_print_template_escape () =
  let e = Ast.string_lit "a${b}\"c\"" in
  let printed = Printer.expr_to_string e in
  let back = parse_expr printed in
  match back.Ast.desc with
  | Ast.Template [ Ast.Lit s ] -> check string_ "escaped dollar survives" "a${b}\"c\"" s
  | _ -> Alcotest.fail "expected literal template"

(* Property: any expression printed then parsed evaluates identically. *)
let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Ast.mk (Ast.Int n)) (int_range (-1000) 1000);
        map (fun b -> Ast.mk (Ast.Bool b)) bool;
        map (fun s -> Ast.string_lit s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 2,
            map2
              (fun a b -> Ast.mk (Ast.Binop (Ast.Add, a, b)))
              (node (depth - 1)) (node (depth - 1)) );
          ( 1,
            map2
              (fun a b -> Ast.mk (Ast.Binop (Ast.Mul, a, b)))
              (node (depth - 1)) (node (depth - 1)) );
          (1, map (fun es -> Ast.mk (Ast.ListLit es)) (list_size (int_range 0 3) (node (depth - 1))));
          ( 1,
            map3
              (fun c a b ->
                Ast.mk (Ast.Cond (Ast.mk (Ast.Bool c), a, b)))
              bool (node (depth - 1)) (node (depth - 1)) );
        ]
  in
  node 3

(* Arithmetic on random ints can mix strings, so restrict eval compare to
   when both evaluate without error. *)
let prop_print_parse_eval =
  QCheck.Test.make ~count:200 ~name:"print/parse/eval round-trip"
    (QCheck.make expr_gen ~print:Printer.expr_to_string)
    (fun e ->
      let printed = Printer.expr_to_string e in
      match Parser.parse_expr_string printed with
      | exception Parser.Error (msg, _) ->
          QCheck.Test.fail_reportf "re-parse failed on %s: %s" printed msg
      | e' -> (
          match (Eval.eval_expr e, Eval.eval_expr e') with
          | v1, v2 -> Value.equal v1 v2
          | exception _ -> (
              (* both must fail the same way *)
              match Eval.eval_expr e' with
              | exception _ -> true
              | _ -> false)))

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)
(* ------------------------------------------------------------------ *)

let test_addr_to_string () =
  let a =
    Addr.make ~module_path:[ "net" ] ~rtype:"aws_subnet" ~rname:"s"
      ~key:(Addr.Kint 2) ()
  in
  check string_ "addr" "module.net.aws_subnet.s[2]" (Addr.to_string a);
  let d = Addr.make ~mode:Addr.Data ~rtype:"aws_region" ~rname:"current" () in
  check string_ "data addr" "data.aws_region.current" (Addr.to_string d)

let test_addr_roundtrip () =
  let cases =
    [
      Addr.make ~rtype:"aws_vpc" ~rname:"main" ();
      Addr.make ~rtype:"aws_subnet" ~rname:"s" ~key:(Addr.Kint 0) ();
      Addr.make ~rtype:"aws_vpc" ~rname:"m" ~key:(Addr.Kstr "east") ();
      Addr.make ~mode:Addr.Data ~rtype:"aws_ami" ~rname:"ubuntu" ();
      Addr.make ~module_path:[ "a"; "b" ] ~rtype:"t_x" ~rname:"n" ();
    ]
  in
  List.iter
    (fun a ->
      match Addr.of_string (Addr.to_string a) with
      | Some a' ->
          check string_ "roundtrip" (Addr.to_string a) (Addr.to_string a')
      | None -> Alcotest.failf "could not re-parse %s" (Addr.to_string a))
    cases

let test_addr_base () =
  let a = Addr.make ~rtype:"x_y" ~rname:"n" ~key:(Addr.Kint 3) () in
  let b = Addr.make ~rtype:"x_y" ~rname:"n" ~key:(Addr.Kint 7) () in
  check bool_ "same base" true (Addr.same_base a b);
  check string_ "base str" "x_y.n" (Addr.to_string (Addr.base a))

(* ------------------------------------------------------------------ *)
(* CIDR math                                                           *)
(* ------------------------------------------------------------------ *)

let test_ipnet_parse () =
  let p = Ipnet.parse_prefix "10.1.2.3/16" in
  check string_ "network is masked" "10.1.0.0/16" (Ipnet.prefix_to_string p)

let test_ipnet_subnet () =
  let p = Ipnet.parse_prefix "10.0.0.0/16" in
  let s = Ipnet.subnet p ~newbits:8 ~netnum:3 in
  check string_ "cidrsubnet" "10.0.3.0/24" (Ipnet.prefix_to_string s)

let test_ipnet_host () =
  let p = Ipnet.parse_prefix "10.0.3.0/24" in
  check string_ "cidrhost" "10.0.3.7" (Ipnet.addr_to_string (Ipnet.host p 7))

let test_ipnet_overlap () =
  let a = Ipnet.parse_prefix "10.0.0.0/16" in
  let b = Ipnet.parse_prefix "10.0.128.0/17" in
  let c = Ipnet.parse_prefix "10.1.0.0/16" in
  check bool_ "contained overlaps" true (Ipnet.overlaps a b);
  check bool_ "disjoint" false (Ipnet.overlaps a c);
  check bool_ "contains" true (Ipnet.contains ~outer:a ~inner:b);
  check bool_ "not contains" false (Ipnet.contains ~outer:b ~inner:a)

let test_ipnet_invalid () =
  List.iter
    (fun s -> check bool_ s false (Ipnet.is_valid_prefix s))
    [ "10.0.0.0"; "10.0.0.0/33"; "300.0.0.0/8"; "a.b.c.d/8"; "10.0.0/8" ]

let prop_ipnet_subnets_disjoint =
  QCheck.Test.make ~count:100 ~name:"sibling cidrsubnets never overlap"
    QCheck.(pair (int_range 0 200) (int_range 0 200))
    (fun (i, j) ->
      QCheck.assume (i <> j);
      let p = Ipnet.parse_prefix "10.0.0.0/8" in
      let a = Ipnet.subnet p ~newbits:8 ~netnum:i in
      let b = Ipnet.subnet p ~newbits:8 ~netnum:j in
      not (Ipnet.overlaps a b))

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "hcl.lexer",
      [
        Alcotest.test_case "simple tokens" `Quick test_lex_simple;
        Alcotest.test_case "comments" `Quick test_lex_comments;
        Alcotest.test_case "float vs traversal" `Quick test_lex_float_vs_traversal;
        Alcotest.test_case "string escapes" `Quick test_lex_string_escapes;
        Alcotest.test_case "interpolation" `Quick test_lex_interp;
        Alcotest.test_case "nested interpolation" `Quick test_lex_nested_interp;
        Alcotest.test_case "heredoc" `Quick test_lex_heredoc;
        Alcotest.test_case "indented heredoc" `Quick test_lex_heredoc_indent;
        Alcotest.test_case "error position" `Quick test_lex_error_position;
      ] );
    ( "hcl.parser",
      [
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "comparisons" `Quick test_parse_comparison_chain;
        Alcotest.test_case "ternary" `Quick test_parse_ternary;
        Alcotest.test_case "traversal" `Quick test_parse_traversal;
        Alcotest.test_case "index and splat" `Quick test_parse_index_and_splat;
        Alcotest.test_case "trailing comma" `Quick test_parse_call_trailing_comma;
        Alcotest.test_case "call expansion" `Quick test_parse_call_expand;
        Alcotest.test_case "for list" `Quick test_parse_for_list;
        Alcotest.test_case "for map" `Quick test_parse_for_map;
        Alcotest.test_case "multiline object" `Quick test_parse_object_multiline;
        Alcotest.test_case "figure 2 blocks" `Quick test_parse_block_structure;
        Alcotest.test_case "error location" `Quick test_parse_error_has_location;
        Alcotest.test_case "figure 2 config" `Quick test_parse_figure2_config;
      ] );
    ( "hcl.config",
      [
        Alcotest.test_case "meta arguments" `Quick test_config_meta_args;
        Alcotest.test_case "duplicate resource" `Quick test_config_duplicate_resource;
        Alcotest.test_case "module call" `Quick test_config_module;
        Alcotest.test_case "multi-file merge" `Quick test_config_merge;
      ] );
    ( "hcl.refs",
      [
        Alcotest.test_case "basic" `Quick test_refs_basic;
        Alcotest.test_case "data and module" `Quick test_refs_data_module;
        Alcotest.test_case "for-bound vars" `Quick test_refs_for_bound_vars;
        Alcotest.test_case "dedup" `Quick test_refs_dedup;
        Alcotest.test_case "of_body on figure 2" `Quick test_refs_of_body;
      ] );
    ( "hcl.printer",
      [
        Alcotest.test_case "figure 2 round-trip" `Quick test_print_roundtrip_fig2;
        Alcotest.test_case "parens" `Quick test_print_expr_parens;
        Alcotest.test_case "template escapes" `Quick test_print_template_escape;
        qtest prop_print_parse_eval;
      ] );
    ( "hcl.addr",
      [
        Alcotest.test_case "to_string" `Quick test_addr_to_string;
        Alcotest.test_case "round-trip" `Quick test_addr_roundtrip;
        Alcotest.test_case "base" `Quick test_addr_base;
      ] );
    ( "hcl.ipnet",
      [
        Alcotest.test_case "parse" `Quick test_ipnet_parse;
        Alcotest.test_case "subnet" `Quick test_ipnet_subnet;
        Alcotest.test_case "host" `Quick test_ipnet_host;
        Alcotest.test_case "overlap" `Quick test_ipnet_overlap;
        Alcotest.test_case "invalid prefixes" `Quick test_ipnet_invalid;
        qtest prop_ipnet_subnets_disjoint;
      ] );
  ]
