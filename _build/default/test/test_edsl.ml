(* Tests for the Pulumi-style imperative front-end (§2.1). *)

open Cloudless_hcl
module Edsl = Cloudless_edsl.Edsl
module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Validate = Cloudless_validate.Validate
module Diagnostic = Cloudless_validate.Diagnostic
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let web_program ctx =
  let vpc =
    Edsl.resource ctx "aws_vpc" "main"
      [ ("cidr_block", Edsl.str "10.0.0.0/16"); ("region", Edsl.str "us-east-1") ]
  in
  (* ordinary OCaml loops instead of count *)
  let subnets =
    List.init 3 (fun i ->
        Edsl.resource ctx "aws_subnet" (Printf.sprintf "s%d" i)
          [
            ("vpc_id", Edsl.ref_ vpc "id");
            ("cidr_block", Edsl.cidrsubnet (Edsl.ref_ vpc "cidr_block") 8 i);
            ("region", Edsl.str "us-east-1");
          ])
  in
  List.iteri
    (fun i subnet ->
      ignore
        (Edsl.resource ctx "aws_instance" (Printf.sprintf "web%d" i)
           [
             ("ami", Edsl.str "ami-edsl");
             ("instance_type", Edsl.str "t3.small");
             ("subnet_id", Edsl.ref_ subnet "id");
             ("region", Edsl.str "us-east-1");
             ( "tags",
               Edsl.map_ [ ("Name", Edsl.interp [ `S "web-"; `E (Edsl.int_ i) ]) ]
             );
           ]))
    subnets;
  Edsl.export ctx "vpc_id" (Edsl.ref_ vpc "id")

let test_registration () =
  let cfg = Edsl.program web_program in
  check int_ "7 resources" 7 (List.length cfg.Config.resources);
  check int_ "1 output" 1 (List.length cfg.Config.outputs);
  (* references render as proper traversals *)
  let s0 = Option.get (Config.find_resource cfg "aws_subnet" "s0") in
  check string_ "vpc_id is a reference" "aws_vpc.main.id"
    (Printer.expr_to_string (Option.get (Ast.attr s0.Config.rbody "vpc_id")))

let test_validates_and_prints () =
  let cfg = Edsl.program web_program in
  let report = Validate.validate_config cfg in
  check int_ "valid" 0 (Diagnostic.count_errors report.Validate.diagnostics);
  (* the imperative program can be rendered to declarative HCL and
     round-trips *)
  let printed = Config.to_string cfg in
  let reparsed = Config.parse ~file:"edsl.tf" printed in
  check int_ "round-trips" 7 (List.length reparsed.Config.resources)

let test_deploys () =
  let cfg = Edsl.program web_program in
  let cloud =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed:81 ()
  in
  let result = Eval.expand cfg in
  let plan = Plan.make ~state:State.empty result.Eval.instances in
  let report =
    Executor.apply cloud ~config:Executor.cloudless_config ~state:State.empty
      ~plan ()
  in
  check bool_ "deploys" true (Executor.succeeded report);
  check int_ "7 in cloud" 7 (Cloud.resource_count cloud);
  (* outputs resolve after deployment *)
  let env =
    {
      Eval.default_env with
      Eval.state_lookup = (fun a -> State.lookup report.Executor.state a);
    }
  in
  let result = Eval.expand ~env cfg in
  match List.assoc "vpc_id" result.Eval.outputs with
  | Value.Vstring id -> check bool_ "output is a cloud id" true (String.length id > 3)
  | v -> Alcotest.failf "expected id, got %a" Value.pp v

let test_duplicate_registration_rejected () =
  match
    Edsl.program (fun ctx ->
        ignore (Edsl.resource ctx "aws_vpc" "x" []);
        ignore (Edsl.resource ctx "aws_vpc" "x" []))
  with
  | exception Edsl.Registration_error _ -> ()
  | _ -> Alcotest.fail "expected duplicate-registration error"

let test_depends_on () =
  let cfg =
    Edsl.program (fun ctx ->
        let a = Edsl.resource ctx "aws_vpc" "a" [ ("cidr_block", Edsl.str "10.0.0.0/16") ] in
        ignore
          (Edsl.resource ctx "aws_eip" "b" ~depends_on:[ a ]
             [ ("region", Edsl.str "us-east-1") ]))
  in
  let b = Option.get (Config.find_resource cfg "aws_eip" "b") in
  check
    (Alcotest.list (Alcotest.pair string_ string_))
    "depends_on recorded"
    [ ("aws_vpc", "a") ]
    b.Config.rdepends_on

let test_conditional_infrastructure () =
  (* the imperative selling point: arbitrary host-language logic *)
  let build ~with_cache =
    Edsl.program (fun ctx ->
        ignore
          (Edsl.resource ctx "aws_instance" "app"
             [ ("ami", Edsl.str "a"); ("instance_type", Edsl.str "t3.small") ]);
        if with_cache then
          ignore
            (Edsl.resource ctx "aws_elasticache_cluster" "cache"
               [
                 ("cluster_id", Edsl.str "app-cache");
                 ("engine", Edsl.str "redis");
               ]))
  in
  check int_ "without cache" 1 (List.length (build ~with_cache:false).Config.resources);
  check int_ "with cache" 2 (List.length (build ~with_cache:true).Config.resources)

let suites =
  [
    ( "edsl",
      [
        Alcotest.test_case "registration" `Quick test_registration;
        Alcotest.test_case "validates & prints" `Quick test_validates_and_prints;
        Alcotest.test_case "deploys" `Quick test_deploys;
        Alcotest.test_case "duplicate rejected" `Quick test_duplicate_registration_rejected;
        Alcotest.test_case "depends_on" `Quick test_depends_on;
        Alcotest.test_case "conditional infra" `Quick test_conditional_infrastructure;
      ] );
  ]
