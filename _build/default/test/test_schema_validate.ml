(* Tests for the knowledge base, semantic types, cross-resource rules,
   spec mining, and the staged validation pipeline (E6's machinery). *)

open Cloudless_hcl
module Schema = Cloudless_schema
module T = Schema.Semantic_type
module Validate = Cloudless_validate.Validate
module Diagnostic = Cloudless_validate.Diagnostic
module Workload = Cloudless_workload.Workload
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Semantic types                                                      *)
(* ------------------------------------------------------------------ *)

let ok = function Ok () -> true | Error _ -> false

let test_semantic_basic () =
  check bool_ "region ok" true (ok (T.check T.Region (Value.Vstring "us-east-1")));
  check bool_ "region bad" false (ok (T.check T.Region (Value.Vstring "narnia")));
  check bool_ "cidr ok" true (ok (T.check T.Cidr (Value.Vstring "10.0.0.0/16")));
  check bool_ "cidr bad" false (ok (T.check T.Cidr (Value.Vstring "10.0.0.0/40")));
  check bool_ "port ok" true (ok (T.check T.Port (Value.Vint 443)));
  check bool_ "port bad" false (ok (T.check T.Port (Value.Vint 70000)));
  check bool_ "enum ok" true (ok (T.check (T.Enum [ "a"; "b" ]) (Value.Vstring "a")));
  check bool_ "enum bad" false (ok (T.check (T.Enum [ "a" ]) (Value.Vstring "c")));
  check bool_ "null always ok" true (ok (T.check T.Region Value.Vnull))

let test_semantic_resource_id_provenance () =
  let want = T.Resource_id "aws_network_interface" in
  check bool_ "right type" true
    (ok (T.check want (Value.unknown "aws_network_interface.n1.id")));
  check bool_ "wrong type rejected" false
    (ok (T.check want (Value.unknown "aws_subnet.s.id")));
  check bool_ "wrong attr rejected" false
    (ok (T.check want (Value.unknown "aws_network_interface.n1.name")));
  (* opaque strings and odd provenance shapes are accepted *)
  check bool_ "literal id ok" true (ok (T.check want (Value.Vstring "nic-123")));
  check bool_ "odd unknown ok" true (ok (T.check want (Value.unknown "fn:concat")))

let test_semantic_infer_join () =
  check string_ "infer cidr" "cidr" (T.to_string (T.infer (Value.Vstring "10.0.0.0/8")));
  check string_ "infer region" "region" (T.to_string (T.infer (Value.Vstring "eu-west-1")));
  check string_ "infer port" "port" (T.to_string (T.infer (Value.Vint 80)));
  check string_ "join widens" "string" (T.to_string (T.join T.Cidr T.Str));
  check string_ "join same" "cidr" (T.to_string (T.join T.Cidr T.Cidr))

let test_catalog () =
  check bool_ "aws_vpc known" true (Schema.Catalog.is_known "aws_vpc");
  check bool_ "40+ types" true (List.length (Schema.Catalog.known_types ()) >= 40);
  let vpc = Option.get (Schema.Catalog.find "aws_vpc") in
  check bool_ "cidr required" true
    (List.exists
       (fun (a : Schema.Resource_schema.attr) ->
         a.Schema.Resource_schema.aname = "cidr_block" && a.Schema.Resource_schema.required)
       vpc.Schema.Resource_schema.attrs);
  check (Alcotest.list string_) "force_new" [ "cidr_block" ]
    (Schema.Resource_schema.force_new_attrs vpc);
  check bool_ "azurerm provider" true
    (List.length (Schema.Catalog.of_provider "azurerm") >= 10)

(* ------------------------------------------------------------------ *)
(* Cross-resource rules                                                *)
(* ------------------------------------------------------------------ *)

let expand_src src = (Eval.expand (Config.parse ~file:"t" src)).Eval.instances

let rule_ids instances =
  Schema.Rules.check_all instances
  |> List.map (fun (v : Schema.Rules.violation) -> v.Schema.Rules.rule_id)

let test_rule_vm_nic_region () =
  let bad =
    expand_src
      {|
resource "aws_network_interface" "nic" {
  name   = "n"
  region = "us-west-2"
}
resource "aws_virtual_machine" "vm" {
  name    = "v"
  nic_ids = [aws_network_interface.nic.id]
  region  = "us-east-1"
}
|}
  in
  check bool_ "violation" true (List.mem "vm-nic-same-region" (rule_ids bad));
  let good =
    expand_src
      {|
resource "aws_network_interface" "nic" {
  name   = "n"
  region = "us-east-1"
}
resource "aws_virtual_machine" "vm" {
  name    = "v"
  nic_ids = [aws_network_interface.nic.id]
  region  = "us-east-1"
}
|}
  in
  check bool_ "no violation" false (List.mem "vm-nic-same-region" (rule_ids good))

let test_rule_password_flag () =
  let bad =
    expand_src
      {|
resource "azurerm_linux_virtual_machine" "vm" {
  name           = "v"
  location       = "eastus"
  size           = "B2s"
  nic_ids        = []
  admin_password = "secret"
}
|}
  in
  check bool_ "violation" true (List.mem "password-flag" (rule_ids bad));
  let good =
    expand_src
      {|
resource "azurerm_linux_virtual_machine" "vm" {
  name             = "v"
  location         = "eastus"
  size             = "B2s"
  nic_ids          = []
  admin_password   = "secret"
  disable_password = false
}
|}
  in
  check bool_ "ok with flag" false (List.mem "password-flag" (rule_ids good))

let test_rule_peering_overlap () =
  let bad =
    expand_src
      {|
resource "aws_vpc" "a" { cidr_block = "10.0.0.0/16" }
resource "aws_vpc" "b" { cidr_block = "10.0.128.0/17" }
resource "aws_vpc_peering_connection" "p" {
  vpc_id      = aws_vpc.a.id
  peer_vpc_id = aws_vpc.b.id
}
|}
  in
  check bool_ "overlap flagged" true (List.mem "peering-no-overlap" (rule_ids bad))

let test_rule_subnet_containment () =
  let bad =
    expand_src
      {|
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.v.id
  cidr_block = "192.168.0.0/24"
}
|}
  in
  check bool_ "outside vpc flagged" true
    (List.mem "subnet-within-network" (rule_ids bad))

let test_rule_sibling_overlap () =
  let bad =
    expand_src
      {|
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
resource "aws_subnet" "s1" {
  vpc_id     = aws_vpc.v.id
  cidr_block = "10.0.1.0/24"
}
resource "aws_subnet" "s2" {
  vpc_id     = aws_vpc.v.id
  cidr_block = "10.0.1.128/25"
}
|}
  in
  check bool_ "sibling overlap flagged" true
    (List.mem "sibling-subnets-disjoint" (rule_ids bad))

let test_rule_asg () =
  let bad =
    expand_src
      {|
resource "aws_autoscaling_group" "g" {
  name             = "g"
  min_size         = 5
  max_size         = 2
  desired_capacity = 10
}
|}
  in
  let ids = rule_ids bad in
  check bool_ "asg flagged" true (List.mem "asg-sizes" ids)

(* ------------------------------------------------------------------ *)
(* Validation pipeline levels                                          *)
(* ------------------------------------------------------------------ *)

let errors_at level src =
  let report = Validate.validate_source ~level ~file:"t" src in
  Diagnostic.count_errors report.Validate.diagnostics

let test_pipeline_clean_config () =
  let src = Workload.web_tier () in
  check int_ "web tier validates clean" 0 (errors_at Validate.L_cloud src)

let test_pipeline_syntax () =
  let src = "resource \"a\" {" in
  check bool_ "syntax error caught" true (errors_at Validate.L_syntax src > 0)

let test_pipeline_references () =
  let src = {|
resource "aws_vpc" "v" { cidr_block = var.missing }
|} in
  check int_ "syntax level misses it" 0 (errors_at Validate.L_syntax src);
  check bool_ "reference level catches it" true
    (errors_at Validate.L_references src > 0)

let test_pipeline_types () =
  (* wrong-type reference: NIC list pointing at a subnet *)
  let src =
    {|
resource "aws_vpc" "v" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.v.id
  cidr_block = "10.0.1.0/24"
  region     = "us-east-1"
}
resource "aws_virtual_machine" "vm" {
  name    = "vm"
  nic_ids = [aws_subnet.s.id]
  region  = "us-east-1"
}
|}
  in
  check int_ "reference level passes" 0 (errors_at Validate.L_references src);
  check bool_ "type level catches wrong-type ref" true
    (errors_at Validate.L_types src > 0)

let test_pipeline_cloud_rules () =
  let src = Workload.misconfigured Workload.M_region_mismatch in
  check int_ "type level passes region mismatch" 0 (errors_at Validate.L_types src);
  check bool_ "cloud level catches it" true (errors_at Validate.L_cloud src > 0)

let test_pipeline_catch_rates () =
  (* every injected misconfiguration must be caught at the full level;
     syntax-only must catch (almost) none of them *)
  let corpus = Workload.misconfig_corpus () in
  let caught level =
    List.filter
      (fun (_, src, injected) -> injected && errors_at level src > 0)
      corpus
    |> List.length
  in
  let total = List.length corpus - 1 in
  check int_ "full pipeline catches all" total (caught Validate.L_cloud);
  check bool_ "syntax catches few" true (caught Validate.L_syntax <= 1);
  check bool_ "levels are monotone" true
    (caught Validate.L_syntax <= caught Validate.L_references
    && caught Validate.L_references <= caught Validate.L_types
    && caught Validate.L_types <= caught Validate.L_cloud);
  (* the control program stays clean at every level *)
  let control_src =
    match corpus with (_, src, false) :: _ -> src | _ -> assert false
  in
  check int_ "control clean" 0 (errors_at Validate.L_cloud control_src)

(* ------------------------------------------------------------------ *)
(* Spec mining                                                         *)
(* ------------------------------------------------------------------ *)

let test_mining_always_set_and_types () =
  let corpus =
    List.init 5 (fun i ->
        expand_src
          (Printf.sprintf
             {|
resource "aws_s3_bucket" "b" {
  bucket     = "logs-%d"
  region     = "us-east-1"
  versioning = true
}
|}
             i))
  in
  let specs = Schema.Mining.mine ~min_support:3 corpus in
  let has_always attr =
    List.exists
      (function
        | Schema.Mining.Always_set { rtype = "aws_s3_bucket"; attr = a; _ } ->
            a = attr
        | _ -> false)
      specs
  in
  check bool_ "versioning always set" true (has_always "versioning");
  check bool_ "region typed" true
    (List.exists
       (function
         | Schema.Mining.Has_type { attr = "region"; ty = T.Region; _ } -> true
         | _ -> false)
       specs)

let test_mining_deviation_detection () =
  let corpus =
    List.init 4 (fun i ->
        expand_src
          (Printf.sprintf
             {|
resource "aws_s3_bucket" "b" {
  bucket     = "logs-%d"
  versioning = true
}
|}
             i))
  in
  let specs = Schema.Mining.mine ~min_support:3 corpus in
  let newcomer =
    expand_src {|
resource "aws_s3_bucket" "b" { bucket = "new-bucket" }
|}
  in
  let deviations = Schema.Mining.check_deviations specs newcomer in
  check bool_ "missing versioning flagged" true
    (List.exists
       (fun (d : Schema.Mining.deviation) ->
         Test_fixtures.contains_substring ~sub:"versioning"
           (Schema.Mining.deviation_to_string d))
       deviations)

let test_mining_promote_schema () =
  let corpus =
    List.init 4 (fun i ->
        expand_src
          (Printf.sprintf
             {|
resource "custom_widget" "w" {
  name   = "w-%d"
  region = "us-east-1"
  size   = %d
}
|}
             i (i + 1)))
  in
  let specs = Schema.Mining.mine ~min_support:3 corpus in
  match Schema.Mining.promote_to_schema specs ~rtype:"custom_widget" with
  | Some schema ->
      check string_ "provider inferred" "custom" schema.Schema.Resource_schema.provider;
      check bool_ "has attrs" true (List.length schema.Schema.Resource_schema.attrs >= 3)
  | None -> Alcotest.fail "expected a schema"

let suites =
  [
    ( "schema.types",
      [
        Alcotest.test_case "basic checks" `Quick test_semantic_basic;
        Alcotest.test_case "resource-id provenance" `Quick test_semantic_resource_id_provenance;
        Alcotest.test_case "infer & join" `Quick test_semantic_infer_join;
        Alcotest.test_case "catalog" `Quick test_catalog;
      ] );
    ( "schema.rules",
      [
        Alcotest.test_case "vm/nic region" `Quick test_rule_vm_nic_region;
        Alcotest.test_case "password flag" `Quick test_rule_password_flag;
        Alcotest.test_case "peering overlap" `Quick test_rule_peering_overlap;
        Alcotest.test_case "subnet containment" `Quick test_rule_subnet_containment;
        Alcotest.test_case "sibling overlap" `Quick test_rule_sibling_overlap;
        Alcotest.test_case "asg sizes" `Quick test_rule_asg;
      ] );
    ( "validate.pipeline",
      [
        Alcotest.test_case "clean config" `Quick test_pipeline_clean_config;
        Alcotest.test_case "syntax stage" `Quick test_pipeline_syntax;
        Alcotest.test_case "reference stage" `Quick test_pipeline_references;
        Alcotest.test_case "type stage" `Quick test_pipeline_types;
        Alcotest.test_case "cloud-rule stage" `Quick test_pipeline_cloud_rules;
        Alcotest.test_case "catch rates by level" `Quick test_pipeline_catch_rates;
      ] );
    ( "schema.mining",
      [
        Alcotest.test_case "always-set & types" `Quick test_mining_always_set_and_types;
        Alcotest.test_case "deviations" `Quick test_mining_deviation_detection;
        Alcotest.test_case "promote to schema" `Quick test_mining_promote_schema;
      ] );
  ]
