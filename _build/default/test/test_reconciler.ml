(* Tests for program regeneration after drift (§3.5's "regenerate the
   IaC-level program to reflect the latest deployment"). *)

open Cloudless_hcl
module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Drift = Cloudless_drift.Drift
module Reconciler = Cloudless_drift.Reconciler
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let base_src =
  {|
resource "aws_instance" "web" {
  ami           = "ami-1"
  instance_type = "t3.small"
  region        = "us-east-1"
}
|}

let deployed () =
  let cloud =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed:61 ()
  in
  let cfg = Config.parse ~file:"main.tf" base_src in
  let instances = (Eval.expand cfg).Eval.instances in
  let plan = Plan.make ~state:State.empty instances in
  let report =
    Executor.apply cloud ~config:Executor.cloudless_config ~state:State.empty
      ~plan ()
  in
  assert (Executor.succeeded report);
  (cloud, cfg, report.Executor.state)

let web_addr = Addr.make ~rtype:"aws_instance" ~rname:"web" ()

let test_update_config_attr () =
  let _, cfg, _ = deployed () in
  match
    Reconciler.update_config_attr cfg ~addr:web_addr ~attr:"instance_type"
      ~value:(Value.Vstring "t3.metal")
  with
  | Some cfg' -> (
      let r = Option.get (Config.find_resource cfg' "aws_instance" "web") in
      match Ast.attr r.Config.rbody "instance_type" with
      | Some { Ast.desc = Ast.Template [ Ast.Lit "t3.metal" ]; _ } -> ()
      | _ -> Alcotest.fail "attribute not regenerated")
  | None -> Alcotest.fail "expected regeneration"

let test_update_config_attr_skips_expressions () =
  let src =
    {|
resource "aws_instance" "web" {
  ami           = "ami-1"
  instance_type = var.size
  region        = "us-east-1"
}
variable "size" { default = "t3.small" }
|}
  in
  let cfg = Config.parse ~file:"t" src in
  check bool_ "expression attr untouched" true
    (Reconciler.update_config_attr cfg ~addr:web_addr ~attr:"instance_type"
       ~value:(Value.Vstring "x")
    = None)

let test_adopt_unmanaged () =
  let cloud, cfg, state = deployed () in
  let orphan_id =
    Cloud.create_oob cloud ~script:"clickops" ~rtype:"aws_eip"
      ~region:"us-east-1" ~attrs:(Smap.singleton "vpc" (Value.Vbool true))
  in
  match Reconciler.adopt_unmanaged cloud ~cfg ~state ~cloud_id:orphan_id with
  | None -> Alcotest.fail "expected adoption"
  | Some o ->
      check int_ "config grew" 2 (List.length o.Reconciler.config.Config.resources);
      check int_ "state grew" 2 (State.size o.Reconciler.state);
      (* adopted block carries no computed attrs *)
      let adopted =
        List.find
          (fun r -> r.Config.rtype = "aws_eip")
          o.Reconciler.config.Config.resources
      in
      check bool_ "no id attr" true (Ast.attr adopted.Config.rbody "id" = None);
      (* after adoption, a plan over the regenerated program is empty *)
      let env =
        {
          Eval.default_env with
          Eval.state_lookup = (fun a -> State.lookup o.Reconciler.state a);
        }
      in
      let instances = (Eval.expand ~env o.Reconciler.config).Eval.instances in
      let plan = Plan.make ~state:o.Reconciler.state instances in
      check bool_ "empty plan after adoption" true (Plan.is_empty plan)

let test_drop_deleted () =
  let _, cfg, state = deployed () in
  let o = Reconciler.drop_deleted ~cfg ~state ~addr:web_addr in
  check int_ "config emptied" 0 (List.length o.Reconciler.config.Config.resources);
  check int_ "state emptied" 0 (State.size o.Reconciler.state)

let test_regenerate_end_to_end () =
  (* drift of all three kinds, processed in one batch *)
  let cloud, cfg, state = deployed () in
  let r = Option.get (State.find_opt state web_addr) in
  ignore
    (Cloud.mutate_oob cloud ~script:"legacy" ~cloud_id:r.State.cloud_id
       ~attr:"instance_type" ~value:(Value.Vstring "t3.metal"));
  ignore
    (Cloud.create_oob cloud ~script:"clickops" ~rtype:"aws_eip"
       ~region:"us-east-1" ~attrs:Smap.empty);
  let tailer = Drift.Log_tailer.create () in
  let events = Drift.Log_tailer.poll tailer cloud ~state in
  check int_ "two drift events" 2 (List.length events);
  let cfg', state', log = Reconciler.regenerate cloud ~cfg ~state events in
  check int_ "two log lines" 2 (List.length log);
  check int_ "eip adopted" 2 (List.length cfg'.Config.resources);
  (* the regenerated program now matches the cloud: plan is empty *)
  let env =
    { Eval.default_env with Eval.state_lookup = (fun a -> State.lookup state' a) }
  in
  let instances = (Eval.expand ~env cfg').Eval.instances in
  let plan = Plan.make ~state:state' instances in
  check bool_ "converged" true (Plan.is_empty plan);
  (* the regenerated source is valid HCL *)
  let printed = Config.to_string cfg' in
  let reparsed = Config.parse ~file:"regen.tf" printed in
  check int_ "round-trips" 2 (List.length reparsed.Config.resources)

let test_adopt_name_collision () =
  let cloud, cfg, state = deployed () in
  let id1 =
    Cloud.create_oob cloud ~script:"s" ~rtype:"aws_instance" ~region:"us-east-1"
      ~attrs:(Smap.singleton "ami" (Value.Vstring "x"))
  in
  match Reconciler.adopt_unmanaged cloud ~cfg ~state ~cloud_id:id1 with
  | Some o ->
      (* both aws_instance.web and the adopted block coexist *)
      let names =
        List.filter_map
          (fun r ->
            if r.Config.rtype = "aws_instance" then Some r.Config.rname else None)
          o.Reconciler.config.Config.resources
      in
      check int_ "two instances" 2 (List.length names);
      check bool_ "distinct names" true
        (List.length (List.sort_uniq compare names) = 2)
  | None -> Alcotest.fail "expected adoption"

let test_notify_on_deletion () =
  let cloud, cfg, state = deployed () in
  let r = Option.get (State.find_opt state web_addr) in
  ignore (Cloud.delete_oob cloud ~script:"legacy" ~cloud_id:r.State.cloud_id);
  let tailer = Drift.Log_tailer.create () in
  let events = Drift.Log_tailer.poll tailer cloud ~state in
  let cfg', state', log = Reconciler.regenerate cloud ~cfg ~state events in
  (* deletions are not auto-accepted *)
  check int_ "program unchanged" 1 (List.length cfg'.Config.resources);
  check int_ "state unchanged" 1 (State.size state');
  check bool_ "notified" true
    (List.exists (fun l -> Test_fixtures.contains_substring ~sub:"NOTIFY" l) log)

let suites =
  [
    ( "drift.reconciler",
      [
        Alcotest.test_case "update config attr" `Quick test_update_config_attr;
        Alcotest.test_case "skip expression attrs" `Quick test_update_config_attr_skips_expressions;
        Alcotest.test_case "adopt unmanaged" `Quick test_adopt_unmanaged;
        Alcotest.test_case "drop deleted" `Quick test_drop_deleted;
        Alcotest.test_case "regenerate end-to-end" `Quick test_regenerate_end_to_end;
        Alcotest.test_case "adoption name collision" `Quick test_adopt_name_collision;
        Alcotest.test_case "deletion notifies" `Quick test_notify_on_deletion;
      ] );
  ]
