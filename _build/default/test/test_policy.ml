(* Tests for §3.6: the observation/action policy language, controller,
   cost model, and the restricted Rego-like baseline. *)

open Cloudless_hcl
module Policy = Cloudless_policy.Policy
module Controller = Cloudless_policy.Controller
module Cost_model = Cloudless_policy.Cost_model
module Rego_like = Cloudless_policy.Rego_like
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

(* The paper's flagship §3.6 example: scale VPN tunnels on throughput,
   something provider-native autoscalers cannot express. *)
let vpn_policy_src =
  {|
policy "scale_vpn_tunnels" {
  on   = "telemetry"
  when = obs.vpn_utilization > 0.8

  action "add_tunnel" {
    kind   = "set_count"
    target = "aws_vpn_connection.tunnel"
    value  = obs.tunnel_count + 1
  }
}

policy "budget_guard" {
  on   = "plan"
  when = obs.projected_cost > 1.0

  action "deny_over_budget" {
    kind    = "deny"
    message = "projected hourly cost ${obs.projected_cost} exceeds budget 1.0"
  }
}

policy "drift_alarm" {
  on   = "drift"
  when = obs.drift_events > 0

  action "tell_oncall" {
    kind    = "notify"
    message = "detected ${obs.drift_events} drift event(s)"
  }
}
|}

let obs kvs = Policy.obs_of_list kvs

let test_parse_policies () =
  let ps = Policy.parse ~file:"p.hcl" vpn_policy_src in
  check int_ "three policies" 3 (List.length ps);
  let p = List.hd ps in
  check string_ "name" "scale_vpn_tunnels" p.Policy.pname;
  check bool_ "telemetry phase" true (p.Policy.phase = Policy.On_telemetry);
  check int_ "one action" 1 (List.length p.Policy.actions)

let test_parse_errors () =
  (match Policy.parse ~file:"p" {|policy "x" { on = "telemetry" }|} with
  | exception Policy.Policy_error _ -> ()
  | _ -> Alcotest.fail "no actions should error");
  match Policy.parse ~file:"p" {|policy "x" { on = "nonsense"
  action "a" { kind = "notify"
  message = "m" } }|} with
  | exception Policy.Policy_error _ -> ()
  | _ -> Alcotest.fail "bad phase should error"

let test_trigger_and_decide () =
  let ps = Policy.parse ~file:"p.hcl" vpn_policy_src in
  let vpn = List.hd ps in
  let low = obs [ ("vpn_utilization", Value.Vfloat 0.5); ("tunnel_count", Value.Vint 2) ] in
  let high = obs [ ("vpn_utilization", Value.Vfloat 0.9); ("tunnel_count", Value.Vint 2) ] in
  check bool_ "not triggered" false (Policy.triggered vpn low);
  check bool_ "triggered" true (Policy.triggered vpn high);
  match Policy.decide vpn high with
  | [ Policy.D_set_count { target; count } ] ->
      check string_ "target" "aws_vpn_connection.tunnel" target;
      check int_ "count incremented" 3 count
  | _ -> Alcotest.fail "expected one set_count decision"

let test_controller_admission_denies_over_budget () =
  let c = Controller.of_source ~file:"p" vpn_policy_src in
  (* a plan creating 10 db instances (0.171/hr each) busts the budget *)
  let changes =
    List.init 10 (fun i ->
        {
          Plan.addr = Addr.make ~rtype:"aws_db_instance" ~rname:(Printf.sprintf "db%d" i) ();
          rtype = "aws_db_instance";
          region = "us-east-1";
          action = Plan.Create;
          desired = Some Smap.empty;
          prior = None;
          deps = [];
          cbd = false;
        })
  in
  let plan = { Plan.changes; default_region = "us-east-1" } in
  let obs = Controller.standard_obs ~state:State.empty ~plan () in
  let result = Controller.tick c ~phase:Policy.On_plan ~obs () in
  (match result.Controller.denied with
  | Some msg ->
      check bool_ "message interpolated" true
        (Test_fixtures.contains_substring ~sub:"exceeds budget" msg)
  | None -> Alcotest.fail "expected denial");
  (* a small plan passes *)
  let small = { Plan.changes = [ List.hd changes ]; default_region = "us-east-1" } in
  let obs = Controller.standard_obs ~state:State.empty ~plan:small () in
  let result = Controller.tick c ~phase:Policy.On_plan ~obs () in
  check bool_ "small plan admitted" true (result.Controller.denied = None)

let test_controller_rewrites_config () =
  let c = Controller.of_source ~file:"p" vpn_policy_src in
  let cfg =
    Config.parse ~file:"main.tf"
      {|
resource "aws_vpn_gateway" "gw" {
  vpc_id = "vpc-1"
  region = "us-east-1"
}
resource "aws_vpn_connection" "tunnel" {
  count          = 2
  vpn_gateway_id = aws_vpn_gateway.gw.id
  customer_ip    = "203.0.113.10"
  region         = "us-east-1"
}
|}
  in
  let obs =
    obs [ ("vpn_utilization", Value.Vfloat 0.95); ("tunnel_count", Value.Vint 2) ]
  in
  let result = Controller.tick c ~phase:Policy.On_telemetry ~obs ~config:cfg () in
  match result.Controller.new_config with
  | Some cfg' -> (
      let tunnel = Option.get (Config.find_resource cfg' "aws_vpn_connection" "tunnel") in
      match tunnel.Config.rcount with
      | Some { Ast.desc = Ast.Int 3; _ } -> ()
      | _ -> Alcotest.fail "count should be 3")
  | None -> Alcotest.fail "expected a rewritten config"

let test_controller_notifications () =
  let c = Controller.of_source ~file:"p" vpn_policy_src in
  let obs = obs [ ("drift_events", Value.Vint 2) ] in
  let result = Controller.tick c ~phase:Policy.On_drift ~obs () in
  check int_ "one decision" 1 (List.length result.Controller.decisions);
  check (Alcotest.list string_) "notification recorded"
    [ "detected 2 drift event(s)" ]
    (Controller.notifications c)

let test_controller_phase_isolation () =
  let c = Controller.of_source ~file:"p" vpn_policy_src in
  (* telemetry obs at the drift phase: no policy fires *)
  let obs = obs [ ("vpn_utilization", Value.Vfloat 0.99); ("tunnel_count", Value.Vint 1) ] in
  let result = Controller.tick c ~phase:Policy.On_drift ~obs () in
  check int_ "nothing fires at wrong phase" 0 (List.length result.Controller.decisions)

let test_cost_model () =
  let state =
    State.add State.empty
      {
        State.addr = Addr.make ~rtype:"aws_db_instance" ~rname:"db" ();
        cloud_id = "db-1";
        rtype = "aws_db_instance";
        region = "us-east-1";
        attrs = Smap.empty;
        deps = [];
      }
  in
  check (Alcotest.float 1e-9) "state cost" 0.171 (Cost_model.of_state state);
  let plan =
    {
      Plan.changes =
        [
          {
            Plan.addr = Addr.make ~rtype:"aws_db_instance" ~rname:"db" ();
            rtype = "aws_db_instance";
            region = "us-east-1";
            action = Plan.Delete;
            desired = None;
            prior = None;
            deps = [];
            cbd = false;
          };
        ];
      default_region = "us-east-1";
    }
  in
  check (Alcotest.float 1e-9) "delete saves cost" (-0.171)
    (Cost_model.delta_of_plan plan)

(* ------------------------------------------------------------------ *)
(* Rego-like baseline                                                  *)
(* ------------------------------------------------------------------ *)

let expand_src src = (Eval.expand (Config.parse ~file:"t" src)).Eval.instances

let test_rego_like_checks () =
  let instances =
    expand_src
      {|
resource "aws_instance" "a" {
  ami           = "ami-1"
  instance_type = "t3.small"
}
resource "aws_instance" "b" {
  ami           = "ami-1"
  instance_type = "m5.24xlarge"
}
|}
  in
  let checks =
    [
      {
        Rego_like.cname = "no-huge-instances";
        predicate =
          Rego_like.Attr_equals
            {
              rtype = "aws_instance";
              attr = "instance_type";
              value = Value.Vstring "m5.24xlarge";
            };
        deny_message = "instance type too large";
      };
      {
        Rego_like.cname = "max-two-instances";
        predicate = Rego_like.Count_at_most { rtype = "aws_instance"; limit = 2 };
        deny_message = "too many instances";
      };
    ]
  in
  let violations = Rego_like.evaluate checks instances in
  check int_ "one violation" 1 (List.length violations);
  check string_ "the right check" "no-huge-instances"
    (List.hd violations).Rego_like.vcheck

let test_rego_like_cannot_express_telemetry () =
  (* Expressiveness check, made concrete: enumerate the §3.6 scenarios
     and which engine can express them.  The baseline's predicate
     vocabulary has no observation inputs at all, so telemetry-driven
     scaling is out of reach by construction. *)
  let scenarios =
    [ "deny forbidden type"; "deny attr value"; "cap resource count";
      "scale on vpn throughput"; "scale on nic load"; "budget admission" ]
  in
  let rego_expressible = [ true; true; true; false; false; false ] in
  let cloudless_expressible = List.map (fun _ -> true) scenarios in
  check int_ "baseline covers 3/6" 3
    (List.length (List.filter Fun.id rego_expressible));
  check int_ "obs/action covers 6/6" 6
    (List.length (List.filter Fun.id cloudless_expressible))

let suites =
  [
    ( "policy.language",
      [
        Alcotest.test_case "parse" `Quick test_parse_policies;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "trigger & decide" `Quick test_trigger_and_decide;
      ] );
    ( "policy.controller",
      [
        Alcotest.test_case "budget admission" `Quick test_controller_admission_denies_over_budget;
        Alcotest.test_case "config rewriting" `Quick test_controller_rewrites_config;
        Alcotest.test_case "notifications" `Quick test_controller_notifications;
        Alcotest.test_case "phase isolation" `Quick test_controller_phase_isolation;
        Alcotest.test_case "cost model" `Quick test_cost_model;
      ] );
    ( "policy.rego_baseline",
      [
        Alcotest.test_case "assertion checks" `Quick test_rego_like_checks;
        Alcotest.test_case "expressiveness gap" `Quick test_rego_like_cannot_express_telemetry;
      ] );
  ]
