(* Tests for §3.5: drift detection (scan vs log), reconciliation, and
   the IaC debugger's error translation. *)

open Cloudless_hcl
module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Drift = Cloudless_drift.Drift
module Debugger = Cloudless_debug.Debugger
module Workload = Cloudless_workload.Workload
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let deploy_web cloud =
  let src = Workload.web_tier ~with_lb:false ~with_db:false () in
  let cfg = Config.parse ~file:"t" src in
  let instances = (Eval.expand cfg).Eval.instances in
  let plan = Plan.make ~state:State.empty instances in
  let report =
    Executor.apply cloud ~config:Executor.baseline_config ~state:State.empty
      ~plan ()
  in
  assert (Executor.succeeded report);
  report.Executor.state

let instance_addr i = Addr.make ~rtype:"aws_instance" ~rname:"web" ~key:(Addr.Kint i) ()

let drift_one cloud state =
  let r = Option.get (State.find_opt state (instance_addr 0)) in
  (match
     Cloud.mutate_oob cloud ~script:"legacy.sh" ~cloud_id:r.State.cloud_id
       ~attr:"instance_type" ~value:(Value.Vstring "t3.metal")
   with
  | Ok () -> ()
  | Error _ -> assert false);
  r.State.cloud_id

(* ------------------------------------------------------------------ *)
(* Scanner                                                             *)
(* ------------------------------------------------------------------ *)

let test_scan_detects_attr_drift () =
  let cloud = Cloud.create ~seed:3 () in
  let state = deploy_web cloud in
  ignore (drift_one cloud state);
  let result = Drift.Scanner.scan cloud ~state () in
  check int_ "one drift event" 1 (List.length result.Drift.Scanner.events);
  (match (List.hd result.Drift.Scanner.events).Drift.kind with
  | Drift.Attr_drift { attr; _ } -> check string_ "attribute" "instance_type" attr
  | _ -> Alcotest.fail "expected attr drift");
  (* a full scan reads every tracked resource *)
  check int_ "reads = state size" (State.size state) result.Drift.Scanner.api_reads

let test_scan_detects_oob_delete () =
  let cloud = Cloud.create ~seed:3 () in
  let state = deploy_web cloud in
  let r = Option.get (State.find_opt state (instance_addr 1)) in
  (match Cloud.delete_oob cloud ~script:"legacy.sh" ~cloud_id:r.State.cloud_id with
  | Ok () -> ()
  | Error _ -> assert false);
  let result = Drift.Scanner.scan cloud ~state () in
  check bool_ "deletion detected" true
    (List.exists
       (fun (e : Drift.event) -> e.Drift.kind = Drift.Deleted_oob)
       result.Drift.Scanner.events)

let test_scan_detects_unmanaged () =
  let cloud = Cloud.create ~seed:3 () in
  let state = deploy_web cloud in
  ignore
    (Cloud.create_oob cloud ~script:"clickops" ~rtype:"aws_instance"
       ~region:"us-east-1" ~attrs:Smap.empty);
  let result = Drift.Scanner.scan cloud ~state ~detect_unmanaged:true () in
  check bool_ "unmanaged found" true
    (List.exists
       (fun (e : Drift.event) ->
         match e.Drift.kind with Drift.Unmanaged _ -> true | _ -> false)
       result.Drift.Scanner.events)

let test_scan_clean_deployment_quiet () =
  let cloud = Cloud.create ~seed:3 () in
  let state = deploy_web cloud in
  let result = Drift.Scanner.scan cloud ~state () in
  check int_ "no events" 0 (List.length result.Drift.Scanner.events)

(* ------------------------------------------------------------------ *)
(* Log tailer                                                          *)
(* ------------------------------------------------------------------ *)

let test_log_tailer_detects_incrementally () =
  let cloud = Cloud.create ~seed:3 () in
  let state = deploy_web cloud in
  let tailer = Drift.Log_tailer.create () in
  (* first poll consumes the deployment's own log entries: no drift *)
  check int_ "clean poll" 0 (List.length (Drift.Log_tailer.poll tailer cloud ~state));
  ignore (drift_one cloud state);
  let events = Drift.Log_tailer.poll tailer cloud ~state in
  check int_ "drift flagged" 1 (List.length events);
  let e = List.hd events in
  check bool_ "occurrence time known" true (e.Drift.occurred_at <> None);
  (* second poll: nothing new *)
  check int_ "idempotent" 0 (List.length (Drift.Log_tailer.poll tailer cloud ~state))

let test_log_tailer_ignores_iac_writes () =
  let cloud = Cloud.create ~seed:3 () in
  let state = deploy_web cloud in
  let tailer = Drift.Log_tailer.create () in
  ignore (Drift.Log_tailer.poll tailer cloud ~state);
  (* an IaC-driven update is not drift *)
  let r = Option.get (State.find_opt state (instance_addr 0)) in
  ignore
    (Cloud.run_sync cloud
       ~actor:(Cloudless_sim.Activity_log.Iac_engine "cloudless")
       (Cloud.Update
          {
            cloud_id = r.State.cloud_id;
            attrs = Smap.singleton "instance_type" (Value.Vstring "t3.large");
          }));
  check int_ "iac write not flagged" 0
    (List.length (Drift.Log_tailer.poll tailer cloud ~state))

let test_log_tailer_cheaper_than_scan () =
  let cloud = Cloud.create ~seed:3 () in
  let state = deploy_web cloud in
  ignore (drift_one cloud state);
  let before = Cloud.api_call_count cloud in
  let tailer = Drift.Log_tailer.create () in
  let events = Drift.Log_tailer.poll tailer cloud ~state in
  let log_cost = Cloud.api_call_count cloud - before in
  check int_ "found the event" 1 (List.length events);
  check int_ "zero management-API reads" 0 log_cost

let test_reconcile_accept () =
  let cloud = Cloud.create ~seed:3 () in
  let state = deploy_web cloud in
  ignore (drift_one cloud state);
  let tailer = Drift.Log_tailer.create () in
  let events = Drift.Log_tailer.poll tailer cloud ~state in
  let state' =
    List.fold_left
      (fun s e -> Drift.reconcile cloud ~state:s e Drift.Accept_into_state)
      state events
  in
  let r = Option.get (State.find_opt state' (instance_addr 0)) in
  check bool_ "state caught up" true
    (Value.equal (Value.Vstring "t3.metal") (Smap.find "instance_type" r.State.attrs));
  (* after reconciliation a scan is clean *)
  let result = Drift.Scanner.scan cloud ~state:state' () in
  check int_ "clean after reconcile" 0 (List.length result.Drift.Scanner.events)

let test_reconcile_revert () =
  let cloud = Cloud.create ~seed:3 () in
  let state = deploy_web cloud in
  let cloud_id = drift_one cloud state in
  let tailer = Drift.Log_tailer.create () in
  let events = Drift.Log_tailer.poll tailer cloud ~state in
  ignore
    (List.fold_left
       (fun s e -> Drift.reconcile cloud ~state:s e Drift.Revert_in_cloud)
       state events);
  let live = Option.get (Cloud.lookup cloud cloud_id) in
  check bool_ "cloud reverted" true
    (Value.equal (Value.Vstring "t3.small")
       (Smap.find "instance_type" live.Cloud.attrs))

(* ------------------------------------------------------------------ *)
(* Debugger                                                            *)
(* ------------------------------------------------------------------ *)

let nic_mismatch_src =
  {|
resource "aws_network_interface" "nic" {
  name   = "nic1"
  region = "us-west-2"
}
resource "aws_virtual_machine" "vm" {
  name    = "vm1"
  nic_ids = [aws_network_interface.nic.id]
  region  = "us-east-1"
}
|}

let test_debugger_nic_region_mismatch () =
  (* reproduce the paper's exact scenario end to end *)
  let cloud =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed:1 ()
  in
  let cfg = Config.parse ~file:"main.tf" nic_mismatch_src in
  let instances = (Eval.expand cfg).Eval.instances in
  let plan = Plan.make ~state:State.empty instances in
  let report =
    Executor.apply cloud ~config:Executor.baseline_config ~state:State.empty
      ~plan ()
  in
  check int_ "vm failed" 1 (List.length report.Executor.failed);
  let f = List.hd report.Executor.failed in
  (* the cloud error is the opaque "NIC not found" message *)
  check bool_ "opaque error" true
    (Test_fixtures.contains_substring ~sub:"not found" f.Executor.reason);
  let d =
    Debugger.diagnose ~cfg ~instances ~addr:f.Executor.faddr
      ~error:f.Executor.reason
  in
  check bool_ "high confidence" true (d.Debugger.confidence = `High);
  check bool_ "root cause names regions" true
    (Test_fixtures.contains_substring ~sub:"us-west-2" d.Debugger.root_cause);
  check int_ "two evidence spans" 2 (List.length d.Debugger.evidence);
  (* evidence points at real lines of the program *)
  List.iter
    (fun (e : Debugger.evidence) ->
      check bool_ "line number known" true (Loc.line e.Debugger.espan > 0))
    d.Debugger.evidence;
  check bool_ "fix mentions the NIC" true
    (Test_fixtures.contains_substring ~sub:"aws_network_interface.nic"
       d.Debugger.suggested_fix)

let test_debugger_subnet_range () =
  let src =
    {|
resource "aws_vpc" "v" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.v.id
  cidr_block = "192.168.0.0/24"
  region     = "us-east-1"
}
|}
  in
  let cfg = Config.parse ~file:"main.tf" src in
  let instances = (Eval.expand cfg).Eval.instances in
  let d =
    Debugger.diagnose ~cfg ~instances
      ~addr:(Addr.make ~rtype:"aws_subnet" ~rname:"s" ())
      ~error:"InvalidSubnet.Range: the CIDR 192.168.0.0/24 is invalid for the network"
  in
  check bool_ "root cause mentions parent space" true
    (Test_fixtures.contains_substring ~sub:"10.0.0.0/16" d.Debugger.root_cause);
  check bool_ "fix suggests contained prefix" true
    (Test_fixtures.contains_substring ~sub:"10.0.0.0/24" d.Debugger.suggested_fix)

let test_debugger_password () =
  let src =
    {|
resource "azurerm_linux_virtual_machine" "vm" {
  name           = "vm"
  location       = "eastus"
  size           = "B2s"
  nic_ids        = []
  admin_password = "hunter2"
}
|}
  in
  let cfg = Config.parse ~file:"main.tf" src in
  let instances = (Eval.expand cfg).Eval.instances in
  let d =
    Debugger.diagnose ~cfg ~instances
      ~addr:(Addr.make ~rtype:"azurerm_linux_virtual_machine" ~rname:"vm" ())
      ~error:"OperationNotAllowed: the property 'adminPassword' is not valid for this request"
  in
  check bool_ "fix mentions flag" true
    (Test_fixtures.contains_substring ~sub:"disable_password" d.Debugger.suggested_fix)

let test_debugger_throttle_and_quota () =
  let cfg = Config.parse ~file:"main.tf" "resource \"aws_eip\" \"e\" {}" in
  let instances = (Eval.expand cfg).Eval.instances in
  let addr = Addr.make ~rtype:"aws_eip" ~rname:"e" () in
  let d1 = Debugger.diagnose ~cfg ~instances ~addr ~error:"429 throttled (retry after 30s)" in
  check bool_ "throttle diagnosed" true
    (Test_fixtures.contains_substring ~sub:"rate limit" d1.Debugger.root_cause);
  let d2 = Debugger.diagnose ~cfg ~instances ~addr ~error:"409 quota exceeded: aws_eip limit 5" in
  check bool_ "quota diagnosed" true
    (Test_fixtures.contains_substring ~sub:"quota" d2.Debugger.root_cause)

let test_debugger_unknown_error_fallback () =
  let cfg = Config.parse ~file:"main.tf" "resource \"aws_eip\" \"e\" {}" in
  let instances = (Eval.expand cfg).Eval.instances in
  let d =
    Debugger.diagnose ~cfg ~instances
      ~addr:(Addr.make ~rtype:"aws_eip" ~rname:"e" ())
      ~error:"something inscrutable"
  in
  check bool_ "low confidence" true (d.Debugger.confidence = `Low);
  check int_ "still points at the block" 1 (List.length d.Debugger.evidence)

let suites =
  [
    ( "drift.scanner",
      [
        Alcotest.test_case "attr drift" `Quick test_scan_detects_attr_drift;
        Alcotest.test_case "oob delete" `Quick test_scan_detects_oob_delete;
        Alcotest.test_case "unmanaged" `Quick test_scan_detects_unmanaged;
        Alcotest.test_case "clean is quiet" `Quick test_scan_clean_deployment_quiet;
      ] );
    ( "drift.log_tailer",
      [
        Alcotest.test_case "incremental detection" `Quick test_log_tailer_detects_incrementally;
        Alcotest.test_case "ignores iac writes" `Quick test_log_tailer_ignores_iac_writes;
        Alcotest.test_case "cheaper than scan" `Quick test_log_tailer_cheaper_than_scan;
      ] );
    ( "drift.reconcile",
      [
        Alcotest.test_case "accept into state" `Quick test_reconcile_accept;
        Alcotest.test_case "revert in cloud" `Quick test_reconcile_revert;
      ] );
    ( "debug",
      [
        Alcotest.test_case "nic region mismatch (paper scenario)" `Quick
          test_debugger_nic_region_mismatch;
        Alcotest.test_case "subnet range" `Quick test_debugger_subnet_range;
        Alcotest.test_case "password flag" `Quick test_debugger_password;
        Alcotest.test_case "throttle & quota" `Quick test_debugger_throttle_and_quota;
        Alcotest.test_case "fallback" `Quick test_debugger_unknown_error_fallback;
      ] );
  ]
