(* Tests for HCL evaluation and expansion: values, functions, unknowns,
   count/for_each, modules, locals, data sources. *)

open Cloudless_hcl
module Smap = Value.Smap

let check = Alcotest.check
let string_ = Alcotest.string
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let value = Alcotest.testable Value.pp Value.equal

let ev ?vars src =
  let vars =
    match vars with
    | None -> Smap.empty
    | Some kvs -> Smap.of_seq (List.to_seq kvs)
  in
  Eval.eval_string ~vars src

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let test_arith () =
  check value "int add" (Value.Vint 7) (ev "1 + 2 * 3");
  check value "mixed float" (Value.Vfloat 3.5) (ev "7 / 2");
  check value "exact div stays int" (Value.Vint 3) (ev "6 / 2");
  check value "mod" (Value.Vint 1) (ev "7 % 3");
  check value "neg mod is positive" (Value.Vint 2) (ev "-1 % 3");
  check value "unary" (Value.Vint (-5)) (ev "-(2 + 3)")

let test_strings () =
  check value "concat op" (Value.Vstring "ab") (ev {|"a" + "b"|});
  check value "template" (Value.Vstring "x-3-y") (ev {|"x-${1 + 2}-y"|});
  check value "single interp keeps type" (Value.Vint 3) (ev {|"${1 + 2}"|})

let test_bool_logic () =
  check value "and" (Value.Vbool false) (ev "true && false");
  check value "or shortcircuit" (Value.Vbool true) (ev "true || undefined_is_not_evaluated")
    (* note: RHS never evaluated *);
  check value "cmp" (Value.Vbool true) (ev "2 >= 2");
  check value "ternary" (Value.Vint 1) (ev "2 > 1 ? 1 : 2")

let test_collections () =
  check value "list index" (Value.Vint 20) (ev "[10, 20, 30][1]");
  check value "object attr" (Value.Vint 5) (ev "{ a = 5 }.a");
  check value "nested" (Value.Vstring "deep") (ev {|{ a = { b = ["deep"] } }.a.b[0]|})

let test_for_exprs () =
  check value "for list"
    (Value.Vlist [ Value.Vint 2; Value.Vint 4; Value.Vint 6 ])
    (ev "[for x in [1, 2, 3] : x * 2]");
  check value "for with cond"
    (Value.Vlist [ Value.Vint 2 ])
    (ev "[for x in [1, 2, 3] : x if x % 2 == 0]");
  check value "for map"
    (Value.of_assoc [ ("a", Value.Vint 1); ("b", Value.Vint 2) ])
    (ev {|{for k, v in { a = 1, b = 2 } : k => v}|});
  check value "for over map to list"
    (Value.Vlist [ Value.Vstring "a=1"; Value.Vstring "b=2" ])
    (ev {|[for k, v in { a = 1, b = 2 } : "${k}=${v}"]|})

let test_vars () =
  check value "var lookup" (Value.Vstring "web")
    (ev ~vars:[ ("name", Value.Vstring "web") ] "var.name");
  match ev "var.missing" with
  | exception Eval.Eval_error (msg, _) ->
      check bool_ "mentions var" true
        (Test_fixtures.contains_substring ~sub:"missing" msg)
  | _ -> Alcotest.fail "expected error"

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)
(* ------------------------------------------------------------------ *)

let test_string_fns () =
  check value "upper" (Value.Vstring "ABC") (ev {|upper("abc")|});
  check value "join" (Value.Vstring "a,b") (ev {|join(",", ["a", "b"])|});
  check value "split"
    (Value.Vlist [ Value.Vstring "a"; Value.Vstring "b"; Value.Vstring "" ])
    (ev {|split(",", "a,b,")|});
  check value "replace" (Value.Vstring "x-y-z") (ev {|replace("x.y.z", ".", "-")|});
  check value "format pads" (Value.Vstring "vm-03") (ev {|format("vm-%02d", 3)|});
  check value "format verbs" (Value.Vstring "a=1 b=x 100%")
    (ev {|format("a=%d b=%s 100%%", 1, "x")|});
  check value "substr" (Value.Vstring "bcd") (ev {|substr("abcde", 1, 3)|})

let test_collection_fns () =
  check value "length str" (Value.Vint 3) (ev {|length("abc")|});
  check value "length list" (Value.Vint 2) (ev "length([1, 2])");
  check value "element wraps" (Value.Vint 1) (ev "element([1, 2, 3], 3)");
  check value "concat"
    (Value.Vlist [ Value.Vint 1; Value.Vint 2; Value.Vint 3 ])
    (ev "concat([1], [2, 3])");
  check value "contains" (Value.Vbool true) (ev {|contains(["a"], "a")|});
  check value "keys"
    (Value.Vlist [ Value.Vstring "a"; Value.Vstring "b" ])
    (ev "keys({ a = 1, b = 2 })");
  check value "lookup default" (Value.Vint 9) (ev {|lookup({ a = 1 }, "z", 9)|});
  check value "merge right wins" (Value.Vint 2)
    (ev {|merge({ a = 1 }, { a = 2 }).a|});
  check value "flatten"
    (Value.Vlist [ Value.Vint 1; Value.Vint 2; Value.Vint 3 ])
    (ev "flatten([[1], [2, [3]]])");
  check value "distinct"
    (Value.Vlist [ Value.Vint 1; Value.Vint 2 ])
    (ev "distinct([1, 2, 1])");
  check value "range"
    (Value.Vlist [ Value.Vint 0; Value.Vint 2 ])
    (ev "range(0, 4, 2)");
  check value "sum" (Value.Vint 6) (ev "sum([1, 2, 3])");
  check value "zipmap" (Value.Vint 1) (ev {|zipmap(["a"], [1]).a|})

let test_cidr_fns () =
  check value "cidrsubnet" (Value.Vstring "10.0.3.0/24")
    (ev {|cidrsubnet("10.0.0.0/16", 8, 3)|});
  check value "cidrhost" (Value.Vstring "10.0.0.5")
    (ev {|cidrhost("10.0.0.0/16", 5)|});
  check value "cidrnetmask" (Value.Vstring "255.255.0.0")
    (ev {|cidrnetmask("10.0.0.0/16")|})

let test_encoding_fns () =
  check value "jsonencode" (Value.Vstring {|{"a":1}|}) (ev "jsonencode({ a = 1 })");
  check value "b64 roundtrip" (Value.Vstring "hello world")
    (ev {|base64decode(base64encode("hello world"))|});
  (* hash is deterministic *)
  check value "hash deterministic" (ev {|hash("abc")|}) (ev {|hash("abc")|})

(* ------------------------------------------------------------------ *)
(* Unknown propagation                                                 *)
(* ------------------------------------------------------------------ *)

let test_unknowns () =
  let scope = Eval.make_scope () in
  ignore scope;
  (* Build via expansion: referencing a computed attribute gives unknown *)
  let cfg =
    Config.parse ~file:"t"
      {|
resource "aws_vpc" "main" {
  cidr_block = "10.0.0.0/16"
}
resource "aws_subnet" "s" {
  vpc_id = aws_vpc.main.id
  cidr   = aws_vpc.main.cidr_block
}
output "subnet_vpc" { value = aws_subnet.s.vpc_id }
output "known" { value = aws_subnet.s.cidr }
|}
  in
  let result = Eval.expand cfg in
  let subnet =
    List.find
      (fun i -> i.Eval.addr.Addr.rtype = "aws_subnet")
      result.Eval.instances
  in
  (match Smap.find "vpc_id" subnet.Eval.attrs with
  | Value.Vunknown p -> check string_ "provenance" "aws_vpc.main.id" p
  | v -> Alcotest.failf "expected unknown, got %a" Value.pp v);
  (* configured attribute resolves to its configured value *)
  check value "known attr flows"
    (Value.Vstring "10.0.0.0/16")
    (Smap.find "cidr" subnet.Eval.attrs);
  (* unknown arithmetic stays unknown *)
  check bool_ "output unknown" true
    (Value.is_unknown (List.assoc "subnet_vpc" result.Eval.outputs))

let test_unknown_state_resolution () =
  (* with prior state, the computed attribute becomes known *)
  let cfg =
    Config.parse ~file:"t"
      {|
resource "aws_vpc" "main" { cidr_block = "10.0.0.0/16" }
resource "aws_subnet" "s" { vpc_id = aws_vpc.main.id }
|}
  in
  let state addr =
    if Addr.to_string addr = "aws_vpc.main" then
      Some (Smap.singleton "id" (Value.Vstring "vpc-42"))
    else None
  in
  let env = { Eval.default_env with Eval.state_lookup = state } in
  let result = Eval.expand ~env cfg in
  let subnet =
    List.find (fun i -> i.Eval.addr.Addr.rtype = "aws_subnet") result.Eval.instances
  in
  check value "resolved from state" (Value.Vstring "vpc-42")
    (Smap.find "vpc_id" subnet.Eval.attrs)

(* ------------------------------------------------------------------ *)
(* Expansion: count, for_each, locals, data, modules                   *)
(* ------------------------------------------------------------------ *)

let addr_strings result =
  List.map (fun i -> Addr.to_string i.Eval.addr) result.Eval.instances

let test_expand_count () =
  let cfg =
    Config.parse ~file:"t"
      {|
resource "aws_instance" "web" {
  count = 3
  name  = "web-${count.index}"
}
|}
  in
  let result = Eval.expand cfg in
  check (Alcotest.list string_) "addresses"
    [ "aws_instance.web[0]"; "aws_instance.web[1]"; "aws_instance.web[2]" ]
    (addr_strings result);
  let names =
    List.map (fun i -> Smap.find "name" i.Eval.attrs) result.Eval.instances
  in
  check (Alcotest.list value) "names"
    [ Value.Vstring "web-0"; Value.Vstring "web-1"; Value.Vstring "web-2" ]
    names

let test_expand_count_zero () =
  let cfg =
    Config.parse ~file:"t" {|
resource "aws_instance" "web" { count = 0 }
|}
  in
  check int_ "no instances" 0 (List.length (Eval.expand cfg).Eval.instances)

let test_expand_for_each () =
  let cfg =
    Config.parse ~file:"t"
      {|
resource "aws_subnet" "s" {
  for_each = { east = "10.0.1.0/24", west = "10.0.2.0/24" }
  cidr     = each.value
  zone     = each.key
}
|}
  in
  let result = Eval.expand cfg in
  check (Alcotest.list string_) "addresses"
    [ {|aws_subnet.s["east"]|}; {|aws_subnet.s["west"]|} ]
    (addr_strings result);
  let east = List.hd result.Eval.instances in
  check value "each.value" (Value.Vstring "10.0.1.0/24")
    (Smap.find "cidr" east.Eval.attrs)

let test_expand_locals_chain () =
  let cfg =
    Config.parse ~file:"t"
      {|
locals {
  base   = "10.0.0.0/16"
  subnet = cidrsubnet(local.base, 8, 1)
}
resource "aws_subnet" "s" { cidr = local.subnet }
|}
  in
  let result = Eval.expand cfg in
  let s = List.hd result.Eval.instances in
  check value "chained locals" (Value.Vstring "10.0.1.0/24")
    (Smap.find "cidr" s.Eval.attrs)

let test_expand_local_cycle () =
  let cfg =
    Config.parse ~file:"t"
      {|
locals {
  a = local.b
  b = local.a
}
resource "x_y" "r" { v = local.a }
|}
  in
  match Eval.expand cfg with
  | exception Eval.Eval_error (msg, _) ->
      check bool_ "cycle reported" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected cycle error"

let test_expand_data_source () =
  let cfg = Config.parse ~file:"t" Test_fixtures.figure2 in
  let data_resolver ~rtype ~name ~args:_ =
    if rtype = "aws_region" && name = "current" then
      Some (Smap.singleton "name" (Value.Vstring "us-east-1"))
    else None
  in
  let env = { Eval.default_env with Eval.data_resolver } in
  let result = Eval.expand ~env cfg in
  let nic =
    List.find
      (fun i -> i.Eval.addr.Addr.rtype = "aws_network_interface")
      result.Eval.instances
  in
  check value "location from data source" (Value.Vstring "us-east-1")
    (Smap.find "location" nic.Eval.attrs);
  let vm =
    List.find
      (fun i -> i.Eval.addr.Addr.rtype = "aws_virtual_machine")
      result.Eval.instances
  in
  check value "variable default" (Value.Vstring "cloudless")
    (Smap.find "name" vm.Eval.attrs);
  (* the vm's nic_ids references a computed attr -> list with unknown *)
  match Smap.find "nic_ids" vm.Eval.attrs with
  | Value.Vlist [ Value.Vunknown p ] ->
      check string_ "provenance" "aws_network_interface.n1.id" p
  | v -> Alcotest.failf "expected [unknown], got %a" Value.pp v

let test_expand_dependency_order () =
  (* declared out of order; expansion must still succeed via topo sort *)
  let cfg =
    Config.parse ~file:"t"
      {|
resource "aws_subnet" "s" { vpc = aws_vpc.v.cidr }
resource "aws_vpc" "v" { cidr = "10.0.0.0/16" }
|}
  in
  let result = Eval.expand cfg in
  check (Alcotest.list string_) "vpc first"
    [ "aws_vpc.v"; "aws_subnet.s" ]
    (addr_strings result);
  let s = List.find (fun i -> i.Eval.addr.Addr.rtype = "aws_subnet") result.Eval.instances in
  check value "resolved" (Value.Vstring "10.0.0.0/16") (Smap.find "vpc" s.Eval.attrs);
  check int_ "ref dep recorded" 1 (List.length s.Eval.ref_deps)

let test_expand_dependency_cycle () =
  let cfg =
    Config.parse ~file:"t"
      {|
resource "a_t" "x" { v = b_t.y.id }
resource "b_t" "y" { v = a_t.x.id }
|}
  in
  match Eval.expand cfg with
  | exception Eval.Eval_error (msg, _) ->
      check bool_ "cycle error" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected cycle error"

let test_expand_module () =
  let network_module =
    Config.parse ~file:"network.tf"
      {|
variable "cidr" {}
resource "aws_vpc" "this" { cidr_block = var.cidr }
resource "aws_subnet" "a" {
  cidr = cidrsubnet(var.cidr, 8, 0)
  vpc  = aws_vpc.this.cidr_block
}
output "subnet_cidr" { value = aws_subnet.a.cidr }
|}
  in
  let root =
    Config.parse ~file:"main.tf"
      {|
module "net" {
  source = "./network"
  cidr   = "10.8.0.0/16"
}
resource "aws_instance" "web" {
  subnet = module.net.subnet_cidr
}
|}
  in
  let env =
    {
      Eval.default_env with
      Eval.module_registry =
        (fun src -> if src = "./network" then Some network_module else None);
    }
  in
  let result = Eval.expand ~env root in
  check (Alcotest.list string_) "instances"
    [
      "module.net.aws_vpc.this";
      "module.net.aws_subnet.a";
      "aws_instance.web";
    ]
    (addr_strings result);
  let web =
    List.find (fun i -> i.Eval.addr.Addr.rtype = "aws_instance") result.Eval.instances
  in
  check value "module output flows" (Value.Vstring "10.8.0.0/24")
    (Smap.find "subnet" web.Eval.attrs)

let test_expand_module_count () =
  let child =
    Config.parse ~file:"c.tf"
      {|
variable "i" { default = 0 }
resource "x_r" "r" { idx = var.i }
output "o" { value = var.i }
|}
  in
  let root =
    Config.parse ~file:"main.tf"
      {|
module "m" {
  source = "./c"
  count  = 2
  i      = count.index
}
output "all" { value = module.m[*].o }
|}
  in
  let env =
    {
      Eval.default_env with
      Eval.module_registry = (fun _ -> Some child);
    }
  in
  let result = Eval.expand ~env root in
  check int_ "two instances" 2 (List.length result.Eval.instances);
  check value "splat over module"
    (Value.Vlist [ Value.Vint 0; Value.Vint 1 ])
    (List.assoc "all" result.Eval.outputs)

let test_expand_required_variable () =
  let cfg = Config.parse ~file:"t" {|
variable "req" {}
resource "x_y" "r" { v = var.req }
|} in
  (match Eval.expand cfg with
  | exception Eval.Eval_error (msg, _) ->
      check bool_ "required var error" true (String.length msg > 0)
  | _ -> Alcotest.fail "expected error");
  let vars = Smap.singleton "req" (Value.Vint 1) in
  let result = Eval.expand ~vars cfg in
  check int_ "supplied" 1 (List.length result.Eval.instances)

let test_nested_blocks_to_lists () =
  let cfg =
    Config.parse ~file:"t"
      {|
resource "aws_security_group" "sg" {
  name = "sg1"
  ingress {
    port = 80
  }
  ingress {
    port = 443
  }
}
|}
  in
  let result = Eval.expand cfg in
  let sg = List.hd result.Eval.instances in
  match Smap.find "ingress" sg.Eval.attrs with
  | Value.Vlist [ Value.Vmap a; Value.Vmap b ] ->
      check value "first port" (Value.Vint 80) (Smap.find "port" a);
      check value "second port" (Value.Vint 443) (Smap.find "port" b)
  | v -> Alcotest.failf "expected list of blocks, got %a" Value.pp v

(* Property: count expansion always yields exactly n instances with
   distinct addresses. *)
let prop_count_instances =
  QCheck.Test.make ~count:50 ~name:"count yields n distinct instances"
    QCheck.(int_range 0 25)
    (fun n ->
      let src =
        Printf.sprintf
          "resource \"x_y\" \"r\" {\n  count = %d\n  i = count.index\n}\n" n
      in
      let result = Eval.expand (Config.parse ~file:"t" src) in
      let addrs = List.map (fun i -> Addr.to_string i.Eval.addr) result.Eval.instances in
      List.length addrs = n
      && List.length (List.sort_uniq compare addrs) = n)

let test_extra_string_fns () =
  check value "title" (Value.Vstring "Hello Wide World")
    (ev {|title("hello wide world")|});
  check value "trimprefix hit" (Value.Vstring "bucket")
    (ev {|trimprefix("my-bucket", "my-")|});
  check value "trimprefix miss" (Value.Vstring "bucket")
    (ev {|trimprefix("bucket", "my-")|});
  check value "trimsuffix" (Value.Vstring "my")
    (ev {|trimsuffix("my-bucket", "-bucket")|})

let test_extra_collection_fns () =
  check value "chunklist"
    (Value.Vlist
       [
         Value.Vlist [ Value.Vint 1; Value.Vint 2 ];
         Value.Vlist [ Value.Vint 3; Value.Vint 4 ];
         Value.Vlist [ Value.Vint 5 ];
       ])
    (ev "chunklist([1, 2, 3, 4, 5], 2)");
  check value "one singleton" (Value.Vint 7) (ev "one([7])");
  check value "one empty" Value.Vnull (ev "one([])");
  check value "transpose"
    (Value.of_assoc
       [
         ("dev", Value.Vlist [ Value.Vstring "alice" ]);
         ("prod", Value.Vlist [ Value.Vstring "alice"; Value.Vstring "bob" ]);
       ])
    (ev {|transpose({ alice = ["dev", "prod"], bob = ["prod"] })|})

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "hcl.eval.expr",
      [
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "strings" `Quick test_strings;
        Alcotest.test_case "booleans" `Quick test_bool_logic;
        Alcotest.test_case "collections" `Quick test_collections;
        Alcotest.test_case "for expressions" `Quick test_for_exprs;
        Alcotest.test_case "variables" `Quick test_vars;
      ] );
    ( "hcl.eval.funcs",
      [
        Alcotest.test_case "string functions" `Quick test_string_fns;
        Alcotest.test_case "collection functions" `Quick test_collection_fns;
        Alcotest.test_case "cidr functions" `Quick test_cidr_fns;
        Alcotest.test_case "encoding functions" `Quick test_encoding_fns;
        Alcotest.test_case "extra string functions" `Quick test_extra_string_fns;
        Alcotest.test_case "extra collection functions" `Quick test_extra_collection_fns;
      ] );
    ( "hcl.eval.unknown",
      [
        Alcotest.test_case "propagation" `Quick test_unknowns;
        Alcotest.test_case "state resolution" `Quick test_unknown_state_resolution;
      ] );
    ( "hcl.expand",
      [
        Alcotest.test_case "count" `Quick test_expand_count;
        Alcotest.test_case "count zero" `Quick test_expand_count_zero;
        Alcotest.test_case "for_each" `Quick test_expand_for_each;
        Alcotest.test_case "locals chain" `Quick test_expand_locals_chain;
        Alcotest.test_case "locals cycle" `Quick test_expand_local_cycle;
        Alcotest.test_case "data source (figure 2)" `Quick test_expand_data_source;
        Alcotest.test_case "dependency order" `Quick test_expand_dependency_order;
        Alcotest.test_case "dependency cycle" `Quick test_expand_dependency_cycle;
        Alcotest.test_case "module" `Quick test_expand_module;
        Alcotest.test_case "module count" `Quick test_expand_module_count;
        Alcotest.test_case "required variable" `Quick test_expand_required_variable;
        Alcotest.test_case "nested blocks" `Quick test_nested_blocks_to_lists;
        qtest prop_count_instances;
      ] );
  ]
