(* Validation <-> cloud consistency (§3.2's core premise).

   The pipeline's cloud-rule stage claims to transplant *actual*
   cloud-level constraints to compile time.  That is only meaningful if
   the cloud really enforces them: for each misconfiguration class that
   the cloud polices, deploying with validation bypassed must fail at
   the cloud, and the §3.5 debugger must translate the failure. *)

open Cloudless_hcl
module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Debugger = Cloudless_debug.Debugger
module Workload = Cloudless_workload.Workload

let check = Alcotest.check
let bool_ = Alcotest.bool

(* misconfig classes the simulated cloud itself enforces (the others —
   bad literals, dangling references, missing attrs — are caught by
   earlier validation stages or at expansion) *)
let cloud_enforced =
  [
    Workload.M_region_mismatch;
    Workload.M_subnet_outside_vpc;
    Workload.M_password_no_flag;
    Workload.M_overlapping_peering;
    Workload.M_port_inversion;
  ]

let deploy_bypassing_validation src =
  let cloud =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed:91 ()
  in
  let cfg = Config.parse ~file:"bypass.tf" src in
  let instances = (Eval.expand cfg).Eval.instances in
  let plan = Plan.make ~state:State.empty instances in
  let report =
    Executor.apply cloud ~config:Executor.baseline_config ~state:State.empty
      ~plan ()
  in
  (cfg, instances, report)

let test_cloud_enforces_what_validation_catches () =
  List.iter
    (fun m ->
      let name = Workload.misconfig_name m in
      let src = Workload.misconfigured m in
      let cfg, instances, report = deploy_bypassing_validation src in
      (* 1. the cloud rejects the deployment *)
      check bool_ (name ^ ": cloud rejects") true
        (report.Executor.failed <> []);
      (* 2. the debugger produces a diagnosis for the failure *)
      let f = List.hd report.Executor.failed in
      let d =
        Debugger.diagnose ~cfg ~instances ~addr:f.Executor.faddr
          ~error:f.Executor.reason
      in
      check bool_ (name ^ ": diagnosis nonempty") true
        (String.length d.Debugger.root_cause > 0);
      (* 3. and validation would have caught it pre-deploy *)
      let vreport =
        Cloudless_validate.Validate.validate_source
          ~level:Cloudless_validate.Validate.L_cloud ~file:"v.tf" src
      in
      check bool_ (name ^ ": validation catches pre-deploy") true
        (Cloudless_validate.Diagnostic.count_errors
           vreport.Cloudless_validate.Validate.diagnostics
        > 0))
    cloud_enforced

let test_paper_scenario_high_confidence () =
  (* the paper's flagship NIC scenario must get a High-confidence
     diagnosis with evidence pointing at both resources *)
  let src = Workload.misconfigured Workload.M_region_mismatch in
  let cfg, instances, report = deploy_bypassing_validation src in
  let f = List.hd report.Executor.failed in
  let d =
    Debugger.diagnose ~cfg ~instances ~addr:f.Executor.faddr
      ~error:f.Executor.reason
  in
  check bool_ "high confidence" true (d.Debugger.confidence = `High);
  check bool_ "two evidence spans" true (List.length d.Debugger.evidence = 2)

let suites =
  [
    ( "consistency",
      [
        Alcotest.test_case "cloud enforces validated rules" `Slow
          test_cloud_enforces_what_validation_catches;
        Alcotest.test_case "paper scenario high confidence" `Quick
          test_paper_scenario_high_confidence;
      ] );
  ]
