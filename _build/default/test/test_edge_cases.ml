(* Edge cases across the stack: HCL corner syntax, deep module nesting,
   unknown-value corners, chaos deployment (failure injection), and
   drift-phase policy integration. *)

open Cloudless_hcl
module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Workload = Cloudless_workload.Workload
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string
let value = Alcotest.testable Value.pp Value.equal

(* ------------------------------------------------------------------ *)
(* HCL corner syntax                                                   *)
(* ------------------------------------------------------------------ *)

let test_heredoc_in_config () =
  let src =
    "resource \"aws_iam_policy\" \"p\" {\n"
    ^ "  name   = \"p\"\n"
    ^ "  region = \"us-east-1\"\n"
    ^ "  policy = <<EOF\n{\n  \"Version\": \"2012-10-17\",\n  \"Action\": \"${var.action}\"\n}\nEOF\n"
    ^ "}\n" ^ "variable \"action\" { default = \"s3:GetObject\" }\n"
  in
  let cfg = Config.parse ~file:"t" src in
  let result = Eval.expand cfg in
  let p = List.hd result.Eval.instances in
  let policy = Value.to_string (Smap.find "policy" p.Eval.attrs) in
  check bool_ "interpolated in heredoc" true
    (Test_fixtures.contains_substring ~sub:"s3:GetObject" policy);
  check bool_ "multiline preserved" true
    (Test_fixtures.contains_substring ~sub:"\n" policy)

let test_splat_over_counted_resource () =
  let cfg =
    Config.parse ~file:"t"
      {|
resource "aws_subnet" "s" {
  count      = 3
  cidr_block = cidrsubnet("10.0.0.0/16", 8, count.index)
}
output "all_cidrs" { value = aws_subnet.s[*].cidr_block }
output "joined" { value = join(",", aws_subnet.s[*].cidr_block) }
|}
  in
  let result = Eval.expand cfg in
  check value "splat collects known attrs"
    (Value.Vlist
       [
         Value.Vstring "10.0.0.0/24";
         Value.Vstring "10.0.1.0/24";
         Value.Vstring "10.0.2.0/24";
       ])
    (List.assoc "all_cidrs" result.Eval.outputs);
  check value "join over splat"
    (Value.Vstring "10.0.0.0/24,10.0.1.0/24,10.0.2.0/24")
    (List.assoc "joined" result.Eval.outputs)

let test_two_level_modules () =
  let leaf =
    Config.parse ~file:"leaf.tf"
      {|
variable "n" {}
resource "x_leaf" "r" { idx = var.n }
output "double" { value = var.n * 2 }
|}
  in
  let mid =
    Config.parse ~file:"mid.tf"
      {|
variable "base" {}
module "inner" {
  source = "./leaf"
  n      = var.base + 1
}
output "result" { value = module.inner.double }
|}
  in
  let root =
    Config.parse ~file:"root.tf"
      {|
module "outer" {
  source = "./mid"
  base   = 10
}
output "final" { value = module.outer.result }
|}
  in
  let env =
    {
      Eval.default_env with
      Eval.module_registry =
        (fun s ->
          match s with
          | "./leaf" -> Some leaf
          | "./mid" -> Some mid
          | _ -> None);
    }
  in
  let result = Eval.expand ~env root in
  check int_ "one leaf instance" 1 (List.length result.Eval.instances);
  check string_ "nested address" "module.outer.module.inner.x_leaf.r"
    (Addr.to_string (List.hd result.Eval.instances).Eval.addr);
  check value "outputs flow through two levels" (Value.Vint 22)
    (List.assoc "final" result.Eval.outputs)

let test_conditional_count () =
  let run enabled =
    let vars = Smap.singleton "enabled" (Value.Vbool enabled) in
    let cfg =
      Config.parse ~file:"t"
        {|
variable "enabled" {}
resource "aws_eip" "ip" {
  count  = var.enabled ? 2 : 0
  region = "us-east-1"
}
|}
    in
    List.length (Eval.expand ~vars cfg).Eval.instances
  in
  check int_ "enabled" 2 (run true);
  check int_ "disabled" 0 (run false)

let test_for_each_over_variable_map () =
  let vars =
    Smap.singleton "zones"
      (Value.of_assoc
         [ ("a", Value.Vstring "10.0.1.0/24"); ("b", Value.Vstring "10.0.2.0/24") ])
  in
  let cfg =
    Config.parse ~file:"t"
      {|
variable "zones" {}
resource "aws_subnet" "s" {
  for_each   = var.zones
  cidr_block = each.value
  availability_zone = "us-east-1${each.key}"
}
output "zone_of_a" { value = aws_subnet.s["a"].availability_zone }
|}
  in
  let result = Eval.expand ~vars cfg in
  check int_ "two instances" 2 (List.length result.Eval.instances);
  check value "keyed access" (Value.Vstring "us-east-1a")
    (List.assoc "zone_of_a" result.Eval.outputs)

let test_arithmetic_on_unknown_stays_unknown () =
  let cfg =
    Config.parse ~file:"t"
      {|
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
output "derived" { value = "${aws_vpc.v.id}-suffix" }
output "guarded" { value = aws_vpc.v.id == "x" ? 1 : 2 }
|}
  in
  let result = Eval.expand cfg in
  check bool_ "template with unknown" true
    (Value.is_unknown (List.assoc "derived" result.Eval.outputs));
  check bool_ "conditional on unknown" true
    (Value.is_unknown (List.assoc "guarded" result.Eval.outputs))

let test_try_function_in_config () =
  (* try is lazy over evaluation errors: the failing reference is
     swallowed and the fallback wins *)
  check value "try falls through to literal" (Value.Vint 9)
    (Eval.eval_string {|try(var.oops, 9)|});
  check value "try keeps first success" (Value.Vint 1)
    (Eval.eval_string {|try(1, var.oops)|});
  check value "can is false on error" (Value.Vbool false)
    (Eval.eval_string {|can(var.oops)|});
  check value "can is true on success" (Value.Vbool true)
    (Eval.eval_string {|can(1 + 1)|});
  match Eval.eval_string {|try(var.a, var.b)|} with
  | exception Eval.Eval_error _ -> ()
  | v -> Alcotest.failf "expected error when all branches fail, got %a" Value.pp v

let test_negative_numbers_and_precedence () =
  check value "neg precedence" (Value.Vint (-6)) (Eval.eval_string "-2 * 3");
  check value "sub vs neg" (Value.Vint 1) (Eval.eval_string "3 - 2");
  check value "mod chain" (Value.Vint 0) (Eval.eval_string "10 % 5 * 3")

(* ------------------------------------------------------------------ *)
(* Chaos: failure injection + hangs                                    *)
(* ------------------------------------------------------------------ *)

let test_chaos_deploy_converges () =
  (* transient failures and hangs everywhere: the cloudless engine's
     retries must still converge, and bookkeeping must stay exact *)
  let config =
    Cloudless_schema.Cloud_rules.config_with_checks
      ~base:
        {
          Cloud.default_config with
          Cloud.failure =
            Cloudless_sim.Failure.make ~transient_prob:0.25 ~hang_prob:0.1
              ~hang_factor:5. ();
        }
      ()
  in
  let cloud = Cloud.create ~config ~seed:13 () in
  let src = Workload.microservices ~services:6 () in
  let cfg = Config.parse ~file:"t" src in
  let instances = (Eval.expand cfg).Eval.instances in
  let plan = Plan.make ~state:State.empty instances in
  let report =
    Executor.apply cloud ~config:Executor.cloudless_config ~state:State.empty
      ~plan ()
  in
  check bool_ "converges despite chaos" true (Executor.succeeded report);
  check bool_ "retries recorded" true (report.Executor.retries > 0);
  check int_ "state exact" (List.length instances)
    (State.size report.Executor.state);
  check int_ "cloud exact" (List.length instances) (Cloud.resource_count cloud)

let test_chaos_is_deterministic () =
  let run () =
    let config =
      Cloudless_schema.Cloud_rules.config_with_checks
        ~base:
          {
            Cloud.default_config with
            Cloud.failure = Cloudless_sim.Failure.make ~transient_prob:0.3 ();
          }
        ()
    in
    let cloud = Cloud.create ~config ~seed:99 () in
    let cfg = Config.parse ~file:"t" (Workload.web_tier ()) in
    let instances = (Eval.expand cfg).Eval.instances in
    let plan = Plan.make ~state:State.empty instances in
    let report =
      Executor.apply cloud ~config:Executor.cloudless_config ~state:State.empty
        ~plan ()
    in
    (report.Executor.makespan, report.Executor.retries)
  in
  let a = run () and b = run () in
  check bool_ "chaos replays identically" true (a = b)

(* ------------------------------------------------------------------ *)
(* Drift-phase policies through the controller                         *)
(* ------------------------------------------------------------------ *)

let test_drift_policy_notification () =
  let controller =
    Cloudless_policy.Controller.of_source ~file:"p"
      {|
policy "drift_pager" {
  on   = "drift"
  when = obs.drift_events > 2

  action "page" {
    kind    = "notify"
    message = "PAGE: ${obs.drift_events} drift events"
  }
}
|}
  in
  let tick n =
    Cloudless_policy.Controller.tick controller
      ~phase:Cloudless_policy.Policy.On_drift
      ~obs:(Cloudless_policy.Policy.obs_of_list [ ("drift_events", Value.Vint n) ])
      ()
  in
  check int_ "quiet below threshold" 0 (List.length (tick 1).Cloudless_policy.Controller.decisions);
  check int_ "pages above threshold" 1 (List.length (tick 5).Cloudless_policy.Controller.decisions);
  check (Alcotest.list string_) "message"
    [ "PAGE: 5 drift events" ]
    (Cloudless_policy.Controller.notifications controller)

(* ------------------------------------------------------------------ *)
(* Validation false-positive guard                                     *)
(* ------------------------------------------------------------------ *)

let test_no_false_positives_on_valid_corpus () =
  (* every generator's output must validate clean at the strictest
     level — the catch-rate numbers in E6 are meaningless if the
     pipeline cries wolf *)
  let corpus =
    [
      Workload.web_tier ();
      Workload.web_tier ~subnets:4 ~web_count:12 ();
      Workload.microservices ~services:8 ();
      Workload.data_pipeline ~stages:5 ();
      Workload.multi_region ();
      Workload.layered ~width:4 ~depth:4 ();
      Test_fixtures.figure2;
    ]
  in
  List.iteri
    (fun i src ->
      let report =
        Cloudless_validate.Validate.validate_source
          ~level:Cloudless_validate.Validate.L_cloud ~file:(string_of_int i) src
      in
      let errors =
        Cloudless_validate.Diagnostic.errors
          report.Cloudless_validate.Validate.diagnostics
      in
      if errors <> [] then
        Alcotest.failf "corpus %d: %s" i
          (Cloudless_validate.Diagnostic.to_string (List.hd errors)))
    corpus

let test_dynamic_blocks () =
  let src =
    {|
variable "ports" { default = [80, 443, 8080] }
resource "aws_security_group" "sg" {
  name   = "dyn-sg"
  region = "us-east-1"
  dynamic "ingress" {
    for_each = var.ports
    content {
      port     = ingress.value
      position = ingress.key
      protocol = "tcp"
    }
  }
}
|}
  in
  let cfg = Config.parse ~file:"t" src in
  let result = Eval.expand cfg in
  let sg = List.hd result.Eval.instances in
  (match Smap.find "ingress" sg.Eval.attrs with
  | Value.Vlist blocks ->
      check int_ "three generated blocks" 3 (List.length blocks);
      (match List.nth blocks 1 with
      | Value.Vmap m ->
          check value "value bound" (Value.Vint 443) (Smap.find "port" m);
          check value "key bound" (Value.Vint 1) (Smap.find "position" m)
      | v -> Alcotest.failf "expected block map, got %a" Value.pp v)
  | v -> Alcotest.failf "expected block list, got %a" Value.pp v);
  (* the iterator name is not misread as a resource reference *)
  let report =
    Cloudless_validate.Validate.validate_source
      ~level:Cloudless_validate.Validate.L_references ~file:"t" src
  in
  check int_ "no phantom references" 0
    (Cloudless_validate.Diagnostic.count_errors
       report.Cloudless_validate.Validate.diagnostics)

let test_dynamic_block_custom_iterator () =
  let src =
    {|
resource "aws_security_group" "sg" {
  name   = "dyn2"
  region = "us-east-1"
  dynamic "egress" {
    for_each = { web = 80, tls = 443 }
    iterator = rule
    content {
      name = rule.key
      port = rule.value
    }
  }
}
|}
  in
  let result = Eval.expand (Config.parse ~file:"t" src) in
  let sg = List.hd result.Eval.instances in
  match Smap.find "egress" sg.Eval.attrs with
  | Value.Vlist [ Value.Vmap a; Value.Vmap b ] ->
      check value "tls first (map order)" (Value.Vstring "tls") (Smap.find "name" a);
      check value "tls port" (Value.Vint 443) (Smap.find "port" a);
      check value "web port" (Value.Vint 80) (Smap.find "port" b)
  | v -> Alcotest.failf "expected two blocks, got %a" Value.pp v

let test_gcp_provider_stack () =
  (* the knowledge base and simulator cover a third provider flavour *)
  let src =
    {|
resource "google_compute_network" "net" {
  name   = "core-net"
  region = "us-central1"
}
resource "google_compute_subnetwork" "sub" {
  name          = "core-sub"
  network       = google_compute_network.net.id
  ip_cidr_range = "10.10.0.0/20"
  region        = "us-central1"
}
resource "google_compute_instance" "vm" {
  name         = "gce-1"
  machine_type = "e2-small"
  zone         = "us-central1-a"
  subnetwork   = google_compute_subnetwork.sub.id
  region       = "us-central1"
}
resource "google_storage_bucket" "b" {
  name     = "artifacts"
  location = "us-central1"
}
|}
  in
  let report =
    Cloudless_validate.Validate.validate_source
      ~level:Cloudless_validate.Validate.L_cloud ~file:"gcp.tf" src
  in
  check int_ "validates clean" 0
    (Cloudless_validate.Diagnostic.count_errors
       report.Cloudless_validate.Validate.diagnostics);
  let cloud =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed:7 ()
  in
  let cfg = Config.parse ~file:"gcp.tf" src in
  let instances = (Eval.expand cfg).Eval.instances in
  let plan = Plan.make ~default_region:"us-central1" ~state:State.empty instances in
  let deploy_report =
    Executor.apply cloud ~config:Executor.cloudless_config ~state:State.empty
      ~plan ()
  in
  check bool_ "deploys" true (Executor.succeeded deploy_report);
  check int_ "4 resources" 4 (Cloud.resource_count cloud);
  (* wrong-type reference across gcp types is caught *)
  let bad =
    Test_fixtures.replace_substring src
      ~sub:"network       = google_compute_network.net.id"
      ~by:"network       = google_storage_bucket.b.id"
  in
  let report =
    Cloudless_validate.Validate.validate_source
      ~level:Cloudless_validate.Validate.L_types ~file:"gcp.tf" bad
  in
  check bool_ "wrong-type gcp ref caught" true
    (Cloudless_validate.Diagnostic.count_errors
       report.Cloudless_validate.Validate.diagnostics
    > 0)

let suites =
  [
    ( "edge.hcl",
      [
        Alcotest.test_case "heredoc in config" `Quick test_heredoc_in_config;
        Alcotest.test_case "splat over count" `Quick test_splat_over_counted_resource;
        Alcotest.test_case "two-level modules" `Quick test_two_level_modules;
        Alcotest.test_case "conditional count" `Quick test_conditional_count;
        Alcotest.test_case "for_each over var map" `Quick test_for_each_over_variable_map;
        Alcotest.test_case "unknown propagation corners" `Quick
          test_arithmetic_on_unknown_stays_unknown;
        Alcotest.test_case "negatives & precedence" `Quick test_negative_numbers_and_precedence;
        Alcotest.test_case "try/can laziness" `Quick test_try_function_in_config;
        Alcotest.test_case "dynamic blocks" `Quick test_dynamic_blocks;
        Alcotest.test_case "dynamic custom iterator" `Quick test_dynamic_block_custom_iterator;
      ] );
    ( "edge.chaos",
      [
        Alcotest.test_case "chaos deploy converges" `Slow test_chaos_deploy_converges;
        Alcotest.test_case "chaos deterministic" `Quick test_chaos_is_deterministic;
      ] );
    ( "edge.policy",
      [ Alcotest.test_case "drift-phase notify" `Quick test_drift_policy_notification ] );
    ( "edge.validate",
      [
        Alcotest.test_case "no false positives" `Quick
          test_no_false_positives_on_valid_corpus;
        Alcotest.test_case "gcp provider" `Quick test_gcp_provider_stack;
      ] );
  ]
