(* End-to-end tests of the Cloudless lifecycle facade (Figure 1(b)):
   develop -> validate -> deploy -> update -> observe -> police ->
   rollback. *)

open Cloudless_hcl
module Lifecycle = Cloudless.Lifecycle
module Executor = Cloudless_deploy.Executor
module State = Cloudless_state.State
module Version_store = Cloudless_state.Version_store
module Cloud = Cloudless_sim.Cloud
module Workload = Cloudless_workload.Workload
module Drift = Cloudless_drift.Drift
module Policy = Cloudless_policy.Policy
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Lifecycle.error_to_string e)

let test_deploy_web_tier () =
  let t = Lifecycle.create () in
  let report = ok (Lifecycle.deploy t (Workload.web_tier ())) in
  check bool_ "succeeded" true (Executor.succeeded report);
  check bool_ "state populated" true (State.size (Lifecycle.state t) > 0);
  check int_ "one version recorded" 1 (Version_store.length (Lifecycle.versions t))

let test_develop_rejects_invalid () =
  let t = Lifecycle.create () in
  match Lifecycle.develop t (Workload.misconfigured Workload.M_region_mismatch) with
  | Error (Lifecycle.Invalid_config ds) ->
      check bool_ "diagnostics returned" true (List.length ds > 0)
  | Error e -> Alcotest.failf "wrong error: %s" (Lifecycle.error_to_string e)
  | Ok _ -> Alcotest.fail "misconfig must be rejected before deployment"

let test_update_with_scoped_refresh () =
  let t = Lifecycle.create () in
  ignore (ok (Lifecycle.deploy t (Workload.web_tier ())));
  let before = State.size (Lifecycle.state t) in
  (* grow the web fleet from 4 to 6 *)
  let src =
    Test_fixtures.replace_substring (Workload.web_tier ())
      ~sub:"count                  = 4" ~by:"count                  = 6"
  in
  let report = ok (Lifecycle.update t src) in
  check bool_ "update ok" true (Executor.succeeded report);
  check int_ "two more resources" (before + 2) (State.size (Lifecycle.state t));
  (* scoped refresh: far fewer reads than the full state *)
  check bool_
    (Printf.sprintf "scoped refresh reads (%d) < state size (%d)"
       report.Executor.refresh_reads before)
    true
    (report.Executor.refresh_reads < before)

let test_data_source_resolution () =
  let t = Lifecycle.create ~default_region:"eu-west-1" () in
  let src =
    {|
data "aws_region" "current" {}
resource "aws_vpc" "v" {
  cidr_block = "10.0.0.0/16"
  region     = data.aws_region.current.name
}
|}
  in
  let report = ok (Lifecycle.deploy t src) in
  check bool_ "ok" true (Executor.succeeded report);
  let r =
    Option.get
      (State.find_opt (Lifecycle.state t) (Addr.make ~rtype:"aws_vpc" ~rname:"v" ()))
  in
  check string_ "region from data source" "eu-west-1" r.State.region

let test_figure2_deploys () =
  (* the paper's own program, end to end *)
  let t = Lifecycle.create () in
  let report = ok (Lifecycle.deploy t Test_fixtures.figure2) in
  check bool_ "figure 2 deploys" true (Executor.succeeded report);
  check int_ "nic + vm" 2 (State.size (Lifecycle.state t))

let test_rollback_via_time_machine () =
  let t = Lifecycle.create () in
  ignore (ok (Lifecycle.deploy t (Workload.web_tier ~with_db:false ~with_lb:false ())));
  let v1 = Option.get (Version_store.head (Lifecycle.versions t)) in
  let size1 = State.size (Lifecycle.state t) in
  (* update: bigger fleet *)
  let src =
    Test_fixtures.replace_substring
      (Workload.web_tier ~with_db:false ~with_lb:false ())
      ~sub:"count                  = 4" ~by:"count                  = 8"
  in
  ignore (ok (Lifecycle.update t src));
  check bool_ "grew" true (State.size (Lifecycle.state t) > size1);
  (* roll back *)
  let report = ok (Lifecycle.rollback_to t ~version_id:v1) in
  check bool_ "rollback ok" true (Executor.succeeded report);
  check int_ "size restored" size1 (State.size (Lifecycle.state t));
  check int_ "cloud matches" size1 (Cloud.resource_count (Lifecycle.cloud t));
  (* config source restored too *)
  check bool_ "config restored" true
    (Test_fixtures.contains_substring ~sub:"count                  = 4"
       (Lifecycle.config_source t))

let test_drift_observe_and_reconcile () =
  let t = Lifecycle.create () in
  ignore (ok (Lifecycle.deploy t (Workload.web_tier ~with_db:false ~with_lb:false ())));
  check int_ "clean at first" 0 (List.length (Lifecycle.check_drift t));
  (* out-of-band change *)
  let addr = Addr.make ~rtype:"aws_instance" ~rname:"web" ~key:(Addr.Kint 0) () in
  let r = Option.get (State.find_opt (Lifecycle.state t) addr) in
  ignore
    (Cloud.mutate_oob (Lifecycle.cloud t) ~script:"legacy" ~cloud_id:r.State.cloud_id
       ~attr:"instance_type" ~value:(Value.Vstring "t3.metal"));
  let events = Lifecycle.check_drift t in
  check int_ "drift observed" 1 (List.length events);
  Lifecycle.reconcile_drift t events;
  let r' = Option.get (State.find_opt (Lifecycle.state t) addr) in
  check bool_ "state reconciled" true
    (Value.equal (Value.Vstring "t3.metal")
       (Smap.find "instance_type" r'.State.attrs))

let test_diagnose_failure () =
  (* develop with validation OFF wouldn't go through develop; instead
     deploy a config whose error only manifests at the cloud: quota *)
  let cloud_config =
    Cloudless_schema.Cloud_rules.config_with_checks
      ~base:{ Cloud.default_config with Cloud.quotas = [ ("aws_eip", 2) ] }
      ()
  in
  let t = Lifecycle.create ~cloud_config () in
  let src = {|
resource "aws_eip" "ip" {
  count  = 5
  region = "us-east-1"
}
|} in
  (match Lifecycle.deploy t src with
  | Error (Lifecycle.Deploy_failed report) ->
      check bool_ "some failed" true (List.length report.Executor.failed > 0);
      let d = Option.get (Lifecycle.diagnose t (List.hd report.Executor.failed)) in
      check bool_ "quota root cause" true
        (Test_fixtures.contains_substring ~sub:"quota"
           d.Cloudless_debug.Debugger.root_cause)
  | Ok _ -> Alcotest.fail "quota must fail"
  | Error e -> Alcotest.failf "wrong error: %s" (Lifecycle.error_to_string e))

let vpn_scaling_policies =
  {|
policy "scale_vpn_tunnels" {
  on   = "telemetry"
  when = obs.vpn_utilization > 0.8

  action "add_tunnel" {
    kind   = "set_count"
    target = "aws_vpn_connection.tunnel"
    value  = obs.tunnel_count + 1
  }
}
|}

let vpn_src count =
  Printf.sprintf
    {|
resource "aws_vpc" "v" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}
resource "aws_vpn_gateway" "gw" {
  vpc_id        = aws_vpc.v.id
  region        = "us-east-1"
  capacity_mbps = 1000
}
resource "aws_vpn_connection" "tunnel" {
  count          = %d
  vpn_gateway_id = aws_vpn_gateway.gw.id
  customer_ip    = "203.0.113.9"
  region         = "us-east-1"
  bandwidth_mbps = 500
}
|}
    count

let test_police_scales_vpn () =
  let t = Lifecycle.create ~policies:vpn_scaling_policies () in
  ignore (ok (Lifecycle.deploy t (vpn_src 2)));
  let tunnels () =
    List.length
      (List.filter
         (fun (r : State.resource_state) -> r.State.rtype = "aws_vpn_connection")
         (State.resources (Lifecycle.state t)))
  in
  check int_ "2 tunnels" 2 (tunnels ());
  (* telemetry tick under load: the paper's "scale out VPN tunnels if
     throughput is close to capacity" *)
  let result =
    ok
      (Lifecycle.police t
         ~extra:
           [
             ("vpn_utilization", Value.Vfloat 0.93);
             ("tunnel_count", Value.Vint (tunnels ()));
           ])
  in
  check bool_ "policy redeployed" true (result.Lifecycle.reapplied <> None);
  check int_ "3 tunnels now" 3 (tunnels ());
  (* calm traffic: no action *)
  let result =
    ok
      (Lifecycle.police t
         ~extra:
           [
             ("vpn_utilization", Value.Vfloat 0.2);
             ("tunnel_count", Value.Vint (tunnels ()));
           ])
  in
  check bool_ "no reapply when calm" true (result.Lifecycle.reapplied = None);
  check int_ "still 3 tunnels" 3 (tunnels ())

let test_budget_policy_denies_apply () =
  let policies =
    {|
policy "budget" {
  on   = "plan"
  when = obs.projected_cost > 0.5

  action "deny" {
    kind    = "deny"
    message = "over budget"
  }
}
|}
  in
  let t = Lifecycle.create ~policies () in
  (* 10 db instances = 1.71/hr > 0.5 *)
  let src = {|
resource "aws_db_instance" "db" {
  count          = 10
  identifier     = "db-${count.index}"
  engine         = "postgres"
  instance_class = "db.m5.large"
  region         = "us-east-1"
}
|} in
  match Lifecycle.deploy t src with
  | Error (Lifecycle.Policy_denied msg) -> check string_ "message" "over budget" msg
  | Ok _ -> Alcotest.fail "should be denied"
  | Error e -> Alcotest.failf "wrong error: %s" (Lifecycle.error_to_string e)

let test_destroy () =
  let t = Lifecycle.create () in
  ignore (ok (Lifecycle.deploy t (Workload.web_tier ())));
  let report = ok (Lifecycle.destroy t) in
  check bool_ "destroy ok" true (Executor.succeeded report);
  check int_ "cloud empty" 0 (Cloud.resource_count (Lifecycle.cloud t));
  check int_ "state empty" 0 (State.size (Lifecycle.state t))

let test_module_workflow () =
  let t = Lifecycle.create () in
  let network_module =
    Config.parse ~file:"network.tf"
      {|
variable "cidr" {}
resource "aws_vpc" "this" {
  cidr_block = var.cidr
  region     = "us-east-1"
}
resource "aws_subnet" "a" {
  vpc_id     = aws_vpc.this.id
  cidr_block = cidrsubnet(var.cidr, 8, 0)
  region     = "us-east-1"
}
output "subnet_id" { value = aws_subnet.a.id }
|}
  in
  Lifecycle.register_modules t [ ("./network", network_module) ];
  let src =
    {|
module "net" {
  source = "./network"
  cidr   = "10.5.0.0/16"
}
resource "aws_instance" "app" {
  ami           = "ami-1"
  instance_type = "t3.small"
  subnet_id     = module.net.subnet_id
  region        = "us-east-1"
}
|}
  in
  let report = ok (Lifecycle.deploy t src) in
  check bool_ "module deploy ok" true (Executor.succeeded report);
  check int_ "3 resources" 3 (State.size (Lifecycle.state t))

let test_observe_and_police () =
  let policies =
    {|
policy "drift_pager" {
  on   = "drift"
  when = obs.drift_events > 0

  action "page" {
    kind    = "notify"
    message = "drift detected: ${obs.drift_events} event(s)"
  }
}
|}
  in
  let t = Lifecycle.create ~policies () in
  ignore (ok (Lifecycle.deploy t (Workload.web_tier ~with_db:false ~with_lb:false ())));
  (* clean tick: no events, no decisions *)
  let events, decisions = Lifecycle.observe_and_police t in
  check int_ "clean events" 0 (List.length events);
  check int_ "clean decisions" 0 (List.length decisions);
  (* drift + tick *)
  let addr = Addr.make ~rtype:"aws_instance" ~rname:"web" ~key:(Addr.Kint 0) () in
  let r = Option.get (State.find_opt (Lifecycle.state t) addr) in
  ignore
    (Cloud.mutate_oob (Lifecycle.cloud t) ~script:"legacy"
       ~cloud_id:r.State.cloud_id ~attr:"instance_type"
       ~value:(Value.Vstring "t3.metal"));
  let events, decisions = Lifecycle.observe_and_police t in
  check int_ "one event" 1 (List.length events);
  check int_ "policy fired" 1 (List.length decisions);
  (* reconciliation happened too *)
  let r' = Option.get (State.find_opt (Lifecycle.state t) addr) in
  check bool_ "reconciled" true
    (Value.equal (Value.Vstring "t3.metal")
       (Smap.find "instance_type" r'.State.attrs))

let test_incremental_equals_full () =
  (* the incremental path must land in the same end state as the full
     path, for the same edit *)
  let src0 = Workload.web_tier () in
  let edited =
    Test_fixtures.replace_substring src0 ~sub:"t3.small" ~by:"t3.large"
  in
  let run_with update_fn =
    let t = Lifecycle.create ~seed:123 () in
    ignore (ok (Lifecycle.deploy t src0));
    ignore (ok (update_fn t edited));
    (* canonical view of the cloud: (rtype, region, settable attrs) multiset *)
    Cloud.all_resources (Lifecycle.cloud t)
    |> List.map (fun (r : Cloud.resource) ->
           ( r.Cloud.rtype,
             r.Cloud.region,
             Smap.bindings r.Cloud.attrs
             |> List.filter (fun (k, _) ->
                    not (List.mem k [ "id"; "arn" ]))
             |> List.map (fun (k, v) ->
                    (k, Value.show v)) ))
    |> List.sort compare
  in
  let full t src =
    (* full: develop + apply without scoping *)
    match Lifecycle.develop t src with
    | Ok _ -> Lifecycle.apply t
    | Error e -> Error e
  in
  let incremental t src = Lifecycle.update t src in
  let a = run_with full and b = run_with incremental in
  check bool_ "same end state" true (a = b)

let suites =
  [
    ( "lifecycle",
      [
        Alcotest.test_case "deploy web tier" `Quick test_deploy_web_tier;
        Alcotest.test_case "develop rejects invalid" `Quick test_develop_rejects_invalid;
        Alcotest.test_case "incremental update" `Quick test_update_with_scoped_refresh;
        Alcotest.test_case "data sources" `Quick test_data_source_resolution;
        Alcotest.test_case "figure 2 deploys" `Quick test_figure2_deploys;
        Alcotest.test_case "rollback (time machine)" `Quick test_rollback_via_time_machine;
        Alcotest.test_case "drift observe+reconcile" `Quick test_drift_observe_and_reconcile;
        Alcotest.test_case "diagnose failure" `Quick test_diagnose_failure;
        Alcotest.test_case "police scales vpn" `Quick test_police_scales_vpn;
        Alcotest.test_case "budget denies" `Quick test_budget_policy_denies_apply;
        Alcotest.test_case "destroy" `Quick test_destroy;
        Alcotest.test_case "modules" `Quick test_module_workflow;
        Alcotest.test_case "observe and police" `Quick test_observe_and_police;
        Alcotest.test_case "incremental = full" `Quick test_incremental_equals_full;
      ] );
  ]
