test/test_hcl.ml: Addr Alcotest Ast Cloudless_hcl Config Eval Ipnet Lexer List Loc Option Parser Printer QCheck QCheck_alcotest Refs Token Value
