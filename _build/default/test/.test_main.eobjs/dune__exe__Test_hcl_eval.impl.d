test/test_hcl_eval.ml: Addr Alcotest Cloudless_hcl Config Eval List Printf QCheck QCheck_alcotest String Test_fixtures Value
