test/test_fixtures.ml: Buffer String
