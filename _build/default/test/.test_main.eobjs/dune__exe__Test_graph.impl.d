test/test_graph.ml: Addr Alcotest Array Cloudless_graph Cloudless_hcl Config Eval List QCheck QCheck_alcotest Test_fixtures
