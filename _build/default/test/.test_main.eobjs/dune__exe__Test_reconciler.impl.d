test/test_reconciler.ml: Addr Alcotest Ast Cloudless_deploy Cloudless_drift Cloudless_hcl Cloudless_plan Cloudless_schema Cloudless_sim Cloudless_state Config Eval List Option Test_fixtures Value
