test/test_deploy.ml: Addr Alcotest Cloudless_deploy Cloudless_graph Cloudless_hcl Cloudless_plan Cloudless_schema Cloudless_sim Cloudless_state Config Eval List Option Printf Test_fixtures Value
