test/test_policy.ml: Addr Alcotest Ast Cloudless_hcl Cloudless_plan Cloudless_policy Cloudless_state Config Eval Fun List Option Printf Test_fixtures Value
