test/test_state.ml: Addr Alcotest Cloudless_hcl Cloudless_state List Option Value
