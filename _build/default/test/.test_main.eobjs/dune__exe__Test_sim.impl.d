test/test_sim.ml: Activity_log Alcotest Cloud Cloudless_hcl Cloudless_sim Event_queue Failure List Option Prng QCheck QCheck_alcotest Rate_limiter String
