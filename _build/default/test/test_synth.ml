(* Tests for §3.1: type-guided synthesis, the hallucinating baseline,
   cloud import, and the refactoring optimizer. *)

open Cloudless_hcl
module Synth = Cloudless_synth
module Validate = Cloudless_validate.Validate
module Diagnostic = Cloudless_validate.Diagnostic
module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Workload = Cloudless_workload.Workload
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let errors cfg =
  let report = Validate.validate_config cfg in
  Diagnostic.count_errors report.Validate.diagnostics

(* ------------------------------------------------------------------ *)
(* Type-guided synthesis                                               *)
(* ------------------------------------------------------------------ *)

let vm_intent =
  {
    Synth.Intent.region = "us-east-1";
    requests =
      [
        Synth.Intent.request ~rtype:"aws_instance" ~name:"web" ~count:2 ();
        (* a NAT gateway *requires* a subnet, which requires a VPC:
           exercises two levels of dependency closure *)
        Synth.Intent.request ~rtype:"aws_nat_gateway" ~name:"nat" ();
        Synth.Intent.request ~rtype:"aws_db_instance" ~name:"db" ();
      ];
  }

let test_synthesis_validates_clean () =
  let cfg = Synth.Intent.synthesize vm_intent in
  check int_ "no validation errors" 0 (errors cfg);
  (* dependencies were closed over: the NAT gateway needs a subnet,
     which needs a vpc *)
  check bool_ "vpc synthesized" true
    (List.exists (fun r -> r.Config.rtype = "aws_vpc") cfg.Config.resources);
  check bool_ "subnet synthesized" true
    (List.exists (fun r -> r.Config.rtype = "aws_subnet") cfg.Config.resources)

let test_synthesis_source_parses () =
  let src = Synth.Intent.synthesize_source vm_intent in
  let cfg = Config.parse ~file:"synth.tf" src in
  check bool_ "round-trips" true (List.length cfg.Config.resources >= 3)

let test_synthesis_deploys () =
  let cfg = Synth.Intent.synthesize vm_intent in
  let cloud =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed:11 ()
  in
  let instances = (Eval.expand cfg).Eval.instances in
  let plan = Plan.make ~state:State.empty instances in
  let report =
    Executor.apply cloud ~config:Executor.cloudless_config ~state:State.empty
      ~plan ()
  in
  check bool_ "synthesized config deploys" true (Executor.succeeded report)

let test_synthesis_overrides () =
  let intent =
    {
      Synth.Intent.region = "eu-west-1";
      requests =
        [
          Synth.Intent.request ~rtype:"aws_s3_bucket" ~name:"logs"
            ~overrides:[ ("bucket", Ast.string_lit "my-logs") ]
            ();
        ];
    }
  in
  let cfg = Synth.Intent.synthesize intent in
  let b = Option.get (Config.find_resource cfg "aws_s3_bucket" "logs") in
  match Ast.attr b.Config.rbody "bucket" with
  | Some { Ast.desc = Ast.Template [ Ast.Lit "my-logs" ]; _ } -> ()
  | _ -> Alcotest.fail "override not honoured"

(* ------------------------------------------------------------------ *)
(* Hallucinating baseline (E9 machinery)                               *)
(* ------------------------------------------------------------------ *)

let test_hallucinator_injects_errors () =
  (* across many seeds, the corrupted configs must fail validation far
     more often than the type-guided ones (which never do) *)
  let invalid = ref 0 in
  let n = 30 in
  for seed = 1 to n do
    let cfg = Synth.Hallucinator.generate ~seed vm_intent in
    if errors cfg > 0 then incr invalid
  done;
  check bool_
    (Printf.sprintf "a majority of hallucinated configs invalid (%d/%d)" !invalid n)
    true
    (!invalid > n / 2);
  (* and the reliable synthesizer never produces an invalid one *)
  let reliable_invalid = ref 0 in
  for _ = 1 to 5 do
    if errors (Synth.Intent.synthesize vm_intent) > 0 then incr reliable_invalid
  done;
  check int_ "type-guided always valid" 0 !reliable_invalid

let test_hallucinator_deterministic () =
  let a = Synth.Hallucinator.generate ~seed:7 vm_intent in
  let b = Synth.Hallucinator.generate ~seed:7 vm_intent in
  check bool_ "same seed, same output" true
    (Config.to_string a = Config.to_string b)

(* ------------------------------------------------------------------ *)
(* Import + refactor (E7 machinery)                                    *)
(* ------------------------------------------------------------------ *)

(* Deploy a fleet with repetitive structure, then import it back. *)
let deployed_fleet () =
  let cloud =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed:21 ()
  in
  let src =
    {|
resource "aws_vpc" "main" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
  name       = "fleet"
}
resource "aws_subnet" "s" {
  count      = 4
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet("10.0.0.0/16", 8, count.index)
  region     = "us-east-1"
}
resource "aws_instance" "w" {
  count         = 4
  ami           = "ami-fleet"
  instance_type = "t3.small"
  subnet_id     = aws_subnet.s[count.index].id
  region        = "us-east-1"
  name          = "worker-${count.index}"
}
|}
  in
  let cfg = Config.parse ~file:"t" src in
  let instances = (Eval.expand cfg).Eval.instances in
  let plan = Plan.make ~state:State.empty instances in
  let report =
    Executor.apply cloud ~config:Executor.cloudless_config ~state:State.empty
      ~plan ()
  in
  assert (Executor.succeeded report);
  cloud

let test_import_naive () =
  let cloud = deployed_fleet () in
  let cfg = Synth.Importer.import cloud () in
  (* 1 vpc + 4 subnets + 4 instances *)
  check int_ "one block per resource" 9 (List.length cfg.Config.resources);
  (* naive port contains computed noise and zero references *)
  let m = Synth.Quality.measure cfg in
  check bool_ "computed noise present" true (m.Synth.Quality.literal_noise > 0);
  check (Alcotest.float 0.001) "no references" 0. m.Synth.Quality.reference_ratio

let test_refactor_recovers_structure () =
  let cloud = deployed_fleet () in
  let naive = Synth.Importer.import cloud () in
  let result = Synth.Refactor.optimize ~modules:false naive in
  let opt = result.Synth.Refactor.optimized in
  let m_naive = Synth.Quality.measure naive in
  let m_opt = Synth.Quality.measure opt in
  (* compaction: 9 resources in at most 4 blocks (vpc + subnet group +
     instance group [+ stragglers]) *)
  check bool_
    (Printf.sprintf "fewer blocks (%d < %d)" m_opt.Synth.Quality.blocks
       m_naive.Synth.Quality.blocks)
    true
    (m_opt.Synth.Quality.blocks < m_naive.Synth.Quality.blocks);
  check bool_ "noise eliminated" true (m_opt.Synth.Quality.literal_noise = 0);
  check bool_ "references recovered" true
    (m_opt.Synth.Quality.reference_ratio > 0.9);
  check bool_ "count blocks exist" true
    (List.exists (fun r -> r.Config.rcount <> None) opt.Config.resources);
  check bool_ "shorter program" true
    (m_opt.Synth.Quality.loc < m_naive.Synth.Quality.loc)

let test_refactor_output_is_equivalent () =
  (* the optimized program must expand to the same desired resources *)
  let cloud = deployed_fleet () in
  let naive = Synth.Importer.import cloud () in
  let result = Synth.Refactor.optimize ~modules:false naive in
  let opt = result.Synth.Refactor.optimized in
  (* both must re-parse and expand *)
  let reparse cfg = Config.parse ~file:"r" (Config.to_string cfg) in
  let naive_instances = (Eval.expand (reparse naive)).Eval.instances in
  let opt_instances = (Eval.expand (reparse opt)).Eval.instances in
  check int_ "same instance count" (List.length naive_instances)
    (List.length opt_instances);
  (* compare the multiset of (rtype, settable attr values) ignoring
     names/addresses, computed attrs, and reference-vs-literal form *)
  let fingerprint instances =
    List.map
      (fun (i : Eval.instance) ->
        let interesting =
          Smap.filter
            (fun k v ->
              (not (List.mem k [ "id"; "arn" ]))
              && (match v with Value.Vunknown _ -> false | _ -> true)
              &&
              match v with
              | Value.Vstring s ->
                  not (Synth.Quality.looks_like_cloud_id s)
              | Value.Vlist _ -> false
              | _ -> true)
            i.Eval.attrs
        in
        (i.Eval.addr.Addr.rtype,
         List.map (fun (k, v) -> (k, Value.show v)) (Smap.bindings interesting)))
      instances
    |> List.sort compare
  in
  check bool_ "same desired attributes" true
    (fingerprint naive_instances = fingerprint opt_instances)

let test_refactor_for_each_fallback () =
  (* same-shape buckets with patternless names: for_each, not count *)
  let src =
    {|
resource "aws_s3_bucket" "a" {
  bucket = "alpha-logs"
  region = "us-east-1"
}
resource "aws_s3_bucket" "b" {
  bucket = "prod-data"
  region = "us-east-1"
}
resource "aws_s3_bucket" "c" {
  bucket = "ml-models"
  region = "us-east-1"
}
|}
  in
  let cfg = Config.parse ~file:"t" src in
  let result = Synth.Refactor.optimize ~modules:false cfg in
  let opt = result.Synth.Refactor.optimized in
  check int_ "one block" 1 (List.length opt.Config.resources);
  check bool_ "for_each used" true
    ((List.hd opt.Config.resources).Config.rfor_each <> None);
  (* and it expands back to 3 buckets *)
  let instances = (Eval.expand (Config.parse ~file:"r" (Config.to_string opt))).Eval.instances in
  check int_ "3 instances" 3 (List.length instances)

let test_refactor_module_extraction () =
  (* two identical app stamps: vpc+subnet pairs *)
  let src =
    {|
resource "aws_vpc" "app1" {
  cidr_block = "10.1.0.0/16"
  region     = "us-east-1"
}
resource "aws_subnet" "app1" {
  vpc_id     = aws_vpc.app1.id
  cidr_block = "10.1.1.0/24"
  region     = "us-east-1"
}
resource "aws_vpc" "app2" {
  cidr_block = "10.2.0.0/16"
  region     = "us-east-1"
}
resource "aws_subnet" "app2" {
  vpc_id     = aws_vpc.app2.id
  cidr_block = "10.2.1.0/24"
  region     = "us-east-1"
}
|}
  in
  let cfg = Config.parse ~file:"t" src in
  let optimized, lib = Synth.Refactor.extract_modules cfg in
  check int_ "one module extracted" 1 (List.length lib);
  check int_ "two module calls" 2 (List.length optimized.Config.modules);
  check int_ "no leftover resources" 0 (List.length optimized.Config.resources);
  (* the modularized config expands to the same 4 resources *)
  let env =
    {
      Eval.default_env with
      Eval.module_registry = (fun src -> List.assoc_opt src lib);
    }
  in
  let instances = (Eval.expand ~env optimized).Eval.instances in
  check int_ "4 instances" 4 (List.length instances)

let test_refactor_import_deploys_identically () =
  (* port a live deployment, optimize, redeploy to a fresh cloud: the
     new cloud ends up with the same resource multiset *)
  let cloud = deployed_fleet () in
  let naive = Synth.Importer.import cloud () in
  let result = Synth.Refactor.optimize ~modules:false naive in
  let opt = Config.parse ~file:"r" (Config.to_string result.Synth.Refactor.optimized) in
  let fresh =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed:99 ()
  in
  let instances = (Eval.expand opt).Eval.instances in
  let plan = Plan.make ~state:State.empty instances in
  let report =
    Executor.apply fresh ~config:Executor.cloudless_config ~state:State.empty
      ~plan ()
  in
  check bool_ "optimized port deploys" true (Executor.succeeded report);
  check int_ "same resource count" (Cloud.resource_count cloud)
    (Cloud.resource_count fresh)

let test_module_call_compaction () =
  (* two identical stamps -> one module + one for_each'd call *)
  let src =
    {|
resource "aws_vpc" "app1" {
  cidr_block = "10.1.0.0/16"
  region     = "us-east-1"
}
resource "aws_subnet" "app1" {
  vpc_id     = aws_vpc.app1.id
  cidr_block = "10.1.1.0/24"
  region     = "us-east-1"
}
resource "aws_vpc" "app2" {
  cidr_block = "10.2.0.0/16"
  region     = "us-east-1"
}
resource "aws_subnet" "app2" {
  vpc_id     = aws_vpc.app2.id
  cidr_block = "10.2.1.0/24"
  region     = "us-east-1"
}
|}
  in
  let cfg = Config.parse ~file:"t" src in
  let modularized, lib = Synth.Refactor.extract_modules cfg in
  let compact = Synth.Refactor.compact_module_calls modularized in
  check int_ "one for_each module call" 1 (List.length compact.Config.modules);
  let m = List.hd compact.Config.modules in
  check bool_ "for_each present" true (m.Config.mfor_each <> None);
  (* the compacted form still expands to the same 4 resources *)
  let env =
    {
      Eval.default_env with
      Eval.module_registry = (fun s -> List.assoc_opt s lib);
    }
  in
  let instances = (Eval.expand ~env compact).Eval.instances in
  check int_ "still 4 instances" 4 (List.length instances);
  (* and the printed form re-parses *)
  let printed = Config.to_string compact in
  let reparsed = Config.parse ~file:"r" printed in
  check int_ "round-trips" 1 (List.length reparsed.Config.modules)

let suites =
  [
    ( "synth.intent",
      [
        Alcotest.test_case "validates clean" `Quick test_synthesis_validates_clean;
        Alcotest.test_case "source parses" `Quick test_synthesis_source_parses;
        Alcotest.test_case "deploys" `Quick test_synthesis_deploys;
        Alcotest.test_case "overrides" `Quick test_synthesis_overrides;
      ] );
    ( "synth.hallucinator",
      [
        Alcotest.test_case "injects errors" `Quick test_hallucinator_injects_errors;
        Alcotest.test_case "deterministic" `Quick test_hallucinator_deterministic;
      ] );
    ( "synth.refactor",
      [
        Alcotest.test_case "naive import" `Quick test_import_naive;
        Alcotest.test_case "recovers structure" `Quick test_refactor_recovers_structure;
        Alcotest.test_case "semantics preserved" `Quick test_refactor_output_is_equivalent;
        Alcotest.test_case "for_each fallback" `Quick test_refactor_for_each_fallback;
        Alcotest.test_case "module extraction" `Quick test_refactor_module_extraction;
        Alcotest.test_case "module call compaction" `Quick test_module_call_compaction;
        Alcotest.test_case "port redeploys" `Quick test_refactor_import_deploys_identically;
      ] );
  ]
