(* Tests for §3.4: lock manager, transactions, concurrent teams,
   rollback planning. *)

open Cloudless_hcl
module Lock_manager = Cloudless_lock.Lock_manager
module Txn = Cloudless_lock.Txn
module Team_sim = Cloudless_lock.Team_sim
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Rollback = Cloudless_rollback.Rollback
module Cloud = Cloudless_sim.Cloud
module Executor = Cloudless_deploy.Executor
module Smap = Value.Smap

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let addr name = Addr.make ~rtype:"aws_instance" ~rname:name ()

(* ------------------------------------------------------------------ *)
(* Lock manager                                                        *)
(* ------------------------------------------------------------------ *)

let test_lock_disjoint_parallel () =
  let lm = Lock_manager.create Lock_manager.Per_resource in
  let granted = ref [] in
  Lock_manager.acquire lm ~owner:"t1" ~keys:[ addr "a" ] (fun () ->
      granted := "t1" :: !granted);
  Lock_manager.acquire lm ~owner:"t2" ~keys:[ addr "b" ] (fun () ->
      granted := "t2" :: !granted);
  check int_ "both granted immediately" 2 (List.length !granted)

let test_lock_conflict_queues () =
  let lm = Lock_manager.create Lock_manager.Per_resource in
  let granted = ref [] in
  Lock_manager.acquire lm ~owner:"t1" ~keys:[ addr "a" ] (fun () ->
      granted := "t1" :: !granted);
  Lock_manager.acquire lm ~owner:"t2" ~keys:[ addr "a" ] (fun () ->
      granted := "t2" :: !granted);
  check int_ "second waits" 1 (List.length !granted);
  check int_ "queued" 1 (Lock_manager.queue_length lm);
  Lock_manager.release lm ~owner:"t1";
  check int_ "second granted after release" 2 (List.length !granted)

let test_lock_global_serializes () =
  let lm = Lock_manager.create Lock_manager.Global in
  let granted = ref [] in
  Lock_manager.acquire lm ~owner:"t1" ~keys:[ addr "a" ] (fun () ->
      granted := "t1" :: !granted);
  (* disjoint keys still conflict under the global lock *)
  Lock_manager.acquire lm ~owner:"t2" ~keys:[ addr "b" ] (fun () ->
      granted := "t2" :: !granted);
  check int_ "global blocks disjoint" 1 (List.length !granted);
  Lock_manager.release lm ~owner:"t1";
  check int_ "granted after release" 2 (List.length !granted)

let test_lock_no_holb_for_disjoint_waiters () =
  let lm = Lock_manager.create Lock_manager.Per_resource in
  let order = ref [] in
  Lock_manager.acquire lm ~owner:"t1" ~keys:[ addr "a" ] (fun () ->
      order := "t1" :: !order);
  Lock_manager.acquire lm ~owner:"t2" ~keys:[ addr "a" ] (fun () ->
      order := "t2" :: !order);
  (* t3 wants an unrelated key; it must not wait behind t2 *)
  Lock_manager.acquire lm ~owner:"t3" ~keys:[ addr "c" ] (fun () ->
      order := "t3" :: !order);
  check bool_ "t3 not blocked" true (List.mem "t3" !order);
  check bool_ "t2 still blocked" true (not (List.mem "t2" !order))

let test_lock_multi_key_atomic () =
  let lm = Lock_manager.create Lock_manager.Per_resource in
  let granted = ref [] in
  Lock_manager.acquire lm ~owner:"t1" ~keys:[ addr "a"; addr "b" ] (fun () ->
      granted := "t1" :: !granted);
  (* t2 needs b+c: blocked on b *)
  Lock_manager.acquire lm ~owner:"t2" ~keys:[ addr "b"; addr "c" ] (fun () ->
      granted := "t2" :: !granted);
  check int_ "t2 blocked" 1 (List.length !granted);
  (* c must NOT be held by the blocked t2 *)
  check bool_ "c free while waiting" true
    (not (List.mem_assoc (addr "c") (Lock_manager.holders lm)));
  Lock_manager.release lm ~owner:"t1";
  check int_ "t2 granted" 2 (List.length !granted)

let test_try_acquire () =
  let lm = Lock_manager.create Lock_manager.Per_resource in
  check bool_ "free" true (Lock_manager.try_acquire lm ~owner:"t1" ~keys:[ addr "a" ]);
  check bool_ "taken" false (Lock_manager.try_acquire lm ~owner:"t2" ~keys:[ addr "a" ]);
  (* reentrant for the same owner *)
  check bool_ "reentrant" true (Lock_manager.try_acquire lm ~owner:"t1" ~keys:[ addr "a" ])

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

let seeded_state n =
  List.fold_left
    (fun s i ->
      State.add s
        {
          State.addr = addr (Printf.sprintf "r%d" i);
          cloud_id = Printf.sprintf "i-%06d" i;
          rtype = "aws_instance";
          region = "us-east-1";
          attrs = Smap.singleton "v" (Value.Vint 0);
          deps = [];
        })
    State.empty
    (List.init n Fun.id)

let test_txn_commit () =
  let store = Txn.create_store (seeded_state 3) in
  let txn = Txn.begin_txn store ~owner:"t1" in
  Txn.stage txn (Txn.Set_attr (addr "r0", "v", Value.Vint 42));
  Txn.commit_locked store txn;
  let r = Option.get (State.find_opt store.Txn.golden (addr "r0")) in
  check bool_ "committed" true (Value.equal (Value.Vint 42) (Smap.find "v" r.State.attrs))

let test_txn_optimistic_conflict () =
  let store = Txn.create_store (seeded_state 3) in
  let t1 = Txn.begin_txn store ~owner:"t1" in
  let t2 = Txn.begin_txn store ~owner:"t2" in
  Txn.stage t1 (Txn.Set_attr (addr "r0", "v", Value.Vint 1));
  Txn.stage t2 (Txn.Set_attr (addr "r1", "v", Value.Vint 2));
  (match Txn.commit_optimistic store t1 with
  | Ok () -> ()
  | Error `Conflict -> Alcotest.fail "first commit should succeed");
  match Txn.commit_optimistic store t2 with
  | Error `Conflict -> check int_ "abort recorded" 1 store.Txn.aborts
  | Ok () -> Alcotest.fail "second commit should conflict"

let test_txn_write_set () =
  let store = Txn.create_store (seeded_state 2) in
  let t = Txn.begin_txn store ~owner:"t" in
  Txn.stage t (Txn.Set_attr (addr "r0", "a", Value.Vint 1));
  Txn.stage t (Txn.Set_attr (addr "r0", "b", Value.Vint 2));
  Txn.stage t (Txn.Remove_resource (addr "r1"));
  check int_ "deduplicated write set" 2 (List.length (Txn.write_set t))

(* ------------------------------------------------------------------ *)
(* Concurrent teams (E3 machinery)                                     *)
(* ------------------------------------------------------------------ *)

(* deploy n instances to a cloud and return (cloud, state) *)
let deployed_cloud n =
  let cloud = Cloud.create ~seed:5 () in
  let state = ref State.empty in
  List.iter
    (fun i ->
      let name = Printf.sprintf "r%d" i in
      match
        Cloud.run_sync cloud
          ~actor:(Cloudless_sim.Activity_log.Iac_engine "setup")
          (Cloud.Create
             {
               rtype = "aws_instance";
               region = "us-east-1";
               attrs = Smap.singleton "name" (Value.Vstring name);
             })
      with
      | Ok attrs ->
          let cloud_id = Value.to_string (Smap.find "id" attrs) in
          state :=
            State.add !state
              {
                State.addr = addr name;
                cloud_id;
                rtype = "aws_instance";
                region = "us-east-1";
                attrs;
                deps = [];
              }
      | Error e -> Alcotest.failf "setup: %s" (Cloud.error_to_string e))
    (List.init n Fun.id);
  (cloud, !state)

let team_queues ~teams ~updates_per_team ~shared =
  List.init teams (fun t ->
      List.init updates_per_team (fun u ->
          let target =
            if shared then addr "r0"  (* everyone hits the same resource *)
            else addr (Printf.sprintf "r%d" t)
          in
          {
            Team_sim.team = Printf.sprintf "team-%d" t;
            addrs = [ target ];
            tag = Printf.sprintf "t%d-u%d" t u;
          }))

let test_teams_per_resource_faster_when_disjoint () =
  let run granularity =
    let cloud, state = deployed_cloud 4 in
    let store = Txn.create_store state in
    Team_sim.run cloud ~store ~granularity
      (team_queues ~teams:4 ~updates_per_team:3 ~shared:false)
  in
  let global = run Lock_manager.Global in
  let fine = run Lock_manager.Per_resource in
  check int_ "all updates done (global)" 12 global.Team_sim.updates_done;
  check int_ "all updates done (fine)" 12 fine.Team_sim.updates_done;
  check bool_
    (Printf.sprintf "fine (%.0fs) < global (%.0fs)" fine.Team_sim.makespan
       global.Team_sim.makespan)
    true
    (fine.Team_sim.makespan < global.Team_sim.makespan);
  check int_ "no lock waits when disjoint" 0 fine.Team_sim.lock_waits;
  check bool_ "global causes waits" true (global.Team_sim.lock_waits > 0)

let test_teams_shared_resource_serializes_anyway () =
  let cloud, state = deployed_cloud 4 in
  let store = Txn.create_store state in
  let result =
    Team_sim.run cloud ~store ~granularity:Lock_manager.Per_resource
      (team_queues ~teams:3 ~updates_per_team:2 ~shared:true)
  in
  check int_ "all done" 6 result.Team_sim.updates_done;
  check bool_ "conflicting updates wait" true (result.Team_sim.lock_waits > 0);
  check bool_ "conflicts detected" true (result.Team_sim.conflicts_detected > 0)

(* ------------------------------------------------------------------ *)
(* Rollback                                                            *)
(* ------------------------------------------------------------------ *)

let web_tier_state cloud =
  (* deploy the standard web tier through the executor *)
  let src = Cloudless_workload.Workload.web_tier ~with_lb:false ~with_db:false () in
  let cfg = Config.parse ~file:"t" src in
  let instances = (Eval.expand cfg).Eval.instances in
  let plan = Plan.make ~state:State.empty instances in
  let report =
    Executor.apply cloud ~config:Executor.baseline_config ~state:State.empty
      ~plan ()
  in
  check bool_ "setup ok" true (Executor.succeeded report);
  report.Executor.state

let live_of cloud state addr_ =
  match State.find_opt state addr_ with
  | Some (r : State.resource_state) ->
      Option.map
        (fun (res : Cloud.resource) -> res.Cloud.attrs)
        (Cloud.lookup cloud r.State.cloud_id)
  | None -> None

let test_rollback_reversible_update () =
  let cloud = Cloud.create ~seed:9 () in
  let target = web_tier_state cloud in
  (* someone changes instance_type (a reversible attribute) *)
  let current =
    let a = Addr.make ~rtype:"aws_instance" ~rname:"web" ~key:(Addr.Kint 0) () in
    let r = Option.get (State.find_opt target a) in
    ignore
      (Cloud.run_sync cloud
         ~actor:(Cloudless_sim.Activity_log.Iac_engine "change")
         (Cloud.Update
            {
              cloud_id = r.State.cloud_id;
              attrs = Smap.singleton "instance_type" (Value.Vstring "t3.xlarge");
            }));
    State.update_attrs target a
      (Smap.add "instance_type" (Value.Vstring "t3.xlarge") r.State.attrs)
  in
  let rb =
    Rollback.plan_rollback ~strategy:Rollback.Reversibility_aware ~target
      ~current
      ~live:(fun a -> live_of cloud current a)
      ()
  in
  check int_ "one update" 1 (List.length rb.Rollback.updated);
  check int_ "nothing redeployed" 0 (List.length rb.Rollback.redeployed);
  (* execute it and verify the cloud converges back *)
  let report =
    Executor.apply cloud ~config:Executor.cloudless_config ~state:current
      ~plan:rb.Rollback.plan ()
  in
  check bool_ "rollback applies" true (Executor.succeeded report);
  let residual =
    Rollback.residual_divergence ~target
      ~live:(fun a -> live_of cloud report.Executor.state a)
  in
  check int_ "no residual divergence" 0 (List.length residual)

let test_rollback_force_new_redeploys () =
  let cloud = Cloud.create ~seed:9 () in
  let target = web_tier_state cloud in
  let a = Addr.make ~rtype:"aws_vpc" ~rname:"main" () in
  let r = Option.get (State.find_opt target a) in
  let current =
    State.update_attrs target a
      (Smap.add "cidr_block" (Value.Vstring "10.99.0.0/16") r.State.attrs)
  in
  (* reflect in cloud *)
  ignore
    (Cloud.run_sync cloud
       ~actor:(Cloudless_sim.Activity_log.Iac_engine "change")
       (Cloud.Update
          {
            cloud_id = r.State.cloud_id;
            attrs = Smap.singleton "cidr_block" (Value.Vstring "10.99.0.0/16");
          }));
  let rb =
    Rollback.plan_rollback ~strategy:Rollback.Reversibility_aware ~target
      ~current
      ~live:(fun a -> live_of cloud current a)
      ()
  in
  check bool_ "vpc redeployed (cidr is force_new)" true
    (List.exists (Addr.equal a) rb.Rollback.redeployed)

let test_rollback_naive_misses_oob () =
  let cloud = Cloud.create ~seed:9 () in
  let target = web_tier_state cloud in
  (* an out-of-band change the state file never saw *)
  let a = Addr.make ~rtype:"aws_instance" ~rname:"web" ~key:(Addr.Kint 1) () in
  let r = Option.get (State.find_opt target a) in
  (match
     Cloud.mutate_oob cloud ~script:"legacy.sh" ~cloud_id:r.State.cloud_id
       ~attr:"instance_type" ~value:(Value.Vstring "t3.metal")
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "oob mutation failed");
  let current = target in
  (* naive reapply sees no delta at all *)
  let naive =
    Rollback.plan_rollback ~strategy:Rollback.Naive_reapply ~target ~current
      ~live:(fun a -> live_of cloud current a)
      ()
  in
  check bool_ "naive misses the oob divergence" true
    (List.exists (Addr.equal a) naive.Rollback.missed_divergences);
  check bool_ "naive plan is empty" true (Plan.is_empty naive.Rollback.plan);
  (* reversibility-aware consults the live cloud and fixes it *)
  let aware =
    Rollback.plan_rollback ~strategy:Rollback.Reversibility_aware ~target
      ~current
      ~live:(fun a -> live_of cloud current a)
      ()
  in
  check bool_ "aware plan not empty" true (not (Plan.is_empty aware.Rollback.plan));
  let report =
    Executor.apply cloud ~config:Executor.cloudless_config ~state:current
      ~plan:aware.Rollback.plan ()
  in
  check bool_ "applies" true (Executor.succeeded report);
  check int_ "zero residual" 0
    (List.length
       (Rollback.residual_divergence ~target
          ~live:(fun a -> live_of cloud report.Executor.state a)))

let test_rollback_deletes_added_resources () =
  let cloud = Cloud.create ~seed:9 () in
  let target = web_tier_state cloud in
  (* add an extra resource after the checkpoint *)
  let extra_id =
    Cloud.create_oob cloud ~script:"iac" ~rtype:"aws_eip" ~region:"us-east-1"
      ~attrs:Smap.empty
  in
  let current =
    State.add target
      {
        State.addr = Addr.make ~rtype:"aws_eip" ~rname:"extra" ();
        cloud_id = extra_id;
        rtype = "aws_eip";
        region = "us-east-1";
        attrs = Smap.empty;
        deps = [];
      }
  in
  let rb =
    Rollback.plan_rollback ~strategy:Rollback.Reversibility_aware ~target
      ~current
      ~live:(fun a -> live_of cloud current a)
      ()
  in
  check int_ "one delete planned" 1 (Plan.summarize rb.Rollback.plan).Plan.to_delete

let suites =
  [
    ( "lock.manager",
      [
        Alcotest.test_case "disjoint parallel" `Quick test_lock_disjoint_parallel;
        Alcotest.test_case "conflict queues" `Quick test_lock_conflict_queues;
        Alcotest.test_case "global serializes" `Quick test_lock_global_serializes;
        Alcotest.test_case "no HOL blocking" `Quick test_lock_no_holb_for_disjoint_waiters;
        Alcotest.test_case "multi-key atomic" `Quick test_lock_multi_key_atomic;
        Alcotest.test_case "try_acquire" `Quick test_try_acquire;
      ] );
    ( "lock.txn",
      [
        Alcotest.test_case "commit" `Quick test_txn_commit;
        Alcotest.test_case "optimistic conflict" `Quick test_txn_optimistic_conflict;
        Alcotest.test_case "write set" `Quick test_txn_write_set;
      ] );
    ( "lock.teams",
      [
        Alcotest.test_case "per-resource beats global" `Quick
          test_teams_per_resource_faster_when_disjoint;
        Alcotest.test_case "shared serializes" `Quick
          test_teams_shared_resource_serializes_anyway;
      ] );
    ( "rollback",
      [
        Alcotest.test_case "reversible update" `Quick test_rollback_reversible_update;
        Alcotest.test_case "force_new redeploys" `Quick test_rollback_force_new_redeploys;
        Alcotest.test_case "naive misses oob" `Quick test_rollback_naive_misses_oob;
        Alcotest.test_case "deletes additions" `Quick test_rollback_deletes_added_resources;
      ] );
  ]
