(* The cloudless command-line tool.

   Operates on real .tf files with the simulated cloud behind `apply`
   (state persists across runs in an HCL-format state file, so
   plan/apply/destroy workflows behave like the real thing):

     cloudless fmt main.tf
     cloudless validate main.tf [--level cloud]
     cloudless graph main.tf > deps.dot
     cloudless plan main.tf --state state.cls
     cloudless apply main.tf --state state.cls [--engine cloudless]
     cloudless destroy --state state.cls
     cloudless policy-check main.tf --policies policies.hcl
     cloudless example web-tier     # emit a generated workload *)

open Cmdliner

module Hcl = Cloudless_hcl
module Validate = Cloudless_validate.Validate
module Diagnostic = Cloudless_validate.Diagnostic
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Executor = Cloudless_deploy.Executor
module Cloud = Cloudless_sim.Cloud
module Dag = Cloudless_graph.Dag

(* ------------------------------------------------------------------ *)
(* IO helpers                                                          *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let load_state path =
  if Sys.file_exists path then State.of_string (read_file path)
  else State.empty

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

(* The simulated cloud backing `apply` is reconstructed from the state
   file on every run: each tracked resource is materialized with its
   recorded cloud id's attributes, so plans and refreshes behave
   consistently across invocations. *)
let cloud_from_state state ~seed =
  let cloud =
    Cloud.create ~config:(Cloudless_schema.Cloud_rules.config_with_checks ())
      ~seed ()
  in
  (* phase 1: recreate every resource, collecting old-id -> new-id *)
  let id_map = Hashtbl.create 16 in
  let created =
    List.map
      (fun (r : State.resource_state) ->
        let cloud_id =
          Cloud.create_oob cloud ~script:"state-restore" ~rtype:r.State.rtype
            ~region:r.State.region ~attrs:r.State.attrs
        in
        Hashtbl.replace id_map r.State.cloud_id cloud_id;
        (r, cloud_id))
      (State.resources state)
  in
  (* phase 2: cross-resource references in attributes point at the old
     ids; remap them so the restored cloud is internally consistent *)
  let rec remap (v : Hcl.Value.t) : Hcl.Value.t =
    match v with
    | Hcl.Value.Vstring s -> (
        match Hashtbl.find_opt id_map s with
        | Some fresh -> Hcl.Value.Vstring fresh
        | None -> v)
    | Hcl.Value.Vlist vs -> Hcl.Value.Vlist (List.map remap vs)
    | Hcl.Value.Vmap m -> Hcl.Value.Vmap (Hcl.Value.Smap.map remap m)
    | v -> v
  in
  let remapped =
    List.fold_left
      (fun acc ((r : State.resource_state), cloud_id) ->
        let attrs = Hcl.Value.Smap.map remap r.State.attrs in
        Cloud.restore_attrs cloud ~cloud_id ~attrs;
        let attrs =
          match Cloud.lookup cloud cloud_id with
          | Some live -> live.Cloud.attrs
          | None -> attrs
        in
        State.add acc { r with State.cloud_id; attrs })
      State.empty created
  in
  (cloud, remapped)

let data_resolver ~rtype ~name:_ ~args:_ =
  match rtype with
  | "aws_region" ->
      Some (Hcl.Value.Smap.singleton "name" (Hcl.Value.Vstring "us-east-1"))
  | _ -> None

let env_for state =
  {
    Hcl.Eval.default_env with
    Hcl.Eval.data_resolver;
    state_lookup = (fun addr -> State.lookup state addr);
  }

(* A FILE argument may be a single .tf file or a directory, in which
   case every *.tf file in it is parsed and merged (Terraform's
   directory-as-module model). *)
let parse_config path =
  let parse_one file =
    match Hcl.Config.parse ~file (read_file file) with
    | cfg -> cfg
    | exception Hcl.Lexer.Error (msg, span) ->
        die "%s: lex error: %s" (Hcl.Loc.to_string span) msg
    | exception Hcl.Parser.Error (msg, span) ->
        die "%s: parse error: %s" (Hcl.Loc.to_string span) msg
    | exception Hcl.Config.Config_error (msg, span) ->
        die "%s: config error: %s" (Hcl.Loc.to_string span) msg
  in
  if Sys.is_directory path then begin
    let files =
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".tf")
      |> List.sort String.compare
      |> List.map (Filename.concat path)
    in
    if files = [] then die "%s: no .tf files found" path;
    match Hcl.Config.merge (List.map parse_one files) with
    | cfg -> cfg
    | exception Hcl.Config.Config_error (msg, span) ->
        die "%s: config error: %s" (Hcl.Loc.to_string span) msg
  end
  else parse_one path

let expand_or_die state cfg =
  match Hcl.Eval.expand ~env:(env_for state) cfg with
  | r -> r.Hcl.Eval.instances
  | exception Hcl.Eval.Eval_error (msg, span) ->
      die "%s: evaluation error: %s" (Hcl.Loc.to_string span) msg

(* ------------------------------------------------------------------ *)
(* Common args                                                         *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"IaC source file or directory of .tf files")

let state_arg =
  Arg.(
    value
    & opt string "cloudless.state"
    & info [ "state" ] ~docv:"PATH" ~doc:"State file (created on first apply)")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed")

let engine_arg =
  let engines = [ ("baseline", `Baseline); ("cloudless", `Cloudless) ] in
  Arg.(
    value
    & opt (enum engines) `Cloudless
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Deployment engine: $(b,baseline) (Terraform-like) or $(b,cloudless)")

let engine_config = function
  | `Baseline -> Executor.baseline_config
  | `Cloudless ->
      { Executor.cloudless_config with Executor.refresh = Executor.Refresh_full }

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let fmt_cmd =
  let run file in_place =
    let cfg = parse_config file in
    let formatted = Hcl.Config.to_string cfg in
    if in_place then write_file file formatted else print_string formatted
  in
  let in_place =
    Arg.(value & flag & info [ "i"; "in-place" ] ~doc:"Rewrite the file")
  in
  Cmd.v (Cmd.info "fmt" ~doc:"Canonically format an IaC file")
    Term.(const run $ file_arg $ in_place)

let level_arg =
  let levels =
    [
      ("syntax", Validate.L_syntax);
      ("refs", Validate.L_references);
      ("types", Validate.L_types);
      ("cloud", Validate.L_cloud);
    ]
  in
  Arg.(
    value
    & opt (enum levels) Validate.L_cloud
    & info [ "level" ] ~docv:"LEVEL"
        ~doc:"Validation depth: $(b,syntax), $(b,refs), $(b,types) or $(b,cloud)")

let validate_cmd =
  let run file level state_path =
    let state = load_state state_path in
    let report =
      if Sys.is_directory file then
        Validate.validate_config ~level ~env:(env_for state) (parse_config file)
      else
        Validate.validate_source ~level ~env:(env_for state) ~file
          (read_file file)
    in
    List.iter
      (fun d -> print_endline (Diagnostic.to_string d))
      report.Validate.diagnostics;
    let errors = Diagnostic.count_errors report.Validate.diagnostics in
    Printf.printf "%d error(s), %d warning(s)\n" errors
      (List.length report.Validate.diagnostics - errors);
    if errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Run the staged validation pipeline (§3.2)")
    Term.(const run $ file_arg $ level_arg $ state_arg)

let graph_cmd =
  let run file =
    let cfg = parse_config file in
    let instances = expand_or_die State.empty cfg in
    print_string (Dag.to_dot (Dag.of_instances instances))
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Emit the resource dependency graph as Graphviz dot")
    Term.(const run $ file_arg)

let plan_against file state =
  let cfg = parse_config file in
  let instances = expand_or_die state cfg in
  Plan.make ~state instances

let plan_cmd =
  let run file state_path =
    let state = load_state state_path in
    let plan = plan_against file state in
    print_string (Plan.to_string plan);
    if not (Plan.is_empty plan) then exit 2
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Show what apply would change (exit 2 when non-empty)")
    Term.(const run $ file_arg $ state_arg)

let apply_cmd =
  let run file state_path seed engine =
    let recorded = load_state state_path in
    let cloud, state = cloud_from_state recorded ~seed in
    let plan = plan_against file state in
    if Plan.is_empty plan then print_endline "No changes. Infrastructure up to date."
    else begin
      print_string (Plan.to_string plan);
      let report =
        Executor.apply cloud ~config:(engine_config engine) ~state ~plan ()
      in
      Printf.printf
        "\nApplied %d change(s) in %.0f simulated seconds (%d API calls, %d retries).\n"
        (List.length report.Executor.applied)
        report.Executor.makespan report.Executor.api_calls report.Executor.retries;
      List.iter
        (fun (f : Executor.failure) ->
          Printf.printf "FAILED %s: %s\n"
            (Hcl.Addr.to_string f.Executor.faddr)
            f.Executor.reason)
        report.Executor.failed;
      write_file state_path (State.to_string report.Executor.state);
      Printf.printf "State written to %s (%d resources).\n" state_path
        (State.size report.Executor.state);
      if report.Executor.failed <> [] then exit 1
    end
  in
  Cmd.v
    (Cmd.info "apply" ~doc:"Apply the configuration against the simulated cloud")
    Term.(const run $ file_arg $ state_arg $ seed_arg $ engine_arg)

let destroy_cmd =
  let run state_path seed =
    let recorded = load_state state_path in
    if State.size recorded = 0 then print_endline "Nothing to destroy."
    else begin
      let cloud, state = cloud_from_state recorded ~seed in
      let plan = Plan.make ~state [] in
      let report =
        Executor.apply cloud ~config:Executor.cloudless_config ~state ~plan ()
      in
      Printf.printf "Destroyed %d resource(s) in %.0f simulated seconds.\n"
        (List.length report.Executor.applied)
        report.Executor.makespan;
      write_file state_path (State.to_string report.Executor.state)
    end
  in
  Cmd.v
    (Cmd.info "destroy" ~doc:"Destroy everything tracked in the state file")
    Term.(const run $ state_arg $ seed_arg)

let policy_check_cmd =
  let policies_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "policies" ] ~docv:"FILE" ~doc:"Policy file (obs/action HCL)")
  in
  let run file policies_path state_path =
    let state = load_state state_path in
    let controller =
      match
        Cloudless_policy.Controller.of_source ~file:policies_path
          (read_file policies_path)
      with
      | c -> c
      | exception Cloudless_policy.Policy.Policy_error (msg, span) ->
          die "%s: policy error: %s" (Hcl.Loc.to_string span) msg
    in
    let plan = plan_against file state in
    let obs = Cloudless_policy.Controller.standard_obs ~state ~plan () in
    let result =
      Cloudless_policy.Controller.tick controller
        ~phase:Cloudless_policy.Policy.On_plan ~obs ()
    in
    List.iter
      (fun d ->
        print_endline (Cloudless_policy.Policy.decision_to_string d))
      result.Cloudless_policy.Controller.decisions;
    match result.Cloudless_policy.Controller.denied with
    | Some msg ->
        Printf.printf "DENIED: %s\n" msg;
        exit 1
    | None -> print_endline "plan admitted by all policies"
  in
  Cmd.v
    (Cmd.info "policy-check" ~doc:"Run plan-phase policies against a plan (§3.6)")
    Term.(const run $ file_arg $ policies_arg $ state_arg)

let import_cmd =
  let optimize_arg =
    Arg.(
      value & flag
      & info [ "no-optimize" ]
          ~doc:"Skip the refactoring optimizer (emit the naive one-block-per-resource dump)")
  in
  let run state_path no_optimize =
    let recorded = load_state state_path in
    if State.size recorded = 0 then die "state %s is empty; apply something first" state_path;
    let cloud, _ = cloud_from_state recorded ~seed:42 in
    let naive = Cloudless_synth.Importer.import cloud () in
    let cfg =
      if no_optimize then naive
      else
        (Cloudless_synth.Refactor.optimize ~modules:false naive)
          .Cloudless_synth.Refactor.optimized
    in
    let metrics = Cloudless_synth.Quality.measure cfg in
    print_string (Hcl.Config.to_string cfg);
    Fmt.epr "-- %a@." Cloudless_synth.Quality.pp metrics
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:
         "Port the tracked deployment back to IaC source (§3.1): naive dump           or optimizer output")
    Term.(const run $ state_arg $ optimize_arg)

let example_cmd =
  let examples =
    [
      ("web-tier", fun () -> Cloudless_workload.Workload.web_tier ());
      ("microservices", fun () -> Cloudless_workload.Workload.microservices ());
      ("data-pipeline", fun () -> Cloudless_workload.Workload.data_pipeline ());
      ("multi-region", fun () -> Cloudless_workload.Workload.multi_region ());
      ("multi-cloud", fun () -> Cloudless_workload.Workload.multi_cloud ());
      ("figure2", fun () ->
        "data \"aws_region\" \"current\" {}\n\n\
         variable \"vmName\" {\n  type    = string\n  default = \"cloudless\"\n}\n\n\
         resource \"aws_network_interface\" \"n1\" {\n  name     = \"example-nic\"\n  \
         location = data.aws_region.current.name\n}\n\n\
         resource \"aws_virtual_machine\" \"vm1\" {\n  name    = var.vmName\n  \
         nic_ids = [aws_network_interface.n1.id]\n}\n");
    ]
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun (n, _) -> (n, n)) examples))) None
      & info [] ~docv:"NAME"
          ~doc:
            "One of: web-tier, microservices, data-pipeline, multi-region, \
             multi-cloud, figure2")
  in
  let run name = print_string ((List.assoc name examples) ()) in
  Cmd.v
    (Cmd.info "example" ~doc:"Emit a generated example configuration")
    Term.(const run $ name_arg)

let main_cmd =
  let doc = "a principled IaC framework (HotNets '23 'Cloudless Computing')" in
  Cmd.group
    (Cmd.info "cloudless" ~version:"1.0.0" ~doc)
    [
      fmt_cmd;
      validate_cmd;
      graph_cmd;
      plan_cmd;
      apply_cmd;
      destroy_cmd;
      import_cmd;
      policy_check_cmd;
      example_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
