lib/drift/drift.ml: Cloudless_hcl Cloudless_sim Cloudless_state Fmt List Printf String
