lib/drift/reconciler.ml: Cloudless_hcl Cloudless_schema Cloudless_sim Cloudless_state Drift List Printf String
