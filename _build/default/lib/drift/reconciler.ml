(** Program regeneration after drift (§3.5).

    "The IaC frameworks should either regenerate the IaC-level program
    to reflect the latest deployment, or notify corresponding parties
    for further reconciliation."

    {!Drift.reconcile} handles the state side; this module handles the
    *program* side:

    - {!update_config_attr}: an accepted attribute drift is folded back
      into the resource block's literal, so the program and the cloud
      agree again;
    - {!adopt_unmanaged}: a resource created outside IaC is imported —
      a resource block is generated from its live attributes (reusing
      the §3.1 importer's pruning rules) and a state entry is added, so
      the next plan treats it as managed instead of unknown;
    - {!drop_deleted}: a resource deleted out-of-band is removed from
      the program and state, accepting the deletion. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Ast = Hcl.Ast
module Addr = Hcl.Addr
module Smap = Value.Smap
module State = Cloudless_state.State
module Cloud = Cloudless_sim.Cloud
module Schema = Cloudless_schema

type outcome = {
  config : Hcl.Config.t;
  state : State.t;
  description : string;
}

(* attributes the importer would prune: computed ones *)
let settable_attrs rtype attrs =
  let computed =
    match Schema.Catalog.find rtype with
    | Some s -> Schema.Resource_schema.computed_attr_names s
    | None -> [ "id"; "arn" ]
  in
  Smap.filter (fun k _ -> not (List.mem k computed)) attrs

(** Fold an accepted attribute drift back into the program: the
    resource block's literal is replaced by the observed value.  Only
    literal attributes can be regenerated; attributes computed from
    expressions are left for a human (returns [None]). *)
let update_config_attr (cfg : Hcl.Config.t) ~(addr : Addr.t) ~attr
    ~(value : Value.t) : Hcl.Config.t option =
  match Hcl.Config.find_resource cfg addr.Addr.rtype addr.Addr.rname with
  | None -> None
  | Some r -> (
      let current = Ast.attr r.Hcl.Config.rbody attr in
      let replaceable =
        match current with
        | None -> true
        | Some e -> Ast.is_literal e
      in
      if not replaceable then None
      else
        match Hcl.Codec.value_to_expr value with
        | expr ->
            let attrs =
              List.filter
                (fun (a : Ast.attribute) -> a.Ast.aname <> attr)
                r.Hcl.Config.rbody.Ast.attrs
              @ [ { Ast.aname = attr; avalue = expr; aspan = Hcl.Loc.dummy } ]
            in
            let resources =
              List.map
                (fun (r' : Hcl.Config.resource) ->
                  if
                    r'.Hcl.Config.rtype = addr.Addr.rtype
                    && r'.Hcl.Config.rname = addr.Addr.rname
                  then
                    { r' with Hcl.Config.rbody = { r'.Hcl.Config.rbody with Ast.attrs } }
                  else r')
                cfg.Hcl.Config.resources
            in
            Some { cfg with Hcl.Config.resources }
        | exception Hcl.Codec.Not_literal _ -> None)

(* a block name for an adopted resource that doesn't collide *)
let fresh_block_name (cfg : Hcl.Config.t) rtype base =
  let taken name = Hcl.Config.find_resource cfg rtype name <> None in
  if not (taken base) then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s_%d" base i in
      if taken candidate then go (i + 1) else candidate
    in
    go 2

(** Adopt an unmanaged cloud resource into the program and state. *)
let adopt_unmanaged (cloud : Cloud.t) ~(cfg : Hcl.Config.t) ~(state : State.t)
    ~cloud_id : outcome option =
  match Cloud.lookup cloud cloud_id with
  | None -> None
  | Some live ->
      let rtype = live.Cloud.rtype in
      let rname =
        fresh_block_name cfg rtype
          (String.map (function '-' -> '_' | c -> c) cloud_id)
      in
      let attrs = settable_attrs rtype live.Cloud.attrs in
      let block_attrs =
        Smap.bindings attrs
        |> List.filter_map (fun (name, v) ->
               match Hcl.Codec.value_to_expr v with
               | e -> Some { Ast.aname = name; avalue = e; aspan = Hcl.Loc.dummy }
               | exception Hcl.Codec.Not_literal _ -> None)
      in
      let resource =
        {
          Hcl.Config.rtype;
          rname;
          rbody = { Ast.attrs = block_attrs; blocks = [] };
          rcount = None;
          rfor_each = None;
          rprovider = None;
          rdepends_on = [];
          rlifecycle = Hcl.Config.default_lifecycle;
          rspan = Hcl.Loc.dummy;
        }
      in
      let addr = Addr.make ~rtype ~rname () in
      let state =
        State.add state
          {
            State.addr;
            cloud_id;
            rtype;
            region = live.Cloud.region;
            attrs = live.Cloud.attrs;
            deps = [];
          }
      in
      Some
        {
          config =
            { cfg with Hcl.Config.resources = cfg.Hcl.Config.resources @ [ resource ] };
          state;
          description =
            Printf.sprintf "adopted unmanaged %s %s as %s.%s" rtype cloud_id
              rtype rname;
        }

(** Accept an out-of-band deletion: drop the resource from program and
    state. *)
let drop_deleted ~(cfg : Hcl.Config.t) ~(state : State.t) ~(addr : Addr.t) :
    outcome =
  let base = Addr.base addr in
  let resources =
    List.filter
      (fun (r : Hcl.Config.resource) ->
        not
          (r.Hcl.Config.rtype = base.Addr.rtype
          && r.Hcl.Config.rname = base.Addr.rname))
      cfg.Hcl.Config.resources
  in
  {
    config = { cfg with Hcl.Config.resources };
    state = State.remove state addr;
    description =
      Printf.sprintf "accepted out-of-band deletion of %s" (Addr.to_string addr);
  }

(** Process a batch of drift events with the regeneration policy:
    attribute drift folds into the program, unmanaged creates are
    adopted, deletions are reported for human decision (the destructive
    direction should not be automatic). *)
let regenerate (cloud : Cloud.t) ~(cfg : Hcl.Config.t) ~(state : State.t)
    (events : Drift.event list) : Hcl.Config.t * State.t * string list =
  List.fold_left
    (fun (cfg, state, log) (e : Drift.event) ->
      match e.Drift.kind with
      | Drift.Attr_drift { attr; actual; _ } -> (
          match e.Drift.addr with
          | Some addr -> (
              let state =
                match Cloud.lookup cloud e.Drift.cloud_id with
                | Some live -> State.update_attrs state addr live.Cloud.attrs
                | None -> state
              in
              match
                update_config_attr cfg ~addr:(Addr.base addr) ~attr ~value:actual
              with
              | Some cfg' ->
                  ( cfg',
                    state,
                    Printf.sprintf "regenerated %s.%s in the program"
                      (Addr.to_string addr) attr
                    :: log )
              | None ->
                  ( cfg,
                    state,
                    Printf.sprintf
                      "NOTIFY: %s.%s drifted but is expression-derived; manual \
                       reconciliation needed"
                      (Addr.to_string addr) attr
                    :: log ))
          | None -> (cfg, state, log))
      | Drift.Unmanaged { cloud_id; _ } -> (
          match adopt_unmanaged cloud ~cfg ~state ~cloud_id with
          | Some o -> (o.config, o.state, o.description :: log)
          | None -> (cfg, state, log))
      | Drift.Deleted_oob ->
          ( cfg,
            state,
            Printf.sprintf "NOTIFY: %s deleted outside IaC (not auto-accepted)"
              (match e.Drift.addr with
              | Some a -> Addr.to_string a
              | None -> e.Drift.cloud_id)
            :: log ))
    (cfg, state, []) events
  |> fun (cfg, state, log) -> (cfg, state, List.rev log)
