(** Rollback planning (§3.4).

    The paper's observation: "simply applying a previous configuration
    doesn't always roll back the infrastructure to its intended
    previous state" — because (a) some attribute changes are not
    reversible in place (force-new attributes), and (b) the live
    resource may carry modifications that were never captured in any
    configuration (out-of-band changes), which naive re-application
    silently ignores.

    Two strategies:

    - {!Naive_reapply} (the baseline): diff the target state against
      the *recorded* current state only — exactly what replaying the
      old configuration does.  Misses out-of-band modifications.
    - {!Reversibility_aware}: consult the *live* cloud attributes,
      classify each divergence as reversible (plain update back),
      irreversible (destroy + recreate), or unmanaged-drift (reset),
      and emit the minimal redeployment achieving the target. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Schema = Cloudless_schema

type strategy = Naive_reapply | Reversibility_aware

type classification =
  | Unchanged
  | Reversible of Plan.attr_change list
  | Irreversible of { changes : Plan.attr_change list; reasons : string list }

(* Attributes the cloud computes are expected to differ (fresh ids
   etc.); they never count as divergence. *)
let managed_attrs rtype attrs =
  match Schema.Catalog.find rtype with
  | None ->
      (* be conservative: ignore the universally-computed trio *)
      Smap.filter (fun k _ -> not (List.mem k [ "id"; "arn"; "region" ])) attrs
  | Some schema ->
      let computed = Schema.Resource_schema.computed_attr_names schema in
      Smap.filter (fun k _ -> not (List.mem k computed)) attrs

let diff_managed rtype ~target ~actual : Plan.attr_change list =
  let target = managed_attrs rtype target and actual = managed_attrs rtype actual in
  let keys =
    List.sort_uniq String.compare
      (List.map fst (Smap.bindings target) @ List.map fst (Smap.bindings actual))
  in
  List.filter_map
    (fun k ->
      let tv = Smap.find_opt k target and av = Smap.find_opt k actual in
      match (tv, av) with
      | Some t, Some a when Value.equal t a -> None
      | None, None -> None
      | _ -> Some { Plan.attr = k; before = av; after = tv })
    keys

let classify rtype ~target ~actual : classification =
  match diff_managed rtype ~target ~actual with
  | [] -> Unchanged
  | changes -> (
      let force_new =
        match Schema.Catalog.find rtype with
        | Some schema -> Schema.Resource_schema.force_new_attrs schema
        | None -> []
      in
      match
        List.filter_map
          (fun (c : Plan.attr_change) ->
            if List.mem c.Plan.attr force_new then Some c.Plan.attr else None)
          changes
      with
      | [] -> Reversible changes
      | reasons -> Irreversible { changes; reasons })

type rollback_plan = {
  plan : Plan.t;
  strategy : strategy;
  redeployed : Addr.t list;  (** resources destroyed + recreated *)
  updated : Addr.t list;
  missed_divergences : Addr.t list;
      (** resources whose live attrs diverge but the strategy didn't
          notice (naive only) *)
}

(** Plan a rollback to [target].

    [current] is the recorded state after the failed/unwanted update;
    [live] reads the resource's *actual* cloud attributes (None = the
    resource no longer exists in the cloud). *)
let plan_rollback ~(strategy : strategy) ~(target : State.t)
    ~(current : State.t) ~(live : Addr.t -> Value.t Smap.t option) () :
    rollback_plan =
  let redeployed = ref [] and updated = ref [] and missed = ref [] in
  let changes = ref [] in
  let emit c = changes := c :: !changes in
  (* resources that should exist according to the target *)
  List.iter
    (fun (tr : State.resource_state) ->
      let addr = tr.State.addr in
      let rtype = tr.State.rtype in
      let current_entry = State.find_opt current addr in
      let observed =
        match strategy with
        | Naive_reapply ->
            (* the baseline trusts its state file *)
            Option.map (fun (r : State.resource_state) -> r.State.attrs) current_entry
        | Reversibility_aware -> live addr
      in
      match (current_entry, observed) with
      | None, _ | _, None ->
          (* missing entirely: recreate *)
          redeployed := addr :: !redeployed;
          emit
            {
              Plan.addr;
              rtype;
              region = tr.State.region;
              action = Plan.Create;
              desired = Some (managed_attrs rtype tr.State.attrs);
              prior = None;
              deps = tr.State.deps;
              cbd = false;
            }
      | Some cur, Some actual -> (
          (match strategy with
          | Reversibility_aware -> ()
          | Naive_reapply -> (
              (* record what the naive strategy fails to see: the live
                 resource diverges but the recorded state looks clean *)
              match live addr with
              | Some live_attrs ->
                  let live_diff =
                    diff_managed rtype ~target:tr.State.attrs ~actual:live_attrs
                  in
                  let recorded_diff =
                    diff_managed rtype ~target:tr.State.attrs ~actual
                  in
                  if live_diff <> [] && recorded_diff = [] then
                    missed := addr :: !missed
              | None -> ()));
          match classify rtype ~target:tr.State.attrs ~actual with
          | Unchanged -> ()
          | Reversible attr_changes ->
              updated := addr :: !updated;
              emit
                {
                  Plan.addr;
                  rtype;
                  region = cur.State.region;
                  action = Plan.Update attr_changes;
                  desired = Some (managed_attrs rtype tr.State.attrs);
                  prior = Some cur;
                  deps = tr.State.deps;
                  cbd = false;
                }
          | Irreversible { changes = attr_changes; reasons } ->
              redeployed := addr :: !redeployed;
              emit
                {
                  Plan.addr;
                  rtype;
                  region = cur.State.region;
                  action = Plan.Replace { changes = attr_changes; reasons };
                  desired = Some (managed_attrs rtype tr.State.attrs);
                  prior = Some cur;
                  deps = tr.State.deps;
                  cbd = false;
                }))
    (State.resources target);
  (* resources added after the target version must be destroyed *)
  List.iter
    (fun (cr : State.resource_state) ->
      if not (State.mem target cr.State.addr) then
        emit
          {
            Plan.addr = cr.State.addr;
            rtype = cr.State.rtype;
            region = cr.State.region;
            action = Plan.Delete;
            desired = None;
            prior = Some cr;
            deps = cr.State.deps;
            cbd = false;
          })
    (State.resources current);
  {
    plan = { Plan.changes = List.rev !changes; default_region = "us-east-1" };
    strategy;
    redeployed = List.rev !redeployed;
    updated = List.rev !updated;
    missed_divergences = List.rev !missed;
  }

(** After executing a rollback, measure residual divergence: managed
    attributes that still differ between the live cloud and the target
    state.  The paper's criterion for a *faithful* rollback is zero. *)
let residual_divergence ~(target : State.t)
    ~(live : Addr.t -> Value.t Smap.t option) : (Addr.t * string) list =
  List.concat_map
    (fun (tr : State.resource_state) ->
      match live tr.State.addr with
      | None -> [ (tr.State.addr, "missing from cloud") ]
      | Some actual ->
          diff_managed tr.State.rtype ~target:tr.State.attrs ~actual
          |> List.map (fun (c : Plan.attr_change) -> (tr.State.addr, c.Plan.attr)))
    (State.resources target)
