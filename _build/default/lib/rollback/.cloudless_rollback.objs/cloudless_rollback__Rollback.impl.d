lib/rollback/rollback.ml: Cloudless_hcl Cloudless_plan Cloudless_schema Cloudless_state List Option String
