lib/debug/debugger.ml: Cloudless_hcl Fmt List Printf String
