(** The IaC debugger (§3.5): correlate cloud-level errors with the
    IaC-level program and suggest fixes.

    The paper's example drives the design: Azure rejects a VM whose NIC
    is in another region with "Linux virtual machine creation failed
    because specified NIC is not found" — the NIC *does* exist; the
    root cause is a region mismatch, and the error names neither the
    offending attribute nor its line.  [diagnose] re-derives the root
    cause analytically from the configuration and points at the exact
    source spans. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Eval = Cloudless_hcl.Eval
module Config = Cloudless_hcl.Config
module Ast = Cloudless_hcl.Ast
module Loc = Cloudless_hcl.Loc
module Ipnet = Cloudless_hcl.Ipnet
module Smap = Value.Smap

type evidence = { espan : Loc.span; explanation : string }

type diagnosis = {
  failed_addr : Addr.t;
  cloud_error : string;  (** the raw provider message *)
  root_cause : string;  (** the real cause, in IaC terms *)
  evidence : evidence list;  (** source locations involved *)
  suggested_fix : string;
  confidence : [ `High | `Medium | `Low ];
}

let pp_diagnosis ppf d =
  Fmt.pf ppf "@[<v>%s failed@,  cloud said : %S@,  root cause : %s@,%a  fix        : %s@]"
    (Addr.to_string d.failed_addr) d.cloud_error d.root_cause
    (Fmt.list ~sep:Fmt.nop (fun ppf e ->
         Fmt.pf ppf "  evidence   : %a — %s@," Loc.pp e.espan e.explanation))
    d.evidence d.suggested_fix

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let find_instance instances addr =
  List.find_opt
    (fun (i : Eval.instance) -> Addr.equal i.Eval.addr addr)
    instances

let find_config_resource (cfg : Config.t) (addr : Addr.t) =
  Config.find_resource cfg addr.Addr.rtype addr.Addr.rname

let attr_span cfg addr name =
  match find_config_resource cfg addr with
  | Some r -> (
      match Ast.attr_span r.Config.rbody name with
      | Some span -> span
      | None -> r.Config.rspan)
  | None -> Loc.dummy

let effective_region (i : Eval.instance) =
  match Smap.find_opt "region" i.Eval.attrs with
  | Some (Value.Vstring r) -> Some ("region", r)
  | _ -> (
      match Smap.find_opt "location" i.Eval.attrs with
      | Some (Value.Vstring r) -> Some ("location", r)
      | _ -> None)

(* Resolve "addr.attr"-provenance references out of an attribute. *)
let referenced_addrs (v : Value.t) : Addr.t list =
  let rec go acc = function
    | Value.Vunknown p -> (
        match String.rindex_opt p '.' with
        | Some i -> (
            match Addr.of_string (String.sub p 0 i) with
            | Some a -> a :: acc
            | None -> acc)
        | None -> acc)
    | Value.Vlist vs -> List.fold_left go acc vs
    | Value.Vmap m -> Smap.fold (fun _ v acc -> go acc v) m acc
    | _ -> acc
  in
  List.rev (go [] v)

let contains_ci ~sub s =
  let s = String.lowercase_ascii s and sub = String.lowercase_ascii sub in
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

(* ------------------------------------------------------------------ *)
(* Root-cause analyses                                                 *)
(* ------------------------------------------------------------------ *)

(* "NIC not found" family: the NIC usually exists — look for a region
   mismatch first, a genuinely missing reference second. *)
let diagnose_nic_not_found cfg instances (addr : Addr.t) error =
  match find_instance instances addr with
  | None -> None
  | Some vm -> (
      let nic_refs =
        match Smap.find_opt "nic_ids" vm.Eval.attrs with
        | Some v -> referenced_addrs v
        | None -> []
      in
      let vm_region = effective_region vm in
      let mismatched =
        List.filter_map
          (fun nic_addr ->
            match (find_instance instances nic_addr, vm_region) with
            | Some nic, Some (_, vr) -> (
                match effective_region nic with
                | Some (nic_attr, nr) when nr <> vr ->
                    Some (nic_addr, nic_attr, nr, vr)
                | _ -> None)
            | _ -> None)
          nic_refs
      in
      match mismatched with
      | (nic_addr, nic_attr, nic_region, vm_region_v) :: _ ->
          let vm_attr =
            match vm_region with Some (a, _) -> a | None -> "region"
          in
          Some
            {
              failed_addr = addr;
              cloud_error = error;
              root_cause =
                Printf.sprintf
                  "the NIC exists but is in region %s while the VM is in %s \
                   — the provider requires them to match and misreports \
                   this as a missing NIC"
                  nic_region vm_region_v;
              evidence =
                [
                  {
                    espan = attr_span cfg addr vm_attr;
                    explanation =
                      Printf.sprintf "VM %s declared in %s here"
                        (Addr.to_string addr) vm_region_v;
                  };
                  {
                    espan = attr_span cfg nic_addr nic_attr;
                    explanation =
                      Printf.sprintf "NIC %s declared in %s here"
                        (Addr.to_string nic_addr) nic_region;
                  };
                ];
              suggested_fix =
                Printf.sprintf "set %s of %s to %S (or move the VM to %S)"
                  nic_attr (Addr.to_string nic_addr) vm_region_v nic_region;
              confidence = `High;
            }
      | [] ->
          if nic_refs = [] then
            Some
              {
                failed_addr = addr;
                cloud_error = error;
                root_cause = "the VM references no NIC in the configuration";
                evidence =
                  [
                    {
                      espan = attr_span cfg addr "nic_ids";
                      explanation = "nic_ids is empty or missing";
                    };
                  ];
                suggested_fix =
                  "add a NIC resource and reference it in nic_ids";
                confidence = `Medium;
              }
          else None)

(* Generic parent-reference failures from the simulated providers. *)
let diagnose_missing_parent cfg instances addr error =
  let parent_attrs =
    [ "vpc_id"; "subnet_id"; "virtual_network_id"; "resource_group_id";
      "zone_id"; "load_balancer_id"; "role_id" ]
  in
  match find_instance instances addr with
  | None -> None
  | Some inst ->
      List.find_map
        (fun attr_name ->
          match Smap.find_opt attr_name inst.Eval.attrs with
          | None -> None
          | Some v -> (
              match referenced_addrs v with
              | parent_addr :: _ -> (
                  match (find_instance instances parent_addr, effective_region inst) with
                  | Some parent, Some (_, my_region) -> (
                      match effective_region parent with
                      | Some (pattr, pregion) when pregion <> my_region ->
                          Some
                            {
                              failed_addr = addr;
                              cloud_error = error;
                              root_cause =
                                Printf.sprintf
                                  "referenced %s is in %s but this resource \
                                   is in %s (region mismatch reported as a \
                                   missing resource)"
                                  (Addr.to_string parent_addr) pregion my_region;
                              evidence =
                                [
                                  {
                                    espan = attr_span cfg addr attr_name;
                                    explanation = "reference declared here";
                                  };
                                  {
                                    espan = attr_span cfg parent_addr pattr;
                                    explanation =
                                      Printf.sprintf "%s region declared here"
                                        (Addr.to_string parent_addr);
                                  };
                                ];
                              suggested_fix =
                                Printf.sprintf
                                  "align the regions of %s and %s"
                                  (Addr.to_string addr)
                                  (Addr.to_string parent_addr);
                              confidence = `High;
                            }
                      | _ -> None)
                  | None, _ ->
                      Some
                        {
                          failed_addr = addr;
                          cloud_error = error;
                          root_cause =
                            Printf.sprintf
                              "reference to %s, which is not part of this \
                               configuration"
                              (Addr.to_string parent_addr);
                          evidence =
                            [
                              {
                                espan = attr_span cfg addr attr_name;
                                explanation = "dangling reference here";
                              };
                            ];
                          suggested_fix =
                            Printf.sprintf "declare %s or remove the reference"
                              (Addr.to_string parent_addr);
                          confidence = `Medium;
                        }
                  | _ -> None)
              | [] -> None))
        parent_attrs

(* Subnet CIDR outside the parent network's address space; suggest a
   free sub-prefix. *)
let diagnose_subnet_range cfg instances addr error =
  match find_instance instances addr with
  | None -> None
  | Some inst -> (
      let own_cidr =
        match
          ( Smap.find_opt "cidr_block" inst.Eval.attrs,
            Smap.find_opt "address_prefix" inst.Eval.attrs )
        with
        | Some (Value.Vstring c), _ | _, Some (Value.Vstring c) -> Some c
        | _ -> None
      in
      let parent =
        match
          ( Smap.find_opt "vpc_id" inst.Eval.attrs,
            Smap.find_opt "virtual_network_id" inst.Eval.attrs )
        with
        | Some v, _ | None, Some v -> (
            match referenced_addrs v with a :: _ -> find_instance instances a | [] -> None)
        | None, None -> None
      in
      match (own_cidr, parent) with
      | Some cidr, Some p ->
          let parent_space =
            match
              ( Smap.find_opt "cidr_block" p.Eval.attrs,
                Smap.find_opt "address_space" p.Eval.attrs )
            with
            | Some (Value.Vstring c), _ -> Some c
            | _, Some (Value.Vlist (Value.Vstring c :: _)) -> Some c
            | _ -> None
          in
          (match parent_space with
          | Some space ->
              let suggestion =
                match Ipnet.parse_prefix space with
                | outer -> (
                    match Ipnet.subnet outer ~newbits:8 ~netnum:0 with
                    | s -> Ipnet.prefix_to_string s
                    | exception Ipnet.Invalid _ -> space)
                | exception Ipnet.Invalid _ -> space
              in
              Some
                {
                  failed_addr = addr;
                  cloud_error = error;
                  root_cause =
                    Printf.sprintf
                      "subnet CIDR %s lies outside the parent network's \
                       space %s"
                      cidr space;
                  evidence =
                    [
                      {
                        espan = attr_span cfg addr "cidr_block";
                        explanation = "subnet prefix declared here";
                      };
                      {
                        espan = attr_span cfg p.Eval.addr "cidr_block";
                        explanation = "parent address space declared here";
                      };
                    ];
                  suggested_fix =
                    Printf.sprintf "use a prefix inside %s, e.g. %s" space
                      suggestion;
                  confidence = `High;
                }
          | None -> None)
      | _ -> None)

let diagnose_password cfg _instances addr error =
  Some
    {
      failed_addr = addr;
      cloud_error = error;
      root_cause =
        "admin_password may only be supplied when disable_password is \
         explicitly false";
      evidence =
        [
          {
            espan = attr_span cfg addr "admin_password";
            explanation = "password set here";
          };
        ];
      suggested_fix = "add disable_password = false next to admin_password";
      confidence = `High;
    }

let diagnose_quota _cfg _instances addr error =
  Some
    {
      failed_addr = addr;
      cloud_error = error;
      root_cause = "the regional quota for this resource type is exhausted";
      evidence = [];
      suggested_fix =
        "lower the count/for_each cardinality, spread instances across \
         regions, or request a quota increase";
      confidence = `Medium;
    }

let diagnose_throttle _cfg _instances addr error =
  Some
    {
      failed_addr = addr;
      cloud_error = error;
      root_cause =
        "the deployment exceeded the provider's management-API rate limit \
         and exhausted its retries";
      evidence = [];
      suggested_fix =
        "enable rate-aware admission (cloudless engine) or lower parallelism";
      confidence = `Medium;
    }

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Translate a cloud-level failure into an IaC-level diagnosis. *)
let diagnose ~(cfg : Config.t) ~(instances : Eval.instance list)
    ~(addr : Addr.t) ~(error : string) : diagnosis =
  let attempt =
    if contains_ci ~sub:"nic" error && contains_ci ~sub:"not found" error then
      diagnose_nic_not_found cfg instances addr error
    else if contains_ci ~sub:"does not exist" error then
      diagnose_missing_parent cfg instances addr error
    else if contains_ci ~sub:"invalidsubnet" error then
      diagnose_subnet_range cfg instances addr error
    else if contains_ci ~sub:"adminpassword" error then
      diagnose_password cfg instances addr error
    else if contains_ci ~sub:"quota" error then
      diagnose_quota cfg instances addr error
    else if contains_ci ~sub:"throttled" error || contains_ci ~sub:"429" error
    then diagnose_throttle cfg instances addr error
    else None
  in
  match attempt with
  | Some d -> d
  | None ->
      (* fall back to locating the resource *)
      let span =
        match find_config_resource cfg addr with
        | Some r -> r.Config.rspan
        | None -> Loc.dummy
      in
      {
        failed_addr = addr;
        cloud_error = error;
        root_cause = "no analytical rule matched this provider error";
        evidence =
          [ { espan = span; explanation = "failing resource declared here" } ];
        suggested_fix = "inspect the provider error and the resource block";
        confidence = `Low;
      }
