lib/deploy/executor.ml: Cloudless_graph Cloudless_hcl Cloudless_plan Cloudless_sim Cloudless_state Float Hashtbl List Option String
