(** A statistical model of today's LLM-based IaC generators (§3.1).

    The paper observes that existing LLM tools "frequently generate
    invalid IaC code, even for small-scale templates involving widely
    used resources", hallucinating syntax, attribute names, and unsafe
    defaults.  To benchmark the type-guided synthesizer against that
    baseline (experiment E9) we take a *correct* synthesis and inject
    the documented failure modes at calibrated rates:

    - misspelled / invented attribute names,
    - dangling references to resources that don't exist,
    - wrong-type references (subnet id where a NIC id belongs),
    - invalid literals (regions, CIDRs) ,
    - dropped required attributes,
    - security-sensitive defaults (0.0.0.0/0 ingress, plaintext
      passwords without the guard flag). *)

module Hcl = Cloudless_hcl
module Ast = Hcl.Ast
module Prng = Cloudless_sim.Prng

type rates = {
  misspell_attr : float;
  dangling_ref : float;
  wrong_type_ref : float;
  invalid_literal : float;
  drop_required : float;
  insecure_default : float;
}

(* Calibration: roughly one error per short template, matching the
   anecdotal reports the paper cites. *)
let default_rates =
  {
    misspell_attr = 0.06;
    dangling_ref = 0.05;
    wrong_type_ref = 0.05;
    invalid_literal = 0.05;
    drop_required = 0.04;
    insecure_default = 0.03;
  }

let misspell prng name =
  (* drop a character or duplicate one — classic hallucination *)
  let n = String.length name in
  if n < 3 then name ^ "s"
  else if Prng.bernoulli prng 0.5 then
    (* drop *)
    let i = Prng.int prng n in
    String.sub name 0 i ^ String.sub name (i + 1) (n - i - 1)
  else
    (* swap two adjacent characters *)
    let i = Prng.int prng (n - 1) in
    let b = Bytes.of_string name in
    let c = Bytes.get b i in
    Bytes.set b i (Bytes.get b (i + 1));
    Bytes.set b (i + 1) c;
    Bytes.to_string b

let bogus_literals = [ "us-easter-1"; "10.0.0.0/33"; "300.1.2.3/16"; "eu-mars-2" ]

(** Corrupt a correct configuration with hallucination-style errors.
    Deterministic in [seed]. *)
let corrupt ?(rates = default_rates) ~seed (cfg : Hcl.Config.t) : Hcl.Config.t =
  let prng = Prng.create seed in
  let corrupt_attr (r : Hcl.Config.resource) (a : Ast.attribute) :
      Ast.attribute option =
    if Prng.bernoulli prng rates.drop_required then None
    else
      let a =
        if Prng.bernoulli prng rates.misspell_attr then
          { a with Ast.aname = misspell prng a.Ast.aname }
        else a
      in
      let a =
        if Prng.bernoulli prng rates.dangling_ref then
          {
            a with
            Ast.avalue =
              Ast.mk
                (Ast.GetAttr
                   ( Ast.mk (Ast.GetAttr (Ast.mk (Ast.Var r.Hcl.Config.rtype), "nonexistent")),
                     "id" ));
          }
        else if Prng.bernoulli prng rates.wrong_type_ref then
          (* reference the *resource itself* type-incorrectly: point a
             reference at a security-group-shaped phantom *)
          {
            a with
            Ast.avalue =
              Ast.mk
                (Ast.GetAttr
                   (Ast.mk (Ast.GetAttr (Ast.mk (Ast.Var "aws_s3_bucket"), "logs")), "id"));
          }
        else if Prng.bernoulli prng rates.invalid_literal then
          { a with Ast.avalue = Ast.string_lit (Prng.choose prng bogus_literals) }
        else a
      in
      Some a
  in
  let resources =
    List.map
      (fun (r : Hcl.Config.resource) ->
        let attrs =
          List.filter_map (corrupt_attr r) r.Hcl.Config.rbody.Ast.attrs
        in
        let attrs =
          if Prng.bernoulli prng rates.insecure_default then
            attrs
            @ [
                {
                  Ast.aname = "admin_password";
                  avalue = Ast.string_lit "hunter2";
                  aspan = Hcl.Loc.dummy;
                };
              ]
          else attrs
        in
        { r with Hcl.Config.rbody = { r.Hcl.Config.rbody with Ast.attrs } })
      cfg.Hcl.Config.resources
  in
  { cfg with Hcl.Config.resources }

(** End-to-end baseline generator: synthesize an intent the reliable
    way, then corrupt it like an LLM would. *)
let generate ?(rates = default_rates) ~seed (intent : Intent.intent) :
    Hcl.Config.t =
  corrupt ~rates ~seed (Intent.synthesize intent)
