lib/synth/intent.ml: Cloudless_hcl Cloudless_schema List Printf String
