lib/synth/hallucinator.ml: Bytes Cloudless_hcl Cloudless_sim Intent List String
