lib/synth/importer.ml: Cloudless_hcl Cloudless_sim List String
