lib/synth/refactor.ml: Buffer Cloudless_hcl Cloudless_schema Fun Hashtbl Int32 List Option Printf String
