lib/synth/quality.ml: Cloudless_hcl Cloudless_schema Fmt List String
