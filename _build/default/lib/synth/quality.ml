(** Configuration quality metrics (§3.1).

    The paper asks: "how should we formally define and quantify these
    code metrics?"  This module gives the definitions the refactoring
    optimizer targets; EXPERIMENTS.md (E7) reports them for naive vs
    optimized ports.

    - [loc]: rendered lines of code (shorter is easier to review);
    - [blocks]: top-level resource/module blocks (each block is a unit
      a maintainer reasons about);
    - [compaction]: resources represented per block — count/for_each
      lift this above 1;
    - [reference_ratio]: share of cross-resource attributes expressed
      as references instead of copied literals (references keep edits
      single-sited);
    - [literal_noise]: attributes whose values the cloud computes
      (pure noise when porting, §3.1: "many of its cloud-level
      attributes could be removed"). *)

module Hcl = Cloudless_hcl
module Ast = Hcl.Ast
module Schema = Cloudless_schema

type metrics = {
  loc : int;
  blocks : int;
  resources_represented : int;  (** after expanding count/for_each *)
  compaction : float;  (** resources_represented / blocks *)
  reference_ratio : float;  (** references / (references + copyable literals) *)
  literal_noise : int;  (** computed attributes spelled as literals *)
  variables : int;
  modules : int;
}

let count_lines s =
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 s

let expr_is_reference e =
  Hcl.Refs.of_expr e
  |> List.exists (function
       | Hcl.Refs.Tresource _ | Hcl.Refs.Tdata _ | Hcl.Refs.Tmodule _ -> true
       | _ -> false)

(* Heuristic: a literal string that *looks like* a cloud id is a copied
   reference target. *)
let looks_like_cloud_id s =
  match String.rindex_opt s '-' with
  | Some i when i > 0 && i < String.length s - 1 ->
      let suffix = String.sub s (i + 1) (String.length s - i - 1) in
      String.length suffix >= 4
      && String.for_all
           (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
           suffix
  | _ -> false

let measure ?(count_hint = fun (_ : Hcl.Config.resource) -> 1)
    (cfg : Hcl.Config.t) : metrics =
  let loc = count_lines (Hcl.Config.to_string cfg) in
  let blocks =
    List.length cfg.Hcl.Config.resources + List.length cfg.Hcl.Config.modules
  in
  let resources_represented =
    List.fold_left
      (fun acc (r : Hcl.Config.resource) ->
        let n =
          match (r.Hcl.Config.rcount, r.Hcl.Config.rfor_each) with
          | Some { Ast.desc = Ast.Int n; _ }, _ -> n
          | _, Some { Ast.desc = Ast.ListLit l; _ } -> List.length l
          | _, Some { Ast.desc = Ast.Call ("toset", [ { Ast.desc = Ast.ListLit l; _ } ], _); _ }
            ->
              List.length l
          | _ -> count_hint r
        in
        acc + n)
      0 cfg.Hcl.Config.resources
  in
  let refs = ref 0 and copyable = ref 0 and noise = ref 0 in
  List.iter
    (fun (r : Hcl.Config.resource) ->
      let computed =
        match Schema.Catalog.find r.Hcl.Config.rtype with
        | Some s -> Schema.Resource_schema.computed_attr_names s
        | None -> [ "id"; "arn" ]
      in
      List.iter
        (fun (a : Ast.attribute) ->
          if List.mem a.Ast.aname computed then incr noise;
          if expr_is_reference a.Ast.avalue then incr refs
          else
            match a.Ast.avalue.Ast.desc with
            | Ast.Template [ Ast.Lit s ] when looks_like_cloud_id s ->
                incr copyable
            | _ -> ())
        r.Hcl.Config.rbody.Ast.attrs)
    cfg.Hcl.Config.resources;
  {
    loc;
    blocks;
    resources_represented;
    compaction =
      (if blocks = 0 then 1.
       else float_of_int resources_represented /. float_of_int blocks);
    reference_ratio =
      (let total = !refs + !copyable in
       if total = 0 then 1. else float_of_int !refs /. float_of_int total);
    literal_noise = !noise;
    variables = List.length cfg.Hcl.Config.variables;
    modules = List.length cfg.Hcl.Config.modules;
  }

let pp ppf m =
  Fmt.pf ppf
    "loc=%d blocks=%d resources=%d compaction=%.2f ref_ratio=%.2f noise=%d \
     modules=%d"
    m.loc m.blocks m.resources_represented m.compaction m.reference_ratio
    m.literal_noise m.modules
