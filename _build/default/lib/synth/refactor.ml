(** The program optimizer for ported IaC (§3.1).

    "Porting from existing cloud infrastructures to IaC must be
    assisted with a program optimizer that provides structural
    guidance ... if the cloud-level state contains many resources of
    the same type, the corresponding IaC program should use compact
    structures such as count and for_each ... nested modules are
    another way to wrap sets of resources with the same structure.
    For an individual resource, many of its cloud-level attributes
    could be removed."

    Four passes, in order:

    1. {!recover_references} — literal cloud-id strings become typed
       references (guided by the knowledge base's [Resource_id] types);
    2. {!prune_computed} — attributes the cloud computes are dropped;
    3. {!compact_groups} — same-shaped resources collapse into one
       block with [count] (index/arithmetic/CIDR patterns) or
       [for_each] (patternless single-attribute variation);
    4. {!extract_modules} — repeated multi-resource structures become
       a module invoked several times with differing variables. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Ast = Hcl.Ast
module Ipnet = Hcl.Ipnet
module Schema = Cloudless_schema
module T = Schema.Semantic_type

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let string_lit_of (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Template [ Ast.Lit s ] -> Some s
  | Ast.Template [] -> Some ""
  | _ -> None

let int_lit_of (e : Ast.expr) =
  match e.Ast.desc with Ast.Int n -> Some n | _ -> None

(* structural equality on printed form: cheap and adequate here *)
let expr_equal a b =
  Hcl.Printer.expr_to_string a = Hcl.Printer.expr_to_string b

let resource_ref rtype rname attr =
  Ast.mk (Ast.GetAttr (Ast.mk (Ast.GetAttr (Ast.mk (Ast.Var rtype), rname)), attr))

let count_index = Ast.mk (Ast.GetAttr (Ast.mk (Ast.Var "count"), "index"))

let count_index_plus base =
  if base = 0 then count_index
  else Ast.mk (Ast.Binop (Ast.Add, count_index, Ast.mk (Ast.Int base)))

(* ------------------------------------------------------------------ *)
(* Pass 1: reference recovery                                          *)
(* ------------------------------------------------------------------ *)

let recover_references (cfg : Hcl.Config.t) : Hcl.Config.t =
  (* map: literal id -> (rtype, rname) *)
  let id_map = Hashtbl.create 64 in
  List.iter
    (fun (r : Hcl.Config.resource) ->
      match Ast.attr r.Hcl.Config.rbody "id" with
      | Some e -> (
          match string_lit_of e with
          | Some id ->
              Hashtbl.replace id_map id (r.Hcl.Config.rtype, r.Hcl.Config.rname)
          | None -> ())
      | None -> ())
    cfg.Hcl.Config.resources;
  let expected_type rtype attr_name =
    match Schema.Catalog.find rtype with
    | None -> None
    | Some schema -> (
        match Schema.Resource_schema.find_attr schema attr_name with
        | Some { Schema.Resource_schema.aty = T.Resource_id t; _ } -> Some t
        | Some { Schema.Resource_schema.aty = T.List_of (T.Resource_id t); _ } ->
            Some t
        | _ -> None)
  in
  let rewrite_value rtype attr_name (e : Ast.expr) : Ast.expr =
    let try_ref s =
      match Hashtbl.find_opt id_map s with
      | Some (target_type, target_name) -> (
          match expected_type rtype attr_name with
          | Some want when want <> target_type -> None  (* miswired: keep literal *)
          | _ -> Some (resource_ref target_type target_name "id"))
      | None -> None
    in
    match e.Ast.desc with
    | Ast.Template [ Ast.Lit s ] -> (
        match try_ref s with Some r -> r | None -> e)
    | Ast.ListLit es ->
        Ast.mk
          (Ast.ListLit
             (List.map
                (fun item ->
                  match string_lit_of item with
                  | Some s -> (
                      match try_ref s with Some r -> r | None -> item)
                  | None -> item)
                es))
    | _ -> e
  in
  let resources =
    List.map
      (fun (r : Hcl.Config.resource) ->
        let attrs =
          List.map
            (fun (a : Ast.attribute) ->
              if a.Ast.aname = "id" then a
              else
                {
                  a with
                  Ast.avalue = rewrite_value r.Hcl.Config.rtype a.Ast.aname a.Ast.avalue;
                })
            r.Hcl.Config.rbody.Ast.attrs
        in
        { r with Hcl.Config.rbody = { r.Hcl.Config.rbody with Ast.attrs } })
      cfg.Hcl.Config.resources
  in
  { cfg with Hcl.Config.resources }

(* ------------------------------------------------------------------ *)
(* Pass 2: prune computed attributes                                   *)
(* ------------------------------------------------------------------ *)

let prune_computed (cfg : Hcl.Config.t) : Hcl.Config.t =
  let resources =
    List.map
      (fun (r : Hcl.Config.resource) ->
        let computed =
          match Schema.Catalog.find r.Hcl.Config.rtype with
          | Some s -> Schema.Resource_schema.computed_attr_names s
          | None -> [ "id"; "arn" ]
        in
        let attrs =
          List.filter
            (fun (a : Ast.attribute) -> not (List.mem a.Ast.aname computed))
            r.Hcl.Config.rbody.Ast.attrs
        in
        { r with Hcl.Config.rbody = { r.Hcl.Config.rbody with Ast.attrs } })
      cfg.Hcl.Config.resources
  in
  { cfg with Hcl.Config.resources }

(* ------------------------------------------------------------------ *)
(* Pass 3: count / for_each compaction                                 *)
(* ------------------------------------------------------------------ *)

(* Pattern detected across the i-th members of a group, in order. *)
type attr_pattern =
  | P_same of Ast.expr
  | P_int_suffix of { prefix : string; suffix : string; base : int }
  | P_arith of { base : int; step : int }
  | P_cidr of { parent : string; newbits : int; base : int }
  | P_indexed_ref of { rtype : string; rname : string; attr : string; base : int }

let pattern_to_expr = function
  | P_same e -> e
  | P_int_suffix { prefix; suffix; base } ->
      let parts =
        [ Ast.Lit prefix; Ast.Interp (count_index_plus base) ]
        @ if suffix = "" then [] else [ Ast.Lit suffix ]
      in
      Ast.mk (Ast.Template parts)
  | P_arith { base; step } ->
      if step = 0 then Ast.mk (Ast.Int base)
      else if step = 1 then count_index_plus base
      else
        Ast.mk
          (Ast.Binop
             ( Ast.Add,
               Ast.mk (Ast.Binop (Ast.Mul, count_index, Ast.mk (Ast.Int step))),
               Ast.mk (Ast.Int base) ))
  | P_cidr { parent; newbits; base } ->
      Ast.mk
        (Ast.Call
           ( "cidrsubnet",
             [
               Ast.string_lit parent;
               Ast.mk (Ast.Int newbits);
               count_index_plus base;
             ],
             false ))
  | P_indexed_ref { rtype; rname; attr; base } ->
      Ast.mk
        (Ast.GetAttr
           ( Ast.mk
               (Ast.Index
                  ( Ast.mk (Ast.GetAttr (Ast.mk (Ast.Var rtype), rname)),
                    count_index_plus base )),
             attr ))

(* decompose "web-3" into ("web-", 3, "") etc.: longest digit run *)
let int_suffix_decompose s =
  let n = String.length s in
  (* find the last maximal digit run *)
  let rec find_end i = if i >= 0 && s.[i] >= '0' && s.[i] <= '9' then find_end (i - 1) else i in
  let rec scan i =
    if i < 0 then None
    else if s.[i] >= '0' && s.[i] <= '9' then
      let start = find_end i + 1 in
      Some (String.sub s 0 start, int_of_string (String.sub s start (i - start + 1)),
            String.sub s (i + 1) (n - i - 1))
    else scan (i - 1)
  in
  scan (n - 1)

let detect_int_suffix values =
  let decomposed = List.map int_suffix_decompose values in
  if List.exists (fun d -> d = None) decomposed then None
  else
    let ds = List.map Option.get decomposed in
    match ds with
    | [] -> None
    | (p0, n0, s0) :: rest ->
        if
          List.for_all (fun (p, _, s) -> p = p0 && s = s0) rest
          && List.mapi (fun i (_, n, _) -> n = n0 + i) ((p0, n0, s0) :: rest)
             |> List.for_all Fun.id
        then Some (P_int_suffix { prefix = p0; suffix = s0; base = n0 })
        else None

let detect_arith values =
  match values with
  | [] | [ _ ] -> None
  | v0 :: v1 :: _ ->
      let step = v1 - v0 in
      if List.mapi (fun i v -> v = v0 + (step * i)) values |> List.for_all Fun.id
      then Some (P_arith { base = v0; step })
      else None

let detect_cidr values =
  match List.map (fun s -> Ipnet.parse_prefix s) values with
  | exception Ipnet.Invalid _ -> None
  | prefixes -> (
      match prefixes with
      | [] -> None
      | p0 :: _ ->
          let bits = p0.Ipnet.bits in
          if not (List.for_all (fun p -> p.Ipnet.bits = bits) prefixes) then None
          else
            (* try enclosing parents from tight to loose *)
            let rec try_newbits newbits =
              if newbits > bits then None
              else
                let parent_bits = bits - newbits in
                let parent =
                  { Ipnet.network = Int32.logand p0.Ipnet.network (Ipnet.mask parent_bits);
                    bits = parent_bits }
                in
                let netnum p =
                  Int32.to_int
                    (Int32.shift_right_logical
                       (Int32.logxor p.Ipnet.network parent.Ipnet.network)
                       (32 - bits))
                in
                if List.for_all (fun p -> Ipnet.contains ~outer:parent ~inner:p) prefixes
                then
                  let nums = List.map netnum prefixes in
                  match nums with
                  | n0 :: _
                    when List.mapi (fun i n -> n = n0 + i) nums
                         |> List.for_all Fun.id ->
                      Some
                        (P_cidr
                           {
                             parent = Ipnet.prefix_to_string parent;
                             newbits;
                             base = n0;
                           })
                  | _ -> try_newbits (newbits + 1)
                else try_newbits (newbits + 1)
            in
            try_newbits 1)

(* refs to consecutive instances of an already-compacted resource:
   rtype.rname[k].attr with k consecutive *)
let detect_indexed_ref (exprs : Ast.expr list) =
  let decompose (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.GetAttr
        ( {
            Ast.desc =
              Ast.Index
                ( { Ast.desc = Ast.GetAttr ({ Ast.desc = Ast.Var rtype; _ }, rname); _ },
                  { Ast.desc = Ast.Int k; _ } );
            _;
          },
          attr ) ->
        Some (rtype, rname, attr, k)
    | _ -> None
  in
  let ds = List.map decompose exprs in
  if List.exists (fun d -> d = None) ds then None
  else
    match List.map Option.get ds with
    | [] -> None
    | (t0, n0, a0, k0) :: rest as all ->
        if
          List.for_all (fun (t, n, a, _) -> t = t0 && n = n0 && a = a0) rest
          && List.mapi (fun i (_, _, _, k) -> k = k0 + i) all |> List.for_all Fun.id
        then Some (P_indexed_ref { rtype = t0; rname = n0; attr = a0; base = k0 })
        else None

let detect_pattern (exprs : Ast.expr list) : attr_pattern option =
  match exprs with
  | [] -> None
  | e0 :: rest ->
      if List.for_all (expr_equal e0) rest then Some (P_same e0)
      else (
        match List.map string_lit_of exprs with
        | strs when List.for_all (fun s -> s <> None) strs -> (
            let values = List.map Option.get strs in
            match detect_int_suffix values with
            | Some p -> Some p
            | None -> detect_cidr values)
        | _ -> (
            match List.map int_lit_of exprs with
            | ints when List.for_all (fun i -> i <> None) ints ->
                detect_arith (List.map Option.get ints)
            | _ -> detect_indexed_ref exprs))

type group_rewrite = {
  new_block : Hcl.Config.resource;
  renames : (string * int) list;  (** old rname -> index in new block *)
}

(* Try to compact one group (same rtype, same attr-name sets, n >= 2).
   Ordering heuristic: order members by their first varying attribute
   (numerically when int-suffixed, else lexicographically). *)
let try_compact_group (rs : Hcl.Config.resource list) : group_rewrite option =
  match rs with
  | [] | [ _ ] -> None
  | r0 :: _ ->
      let attr_names =
        List.map (fun (a : Ast.attribute) -> a.Ast.aname) r0.Hcl.Config.rbody.Ast.attrs
      in
      let get r name = Option.get (Ast.attr r.Hcl.Config.rbody name) in
      (* choose ordering *)
      let varying =
        List.filter
          (fun name ->
            let e0 = get r0 name in
            not (List.for_all (fun r -> expr_equal e0 (get r name)) rs))
          attr_names
      in
      (* natural ordering: split the first varying attribute's rendering
         into text/number segments so "w-10" sorts after "w-2" and
         "10.0.10.0/24" after "10.0.2.0/24" *)
      let natural_key s =
        let segs = ref [] in
        let buf = Buffer.create 8 in
        let num = ref false in
        let flush () =
          if Buffer.length buf > 0 then begin
            let seg = Buffer.contents buf in
            segs :=
              (if !num then `Num (int_of_string seg) else `Txt seg) :: !segs;
            Buffer.clear buf
          end
        in
        String.iter
          (fun c ->
            let is_digit = c >= '0' && c <= '9' in
            if is_digit <> !num then begin
              flush ();
              num := is_digit
            end;
            Buffer.add_char buf c)
          s;
        flush ();
        List.rev !segs
      in
      let order =
        match varying with
        | [] -> rs  (* identical resources: any order *)
        | first :: _ ->
            let key r =
              natural_key
                (match string_lit_of (get r first) with
                | Some s -> s
                | None -> Hcl.Printer.expr_to_string (get r first))
            in
            List.sort (fun a b -> compare (key a) (key b)) rs
      in
      let patterns =
        List.map
          (fun name ->
            (name, detect_pattern (List.map (fun r -> get r name) order)))
          attr_names
      in
      if List.for_all (fun (_, p) -> p <> None) patterns then
        (* full count compaction *)
        let attrs =
          List.map
            (fun (name, p) ->
              {
                Ast.aname = name;
                avalue = pattern_to_expr (Option.get p);
                aspan = Hcl.Loc.dummy;
              })
            patterns
        in
        let new_block =
          {
            r0 with
            Hcl.Config.rname = r0.Hcl.Config.rname;
            rcount = Some (Ast.mk (Ast.Int (List.length rs)));
            rbody = { r0.Hcl.Config.rbody with Ast.attrs };
          }
        in
        Some
          {
            new_block;
            renames =
              List.mapi (fun i r -> (r.Hcl.Config.rname, i)) order;
          }
      else
        (* for_each fallback: exactly one patternless varying attr, all
           string literals, all distinct *)
        let unmatched =
          List.filter (fun (_, p) -> p = None) patterns |> List.map fst
        in
        match unmatched with
        | [ attr ] -> (
            let values = List.map (fun r -> string_lit_of (get r attr)) order in
            if List.for_all (fun v -> v <> None) values then
              let values = List.map Option.get values in
              if List.length (List.sort_uniq compare values) = List.length values
              then
                let attrs =
                  List.map
                    (fun (name, p) ->
                      let avalue =
                        if name = attr then
                          Ast.mk (Ast.GetAttr (Ast.mk (Ast.Var "each"), "value"))
                        else pattern_to_expr (Option.get p)
                      in
                      { Ast.aname = name; avalue; aspan = Hcl.Loc.dummy })
                    patterns
                in
                let fe =
                  Ast.mk
                    (Ast.Call
                       ( "toset",
                         [ Ast.mk (Ast.ListLit (List.map Ast.string_lit values)) ],
                         false ))
                in
                let new_block =
                  {
                    r0 with
                    Hcl.Config.rcount = None;
                    rfor_each = Some fe;
                    rbody = { r0.Hcl.Config.rbody with Ast.attrs };
                  }
                in
                (* for_each renames are by key, not index; indexes are
                   unusable for cross-references, so only offer the
                   rewrite when nothing references the group (checked by
                   the caller via renames = []) *)
                Some { new_block; renames = [] }
              else None
            else None)
        | _ -> None

(* rewrite references to compacted members: t.old.attr -> t.new[i].attr *)
let rewrite_refs_in_expr (renames : (string * string * string * int) list)
    (e : Ast.expr) : Ast.expr =
  let rec go (e : Ast.expr) =
    let mk desc = { e with Ast.desc } in
    match e.Ast.desc with
    | Ast.GetAttr ({ Ast.desc = Ast.GetAttr ({ Ast.desc = Ast.Var rtype; _ }, rname); _ }, attr)
      -> (
        match
          List.find_opt (fun (t, o, _, _) -> t = rtype && o = rname) renames
        with
        | Some (_, _, new_name, idx) ->
            Ast.mk
              (Ast.GetAttr
                 ( Ast.mk
                     (Ast.Index
                        ( Ast.mk (Ast.GetAttr (Ast.mk (Ast.Var rtype), new_name)),
                          Ast.mk (Ast.Int idx) )),
                   attr ))
        | None -> e)
    | Ast.GetAttr (inner, a) -> mk (Ast.GetAttr (go inner, a))
    | Ast.Index (inner, i) -> mk (Ast.Index (go inner, go i))
    | Ast.Splat (inner, a) -> mk (Ast.Splat (go inner, a))
    | Ast.ListLit es -> mk (Ast.ListLit (List.map go es))
    | Ast.ObjectLit kvs ->
        mk (Ast.ObjectLit (List.map (fun (k, v) -> (k, go v)) kvs))
    | Ast.Call (f, args, ex) -> mk (Ast.Call (f, List.map go args, ex))
    | Ast.Unop (op, a) -> mk (Ast.Unop (op, go a))
    | Ast.Binop (op, a, b) -> mk (Ast.Binop (op, go a, go b))
    | Ast.Cond (c, a, b) -> mk (Ast.Cond (go c, go a, go b))
    | Ast.Paren a -> mk (Ast.Paren (go a))
    | Ast.Template parts ->
        mk
          (Ast.Template
             (List.map
                (function
                  | Ast.Lit s -> Ast.Lit s
                  | Ast.Interp e -> Ast.Interp (go e))
                parts))
    | Ast.ForList fc ->
        mk (Ast.ForList { fc with Ast.coll = go fc.Ast.coll; body = go fc.Ast.body })
    | Ast.ForMap (fc, v) ->
        mk (Ast.ForMap ({ fc with Ast.coll = go fc.Ast.coll; body = go fc.Ast.body }, go v))
    | Ast.Null | Ast.Bool _ | Ast.Int _ | Ast.Float _ | Ast.Var _ -> e
  in
  go e

let rewrite_refs_in_resource renames (r : Hcl.Config.resource) =
  let attrs =
    List.map
      (fun (a : Ast.attribute) ->
        { a with Ast.avalue = rewrite_refs_in_expr renames a.Ast.avalue })
      r.Hcl.Config.rbody.Ast.attrs
  in
  { r with Hcl.Config.rbody = { r.Hcl.Config.rbody with Ast.attrs } }

(* One compaction sweep; returns the new config and whether progress
   was made.  Iterated to fixpoint so groups that reference freshly
   compacted groups can compact in a later round (indexed-ref
   pattern). *)
let compact_once (cfg : Hcl.Config.t) : Hcl.Config.t * bool =
  let shape (r : Hcl.Config.resource) =
    ( r.Hcl.Config.rtype,
      List.sort compare
        (List.map (fun (a : Ast.attribute) -> a.Ast.aname) r.Hcl.Config.rbody.Ast.attrs),
      r.Hcl.Config.rcount = None && r.Hcl.Config.rfor_each = None )
  in
  (* stable grouping *)
  let groups : (string * (Hcl.Config.resource list ref)) list ref = ref [] in
  List.iter
    (fun r ->
      let rtype, names, plain = shape r in
      if plain then begin
        let key = rtype ^ "|" ^ String.concat "," names in
        match List.assoc_opt key !groups with
        | Some cell -> cell := r :: !cell
        | None -> groups := !groups @ [ (key, ref [ r ]) ]
      end)
    cfg.Hcl.Config.resources;
  let rewrites =
    List.filter_map
      (fun (_, cell) ->
        let members = List.rev !cell in
        if List.length members >= 2 then
          match try_compact_group members with
          | Some rw when rw.renames <> [] -> Some (members, rw)
          | Some rw ->
              (* for_each rewrite: only safe when nothing references the
                 members *)
              let member_names =
                List.map (fun r -> (r.Hcl.Config.rtype, r.Hcl.Config.rname)) members
              in
              let referenced =
                List.exists
                  (fun (r : Hcl.Config.resource) ->
                    not
                      (List.mem
                         (r.Hcl.Config.rtype, r.Hcl.Config.rname)
                         member_names)
                    && List.exists
                         (function
                           | Hcl.Refs.Tresource (t, n) ->
                               List.mem (t, n) member_names
                           | _ -> false)
                         (Hcl.Refs.of_body r.Hcl.Config.rbody))
                  cfg.Hcl.Config.resources
              in
              if referenced then None else Some (members, rw)
          | None -> None
        else None)
      !groups
  in
  match rewrites with
  | [] -> (cfg, false)
  | _ ->
      let removed =
        List.concat_map
          (fun (members, _) ->
            List.map (fun r -> (r.Hcl.Config.rtype, r.Hcl.Config.rname)) members)
          rewrites
      in
      let renames =
        List.concat_map
          (fun (members, rw) ->
            let rtype = (List.hd members).Hcl.Config.rtype in
            let new_name = rw.new_block.Hcl.Config.rname in
            List.map (fun (old, i) -> (rtype, old, new_name, i)) rw.renames)
          rewrites
      in
      let resources =
        List.filter_map
          (fun (r : Hcl.Config.resource) ->
            if List.mem (r.Hcl.Config.rtype, r.Hcl.Config.rname) removed then None
            else Some (rewrite_refs_in_resource renames r))
          cfg.Hcl.Config.resources
      in
      (* insert new blocks at the position of their first member *)
      let new_blocks = List.map (fun (_, rw) -> rw.new_block) rewrites in
      let new_blocks =
        List.map (rewrite_refs_in_resource renames) new_blocks
      in
      ({ cfg with Hcl.Config.resources = resources @ new_blocks }, true)

let compact_groups (cfg : Hcl.Config.t) : Hcl.Config.t =
  let rec fix cfg rounds =
    if rounds = 0 then cfg
    else
      let cfg', progress = compact_once cfg in
      if progress then fix cfg' (rounds - 1) else cfg'
  in
  fix cfg 6

(* ------------------------------------------------------------------ *)
(* Pass 4: module extraction                                           *)
(* ------------------------------------------------------------------ *)

(* Connected components of the intra-config reference graph. *)
let components (cfg : Hcl.Config.t) : Hcl.Config.resource list list =
  let key (r : Hcl.Config.resource) = (r.Hcl.Config.rtype, r.Hcl.Config.rname) in
  let nodes = List.map key cfg.Hcl.Config.resources in
  let adj = Hashtbl.create 32 in
  let add_edge a b =
    if a <> b && List.mem b nodes then begin
      Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a));
      Hashtbl.replace adj b (a :: Option.value ~default:[] (Hashtbl.find_opt adj b))
    end
  in
  List.iter
    (fun (r : Hcl.Config.resource) ->
      List.iter
        (function
          | Hcl.Refs.Tresource (t, n) -> add_edge (key r) (t, n)
          | _ -> ())
        (Hcl.Refs.of_body r.Hcl.Config.rbody))
    cfg.Hcl.Config.resources;
  let visited = Hashtbl.create 32 in
  let by_key = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace by_key (key r) r) cfg.Hcl.Config.resources;
  List.filter_map
    (fun r ->
      let k = key r in
      if Hashtbl.mem visited k then None
      else begin
        let comp = ref [] in
        let rec dfs k =
          if not (Hashtbl.mem visited k) then begin
            Hashtbl.replace visited k ();
            (match Hashtbl.find_opt by_key k with
            | Some r -> comp := r :: !comp
            | None -> ());
            List.iter dfs (Option.value ~default:[] (Hashtbl.find_opt adj k))
          end
        in
        dfs k;
        Some (List.rev !comp)
      end)
    cfg.Hcl.Config.resources

(* Canonical signature of a component: types, attr names, and internal
   reference structure with names abstracted to positional indexes. *)
let component_signature (comp : Hcl.Config.resource list) : string =
  let comp =
    List.sort
      (fun (a : Hcl.Config.resource) b ->
        compare
          (a.Hcl.Config.rtype, a.Hcl.Config.rname)
          (b.Hcl.Config.rtype, b.Hcl.Config.rname))
      comp
  in
  let index_of t n =
    let rec go i = function
      | [] -> -1
      | (r : Hcl.Config.resource) :: rest ->
          if r.Hcl.Config.rtype = t && r.Hcl.Config.rname = n then i
          else go (i + 1) rest
    in
    go 0 comp
  in
  let entry (r : Hcl.Config.resource) =
    let attrs =
      List.map
        (fun (a : Ast.attribute) ->
          let refs =
            Hcl.Refs.of_expr a.Ast.avalue
            |> List.filter_map (function
                 | Hcl.Refs.Tresource (t, n) when index_of t n >= 0 ->
                     Some (string_of_int (index_of t n))
                 | _ -> None)
          in
          a.Ast.aname ^ (if refs = [] then "" else "->" ^ String.concat "+" refs))
        r.Hcl.Config.rbody.Ast.attrs
      |> List.sort compare
    in
    r.Hcl.Config.rtype ^ "{" ^ String.concat ";" attrs ^ "}"
  in
  String.concat "|" (List.map entry comp)

(** Extract repeated structures into modules.  Returns the rewritten
    root configuration plus the module library (source path ->
    configuration) to register in the evaluator's module registry. *)
let extract_modules ?(min_component_size = 2) ?(min_occurrences = 2)
    (cfg : Hcl.Config.t) : Hcl.Config.t * (string * Hcl.Config.t) list =
  let comps =
    components cfg |> List.filter (fun c -> List.length c >= min_component_size)
  in
  let by_sig = Hashtbl.create 8 in
  List.iter
    (fun comp ->
      let s = component_signature comp in
      Hashtbl.replace by_sig s (comp :: Option.value ~default:[] (Hashtbl.find_opt by_sig s)))
    comps;
  let module_groups =
    Hashtbl.fold
      (fun _ comps acc ->
        if List.length comps >= min_occurrences then List.rev comps :: acc
        else acc)
      by_sig []
  in
  if module_groups = [] then (cfg, [])
  else begin
    let modules = ref [] in
    let removed = ref [] in
    let module_calls = ref [] in
    List.iteri
      (fun gi group ->
        let sorted_occurrence comp =
          List.sort
            (fun (a : Hcl.Config.resource) b ->
              compare
                (a.Hcl.Config.rtype, a.Hcl.Config.rname)
                (b.Hcl.Config.rtype, b.Hcl.Config.rname))
            comp
        in
        let occurrences = List.map sorted_occurrence group in
        (* canonicalize each occurrence: member i becomes "r<i>" and all
           internal references are rewritten to the canonical names, so
           intra-stamp references stop looking like varying attributes *)
        let canonicalize occ =
          let rename_map =
            List.mapi
              (fun ri (r : Hcl.Config.resource) ->
                (r.Hcl.Config.rtype, r.Hcl.Config.rname, Printf.sprintf "r%d" ri))
              occ
          in
          let rec go (e : Ast.expr) =
            let mk desc = { e with Ast.desc } in
            match e.Ast.desc with
            | Ast.GetAttr
                ({ Ast.desc = Ast.GetAttr ({ Ast.desc = Ast.Var rtype; _ }, rname); _ }, attr)
              -> (
                match
                  List.find_opt (fun (t, o, _) -> t = rtype && o = rname) rename_map
                with
                | Some (_, _, nn) -> resource_ref rtype nn attr
                | None -> e)
            | Ast.GetAttr (inner, a) -> mk (Ast.GetAttr (go inner, a))
            | Ast.Index (inner, i) -> mk (Ast.Index (go inner, go i))
            | Ast.ListLit es -> mk (Ast.ListLit (List.map go es))
            | Ast.Call (f, args, ex) -> mk (Ast.Call (f, List.map go args, ex))
            | Ast.Template parts ->
                mk
                  (Ast.Template
                     (List.map
                        (function
                          | Ast.Lit s -> Ast.Lit s
                          | Ast.Interp e -> Ast.Interp (go e))
                        parts))
            | _ -> e
          in
          List.mapi
            (fun ri (r : Hcl.Config.resource) ->
              let attrs =
                List.map
                  (fun (a : Ast.attribute) -> { a with Ast.avalue = go a.Ast.avalue })
                  r.Hcl.Config.rbody.Ast.attrs
              in
              {
                r with
                Hcl.Config.rname = Printf.sprintf "r%d" ri;
                rbody = { r.Hcl.Config.rbody with Ast.attrs };
              })
            occ
        in
        let canon = List.map canonicalize occurrences in
        let template = List.hd canon in
        (* attrs that still differ across canonical occurrences become
           module variables *)
        let varying = ref [] in
        List.iteri
          (fun ri (tr : Hcl.Config.resource) ->
            List.iter
              (fun (a : Ast.attribute) ->
                let values =
                  List.map
                    (fun occ ->
                      let r = List.nth occ ri in
                      Option.get (Ast.attr r.Hcl.Config.rbody a.Ast.aname))
                    canon
                in
                match values with
                | v0 :: rest when not (List.for_all (expr_equal v0) rest) ->
                    varying := (ri, a.Ast.aname) :: !varying
                | _ -> ())
              tr.Hcl.Config.rbody.Ast.attrs)
          template;
        let varying = List.rev !varying in
        (* a varying value containing references cannot be lifted to a
           root-level module argument: skip such groups *)
        let liftable =
          List.for_all
            (fun (ri, aname) ->
              List.for_all
                (fun occ ->
                  let r = List.nth occ ri in
                  let v = Option.get (Ast.attr r.Hcl.Config.rbody aname) in
                  Hcl.Refs.of_expr v = [])
                canon)
            varying
        in
        if liftable then begin
          let var_name (ri, aname) = Printf.sprintf "r%d_%s" ri aname in
          let child_resources =
            List.mapi
              (fun ri (tr : Hcl.Config.resource) ->
                let attrs =
                  List.map
                    (fun (a : Ast.attribute) ->
                      if List.mem (ri, a.Ast.aname) varying then
                        {
                          a with
                          Ast.avalue =
                            Ast.mk
                              (Ast.GetAttr
                                 (Ast.mk (Ast.Var "var"), var_name (ri, a.Ast.aname)));
                        }
                      else a)
                    tr.Hcl.Config.rbody.Ast.attrs
                in
                { tr with Hcl.Config.rbody = { tr.Hcl.Config.rbody with Ast.attrs } })
              template
          in
          let child =
            {
              (Hcl.Config.empty ~file:"<module>") with
              Hcl.Config.variables =
                List.map
                  (fun v ->
                    {
                      Hcl.Config.vname = var_name v;
                      vtype = None;
                      vdefault = None;
                      vdescription = None;
                      vspan = Hcl.Loc.dummy;
                    })
                  varying;
              resources = child_resources;
            }
          in
          let source = Printf.sprintf "./modules/stamp_%d" gi in
          modules := (source, child) :: !modules;
          List.iteri
            (fun oi occ ->
              (* record the *original* names for removal *)
              removed :=
                List.map
                  (fun (r : Hcl.Config.resource) ->
                    (r.Hcl.Config.rtype, r.Hcl.Config.rname))
                  (List.nth occurrences oi)
                @ !removed;
              let args =
                List.map
                  (fun (ri, aname) ->
                    let r = List.nth occ ri in
                    ( var_name (ri, aname),
                      Option.get (Ast.attr r.Hcl.Config.rbody aname) ))
                  varying
              in
              module_calls :=
                {
                  Hcl.Config.mname = Printf.sprintf "stamp_%d_%d" gi oi;
                  msource = source;
                  margs = args;
                  mcount = None;
                  mfor_each = None;
                  mspan = Hcl.Loc.dummy;
                }
                :: !module_calls)
            canon
        end)
      module_groups;
    let resources =
      List.filter
        (fun (r : Hcl.Config.resource) ->
          not (List.mem (r.Hcl.Config.rtype, r.Hcl.Config.rname) !removed))
        cfg.Hcl.Config.resources
    in
    ( {
        cfg with
        Hcl.Config.resources;
        modules = cfg.Hcl.Config.modules @ List.rev !module_calls;
      },
      List.rev !modules )
  end

(* ------------------------------------------------------------------ *)
(* Pass 4b: module-call compaction                                     *)
(* ------------------------------------------------------------------ *)

(** Collapse repeated calls to the same module source into one call
    with [for_each] — §3.1's "nested modules ... wrap sets of resources
    with the same structure" taken one step further.  Each call's
    literal arguments become one entry of the for_each map; argument
    references inside the call body become [each.value.<arg>]. *)
let compact_module_calls (cfg : Hcl.Config.t) : Hcl.Config.t =
  let by_source = Hashtbl.create 8 in
  List.iter
    (fun (m : Hcl.Config.module_call) ->
      if m.Hcl.Config.mcount = None && m.Hcl.Config.mfor_each = None then
        Hashtbl.replace by_source m.Hcl.Config.msource
          (m :: Option.value ~default:[] (Hashtbl.find_opt by_source m.Hcl.Config.msource)))
    cfg.Hcl.Config.modules;
  let groups =
    Hashtbl.fold
      (fun source calls acc ->
        let calls = List.rev calls in
        let arg_names (m : Hcl.Config.module_call) =
          List.sort compare (List.map fst m.Hcl.Config.margs)
        in
        match calls with
        | first :: _ :: _
          when List.for_all
                 (fun m ->
                   arg_names m = arg_names first
                   && List.for_all
                        (fun (_, e) -> Hcl.Refs.of_expr e = [] && Ast.is_literal e)
                        m.Hcl.Config.margs)
                 calls ->
            (source, calls) :: acc
        | _ -> acc)
      by_source []
  in
  if groups = [] then cfg
  else begin
    let removed = ref [] in
    let new_calls =
      List.map
        (fun (source, calls) ->
          List.iter
            (fun (m : Hcl.Config.module_call) ->
              removed := m.Hcl.Config.mname :: !removed)
            calls;
          let entries =
            List.map
              (fun (m : Hcl.Config.module_call) ->
                ( Ast.Kident m.Hcl.Config.mname,
                  Ast.mk
                    (Ast.ObjectLit
                       (List.map
                          (fun (name, e) -> (Ast.Kident name, e))
                          m.Hcl.Config.margs)) ))
              calls
          in
          let arg_names =
            match calls with
            | m :: _ -> List.map fst m.Hcl.Config.margs
            | [] -> []
          in
          let margs =
            List.map
              (fun name ->
                ( name,
                  Ast.mk
                    (Ast.GetAttr
                       ( Ast.mk (Ast.GetAttr (Ast.mk (Ast.Var "each"), "value")),
                         name )) ))
              arg_names
          in
          {
            Hcl.Config.mname = (List.hd calls).Hcl.Config.mname;
            msource = source;
            margs;
            mcount = None;
            mfor_each = Some (Ast.mk (Ast.ObjectLit entries));
            mspan = Hcl.Loc.dummy;
          })
        groups
    in
    {
      cfg with
      Hcl.Config.modules =
        List.filter
          (fun (m : Hcl.Config.module_call) ->
            not (List.mem m.Hcl.Config.mname !removed))
          cfg.Hcl.Config.modules
        @ new_calls;
    }
  end

(* ------------------------------------------------------------------ *)
(* The full pipeline                                                   *)
(* ------------------------------------------------------------------ *)

type result = {
  optimized : Hcl.Config.t;
  module_library : (string * Hcl.Config.t) list;
}

(** Run every pass (§3.1's program optimizer). *)
let optimize ?(modules = true) (cfg : Hcl.Config.t) : result =
  let cfg = recover_references cfg in
  let cfg = prune_computed cfg in
  let cfg = compact_groups cfg in
  if modules then
    let optimized, module_library = extract_modules cfg in
    { optimized = compact_module_calls optimized; module_library }
  else { optimized = cfg; module_library = [] }
