(** Type-guided IaC synthesis (§3.1).

    The paper proposes "decompos[ing] the infrastructure into its
    component elements to simplify synthesis, while jointly applying
    formal and textual specifications (e.g., type-guided and ML-based
    search)".  This module implements the formal half: an *intent* is
    a set of requested components; synthesis walks the knowledge base,
    fills required attributes with values generated from their semantic
    types, and closes over [Resource_id] requirements by synthesizing
    the missing dependencies — so the output is correct by
    construction with respect to the type discipline of §3.2. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Ast = Hcl.Ast
module Schema = Cloudless_schema
module T = Schema.Semantic_type

type request = {
  rtype : string;
  name : string;
  count : int;  (** > 1 emits a count block *)
  overrides : (string * Ast.expr) list;  (** user-pinned attributes *)
}

let request ?(count = 1) ?(overrides = []) ~rtype ~name () =
  { rtype; name; count; overrides }

type intent = {
  region : string;
  requests : request list;
}

exception Unsupported of string

(* ------------------------------------------------------------------ *)
(* Value generation from semantic types                                *)
(* ------------------------------------------------------------------ *)

type ctx = {
  intent_region : string;
  mutable cidr_next : int;  (** /16 pool allocator: 10.<n>.0.0/16 *)
  mutable subnet_next : int;
  mutable synthesized : (string * string) list;
      (** (rtype, block name) already in the config, newest first *)
  mutable extra : Hcl.Config.resource list;  (** dependencies added *)
  mutable fresh : int;
}

let fresh_name ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s_%d" prefix ctx.fresh

let alloc_cidr ctx =
  let n = ctx.cidr_next in
  ctx.cidr_next <- n + 1;
  Printf.sprintf "10.%d.0.0/16" (n mod 250)

let alloc_subnet ctx =
  let n = ctx.subnet_next in
  ctx.subnet_next <- n + 1;
  Printf.sprintf "10.0.%d.0/24" (n mod 250)

let short_type rtype =
  match String.index_opt rtype '_' with
  | Some i -> String.sub rtype (i + 1) (String.length rtype - i - 1)
  | None -> rtype

(* Forward declaration: generating a Resource_id may synthesize the
   dependency resource. *)
let rec generate_value ctx (rtype : string) (attr : Schema.Resource_schema.attr)
    : Ast.expr =
  match attr.Schema.Resource_schema.aty with
  | T.Region -> Ast.string_lit ctx.intent_region
  | T.Cidr ->
      if attr.Schema.Resource_schema.aname = "address_prefix" then
        Ast.string_lit (alloc_subnet ctx)
      else if rtype = "aws_subnet" then Ast.string_lit (alloc_subnet ctx)
      else Ast.string_lit (alloc_cidr ctx)
  | T.Ip_address -> Ast.string_lit "10.0.0.10"
  | T.Name -> Ast.string_lit (fresh_name ctx (short_type rtype))
  | T.Str -> Ast.string_lit (fresh_name ctx attr.Schema.Resource_schema.aname)
  | T.Int -> Ast.mk (Ast.Int 1)
  | T.Num -> Ast.mk (Ast.Int 1)
  | T.Port -> Ast.mk (Ast.Int 443)
  | T.Protocol -> Ast.string_lit "tcp"
  | T.Bool -> Ast.mk (Ast.Bool false)
  | T.Enum (v :: _) -> Ast.string_lit v
  | T.Enum [] -> raise (Unsupported "empty enum")
  | T.Resource_id wanted -> reference_to ctx wanted
  | T.List_of (T.Resource_id wanted) ->
      Ast.mk (Ast.ListLit [ reference_to ctx wanted ])
  | T.List_of T.Cidr -> Ast.mk (Ast.ListLit [ Ast.string_lit (alloc_cidr ctx) ])
  | T.List_of _ -> Ast.mk (Ast.ListLit [])
  | T.Map_of _ -> Ast.mk (Ast.ObjectLit [])
  | T.Any -> Ast.string_lit "value"

(* A reference to a resource of type [wanted]: reuse one already in the
   configuration, else synthesize the dependency (recursively). *)
and reference_to ctx wanted : Ast.expr =
  let name =
    match List.assoc_opt wanted ctx.synthesized with
    | Some name -> name
    | None -> synthesize_dependency ctx wanted
  in
  Ast.mk
    (Ast.GetAttr
       (Ast.mk (Ast.GetAttr (Ast.mk (Ast.Var wanted), name)), "id"))

and synthesize_dependency ctx wanted : string =
  match Schema.Catalog.find wanted with
  | None -> raise (Unsupported (Printf.sprintf "no schema for %s" wanted))
  | Some schema ->
      let name = fresh_name ctx (short_type wanted) in
      (* register *before* recursing so cycles cannot diverge *)
      ctx.synthesized <- (wanted, name) :: ctx.synthesized;
      let attrs =
        Schema.Resource_schema.required_attrs schema
        |> List.map (fun (a : Schema.Resource_schema.attr) ->
               {
                 Ast.aname = a.Schema.Resource_schema.aname;
                 avalue = generate_value ctx wanted a;
                 aspan = Hcl.Loc.dummy;
               })
      in
      let r =
        {
          Hcl.Config.rtype = wanted;
          rname = name;
          rbody = { Ast.attrs; blocks = [] };
          rcount = None;
          rfor_each = None;
          rprovider = None;
          rdepends_on = [];
          rlifecycle = Hcl.Config.default_lifecycle;
          rspan = Hcl.Loc.dummy;
        }
      in
      ctx.extra <- r :: ctx.extra;
      name

(* ------------------------------------------------------------------ *)
(* Synthesis                                                           *)
(* ------------------------------------------------------------------ *)

(** Synthesize a configuration fulfilling the intent.  The result is
    type-correct by construction: every required attribute of every
    requested type is filled with a value generated from its semantic
    type, and every [Resource_id] reference points at a synthesized
    resource of exactly the right type. *)
let synthesize (intent : intent) : Hcl.Config.t =
  let ctx =
    {
      intent_region = intent.region;
      cidr_next = 0;
      subnet_next = 1;
      synthesized = [];
      extra = [];
      fresh = 0;
    }
  in
  let requested =
    List.map
      (fun req ->
        match Schema.Catalog.find req.rtype with
        | None -> raise (Unsupported (Printf.sprintf "no schema for %s" req.rtype))
        | Some schema ->
            ctx.synthesized <- (req.rtype, req.name) :: ctx.synthesized;
            let attrs =
              Schema.Resource_schema.required_attrs schema
              |> List.filter_map (fun (a : Schema.Resource_schema.attr) ->
                     if List.mem_assoc a.Schema.Resource_schema.aname req.overrides
                     then None
                     else
                       Some
                         {
                           Ast.aname = a.Schema.Resource_schema.aname;
                           avalue = generate_value ctx req.rtype a;
                           aspan = Hcl.Loc.dummy;
                         })
            in
            let override_attrs =
              List.map
                (fun (name, e) ->
                  { Ast.aname = name; avalue = e; aspan = Hcl.Loc.dummy })
                req.overrides
            in
            {
              Hcl.Config.rtype = req.rtype;
              rname = req.name;
              rbody = { Ast.attrs = attrs @ override_attrs; blocks = [] };
              rcount =
                (if req.count > 1 then Some (Ast.mk (Ast.Int req.count)) else None);
              rfor_each = None;
              rprovider = None;
              rdepends_on = [];
              rlifecycle = Hcl.Config.default_lifecycle;
              rspan = Hcl.Loc.dummy;
            })
      intent.requests
  in
  {
    (Hcl.Config.empty ~file:"<synthesized>") with
    Hcl.Config.resources = List.rev ctx.extra @ requested;
  }

(** Convenience: synthesize straight to HCL source text. *)
let synthesize_source intent = Hcl.Config.to_string (synthesize intent)
