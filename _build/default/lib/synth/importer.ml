(** Porting non-IaC infrastructure to IaC (§3.1).

    [import] does what Terraformer/Aztfy do today: walk the live cloud
    and emit one resource block per cloud resource, with every
    attribute spelled out as a literal — correct but unmaintainable.
    The {!Refactor} optimizer then turns that into idiomatic IaC. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Ast = Hcl.Ast
module Smap = Value.Smap
module Cloud = Cloudless_sim.Cloud

(* Cloud ids ("vpc-00001a") are not valid HCL block names. *)
let sanitize_name cloud_id =
  String.map
    (function
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c
      | _ -> '_')
    cloud_id

let attr_of_value (name, v) =
  match Hcl.Codec.value_to_expr v with
  | e -> Some { Ast.aname = name; avalue = e; aspan = Hcl.Loc.dummy }
  | exception Hcl.Codec.Not_literal _ -> None

(** Snapshot the cloud into a naive configuration: the faithful but
    verbose translation the paper criticizes ("usually lack clear
    structures and require the DevOps engineers to manually analyze
    and refactor them"). *)
let import (cloud : Cloud.t) ?(filter = fun (_ : Cloud.resource) -> true) () :
    Hcl.Config.t =
  let resources =
    Cloud.all_resources cloud
    |> List.filter filter
    |> List.map (fun (r : Cloud.resource) ->
           let attrs =
             Smap.bindings r.Cloud.attrs |> List.filter_map attr_of_value
           in
           {
             Hcl.Config.rtype = r.Cloud.rtype;
             rname = sanitize_name r.Cloud.cloud_id;
             rbody = { Ast.attrs; blocks = [] };
             rcount = None;
             rfor_each = None;
             rprovider = None;
             rdepends_on = [];
             rlifecycle = Hcl.Config.default_lifecycle;
             rspan = Hcl.Loc.dummy;
           })
  in
  { (Hcl.Config.empty ~file:"<imported>") with Hcl.Config.resources }
