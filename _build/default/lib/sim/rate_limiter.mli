(** Token-bucket API rate limiter.

    Models management-plane throttling: a bucket of [capacity] tokens
    refilling at [refill_rate] per second; an empty bucket answers with
    a 429-style rejection carrying a Retry-After delay. *)

type t

val create : capacity:float -> refill_rate:float -> t

(** AWS-style default write budget (burst 50, ~2/s sustained). *)
val default_write : unit -> t

(** AWS-style default read budget. *)
val default_read : unit -> t

(** Azure Resource Manager-style budget: 1200 writes/hour. *)
val azure_write : unit -> t

(** Azure Resource Manager-style budget: 12000 reads/hour. *)
val azure_read : unit -> t

(** Try to admit one call at simulation time [now]; [Error delay]
    means throttled, retry after [delay] seconds. *)
val try_acquire : t -> now:float -> (unit, float) result

(** Reserve one token allowing a negative balance; returns the delay
    until the reservation is covered by refill.  The client-side pacing
    primitive: reservations beyond the burst capacity space themselves
    at the refill rate. *)
val reserve : t -> now:float -> float

(** Tokens currently available. *)
val available : t -> now:float -> float

(** Seconds until [n] tokens would be available. *)
val time_until : t -> now:float -> float -> float

(** (admitted, throttled) counters. *)
val stats : t -> int * int

val reset_stats : t -> unit
