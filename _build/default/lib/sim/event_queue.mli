(** Binary-heap event queue for the discrete-event simulator.

    Events are ordered by (time, insertion sequence): ties fire in
    insertion order, keeping runs deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

(** Schedule a payload at an absolute time. *)
val push : 'a t -> time:float -> 'a -> unit

(** Remove and return the earliest event. *)
val pop : 'a t -> (float * 'a) option

(** Earliest event time without removing it. *)
val peek_time : 'a t -> float option
