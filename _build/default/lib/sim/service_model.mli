(** Per-resource-type service-time model.

    Calibrated mean provisioning times (seconds) with multiplicative
    jitter; the skew between slow resources (gateways, databases) and
    fast ones (rules, records) is what makes critical-path scheduling
    matter (§3.3). *)

type op_kind = Op_create | Op_update | Op_delete | Op_read

type profile = {
  create_mean : float;
  update_mean : float;
  delete_mean : float;
  jitter : float;  (** multiplicative amplitude, e.g. 0.2 = ±20% *)
}

(** Profile for a resource type (a generic default when unknown). *)
val find : string -> profile

(** Sampled duration with deterministic jitter from the PRNG. *)
val sample : Prng.t -> string -> op_kind -> float

(** Expected (mean) duration — used by planners, consumes no
    randomness. *)
val expected : string -> op_kind -> float
