lib/sim/service_model.ml: Float List Prng
