lib/sim/activity_log.mli: Format
