lib/sim/rate_limiter.mli:
