lib/sim/failure.ml: List Prng
