lib/sim/service_model.mli: Prng
