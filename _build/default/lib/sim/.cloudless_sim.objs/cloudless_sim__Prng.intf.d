lib/sim/prng.mli:
