lib/sim/activity_log.ml: Fmt List
