lib/sim/cloud.ml: Activity_log Cloudless_hcl Event_queue Failure Float Hashtbl List Printf Prng Rate_limiter Service_model String
