lib/sim/rate_limiter.ml: Float
