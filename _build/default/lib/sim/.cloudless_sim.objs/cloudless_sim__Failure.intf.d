lib/sim/failure.mli: Prng
