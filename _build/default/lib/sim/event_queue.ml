(** Binary-heap event queue for the discrete-event simulator.

    Events are ordered by (time, sequence number): ties break in
    insertion order, which keeps runs deterministic. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (** heap.(0) is the minimum *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

let entry_before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let ncap = max 16 (cap * 2) in
    let nh =
      Array.make ncap
        (if cap = 0 then { time = 0.; seq = 0; payload = Obj.magic 0 }
         else t.heap.(0))
    in
    Array.blit t.heap 0 nh 0 t.size;
    t.heap <- nh
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && entry_before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

(** Schedule [payload] at absolute [time]. *)
let push t ~time payload =
  grow t;
  t.heap.(t.size) <- { time; seq = t.next_seq; payload };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(** Remove and return the earliest event. *)
let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end

(** Earliest event time without removing it. *)
let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
