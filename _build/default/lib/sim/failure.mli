(** Failure-injection policy for the simulated cloud. *)

type t = {
  transient_prob : float;  (** probability a write fails transiently *)
  permanent : (string * string) list;
      (** [(rtype, message)]: creates of this type always fail *)
  hang_prob : float;  (** probability a write hangs (very slow) *)
  hang_factor : float;  (** duration multiplier when hanging *)
}

(** No injected failures. *)
val none : t

val make :
  ?transient_prob:float ->
  ?permanent:(string * string) list ->
  ?hang_prob:float ->
  ?hang_factor:float ->
  unit ->
  t

type outcome =
  | Proceed
  | Slow of float  (** duration multiplier *)
  | Fail_transient of string
  | Fail_permanent of string

(** Draw the outcome for one write operation. *)
val draw : t -> Prng.t -> rtype:string -> outcome
