(** Cloud activity log (Azure Activity Log / CloudTrail analogue).

    An append-only record of every management-plane operation,
    including those performed outside the IaC framework — the signal
    §3.5's log-based drift detector tails. *)

type actor =
  | Iac_engine of string  (** deployments driven by an IaC engine *)
  | Oob_script of string  (** out-of-band change (legacy script, portal) *)
  | Cloud_internal  (** provider-initiated events *)

type operation =
  | Log_create
  | Log_update
  | Log_delete
  | Log_read
  | Log_failure of string

type entry = {
  seq : int;  (** monotone sequence number, the cursor for tailing *)
  time : float;
  actor : actor;
  op : operation;
  cloud_id : string;
  rtype : string;
  region : string;
  detail : string;
}

type t

val create : unit -> t

val append :
  t ->
  time:float ->
  actor:actor ->
  op:operation ->
  cloud_id:string ->
  rtype:string ->
  region:string ->
  detail:string ->
  entry

(** Total entries ever appended (= next sequence number). *)
val length : t -> int

(** Entries with [seq >= cursor], oldest first. *)
val since : t -> int -> entry list

(** All entries, oldest first. *)
val all : t -> entry list

val actor_to_string : actor -> string
val op_to_string : operation -> string
val pp_entry : Format.formatter -> entry -> unit

(** Write operations not attributable to an IaC engine — candidate
    drift events. *)
val non_iac_writes : t -> since:int -> entry list
