(** Per-resource-type service-time model.

    Public cloud provisioning times vary enormously by resource type —
    a network interface appears in seconds while a managed database or
    VPN gateway takes tens of minutes.  §3.3's critical-path argument
    rests on exactly this skew, so the model keeps a calibrated table
    (values in seconds, drawn from public provider documentation and
    community measurements) with lognormal-ish jitter. *)

type op_kind = Op_create | Op_update | Op_delete | Op_read

type profile = {
  create_mean : float;  (** seconds *)
  update_mean : float;
  delete_mean : float;
  jitter : float;  (** multiplicative jitter amplitude, e.g. 0.2 = ±20% *)
}

let profile ?(jitter = 0.2) ~create ?(update = 0.) ?(delete = 0.) () =
  {
    create_mean = create;
    update_mean = (if update > 0. then update else create *. 0.4);
    delete_mean = (if delete > 0. then delete else create *. 0.5);
    jitter;
  }

(* Calibrated defaults.  The absolute values matter less than the
   *ratios*: gateways and databases dominate; NICs, security rules and
   DNS records are fast. *)
let table : (string * profile) list =
  [
    (* networking *)
    ("aws_vpc", profile ~create:3. ());
    ("aws_subnet", profile ~create:2. ());
    ("aws_internet_gateway", profile ~create:5. ());
    ("aws_nat_gateway", profile ~create:110. ());
    ("aws_route_table", profile ~create:2. ());
    ("aws_route", profile ~create:1.5 ());
    ("aws_security_group", profile ~create:2. ());
    ("aws_security_group_rule", profile ~create:1. ());
    ("aws_network_interface", profile ~create:4. ());
    ("aws_eip", profile ~create:2. ());
    ("aws_lb", profile ~create:180. ());
    ("aws_lb_target_group", profile ~create:3. ());
    ("aws_lb_listener", profile ~create:2. ());
    ("aws_vpn_gateway", profile ~create:600. ());
    ("aws_vpn_connection", profile ~create:300. ());
    ("aws_vpc_peering_connection", profile ~create:15. ());
    ("aws_route53_zone", profile ~create:45. ());
    ("aws_route53_record", profile ~create:35. ());
    (* compute *)
    ("aws_instance", profile ~create:45. ~update:60. ~delete:60. ());
    ("aws_launch_template", profile ~create:2. ());
    ("aws_autoscaling_group", profile ~create:90. ());
    ("aws_lambda_function", profile ~create:10. ());
    ("aws_ecs_cluster", profile ~create:8. ());
    ("aws_ecs_service", profile ~create:75. ());
    ("aws_eks_cluster", profile ~create:720. ());
    (* storage / db *)
    ("aws_s3_bucket", profile ~create:4. ());
    ("aws_s3_bucket_policy", profile ~create:2. ());
    ("aws_ebs_volume", profile ~create:8. ());
    ("aws_db_instance", profile ~create:420. ~update:300. ~delete:300. ());
    ("aws_db_subnet_group", profile ~create:2. ());
    ("aws_elasticache_cluster", profile ~create:350. ());
    ("aws_dynamodb_table", profile ~create:20. ());
    (* identity *)
    ("aws_iam_role", profile ~create:3. ());
    ("aws_iam_policy", profile ~create:2. ());
    ("aws_iam_role_policy_attachment", profile ~create:1.5 ());
    (* azure-flavoured types (the paper's running examples are Azure) *)
    ("azurerm_resource_group", profile ~create:3. ());
    ("azurerm_virtual_network", profile ~create:6. ());
    ("azurerm_subnet", profile ~create:4. ());
    ("azurerm_network_interface", profile ~create:5. ());
    ("azurerm_virtual_machine", profile ~create:120. ~delete:150. ());
    ("azurerm_linux_virtual_machine", profile ~create:120. ~delete:150. ());
    ("azurerm_public_ip", profile ~create:4. ());
    ("azurerm_network_security_group", profile ~create:3. ());
    ("azurerm_lb", profile ~create:30. ());
    ("azurerm_virtual_network_gateway", profile ~create:1500. ());
    ("azurerm_virtual_network_peering", profile ~create:10. ());
    ("azurerm_storage_account", profile ~create:20. ());
    ("azurerm_sql_database", profile ~create:300. ());
    (* gcp-flavoured types *)
    ("google_compute_network", profile ~create:25. ());
    ("google_compute_subnetwork", profile ~create:15. ());
    ("google_compute_instance", profile ~create:40. ());
    ("google_compute_firewall", profile ~create:8. ());
    ("google_compute_address", profile ~create:3. ());
    ("google_compute_router", profile ~create:20. ());
    ("google_sql_database_instance", profile ~create:480. ());
    ("google_storage_bucket", profile ~create:3. ());
    ("google_container_cluster", profile ~create:420. ());
    ("google_pubsub_topic", profile ~create:2. ());
    ("google_cloudfunctions_function", profile ~create:60. ());
    ("google_dns_managed_zone", profile ~create:30. ());
    (* the paper's simplified figure-2 types *)
    ("aws_virtual_machine", profile ~create:60. ());
  ]

let default_profile = profile ~create:10. ()

let find rtype =
  match List.assoc_opt rtype table with
  | Some p -> p
  | None -> default_profile

let mean_duration rtype kind =
  let p = find rtype in
  match kind with
  | Op_create -> p.create_mean
  | Op_update -> p.update_mean
  | Op_delete -> p.delete_mean
  | Op_read -> 0.3

(** Sampled duration with deterministic jitter from [prng]. *)
let sample prng rtype kind =
  let p = find rtype in
  let mean = mean_duration rtype kind in
  let j = Prng.float_range prng (1. -. p.jitter) (1. +. p.jitter) in
  Float.max 0.05 (mean *. j)

(** Expected (mean) duration — used by the critical-path planner, which
    must not consume randomness. *)
let expected rtype kind = mean_duration rtype kind
