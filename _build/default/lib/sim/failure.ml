(** Failure-injection policy for the simulated cloud.

    Transient failures model the retryable errors real providers emit
    (capacity blips, eventual-consistency 404s); permanent failures
    model configuration rejections.  Both are drawn deterministically
    from the simulation PRNG. *)

type t = {
  transient_prob : float;  (** probability a write op fails transiently *)
  permanent : (string * string) list;
      (** [(rtype, message)]: creates of this type always fail *)
  hang_prob : float;  (** probability a write op hangs (very slow) *)
  hang_factor : float;  (** duration multiplier when hanging *)
}

let none = { transient_prob = 0.; permanent = []; hang_prob = 0.; hang_factor = 1. }

let make ?(transient_prob = 0.) ?(permanent = []) ?(hang_prob = 0.)
    ?(hang_factor = 20.) () =
  { transient_prob; permanent; hang_prob; hang_factor }

type outcome =
  | Proceed
  | Slow of float  (** duration multiplier *)
  | Fail_transient of string
  | Fail_permanent of string

let draw t prng ~rtype =
  match List.assoc_opt rtype t.permanent with
  | Some msg -> Fail_permanent msg
  | None ->
      if Prng.bernoulli prng t.transient_prob then
        Fail_transient "transient provider error (retryable)"
      else if Prng.bernoulli prng t.hang_prob then Slow t.hang_factor
      else Proceed
