lib/edsl/edsl.ml: Cloudless_hcl Fmt List
