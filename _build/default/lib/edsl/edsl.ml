(** An imperative, embedded front-end — the Pulumi analogue (§2.1).

    "In Pulumi, IaC programs are written using existing imperative
    programming languages ... its language runtime observes code
    execution to extract resource registrations in order to construct
    the graph."

    This module does exactly that for OCaml: user code runs ordinary
    OCaml, registering resources against a context; registration
    returns typed handles whose attribute projections become references
    in the generated configuration.  The output is a stock
    {!Cloudless_hcl.Config.t}, so everything downstream — validation,
    planning, policies, deployment — is shared with the declarative
    path.

    {[
      let cfg = Edsl.program (fun ctx ->
        let vpc =
          Edsl.resource ctx "aws_vpc" "main"
            [ ("cidr_block", Edsl.str "10.0.0.0/16");
              ("region", Edsl.str "us-east-1") ]
        in
        for i = 0 to 2 do
          ignore
            (Edsl.resource ctx "aws_subnet" (Printf.sprintf "s%d" i)
               [ ("vpc_id", Edsl.ref_ vpc "id");
                 ("cidr_block", Edsl.cidrsubnet (Edsl.ref_ vpc "cidr_block") 8 i);
                 ("region", Edsl.str "us-east-1") ])
        done)
    ]}

    Plain OCaml control flow (loops, functions, conditionals) replaces
    HCL's [count]/[for_each] — the imperative trade-off the paper
    describes. *)

module Hcl = Cloudless_hcl
module Ast = Hcl.Ast
module Value = Hcl.Value

(** A registered resource; project attributes with {!ref_}. *)
type handle = { h_rtype : string; h_name : string }

type ctx = {
  mutable resources : Hcl.Config.resource list;  (** reverse order *)
  mutable outputs : Hcl.Config.output list;  (** reverse order *)
  mutable names : (string * string) list;  (** registered (rtype, name) *)
}

exception Registration_error of string

let err fmt = Fmt.kstr (fun s -> raise (Registration_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Expression builders                                                 *)
(* ------------------------------------------------------------------ *)

type expr = Ast.expr

let str s : expr = Ast.string_lit s
let int_ n : expr = Ast.mk (Ast.Int n)
let float_ f : expr = Ast.mk (Ast.Float f)
let bool_ b : expr = Ast.mk (Ast.Bool b)
let list_ es : expr = Ast.mk (Ast.ListLit es)

let map_ kvs : expr =
  Ast.mk (Ast.ObjectLit (List.map (fun (k, v) -> (Ast.Kident k, v)) kvs))

(** [ref_ h attr] — a reference to the handle's attribute, e.g.
    [ref_ vpc "id"] renders as [aws_vpc.main.id]. *)
let ref_ (h : handle) attr : expr =
  Ast.mk
    (Ast.GetAttr
       (Ast.mk (Ast.GetAttr (Ast.mk (Ast.Var h.h_rtype), h.h_name)), attr))

(** Function call, e.g. [call "upper" [str "x"]]. *)
let call name args : expr = Ast.mk (Ast.Call (name, args, false))

let cidrsubnet prefix newbits netnum : expr =
  call "cidrsubnet" [ prefix; int_ newbits; int_ netnum ]

(** String interpolation from parts: [interp [`S "web-"; `E e]]. *)
let interp parts : expr =
  Ast.mk
    (Ast.Template
       (List.map
          (function `S s -> Ast.Lit s | `E e -> Ast.Interp e)
          parts))

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let create () = { resources = []; outputs = []; names = [] }

(** Register a resource and return its handle.  Like Pulumi's resource
    constructors, registration is observed at execution time; names
    must be unique per type. *)
let resource ?(depends_on = []) ctx rtype name attrs : handle =
  if List.mem (rtype, name) ctx.names then
    err "resource %s.%s registered twice" rtype name;
  ctx.names <- (rtype, name) :: ctx.names;
  let body_attrs =
    List.map
      (fun (aname, avalue) -> { Ast.aname; avalue; aspan = Hcl.Loc.dummy })
      attrs
  in
  ctx.resources <-
    {
      Hcl.Config.rtype;
      rname = name;
      rbody = { Ast.attrs = body_attrs; blocks = [] };
      rcount = None;
      rfor_each = None;
      rprovider = None;
      rdepends_on = List.map (fun h -> (h.h_rtype, h.h_name)) depends_on;
      rlifecycle = Hcl.Config.default_lifecycle;
      rspan = Hcl.Loc.dummy;
    }
    :: ctx.resources;
  { h_rtype = rtype; h_name = name }

(** Export a value, like Pulumi's stack outputs. *)
let export ctx name value =
  ctx.outputs <-
    {
      Hcl.Config.oname = name;
      ovalue = value;
      odescription = None;
      ospan = Hcl.Loc.dummy;
    }
    :: ctx.outputs

(** Extract the configuration after user code ran. *)
let to_config ctx : Hcl.Config.t =
  {
    (Hcl.Config.empty ~file:"<edsl>") with
    Hcl.Config.resources = List.rev ctx.resources;
    outputs = List.rev ctx.outputs;
  }

(** Run an imperative program and collect its registrations. *)
let program (f : ctx -> unit) : Hcl.Config.t =
  let ctx = create () in
  f ctx;
  to_config ctx
