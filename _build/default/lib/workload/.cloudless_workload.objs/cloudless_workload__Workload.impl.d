lib/workload/workload.ml: Buffer List Printf String
