(** A deliberately-restricted baseline policy engine modelling today's
    tools (Terrascan/Checkov-style assertion checkers, §3.6).

    Limitations it shares with the real ones, which the obs/action
    engine removes:

    - it can only *deny*: no actions that evolve the program;
    - it only sees the plan/configuration, never runtime telemetry —
      so "scale out VPN tunnels when throughput nears capacity" is
      simply not expressible;
    - checks come from a fixed vocabulary of predicates over resource
      attributes. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Smap = Value.Smap
module Eval = Hcl.Eval

type predicate =
  | Attr_equals of { rtype : string; attr : string; value : Value.t }
  | Attr_present of { rtype : string; attr : string }
  | Attr_absent of { rtype : string; attr : string }
  | Type_forbidden of string
  | Count_at_most of { rtype : string; limit : int }

type check = { cname : string; predicate : predicate; deny_message : string }

type violation = { vcheck : string; vaddr : Hcl.Addr.t option; vmessage : string }

let eval_check (instances : Eval.instance list) (c : check) : violation list =
  let of_type rt =
    List.filter
      (fun (i : Eval.instance) -> i.Eval.addr.Hcl.Addr.rtype = rt)
      instances
  in
  match c.predicate with
  | Attr_equals { rtype; attr; value } ->
      of_type rtype
      |> List.filter_map (fun (i : Eval.instance) ->
             match Smap.find_opt attr i.Eval.attrs with
             | Some v when Value.equal v value ->
                 Some
                   { vcheck = c.cname; vaddr = Some i.Eval.addr; vmessage = c.deny_message }
             | _ -> None)
  | Attr_present { rtype; attr } ->
      of_type rtype
      |> List.filter_map (fun (i : Eval.instance) ->
             if Smap.mem attr i.Eval.attrs then
               Some
                 { vcheck = c.cname; vaddr = Some i.Eval.addr; vmessage = c.deny_message }
             else None)
  | Attr_absent { rtype; attr } ->
      of_type rtype
      |> List.filter_map (fun (i : Eval.instance) ->
             if Smap.mem attr i.Eval.attrs then None
             else
               Some
                 { vcheck = c.cname; vaddr = Some i.Eval.addr; vmessage = c.deny_message })
  | Type_forbidden rtype ->
      of_type rtype
      |> List.map (fun (i : Eval.instance) ->
             { vcheck = c.cname; vaddr = Some i.Eval.addr; vmessage = c.deny_message })
  | Count_at_most { rtype; limit } ->
      let n = List.length (of_type rtype) in
      if n > limit then
        [
          {
            vcheck = c.cname;
            vaddr = None;
            vmessage =
              Printf.sprintf "%s (found %d, limit %d)" c.deny_message n limit;
          };
        ]
      else []

(** Evaluate all checks; any violation denies the plan. *)
let evaluate (checks : check list) (instances : Eval.instance list) :
    violation list =
  List.concat_map (eval_check instances) checks
