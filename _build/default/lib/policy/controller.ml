(** The infrastructure controller (§3.6): "analogous to an SDN
    controller ... allowing users to enforce different policies as
    needed" across the lifecycle.

    The controller holds the policy set; at each lifecycle phase the
    caller provides the phase's observation context and, depending on
    the phase, either a plan (admission control) or a configuration
    (actions evolve the IaC program, which the caller then replans and
    redeploys — policies never touch the cloud directly). *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Smap = Value.Smap
module Plan = Cloudless_plan.Plan
module State = Cloudless_state.State

type t = {
  policies : Policy.t list;
  mutable evaluations : int;
  mutable fired : int;
  mutable notifications : string list;  (** newest first *)
}

let create policies =
  { policies; evaluations = 0; fired = 0; notifications = [] }

let of_source ~file src = create (Policy.parse ~file src)

let notifications t = List.rev t.notifications

type tick_result = {
  decisions : Policy.decision list;
  denied : string option;  (** first deny message, if any *)
  new_config : Hcl.Config.t option;  (** rewritten config, when it changed *)
}

(* ------------------------------------------------------------------ *)
(* Built-in observations                                               *)
(* ------------------------------------------------------------------ *)

(** Standard observations derivable from state + plan; experiment
    harnesses extend this with scenario metrics (VPN throughput, NIC
    load, ...). *)
let standard_obs ?(state = State.empty) ?plan ?(extra = []) () : Policy.obs =
  let count_by_type =
    List.fold_left
      (fun acc (r : State.resource_state) ->
        Smap.update r.State.rtype
          (fun v -> Some (Value.Vint (1 + match v with Some (Value.Vint n) -> n | _ -> 0)))
          acc)
      Smap.empty (State.resources state)
  in
  let base =
    [
      ("resource_count", Value.Vint (State.size state));
      ("count_by_type", Value.Vmap count_by_type);
      ("hourly_cost", Value.Vfloat (Cost_model.of_state state));
    ]
  in
  let plan_obs =
    match plan with
    | None -> []
    | Some p ->
        let s = Plan.summarize p in
        [
          ("plan_creates", Value.Vint s.Plan.to_create);
          ("plan_updates", Value.Vint s.Plan.to_update);
          ("plan_replaces", Value.Vint s.Plan.to_replace);
          ("plan_deletes", Value.Vint s.Plan.to_delete);
          ("plan_cost_delta", Value.Vfloat (Cost_model.delta_of_plan p));
          ( "projected_cost",
            Value.Vfloat (Cost_model.of_state state +. Cost_model.delta_of_plan p)
          );
        ]
  in
  Policy.obs_of_list (base @ plan_obs @ extra)

(* ------------------------------------------------------------------ *)
(* Config rewriting (actions)                                          *)
(* ------------------------------------------------------------------ *)

let split_target target =
  match String.index_opt target '.' with
  | Some i ->
      ( String.sub target 0 i,
        String.sub target (i + 1) (String.length target - i - 1) )
  | None -> (target, "")

(** Apply one decision to a configuration, returning the updated
    configuration and whether anything changed. *)
let apply_decision (cfg : Hcl.Config.t) (d : Policy.decision) :
    Hcl.Config.t * bool =
  match d with
  | Policy.D_set_count { target; count } ->
      let rtype, rname = split_target target in
      let changed = ref false in
      let resources =
        List.map
          (fun (r : Hcl.Config.resource) ->
            if r.Hcl.Config.rtype = rtype && r.Hcl.Config.rname = rname then begin
              changed := true;
              { r with Hcl.Config.rcount = Some (Hcl.Ast.mk (Hcl.Ast.Int count)) }
            end
            else r)
          cfg.Hcl.Config.resources
      in
      ({ cfg with Hcl.Config.resources }, !changed)
  | Policy.D_set_attr { target; attr; value } ->
      let rtype, rname = split_target target in
      let changed = ref false in
      let resources =
        List.map
          (fun (r : Hcl.Config.resource) ->
            if r.Hcl.Config.rtype = rtype && r.Hcl.Config.rname = rname then begin
              changed := true;
              let expr = Hcl.Codec.value_to_expr value in
              let attrs =
                List.filter
                  (fun (a : Hcl.Ast.attribute) -> a.Hcl.Ast.aname <> attr)
                  r.Hcl.Config.rbody.Hcl.Ast.attrs
                @ [ { Hcl.Ast.aname = attr; avalue = expr; aspan = Hcl.Loc.dummy } ]
              in
              {
                r with
                Hcl.Config.rbody = { r.Hcl.Config.rbody with Hcl.Ast.attrs };
              }
            end
            else r)
          cfg.Hcl.Config.resources
      in
      ({ cfg with Hcl.Config.resources }, !changed)
  | Policy.D_deny _ | Policy.D_notify _ -> (cfg, false)

(** Run all policies registered for [phase].

    [config] is required for phases whose actions evolve the program;
    the result carries the rewritten configuration when any action
    changed it. *)
let tick t ~phase ~(obs : Policy.obs) ?config () : tick_result =
  let fired =
    List.filter
      (fun (p : Policy.t) ->
        p.Policy.phase = phase
        &&
        (t.evaluations <- t.evaluations + 1;
         Policy.triggered p obs))
      t.policies
  in
  t.fired <- t.fired + List.length fired;
  let decisions = List.concat_map (fun p -> Policy.decide p obs) fired in
  let denied =
    List.find_map
      (function Policy.D_deny msg -> Some msg | _ -> None)
      decisions
  in
  List.iter
    (function
      | Policy.D_notify msg -> t.notifications <- msg :: t.notifications
      | _ -> ())
    decisions;
  let new_config =
    match config with
    | None -> None
    | Some cfg ->
        let cfg', any =
          List.fold_left
            (fun (cfg, any) d ->
              let cfg', changed = apply_decision cfg d in
              (cfg', any || changed))
            (cfg, false) decisions
        in
        if any then Some cfg' else None
  in
  { decisions; denied; new_config }

let stats t = (t.evaluations, t.fired)
