(** Hourly cost model backing budget policies (§3.6). *)

(** Indicative USD/hour for a resource type (0 when unknown). *)
val of_rtype : string -> float

(** Estimated hourly cost of everything in state. *)
val of_state : Cloudless_state.State.t -> float

(** Hourly cost delta a plan would introduce (creates add, deletes
    subtract). *)
val delta_of_plan : Cloudless_plan.Plan.t -> float
