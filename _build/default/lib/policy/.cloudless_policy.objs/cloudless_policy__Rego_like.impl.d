lib/policy/rego_like.ml: Cloudless_hcl List Printf
