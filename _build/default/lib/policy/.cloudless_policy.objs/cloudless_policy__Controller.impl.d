lib/policy/controller.ml: Cloudless_hcl Cloudless_plan Cloudless_state Cost_model List Policy String
