lib/policy/policy.ml: Cloudless_hcl Fmt List Printf
