lib/policy/cost_model.ml: Cloudless_plan Cloudless_state List Option
