lib/policy/cost_model.mli: Cloudless_plan Cloudless_state
