(** Simple hourly cost model for budget policies (§3.6: "an enterprise
    may require autoscaling policies while ensuring that their
    infrastructure does not exceed their budget").

    Prices are indicative USD/hour figures for small instance classes;
    the absolute values only matter relative to each other. *)

module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan

let hourly : (string * float) list =
  [
    ("aws_instance", 0.0208);
    ("aws_virtual_machine", 0.0208);
    ("aws_nat_gateway", 0.045);
    ("aws_lb", 0.0225);
    ("aws_db_instance", 0.171);
    ("aws_elasticache_cluster", 0.068);
    ("aws_vpn_gateway", 0.05);
    ("aws_vpn_connection", 0.05);
    ("aws_eip", 0.005);
    ("aws_ebs_volume", 0.011);
    ("aws_dynamodb_table", 0.01);
    ("aws_lambda_function", 0.002);
    ("aws_autoscaling_group", 0.0);
    ("azurerm_linux_virtual_machine", 0.023);
    ("azurerm_virtual_machine", 0.023);
    ("azurerm_virtual_network_gateway", 0.10);
    ("azurerm_lb", 0.025);
    ("azurerm_sql_database", 0.15);
    ("azurerm_storage_account", 0.01);
  ]

let of_rtype rtype = Option.value ~default:0. (List.assoc_opt rtype hourly)

(** Estimated hourly cost of everything in state. *)
let of_state (state : State.t) =
  List.fold_left
    (fun acc (r : State.resource_state) -> acc +. of_rtype r.State.rtype)
    0. (State.resources state)

(** Hourly cost delta a plan would introduce. *)
let delta_of_plan (plan : Plan.t) =
  List.fold_left
    (fun acc (c : Plan.change) ->
      match c.Plan.action with
      | Plan.Create -> acc +. of_rtype c.Plan.rtype
      | Plan.Delete -> acc -. of_rtype c.Plan.rtype
      | Plan.Update _ | Plan.Replace _ | Plan.Noop -> acc)
    0. plan.Plan.changes
