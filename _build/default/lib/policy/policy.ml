(** The observation/action policy language (§3.6).

    The paper's abstraction: a policy pairs *observations* (metrics,
    resource counts, drift events, cost — anything exposed at a given
    lifecycle phase) with *actions* (evolve the IaC program: change a
    count, set an attribute, deny a plan, notify).  Policies are
    written in the same HCL the infrastructure uses — no Rego/Datalog
    detour, which is precisely the usability critique the paper makes
    of existing tools:

    {v
    policy "scale_vpn_tunnels" {
      on   = "telemetry"
      when = obs.vpn_utilization > 0.8

      action "add_tunnel" {
        kind   = "set_count"
        target = "aws_vpn_connection.tunnel"
        value  = obs.tunnel_count + 1
      }
    }
    v}

    [when] and [value] are ordinary HCL expressions; the [obs.*]
    namespace is bound at evaluation time from the current phase's
    observation context. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Smap = Value.Smap

type phase = On_plan | On_telemetry | On_drift | On_update

let phase_of_string = function
  | "plan" -> Some On_plan
  | "telemetry" -> Some On_telemetry
  | "drift" -> Some On_drift
  | "update" -> Some On_update
  | _ -> None

let phase_to_string = function
  | On_plan -> "plan"
  | On_telemetry -> "telemetry"
  | On_drift -> "drift"
  | On_update -> "update"

type action_kind =
  | Set_count of { target : string; value : Hcl.Ast.expr }
      (** rewrite [count] of resource [target] ("type.name") *)
  | Set_attr of { target : string; attr : string; value : Hcl.Ast.expr }
  | Deny of { message : Hcl.Ast.expr }  (** reject the plan (admission) *)
  | Notify of { message : Hcl.Ast.expr }

type action = { aname : string; kind : action_kind }

type t = {
  pname : string;
  phase : phase;
  when_ : Hcl.Ast.expr;  (** guard over observations *)
  actions : action list;
  pspan : Hcl.Loc.span;
}

exception Policy_error of string * Hcl.Loc.span

let errf span fmt =
  Fmt.kstr (fun s -> raise (Policy_error (s, span))) fmt

(* ------------------------------------------------------------------ *)
(* Parsing (HCL blocks -> policies)                                    *)
(* ------------------------------------------------------------------ *)

let parse_action (b : Hcl.Ast.block) : action =
  let body = b.Hcl.Ast.bbody in
  let name = match b.Hcl.Ast.labels with [ n ] -> n | _ -> "action" in
  let get attr =
    match Hcl.Ast.attr body attr with
    | Some e -> e
    | None -> errf b.Hcl.Ast.bspan "action %S: missing %S" name attr
  in
  let literal attr =
    match (get attr).Hcl.Ast.desc with
    | Hcl.Ast.Template [ Hcl.Ast.Lit s ] -> s
    | _ -> errf b.Hcl.Ast.bspan "action %S: %S must be a literal string" name attr
  in
  let kind =
    match literal "kind" with
    | "set_count" -> Set_count { target = literal "target"; value = get "value" }
    | "set_attr" ->
        Set_attr
          { target = literal "target"; attr = literal "attr"; value = get "value" }
    | "deny" -> Deny { message = get "message" }
    | "notify" -> Notify { message = get "message" }
    | k -> errf b.Hcl.Ast.bspan "action %S: unknown kind %S" name k
  in
  { aname = name; kind }

let parse_policy (b : Hcl.Ast.block) : t =
  let body = b.Hcl.Ast.bbody in
  let name = match b.Hcl.Ast.labels with [ n ] -> n | _ -> errf b.Hcl.Ast.bspan "policy needs one label" in
  let phase =
    match Hcl.Ast.attr body "on" with
    | Some { Hcl.Ast.desc = Hcl.Ast.Template [ Hcl.Ast.Lit s ]; _ } -> (
        match phase_of_string s with
        | Some p -> p
        | None -> errf b.Hcl.Ast.bspan "policy %S: unknown phase %S" name s)
    | _ -> errf b.Hcl.Ast.bspan "policy %S: missing 'on' phase" name
  in
  let when_ =
    match Hcl.Ast.attr body "when" with
    | Some e -> e
    | None -> Hcl.Ast.mk (Hcl.Ast.Bool true)
  in
  let actions =
    Hcl.Ast.blocks_of_type body "action" |> List.map parse_action
  in
  if actions = [] then errf b.Hcl.Ast.bspan "policy %S has no actions" name;
  { pname = name; phase; when_; actions; pspan = b.Hcl.Ast.bspan }

(** Parse a policy file (a sequence of [policy "name" { ... }] blocks). *)
let parse ~file src : t list =
  let body = Hcl.Parser.parse ~file src in
  List.map
    (fun (b : Hcl.Ast.block) ->
      match b.Hcl.Ast.btype with
      | "policy" -> parse_policy b
      | ty -> errf b.Hcl.Ast.bspan "expected policy block, found %S" ty)
    body.Hcl.Ast.blocks

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(** Observation context: the [obs.*] namespace for one evaluation. *)
type obs = Value.t Smap.t

let obs_of_list kvs : obs = Smap.of_seq (List.to_seq kvs)

(* [obs.x] is surface syntax; rewrite it to [var.__obs.x] so the stock
   evaluator handles it. *)
let rewrite_obs (e : Hcl.Ast.expr) : Hcl.Ast.expr =
  let rec go (e : Hcl.Ast.expr) =
    let mk desc = { e with Hcl.Ast.desc } in
    match e.Hcl.Ast.desc with
    | Hcl.Ast.Var "obs" ->
        mk
          (Hcl.Ast.GetAttr
             (Hcl.Ast.mk (Hcl.Ast.Var "var"), "__obs"))
    | Hcl.Ast.GetAttr (inner, a) -> mk (Hcl.Ast.GetAttr (go inner, a))
    | Hcl.Ast.Index (inner, i) -> mk (Hcl.Ast.Index (go inner, go i))
    | Hcl.Ast.Splat (inner, a) -> mk (Hcl.Ast.Splat (go inner, a))
    | Hcl.Ast.ListLit es -> mk (Hcl.Ast.ListLit (List.map go es))
    | Hcl.Ast.ObjectLit kvs ->
        mk
          (Hcl.Ast.ObjectLit
             (List.map
                (fun (k, v) ->
                  ( (match k with
                    | Hcl.Ast.Kexpr ke -> Hcl.Ast.Kexpr (go ke)
                    | k -> k),
                    go v ))
                kvs))
    | Hcl.Ast.Call (f, args, ex) -> mk (Hcl.Ast.Call (f, List.map go args, ex))
    | Hcl.Ast.Unop (op, a) -> mk (Hcl.Ast.Unop (op, go a))
    | Hcl.Ast.Binop (op, a, b) -> mk (Hcl.Ast.Binop (op, go a, go b))
    | Hcl.Ast.Cond (c, a, b) -> mk (Hcl.Ast.Cond (go c, go a, go b))
    | Hcl.Ast.Paren a -> mk (Hcl.Ast.Paren (go a))
    | Hcl.Ast.Template parts ->
        mk
          (Hcl.Ast.Template
             (List.map
                (function
                  | Hcl.Ast.Lit s -> Hcl.Ast.Lit s
                  | Hcl.Ast.Interp e -> Hcl.Ast.Interp (go e))
                parts))
    | Hcl.Ast.ForList fc ->
        mk
          (Hcl.Ast.ForList
             { fc with Hcl.Ast.coll = go fc.Hcl.Ast.coll; body = go fc.Hcl.Ast.body })
    | Hcl.Ast.ForMap (fc, v) ->
        mk
          (Hcl.Ast.ForMap
             ( { fc with Hcl.Ast.coll = go fc.Hcl.Ast.coll; body = go fc.Hcl.Ast.body },
               go v ))
    | Hcl.Ast.Null | Hcl.Ast.Bool _ | Hcl.Ast.Int _ | Hcl.Ast.Float _
    | Hcl.Ast.Var _ ->
        e
  in
  go e

let eval_with_obs (obs : obs) (e : Hcl.Ast.expr) : Value.t =
  Hcl.Eval.eval_expr ~vars:(Smap.singleton "__obs" (Value.Vmap obs))
    (rewrite_obs e)

(** Does the policy fire under these observations?

    A guard that references an observation the current phase does not
    provide simply does not fire — the observation vocabulary evolves
    across lifecycle phases (§3.6), so absence is normal, not an
    error. *)
let triggered (p : t) (obs : obs) : bool =
  match eval_with_obs obs p.when_ with
  | Value.Vbool b -> b
  | Value.Vunknown _ -> false
  | v ->
      errf p.pspan "policy %S: 'when' must evaluate to bool, got %s" p.pname
        (Value.type_name v)
  | exception Hcl.Eval.Eval_error (_, _) -> false

(** A concrete decision produced by a fired policy. *)
type decision =
  | D_set_count of { target : string; count : int }
  | D_set_attr of { target : string; attr : string; value : Value.t }
  | D_deny of string
  | D_notify of string

let decision_to_string = function
  | D_set_count { target; count } ->
      Printf.sprintf "set count of %s to %d" target count
  | D_set_attr { target; attr; value } ->
      Printf.sprintf "set %s.%s = %s" target attr (Value.show value)
  | D_deny msg -> "deny: " ^ msg
  | D_notify msg -> "notify: " ^ msg

(** Evaluate a fired policy's actions. *)
let decide (p : t) (obs : obs) : decision list =
  List.map
    (fun a ->
      match a.kind with
      | Set_count { target; value } -> (
          match eval_with_obs obs value with
          | Value.Vint n -> D_set_count { target; count = max 0 n }
          | Value.Vfloat f -> D_set_count { target; count = max 0 (int_of_float f) }
          | v ->
              errf p.pspan "action %S: count must be a number, got %s" a.aname
                (Value.type_name v))
      | Set_attr { target; attr; value } ->
          D_set_attr { target; attr; value = eval_with_obs obs value }
      | Deny { message } ->
          D_deny (Value.to_string (eval_with_obs obs message))
      | Notify { message } ->
          D_notify (Value.to_string (eval_with_obs obs message)))
    p.actions
