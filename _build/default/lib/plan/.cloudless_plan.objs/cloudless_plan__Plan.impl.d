lib/plan/plan.ml: Cloudless_graph Cloudless_hcl Cloudless_schema Cloudless_state Fmt List Option Printf String
