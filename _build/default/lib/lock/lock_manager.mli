(** Granular locking for concurrent infrastructure updates (§3.4).

    Lock sets are granted atomically (all-or-nothing); waiters queue
    FIFO among conflicting requests, but a queued request never blocks
    a later non-conflicting one (no head-of-line blocking across
    disjoint key sets).  Keys are taken in sorted order internally, so
    the discipline is deadlock-free. *)

module Addr := Cloudless_hcl.Addr

(** [Global] models today's whole-infrastructure lock; [Per_resource]
    is the cloudless proposal. *)
type granularity = Global | Per_resource

type t

val create : granularity -> t

(** Request the locks for [keys] on behalf of [owner]; the callback
    fires (possibly immediately, possibly later) once all keys are
    held.  Re-entrant per owner. *)
val acquire : t -> owner:string -> keys:Addr.t list -> (unit -> unit) -> unit

(** Release every key held by [owner] and wake eligible waiters. *)
val release : t -> owner:string -> unit

(** Non-queueing variant; [false] = would block. *)
val try_acquire : t -> owner:string -> keys:Addr.t list -> bool

(** Currently held keys with their owners, sorted. *)
val holders : t -> (Addr.t * string) list

val queue_length : t -> int

(** (grants, requests that had to queue). *)
val stats : t -> int * int
