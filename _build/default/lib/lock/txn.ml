(** Transactions over the golden-state database (§3.4).

    "We need a lock manager backed by an IaC database that reflects the
    'golden state' of the cloud infrastructure, as well as transaction
    mechanisms for atomic updates while guaranteeing isolation.
    Updates are scheduled based on the logical state and locks in the
    database, and only later applied to the physical infrastructure."

    Implemented exactly that way: a transaction declares its write set,
    acquires locks (two-phase), stages logical updates against the
    golden {!Cloudless_state.State}, commits them atomically (bumping
    the serial), and releases.  An optimistic mode skips locks and
    validates the serial at commit, retrying on conflict. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module State = Cloudless_state.State

type store = {
  mutable golden : State.t;
  mutable commits : int;
  mutable aborts : int;
}

let create_store state = { golden = state; commits = 0; aborts = 0 }

type op =
  | Set_attr of Addr.t * string * Value.t
  | Remove_resource of Addr.t
  | Add_resource of State.resource_state

type txn = {
  owner : string;
  begin_serial : int;
  mutable ops : op list;  (** reverse order *)
}

let begin_txn store ~owner =
  { owner; begin_serial = State.serial store.golden; ops = [] }

let owner txn = txn.owner

let stage txn op = txn.ops <- op :: txn.ops

(** Write set of a transaction (the keys its locks must cover). *)
let write_set txn =
  List.map
    (function
      | Set_attr (a, _, _) -> a
      | Remove_resource a -> a
      | Add_resource r -> r.State.addr)
    txn.ops
  |> List.sort_uniq Addr.compare

let apply_op state = function
  | Set_attr (addr, attr, v) -> (
      match State.find_opt state addr with
      | Some r ->
          State.update_attrs state addr (Smap.add attr v r.State.attrs)
      | None -> state)
  | Remove_resource addr -> State.remove state addr
  | Add_resource r -> State.add state r

(** Atomic commit under locks (caller must hold the write set). *)
let commit_locked store txn =
  let state =
    List.fold_left apply_op store.golden (List.rev txn.ops)
  in
  store.golden <- state;
  store.commits <- store.commits + 1

(** Optimistic commit: succeeds only if nobody committed since
    [begin_txn]; otherwise aborts (caller retries with a fresh
    transaction). *)
let commit_optimistic store txn =
  if State.serial store.golden = txn.begin_serial then begin
    commit_locked store txn;
    Ok ()
  end
  else begin
    store.aborts <- store.aborts + 1;
    Error `Conflict
  end

(** Serializable read inside a transaction: reads the golden state as
    of now (2PL makes this safe when locks are held). *)
let read store addr = State.find_opt store.golden addr
