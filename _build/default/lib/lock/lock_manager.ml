(** Granular locking for concurrent infrastructure updates (§3.4).

    Stock IaC "simply lock[s] the entire cloud infrastructure for
    modifications at any scale"; cloudless computing proposes
    per-resource locks so mutual exclusion arises only when two teams
    touch the same resource.

    The manager hands out *lock sets* atomically: an owner requests all
    the keys its transaction needs; the grant is all-or-nothing, keys
    are acquired in sorted order internally, and waiters queue FIFO —
    together this rules out deadlock and starvation. *)

module Addr = Cloudless_hcl.Addr

type granularity = Global | Per_resource

(* The single key used in Global mode. *)
let global_key = Addr.make ~rtype:"__infrastructure__" ~rname:"all" ()

type request = {
  owner : string;
  keys : Addr.t list;  (** sorted, deduplicated *)
  grant : unit -> unit;  (** called when all keys are held *)
}

type t = {
  granularity : granularity;
  held : (Addr.t, string) Hashtbl.t;  (** key -> owner *)
  mutable queue : request list;  (** FIFO waiters *)
  mutable grants : int;
  mutable waits : int;  (** requests that had to queue *)
}

let create granularity =
  { granularity; held = Hashtbl.create 32; queue = []; grants = 0; waits = 0 }

let effective_keys t keys =
  match t.granularity with
  | Global -> [ global_key ]
  | Per_resource -> List.sort_uniq Addr.compare keys

let available t keys owner =
  List.for_all
    (fun k ->
      match Hashtbl.find_opt t.held k with
      | None -> true
      | Some o -> o = owner)
    keys

let take t keys owner = List.iter (fun k -> Hashtbl.replace t.held k owner) keys

(* Serve queued requests in order; a blocked head does not block
   non-conflicting requests behind it (no head-of-line blocking across
   disjoint key sets), but grants remain FIFO among conflicting ones. *)
let rec serve t =
  let rec scan acc = function
    | [] -> None
    | r :: rest ->
        if available t r.keys r.owner then Some (r, List.rev_append acc rest)
        else scan (r :: acc) rest
  in
  match scan [] t.queue with
  | None -> ()
  | Some (r, rest) ->
      t.queue <- rest;
      take t r.keys r.owner;
      t.grants <- t.grants + 1;
      r.grant ();
      serve t

(** Request the locks for [keys] on behalf of [owner]; [grant] fires
    (possibly immediately) once all are held. *)
let acquire t ~owner ~keys grant =
  let keys = effective_keys t keys in
  if t.queue = [] && available t keys owner then begin
    take t keys owner;
    t.grants <- t.grants + 1;
    grant ()
  end
  else begin
    t.waits <- t.waits + 1;
    t.queue <- t.queue @ [ { owner; keys; grant } ];
    (* a request conflicting with the queue head may still be blocked,
       but this request itself may be grantable right now *)
    serve t
  end

(** Release every key held by [owner] and wake eligible waiters. *)
let release t ~owner =
  let owned =
    Hashtbl.fold
      (fun k o acc -> if o = owner then k :: acc else acc)
      t.held []
  in
  List.iter (Hashtbl.remove t.held) owned;
  serve t

(** Try to acquire without queueing. *)
let try_acquire t ~owner ~keys =
  let keys = effective_keys t keys in
  if available t keys owner then begin
    take t keys owner;
    t.grants <- t.grants + 1;
    true
  end
  else false

let holders t =
  Hashtbl.fold (fun k o acc -> (k, o) :: acc) t.held []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)

let queue_length t = List.length t.queue
let stats t = (t.grants, t.waits)
