lib/lock/team_sim.ml: Cloudless_hcl Cloudless_sim Cloudless_state List Lock_manager Printf Txn
