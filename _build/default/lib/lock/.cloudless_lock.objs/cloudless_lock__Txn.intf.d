lib/lock/txn.mli: Cloudless_hcl Cloudless_state
