lib/lock/lock_manager.mli: Cloudless_hcl
