lib/lock/lock_manager.ml: Cloudless_hcl Hashtbl List
