lib/lock/txn.ml: Cloudless_hcl Cloudless_state List
