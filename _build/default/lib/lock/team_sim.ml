(** Concurrent DevOps-team simulation (§3.4, experiment E3).

    [k] teams each work through a queue of infrastructure updates.  An
    update: acquire locks for its resource set, perform the cloud
    update operations (which take real service time on the simulated
    cloud), commit the logical change to the golden state, release.

    Under a {!Lock_manager.Global} lock the teams serialize completely
    — one team's slow database update blocks everyone.  Under
    {!Lock_manager.Per_resource} locks, teams touching disjoint
    resources proceed in parallel. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module State = Cloudless_state.State
module Cloud = Cloudless_sim.Cloud

type update = {
  team : string;
  addrs : Addr.t list;  (** resources this update touches *)
  tag : string;  (** attribute value to write (identifies the update) *)
}

type result = {
  makespan : float;
  updates_done : int;
  lock_waits : int;
  team_finish : (string * float) list;
  conflicts_detected : int;  (** overlapping-update pairs serialized *)
}

(** Run the scenario to completion.  [queues] holds one update list per
    team, processed in order. *)
let run (cloud : Cloud.t) ~(store : Txn.store) ~granularity
    (queues : update list list) : result =
  let lock = Lock_manager.create granularity in
  let started = Cloud.now cloud in
  let team_finish = ref [] in
  let updates_done = ref 0 in
  let rec run_team team_name queue =
    match queue with
    | [] -> team_finish := (team_name, Cloud.now cloud) :: !team_finish
    | u :: rest ->
        Lock_manager.acquire lock ~owner:u.team ~keys:u.addrs (fun () ->
            let txn = Txn.begin_txn store ~owner:u.team in
            let pending = ref (List.length u.addrs) in
            let finish_update () =
              List.iter
                (fun addr ->
                  Txn.stage txn
                    (Txn.Set_attr (addr, "last_update", Value.Vstring u.tag)))
                u.addrs;
              Txn.commit_locked store txn;
              incr updates_done;
              Lock_manager.release lock ~owner:u.team;
              run_team team_name rest
            in
            if u.addrs = [] then finish_update ()
            else
              List.iter
                (fun addr ->
                  match Txn.read store addr with
                  | None ->
                      (* resource vanished: skip its physical op *)
                      decr pending;
                      if !pending = 0 then finish_update ()
                  | Some rs ->
                      Cloud.submit cloud
                        ~actor:(Cloudless_sim.Activity_log.Iac_engine u.team)
                        (Cloud.Update
                           {
                             cloud_id = rs.State.cloud_id;
                             attrs =
                               Smap.singleton "last_update" (Value.Vstring u.tag);
                           })
                        (fun _result ->
                          decr pending;
                          if !pending = 0 then finish_update ()))
                u.addrs)
  in
  List.iteri
    (fun i queue -> run_team (Printf.sprintf "team-%d" i) queue)
    queues;
  Cloud.run_until_idle cloud;
  let _, waits = Lock_manager.stats lock in
  (* conflicts: pairs of updates (across teams) sharing an address *)
  let all_updates = List.concat queues in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  let conflicts =
    pairs all_updates
    |> List.filter (fun (a, b) ->
           a.team <> b.team
           && List.exists (fun x -> List.exists (Addr.equal x) b.addrs) a.addrs)
    |> List.length
  in
  {
    makespan = Cloud.now cloud -. started;
    updates_done = !updates_done;
    lock_waits = waits;
    team_finish = List.rev !team_finish;
    conflicts_detected = conflicts;
  }
