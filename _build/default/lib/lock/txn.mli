(** Transactions over the golden-state database (§3.4): updates are
    staged against the logical state under locks (or optimistically)
    and committed atomically; the physical infrastructure is driven
    separately. *)

module Addr := Cloudless_hcl.Addr
module Value := Cloudless_hcl.Value
module State := Cloudless_state.State

type store = {
  mutable golden : State.t;
  mutable commits : int;
  mutable aborts : int;
}

val create_store : State.t -> store

type op =
  | Set_attr of Addr.t * string * Value.t
  | Remove_resource of Addr.t
  | Add_resource of State.resource_state

type txn

val begin_txn : store -> owner:string -> txn

(** The owner named at [begin_txn] — the lock-manager identity the
    transaction's locks are held under. *)
val owner : txn -> string

val stage : txn -> op -> unit

(** Keys a transaction's locks must cover (deduplicated). *)
val write_set : txn -> Addr.t list

(** Atomic commit; the caller must hold the write set (2PL). *)
val commit_locked : store -> txn -> unit

(** Optimistic commit: aborts if anyone committed since [begin_txn]. *)
val commit_optimistic : store -> txn -> (unit, [ `Conflict ]) result

(** Read the golden state inside a transaction. *)
val read : store -> Addr.t -> State.resource_state option
