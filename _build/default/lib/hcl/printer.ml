(** Pretty-printer: AST back to HCL source text.

    Used by the importer/refactoring optimizer of §3.1 (which emits IaC
    programs from cloud state) and by drift reconciliation (§3.5, which
    regenerates programs to match live deployments).  The printer aims
    for idiomatic, human-maintainable output: two-space indentation,
    one attribute per line, blank lines between top-level blocks. *)

open Ast

let binop_text = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

(* Precedence levels used to decide where parentheses are needed when an
   AST was built programmatically (rather than parsed). *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Neq -> 3
  | Lt | Gt | Le | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let escape_template_lit s =
  let buf = Buffer.create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '$'
        when i + 1 < String.length s && s.[i + 1] = '{' ->
          Buffer.add_string buf "\\$"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec expr_to_buf buf prec e =
  match e.desc with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (Value.float_to_string f)
  | Template parts -> template_to_buf buf parts
  | Var name -> Buffer.add_string buf name
  | GetAttr (e, a) ->
      expr_to_buf buf 10 e;
      Buffer.add_char buf '.';
      Buffer.add_string buf a
  | Index (e, i) ->
      expr_to_buf buf 10 e;
      Buffer.add_char buf '[';
      expr_to_buf buf 0 i;
      Buffer.add_char buf ']'
  | Splat (e, a) ->
      expr_to_buf buf 10 e;
      Buffer.add_string buf "[*].";
      Buffer.add_string buf a
  | ListLit es ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_string buf ", ";
          expr_to_buf buf 0 e)
        es;
      Buffer.add_char buf ']'
  | ObjectLit kvs ->
      Buffer.add_string buf "{ ";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          (match k with
          | Kident k ->
              if ident_like k then Buffer.add_string buf k
              else begin
                Buffer.add_char buf '"';
                Buffer.add_string buf (escape_template_lit k);
                Buffer.add_char buf '"'
              end
          | Kexpr e -> (
              match e.desc with
              | Template _ -> expr_to_buf buf 0 e
              | _ ->
                  Buffer.add_char buf '(';
                  expr_to_buf buf 0 e;
                  Buffer.add_char buf ')'));
          Buffer.add_string buf " = ";
          expr_to_buf buf 0 v)
        kvs;
      Buffer.add_string buf " }"
  | Call (name, args, expand) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '(';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          expr_to_buf buf 0 a)
        args;
      if expand then Buffer.add_string buf "...";
      Buffer.add_char buf ')'
  | Unop (Neg, e) ->
      Buffer.add_char buf '-';
      expr_to_buf buf 9 e
  | Unop (Not, e) ->
      Buffer.add_char buf '!';
      expr_to_buf buf 9 e
  | Binop (op, a, b) ->
      let p = binop_prec op in
      let need_parens = p < prec in
      if need_parens then Buffer.add_char buf '(';
      expr_to_buf buf p a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_text op);
      Buffer.add_char buf ' ';
      expr_to_buf buf (p + 1) b;
      if need_parens then Buffer.add_char buf ')'
  | Cond (c, a, b) ->
      if prec > 0 then Buffer.add_char buf '(';
      expr_to_buf buf 1 c;
      Buffer.add_string buf " ? ";
      expr_to_buf buf 1 a;
      Buffer.add_string buf " : ";
      expr_to_buf buf 1 b;
      if prec > 0 then Buffer.add_char buf ')'
  | ForList fc ->
      Buffer.add_string buf "[for ";
      for_head_to_buf buf fc;
      expr_to_buf buf 0 fc.body;
      for_cond_to_buf buf fc;
      Buffer.add_char buf ']'
  | ForMap (fc, v) ->
      Buffer.add_string buf "{for ";
      for_head_to_buf buf fc;
      expr_to_buf buf 0 fc.body;
      Buffer.add_string buf " => ";
      expr_to_buf buf 0 v;
      for_cond_to_buf buf fc;
      Buffer.add_char buf '}'
  | Paren e ->
      Buffer.add_char buf '(';
      expr_to_buf buf 0 e;
      Buffer.add_char buf ')'

and for_head_to_buf buf fc =
  (match fc.key_var with
  | Some k ->
      Buffer.add_string buf k;
      Buffer.add_string buf ", "
  | None -> ());
  Buffer.add_string buf fc.val_var;
  Buffer.add_string buf " in ";
  expr_to_buf buf 0 fc.coll;
  Buffer.add_string buf " : "

and for_cond_to_buf buf fc =
  match fc.cond with
  | Some c ->
      Buffer.add_string buf " if ";
      expr_to_buf buf 0 c
  | None -> ()

and template_to_buf buf parts =
  Buffer.add_char buf '"';
  List.iter
    (function
      | Lit s -> Buffer.add_string buf (escape_template_lit s)
      | Interp e ->
          Buffer.add_string buf "${";
          expr_to_buf buf 0 e;
          Buffer.add_char buf '}')
    parts;
  Buffer.add_char buf '"'

and ident_like s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       s

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr_to_buf buf 0 e;
  Buffer.contents buf

let indent buf depth =
  for _ = 1 to depth do
    Buffer.add_string buf "  "
  done

let rec block_to_buf buf depth b =
  indent buf depth;
  Buffer.add_string buf b.btype;
  List.iter
    (fun label ->
      Buffer.add_string buf " \"";
      Buffer.add_string buf (escape_template_lit label);
      Buffer.add_char buf '"')
    b.labels;
  Buffer.add_string buf " {\n";
  body_to_buf buf (depth + 1) b.bbody;
  indent buf depth;
  Buffer.add_string buf "}\n"

and body_to_buf buf depth body =
  (* Align '=' within a run of attributes, terraform-fmt style. *)
  let width =
    List.fold_left (fun acc a -> max acc (String.length a.aname)) 0 body.attrs
  in
  List.iter
    (fun a ->
      indent buf depth;
      Buffer.add_string buf a.aname;
      for _ = String.length a.aname to width - 1 do
        Buffer.add_char buf ' '
      done;
      Buffer.add_string buf " = ";
      expr_to_buf buf 0 a.avalue;
      Buffer.add_char buf '\n')
    body.attrs;
  List.iteri
    (fun i b ->
      if i > 0 || body.attrs <> [] then Buffer.add_char buf '\n';
      block_to_buf buf depth b)
    body.blocks

(** Render a full configuration (top-level body). *)
let config_to_string (body : Ast.body) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun a ->
      Buffer.add_string buf a.aname;
      Buffer.add_string buf " = ";
      expr_to_buf buf 0 a.avalue;
      Buffer.add_char buf '\n')
    body.attrs;
  List.iteri
    (fun i b ->
      if i > 0 || body.attrs <> [] then Buffer.add_char buf '\n';
      block_to_buf buf 0 b)
    body.blocks;
  Buffer.contents buf

let block_to_string b =
  let buf = Buffer.create 256 in
  block_to_buf buf 0 b;
  Buffer.contents buf
