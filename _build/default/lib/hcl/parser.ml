(** Recursive-descent parser for the HCL subset.

    Grammar summary (after the lexer):

    {v
    config    ::= (NEWLINE | block)* EOF
    block     ::= IDENT (IDENT | STRING)* '{' body '}'
    body      ::= (NEWLINE | attribute | block)*
    attribute ::= IDENT '=' expr NEWLINE
    expr      ::= ternary
    ternary   ::= or ('?' expr ':' expr)?
    or        ::= and ('||' and)*
    and       ::= equality ('&&' equality)*
    equality  ::= compare (('=='|'!=') compare)*
    compare   ::= additive (('<'|'>'|'<='|'>=') additive)*
    additive  ::= multiplicative (('+'|'-') multiplicative)*
    mult      ::= unary (('*'|'/'|'%') unary)*
    unary     ::= ('-'|'!') unary | postfix
    postfix   ::= primary ('.' IDENT | '[' expr ']' | '[' '*' ']' '.' IDENT)*
    primary   ::= literal | ident | call | '(' expr ')' | list | object | for
    v} *)

exception Error of string * Loc.span

type state = { mutable toks : Token.spanned list; mutable last : Loc.span }

let make toks = { toks; last = Loc.dummy }

let peek st =
  match st.toks with [] -> Token.EOF | { tok; _ } :: _ -> tok

let peek_span st =
  match st.toks with [] -> st.last | { span; _ } :: _ -> span

let advance st =
  match st.toks with
  | [] -> ()
  | { span; _ } :: rest ->
      st.last <- span;
      st.toks <- rest

let error st msg = raise (Error (msg, peek_span st))

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Token.describe tok)
         (Token.describe (peek st)))

let skip_newlines st =
  while peek st = Token.NEWLINE do
    advance st
  done

(* Newlines are insignificant inside (), [] and {object} contexts; the
   expression parser calls this between sub-terms where HCL allows a
   line break. *)
let skip_newlines_in_expr = skip_newlines

let rec parse_expr st : Ast.expr = parse_ternary st

and parse_ternary st =
  let c = parse_or st in
  if peek st = Token.QUESTION then begin
    advance st;
    skip_newlines_in_expr st;
    let a = parse_expr st in
    skip_newlines_in_expr st;
    expect st Token.COLON;
    skip_newlines_in_expr st;
    let b = parse_expr st in
    { Ast.desc = Ast.Cond (c, a, b); espan = Loc.merge c.espan b.espan }
  end
  else c

and parse_binop_level st ops next =
  let left = ref (next st) in
  let rec loop () =
    match List.assoc_opt (peek st) ops with
    | Some op ->
        advance st;
        skip_newlines_in_expr st;
        let right = next st in
        left :=
          {
            Ast.desc = Ast.Binop (op, !left, right);
            espan = Loc.merge !left.Ast.espan right.Ast.espan;
          };
        loop ()
    | None -> ()
  in
  loop ();
  !left

and parse_or st = parse_binop_level st [ (Token.OR, Ast.Or) ] parse_and
and parse_and st = parse_binop_level st [ (Token.AND, Ast.And) ] parse_eq

and parse_eq st =
  parse_binop_level st
    [ (Token.EQ, Ast.Eq); (Token.NEQ, Ast.Neq) ]
    parse_compare

and parse_compare st =
  parse_binop_level st
    [ (Token.LT, Ast.Lt); (Token.GT, Ast.Gt); (Token.LE, Ast.Le); (Token.GE, Ast.Ge) ]
    parse_add

and parse_add st =
  parse_binop_level st [ (Token.PLUS, Ast.Add); (Token.MINUS, Ast.Sub) ] parse_mul

and parse_mul st =
  parse_binop_level st
    [ (Token.STAR, Ast.Mul); (Token.SLASH, Ast.Div); (Token.PERCENT, Ast.Mod) ]
    parse_unary

and parse_unary st =
  let span = peek_span st in
  match peek st with
  | Token.MINUS ->
      advance st;
      let e = parse_unary st in
      { Ast.desc = Ast.Unop (Ast.Neg, e); espan = Loc.merge span e.espan }
  | Token.NOT ->
      advance st;
      let e = parse_unary st in
      { Ast.desc = Ast.Unop (Ast.Not, e); espan = Loc.merge span e.espan }
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let rec loop () =
    match peek st with
    | Token.DOT ->
        advance st;
        (match peek st with
        | Token.IDENT name ->
            advance st;
            e :=
              {
                Ast.desc = Ast.GetAttr (!e, name);
                espan = Loc.merge !e.Ast.espan st.last;
              };
            loop ()
        | Token.INT n ->
            (* list element access written with dot syntax, e.g. a.0 *)
            advance st;
            let idx = { Ast.desc = Ast.Int n; espan = st.last } in
            e :=
              {
                Ast.desc = Ast.Index (!e, idx);
                espan = Loc.merge !e.Ast.espan st.last;
              };
            loop ()
        | Token.STAR ->
            advance st;
            expect st Token.DOT;
            (match peek st with
            | Token.IDENT name ->
                advance st;
                e :=
                  {
                    Ast.desc = Ast.Splat (!e, name);
                    espan = Loc.merge !e.Ast.espan st.last;
                  };
                loop ()
            | _ -> error st "expected attribute name after '.*.'")
        | _ -> error st "expected attribute name after '.'")
    | Token.LBRACKET -> (
        advance st;
        skip_newlines_in_expr st;
        match peek st with
        | Token.STAR ->
            advance st;
            expect st Token.RBRACKET;
            expect st Token.DOT;
            (match peek st with
            | Token.IDENT name ->
                advance st;
                e :=
                  {
                    Ast.desc = Ast.Splat (!e, name);
                    espan = Loc.merge !e.Ast.espan st.last;
                  };
                loop ()
            | _ -> error st "expected attribute name after '[*].'")
        | _ ->
            let idx = parse_expr st in
            skip_newlines_in_expr st;
            expect st Token.RBRACKET;
            e :=
              {
                Ast.desc = Ast.Index (!e, idx);
                espan = Loc.merge !e.Ast.espan st.last;
              };
            loop ())
    | _ -> ()
  in
  loop ();
  !e

and parse_primary st =
  let span = peek_span st in
  match peek st with
  | Token.INT n ->
      advance st;
      { Ast.desc = Ast.Int n; espan = span }
  | Token.FLOAT f ->
      advance st;
      { Ast.desc = Ast.Float f; espan = span }
  | Token.QUOTED parts | Token.HEREDOC parts ->
      advance st;
      { Ast.desc = Ast.Template (parse_parts ~span parts); espan = span }
  | Token.IDENT "true" ->
      advance st;
      { Ast.desc = Ast.Bool true; espan = span }
  | Token.IDENT "false" ->
      advance st;
      { Ast.desc = Ast.Bool false; espan = span }
  | Token.IDENT "null" ->
      advance st;
      { Ast.desc = Ast.Null; espan = span }
  | Token.IDENT name ->
      advance st;
      if peek st = Token.LPAREN then begin
        advance st;
        skip_newlines_in_expr st;
        let args = ref [] in
        let expand = ref false in
        (if peek st <> Token.RPAREN then
           let rec args_loop () =
             let a = parse_expr st in
             args := a :: !args;
             skip_newlines_in_expr st;
             match peek st with
             | Token.COMMA ->
                 advance st;
                 skip_newlines_in_expr st;
                 if peek st <> Token.RPAREN then args_loop ()
             | Token.ELLIPSIS ->
                 advance st;
                 expand := true;
                 skip_newlines_in_expr st
             | _ -> ()
           in
           args_loop ());
        expect st Token.RPAREN;
        {
          Ast.desc = Ast.Call (name, List.rev !args, !expand);
          espan = Loc.merge span st.last;
        }
      end
      else { Ast.desc = Ast.Var name; espan = span }
  | Token.LPAREN ->
      advance st;
      skip_newlines_in_expr st;
      let e = parse_expr st in
      skip_newlines_in_expr st;
      expect st Token.RPAREN;
      { Ast.desc = Ast.Paren e; espan = Loc.merge span st.last }
  | Token.LBRACKET -> parse_list_or_for st span
  | Token.LBRACE -> parse_object_or_for st span
  | t -> error st (Printf.sprintf "unexpected %s in expression" (Token.describe t))

and parse_parts ~span parts =
  List.map
    (function
      | Token.Lit s -> Ast.Lit s
      | Token.Interp toks ->
          let sub = make toks in
          let e = parse_expr sub in
          skip_newlines sub;
          if peek sub <> Token.EOF then
            raise
              (Error
                 ( Printf.sprintf "unexpected %s after interpolation"
                     (Token.describe (peek sub)),
                   span ));
          Ast.Interp e)
    parts

and parse_for_clause st =
  (* cursor is just past 'for' *)
  let first =
    match peek st with
    | Token.IDENT v ->
        advance st;
        v
    | _ -> error st "expected variable name after 'for'"
  in
  let key_var, val_var =
    if peek st = Token.COMMA then begin
      advance st;
      match peek st with
      | Token.IDENT v ->
          advance st;
          (Some first, v)
      | _ -> error st "expected second variable name in for-expression"
    end
    else (None, first)
  in
  (match peek st with
  | Token.IDENT "in" -> advance st
  | _ -> error st "expected 'in' in for-expression");
  skip_newlines_in_expr st;
  let coll = parse_expr st in
  skip_newlines_in_expr st;
  expect st Token.COLON;
  skip_newlines_in_expr st;
  (key_var, val_var, coll)

and parse_for_cond st =
  skip_newlines_in_expr st;
  match peek st with
  | Token.IDENT "if" ->
      advance st;
      skip_newlines_in_expr st;
      Some (parse_expr st)
  | _ -> None

and parse_list_or_for st span =
  advance st;
  skip_newlines_in_expr st;
  match peek st with
  | Token.IDENT "for" ->
      advance st;
      let key_var, val_var, coll = parse_for_clause st in
      let body = parse_expr st in
      let cond = parse_for_cond st in
      skip_newlines_in_expr st;
      expect st Token.RBRACKET;
      {
        Ast.desc = Ast.ForList { key_var; val_var; coll; body; cond };
        espan = Loc.merge span st.last;
      }
  | _ ->
      let items = ref [] in
      let rec loop () =
        skip_newlines_in_expr st;
        if peek st = Token.RBRACKET then ()
        else begin
          let e = parse_expr st in
          items := e :: !items;
          skip_newlines_in_expr st;
          match peek st with
          | Token.COMMA ->
              advance st;
              loop ()
          | Token.RBRACKET -> ()
          | t ->
              error st
                (Printf.sprintf "expected ',' or ']' but found %s"
                   (Token.describe t))
        end
      in
      loop ();
      expect st Token.RBRACKET;
      { Ast.desc = Ast.ListLit (List.rev !items); espan = Loc.merge span st.last }

and parse_object_or_for st span =
  advance st;
  skip_newlines_in_expr st;
  match peek st with
  | Token.IDENT "for" ->
      advance st;
      let key_var, val_var, coll = parse_for_clause st in
      let key = parse_expr st in
      skip_newlines_in_expr st;
      expect st Token.FATARROW;
      skip_newlines_in_expr st;
      let value = parse_expr st in
      let cond = parse_for_cond st in
      skip_newlines_in_expr st;
      expect st Token.RBRACE;
      {
        Ast.desc = Ast.ForMap ({ key_var; val_var; coll; body = key; cond }, value);
        espan = Loc.merge span st.last;
      }
  | _ ->
      let kvs = ref [] in
      let rec loop () =
        skip_newlines_in_expr st;
        if peek st = Token.RBRACE then ()
        else begin
          let key =
            match peek st with
            | Token.IDENT k ->
                advance st;
                (* a bare identifier key, unless it's a parenthesised
                   expression key *)
                Ast.Kident k
            | Token.QUOTED [ Token.Lit s ] ->
                advance st;
                Ast.Kident s
            | Token.QUOTED _ | Token.LPAREN ->
                let e = parse_expr st in
                Ast.Kexpr e
            | t ->
                error st
                  (Printf.sprintf "expected object key but found %s"
                     (Token.describe t))
          in
          skip_newlines_in_expr st;
          (match peek st with
          | Token.ASSIGN | Token.COLON -> advance st
          | t ->
              error st
                (Printf.sprintf "expected '=' or ':' in object but found %s"
                   (Token.describe t)));
          skip_newlines_in_expr st;
          let v = parse_expr st in
          kvs := (key, v) :: !kvs;
          skip_newlines_in_expr st;
          match peek st with
          | Token.COMMA ->
              advance st;
              loop ()
          | Token.RBRACE -> ()
          | _ -> loop ()
        end
      in
      loop ();
      expect st Token.RBRACE;
      { Ast.desc = Ast.ObjectLit (List.rev !kvs); espan = Loc.merge span st.last }

(* ------------------------------------------------------------------ *)
(* Blocks and bodies                                                   *)
(* ------------------------------------------------------------------ *)

let rec parse_body st : Ast.body =
  let attrs = ref [] and blocks = ref [] in
  let rec loop () =
    skip_newlines st;
    match peek st with
    | Token.RBRACE | Token.EOF -> ()
    | Token.IDENT name -> (
        let span = peek_span st in
        advance st;
        match peek st with
        | Token.ASSIGN ->
            advance st;
            skip_newlines_in_expr st;
            let value = parse_expr st in
            attrs :=
              { Ast.aname = name; avalue = value; aspan = Loc.merge span st.last }
              :: !attrs;
            (match peek st with
            | Token.NEWLINE | Token.RBRACE | Token.EOF -> ()
            | t ->
                error st
                  (Printf.sprintf "expected newline after attribute, found %s"
                     (Token.describe t)));
            loop ()
        | Token.LBRACE | Token.QUOTED _ | Token.IDENT _ ->
            let b = parse_block_after_type st name span in
            blocks := b :: !blocks;
            loop ()
        | t ->
            error st
              (Printf.sprintf "expected '=' or '{' after %S, found %s" name
                 (Token.describe t)))
    | t -> error st (Printf.sprintf "unexpected %s in body" (Token.describe t))
  in
  loop ();
  { Ast.attrs = List.rev !attrs; blocks = List.rev !blocks }

and parse_block_after_type st btype span : Ast.block =
  let labels = ref [] in
  let rec labels_loop () =
    match peek st with
    | Token.QUOTED [ Token.Lit s ] ->
        advance st;
        labels := s :: !labels;
        labels_loop ()
    | Token.QUOTED _ -> error st "block labels must be literal strings"
    | Token.IDENT s ->
        advance st;
        labels := s :: !labels;
        labels_loop ()
    | Token.LBRACE -> ()
    | t ->
        error st
          (Printf.sprintf "expected block label or '{' but found %s"
             (Token.describe t))
  in
  labels_loop ();
  expect st Token.LBRACE;
  let body = parse_body st in
  expect st Token.RBRACE;
  {
    Ast.btype;
    labels = List.rev !labels;
    bbody = body;
    bspan = Loc.merge span st.last;
  }

let parse_config st : Ast.body =
  let body = parse_body st in
  skip_newlines st;
  if peek st <> Token.EOF then
    error st
      (Printf.sprintf "unexpected %s at top level" (Token.describe (peek st)));
  body

(** Parse a configuration file from source text. *)
let parse ~file src : Ast.body =
  let toks = Lexer.tokenize ~file src in
  parse_config (make toks)

(** Parse a single standalone expression (used by the REPL-ish tools and
    by tests). *)
let parse_expr_string ?(file = "<expr>") src : Ast.expr =
  let toks = Lexer.tokenize ~file src in
  let st = make toks in
  skip_newlines st;
  let e = parse_expr st in
  skip_newlines st;
  if peek st <> Token.EOF then
    error st
      (Printf.sprintf "unexpected %s after expression"
         (Token.describe (peek st)));
  e
