(** Runtime values of HCL expressions.

    Mirrors Terraform's value domain: null, bool, number (int/float),
    string, list, map/object — plus {!Vunknown}, the "(known after
    apply)" marker.  An unknown value carries a provenance string (the
    address of the attribute it will eventually come from) so plans can
    explain where uncertainty originates. *)

module Smap = Map.Make (String)

type t =
  | Vnull
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstring of string
  | Vlist of t list
  | Vmap of t Smap.t
  | Vunknown of string  (** provenance, e.g. ["aws_instance.web.id"] *)

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let unknown provenance = Vunknown provenance

let is_unknown = function Vunknown _ -> true | _ -> false

(** Whether any part of the value is unknown (deep check). *)
let rec has_unknown = function
  | Vunknown _ -> true
  | Vlist vs -> List.exists has_unknown vs
  | Vmap m -> Smap.exists (fun _ v -> has_unknown v) m
  | Vnull | Vbool _ | Vint _ | Vfloat _ | Vstring _ -> false

let of_assoc kvs = Vmap (Smap.of_seq (List.to_seq kvs))

let to_assoc = function
  | Vmap m -> Smap.bindings m
  | v -> type_error "expected a map, got %s" (match v with
      | Vnull -> "null" | Vbool _ -> "bool" | Vint _ | Vfloat _ -> "number"
      | Vstring _ -> "string" | Vlist _ -> "list" | Vunknown _ -> "unknown"
      | Vmap _ -> assert false)

let type_name = function
  | Vnull -> "null"
  | Vbool _ -> "bool"
  | Vint _ -> "number"
  | Vfloat _ -> "number"
  | Vstring _ -> "string"
  | Vlist _ -> "list"
  | Vmap _ -> "map"
  | Vunknown _ -> "unknown"

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let truthy = function
  | Vbool b -> b
  | Vnull -> false
  | Vstring "true" -> true
  | Vstring "false" -> false
  | v -> type_error "expected a bool, got %s" (type_name v)

let to_int = function
  | Vint n -> n
  | Vfloat f when Float.is_integer f -> int_of_float f
  | Vstring s as v -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> type_error "expected an integer, got string %S" (match v with Vstring s -> s | _ -> ""))
  | v -> type_error "expected an integer, got %s" (type_name v)

let to_float = function
  | Vint n -> float_of_int n
  | Vfloat f -> f
  | Vstring s as v -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> type_error "expected a number, got %s" (type_name v))
  | v -> type_error "expected a number, got %s" (type_name v)

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    string_of_int (int_of_float f)
  else Printf.sprintf "%g" f

let to_string = function
  | Vstring s -> s
  | Vint n -> string_of_int n
  | Vfloat f -> float_to_string f
  | Vbool b -> string_of_bool b
  | Vnull -> ""
  | Vunknown p -> Printf.sprintf "(known after apply: %s)" p
  | (Vlist _ | Vmap _) as v ->
      type_error "cannot convert %s to string" (type_name v)

let to_list = function
  | Vlist vs -> vs
  | Vmap m -> List.map snd (Smap.bindings m)
  | v -> type_error "expected a list, got %s" (type_name v)

let to_map = function
  | Vmap m -> m
  | v -> type_error "expected a map, got %s" (type_name v)

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

(* Numbers compare across int/float; unknowns are equal only to the same
   provenance (conservative). *)
let rec equal a b =
  match (a, b) with
  | Vint x, Vfloat y | Vfloat y, Vint x -> Float.equal (float_of_int x) y
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> Float.equal x y
  | Vstring x, Vstring y -> String.equal x y
  | Vbool x, Vbool y -> Bool.equal x y
  | Vnull, Vnull -> true
  | Vlist xs, Vlist ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Vmap xm, Vmap ym -> Smap.equal equal xm ym
  | Vunknown x, Vunknown y -> String.equal x y
  | _ -> false

let rec compare_values a b =
  match (a, b) with
  | Vint x, Vint y -> compare x y
  | (Vint _ | Vfloat _), (Vint _ | Vfloat _) ->
      Float.compare (to_float a) (to_float b)
  | Vstring x, Vstring y -> String.compare x y
  | Vbool x, Vbool y -> Bool.compare x y
  | Vnull, Vnull -> 0
  | Vlist xs, Vlist ys -> List.compare compare_values xs ys
  | Vmap xm, Vmap ym -> Smap.compare compare_values xm ym
  | _ -> compare (type_name a) (type_name b)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Vnull -> Fmt.string ppf "null"
  | Vbool b -> Fmt.bool ppf b
  | Vint n -> Fmt.int ppf n
  | Vfloat f -> Fmt.string ppf (float_to_string f)
  | Vstring s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | Vunknown p -> Fmt.pf ppf "(known after apply: %s)" p
  | Vlist vs -> Fmt.pf ppf "[@[<hov>%a@]]" Fmt.(list ~sep:comma pp) vs
  | Vmap m ->
      let pp_kv ppf (k, v) = Fmt.pf ppf "%s = %a" k pp v in
      Fmt.pf ppf "{@[<hov>%a@]}"
        Fmt.(list ~sep:comma pp_kv)
        (Smap.bindings m)

let show v = Fmt.str "%a" pp v

(* ------------------------------------------------------------------ *)
(* JSON-ish serialization (used by the state store)                    *)
(* ------------------------------------------------------------------ *)

let rec to_json buf = function
  | Vnull -> Buffer.add_string buf "null"
  | Vbool b -> Buffer.add_string buf (string_of_bool b)
  | Vint n -> Buffer.add_string buf (string_of_int n)
  | Vfloat f -> Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Vstring s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | Vunknown p ->
      Buffer.add_string buf "{\"__unknown__\":\"";
      Buffer.add_string buf (escape_string p);
      Buffer.add_string buf "\"}"
  | Vlist vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_json buf v)
        vs;
      Buffer.add_char buf ']'
  | Vmap m ->
      Buffer.add_char buf '{';
      let first = ref true in
      Smap.iter
        (fun k v ->
          if !first then first := false else Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\":";
          to_json buf v)
        m;
      Buffer.add_char buf '}'

let to_json_string v =
  let buf = Buffer.create 128 in
  to_json buf v;
  Buffer.contents buf
