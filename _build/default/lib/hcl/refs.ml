(** Static reference extraction.

    Walks an expression without evaluating it and reports every
    reference to a variable, local, resource, data source or module
    output.  This is what lets us build the resource dependency graph
    *before* deployment (§2.1: "resulting in a resource dependency
    graph") and compute impact scopes for incremental updates (§3.3). *)

type target =
  | Tvar of string  (** [var.x] *)
  | Tlocal of string  (** [local.x] *)
  | Tresource of string * string  (** [aws_vpc.main] *)
  | Tdata of string * string  (** [data.aws_region.current] *)
  | Tmodule of string * string option  (** [module.net(.output)] *)
  | Tcount  (** [count.index] *)
  | Teach  (** [each.key] / [each.value] *)
  | Tpath  (** [path.module] etc. *)

let target_to_string = function
  | Tvar x -> "var." ^ x
  | Tlocal x -> "local." ^ x
  | Tresource (t, n) -> t ^ "." ^ n
  | Tdata (t, n) -> "data." ^ t ^ "." ^ n
  | Tmodule (m, Some o) -> "module." ^ m ^ "." ^ o
  | Tmodule (m, None) -> "module." ^ m
  | Tcount -> "count.index"
  | Teach -> "each"
  | Tpath -> "path"

let equal_target (a : target) (b : target) = a = b

(* Identifiers that root a reference chain but are bound by the language
   itself (for-expression variables are excluded separately). *)
let reserved = [ "var"; "local"; "data"; "module"; "count"; "each"; "path" ]

(** [of_expr e] lists the targets referenced by [e], outermost-first,
    without duplicates.  [bound] are identifiers bound by enclosing
    for-expressions and hence not references. *)
let of_expr ?(bound = []) (e : Ast.expr) : target list =
  let acc = ref [] in
  let add t = if not (List.exists (equal_target t) !acc) then acc := t :: !acc in
  let rec walk bound (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Null | Ast.Bool _ | Ast.Int _ | Ast.Float _ -> ()
    | Ast.Template parts ->
        List.iter
          (function Ast.Lit _ -> () | Ast.Interp e -> walk bound e)
          parts
    | Ast.Var name ->
        if List.mem name bound then ()
        else if List.mem name reserved then begin
          (* a bare reserved root (e.g. [each] passed to a function) *)
          match name with
          | "count" -> add Tcount
          | "each" -> add Teach
          | "path" -> add Tpath
          | _ -> ()
        end
        else
          (* A bare identifier that is not reserved and not bound:
             treated as a resource type missing its name — reported as a
             resource reference with empty name so validation can flag
             it. *)
          add (Tresource (name, ""))
    | Ast.GetAttr (inner, attr) -> walk_chain bound inner [ attr ]
    | Ast.Index (inner, idx) ->
        walk bound idx;
        walk bound inner
    | Ast.Splat (inner, _) -> walk bound inner
    | Ast.ListLit es -> List.iter (walk bound) es
    | Ast.ObjectLit kvs ->
        List.iter
          (fun (k, v) ->
            (match k with Ast.Kident _ -> () | Ast.Kexpr e -> walk bound e);
            walk bound v)
          kvs
    | Ast.Call (_, args, _) -> List.iter (walk bound) args
    | Ast.Unop (_, e) | Ast.Paren e -> walk bound e
    | Ast.Binop (_, a, b) ->
        walk bound a;
        walk bound b
    | Ast.Cond (c, a, b) ->
        walk bound c;
        walk bound a;
        walk bound b
    | Ast.ForList fc ->
        walk bound fc.coll;
        let bound' =
          fc.val_var :: (match fc.key_var with Some k -> [ k ] | None -> [])
          @ bound
        in
        walk bound' fc.body;
        Option.iter (walk bound') fc.cond
    | Ast.ForMap (fc, v) ->
        walk bound fc.coll;
        let bound' =
          fc.val_var :: (match fc.key_var with Some k -> [ k ] | None -> [])
          @ bound
        in
        walk bound' fc.body;
        walk bound' v;
        Option.iter (walk bound') fc.cond
  (* [walk_chain inner attrs] handles a GetAttr chain: [attrs] are the
     attribute names collected inside-out. *)
  and walk_chain bound (inner : Ast.expr) attrs =
    match (inner.Ast.desc, attrs) with
    | Ast.Var root, _ when List.mem root bound -> ()
    | Ast.Var "var", x :: _ -> add (Tvar x)
    | Ast.Var "local", x :: _ -> add (Tlocal x)
    | Ast.Var "count", "index" :: _ -> add Tcount
    | Ast.Var "each", _ -> add Teach
    | Ast.Var "path", _ -> add Tpath
    | Ast.Var "data", ty :: name :: _ -> add (Tdata (ty, name))
    | Ast.Var "data", [ _ ] -> ()
    | Ast.Var "module", m :: rest ->
        add (Tmodule (m, match rest with o :: _ -> Some o | [] -> None))
    | Ast.Var rtype, name :: _ -> add (Tresource (rtype, name))
    | Ast.Var _, [] -> ()
    | Ast.GetAttr (inner', a), _ -> walk_chain bound inner' (a :: attrs)
    | Ast.Index (inner', idx), _ ->
        walk bound idx;
        walk_chain bound inner' attrs
    | Ast.Splat (inner', a), _ -> walk_chain bound inner' (a :: attrs)
    | _ -> walk bound inner
  in
  walk bound e;
  List.rev !acc

(** All targets referenced anywhere in a body (attributes and nested
    blocks).  [dynamic] blocks bind their iterator name inside the
    content block, so [ingress.value.port] there is not a resource
    reference. *)
let of_body (body : Ast.body) : target list =
  let rec walk_body bound (body : Ast.body) =
    List.concat_map
      (fun (a : Ast.attribute) -> of_expr ~bound a.Ast.avalue)
      body.Ast.attrs
    @ List.concat_map
        (fun (b : Ast.block) ->
          match (b.Ast.btype, b.Ast.labels) with
          | "dynamic", [ gen_type ] ->
              let iterator =
                match Ast.attr b.Ast.bbody "iterator" with
                | Some { Ast.desc = Ast.Var it; _ } -> it
                | Some { Ast.desc = Ast.Template [ Ast.Lit it ]; _ } -> it
                | _ -> gen_type
              in
              let head =
                match Ast.attr b.Ast.bbody "for_each" with
                | Some e -> of_expr ~bound e
                | None -> []
              in
              head
              @ List.concat_map
                  (fun (c : Ast.block) ->
                    if c.Ast.btype = "content" then
                      walk_body (iterator :: bound) c.Ast.bbody
                    else walk_body bound c.Ast.bbody)
                  b.Ast.bbody.Ast.blocks
          | _ -> walk_body bound b.Ast.bbody)
        body.Ast.blocks
  in
  let all = walk_body [] body in
  List.fold_left
    (fun acc t -> if List.exists (equal_target t) acc then acc else acc @ [ t ])
    [] all

(** Just the resource/data/module dependencies — what matters for graph
    construction. *)
let dependencies_of_body body =
  List.filter
    (function
      | Tresource _ | Tdata _ | Tmodule _ -> true
      | Tvar _ | Tlocal _ | Tcount | Teach | Tpath -> false)
    (of_body body)
