(** Conversion between runtime values and literal expressions.

    Lets higher layers serialize fully-known values (deployment state,
    imported cloud attributes) as HCL source and read them back with
    the ordinary parser — one syntax everywhere. *)

exception Not_literal of string

(** [value_to_expr v] builds a literal expression rendering [v].
    Unknown values cannot be serialized and raise {!Not_literal}. *)
let rec value_to_expr (v : Value.t) : Ast.expr =
  match v with
  | Value.Vnull -> Ast.mk Ast.Null
  | Value.Vbool b -> Ast.mk (Ast.Bool b)
  | Value.Vint n -> Ast.mk (Ast.Int n)
  | Value.Vfloat f -> Ast.mk (Ast.Float f)
  | Value.Vstring s -> Ast.string_lit s
  | Value.Vlist vs -> Ast.mk (Ast.ListLit (List.map value_to_expr vs))
  | Value.Vmap m ->
      Ast.mk
        (Ast.ObjectLit
           (List.map
              (fun (k, v) -> (Ast.Kident k, value_to_expr v))
              (Value.Smap.bindings m)))
  | Value.Vunknown p -> raise (Not_literal ("unknown value: " ^ p))

(** [expr_to_value e] evaluates a *literal* expression to its value.
    Returns [None] when the expression contains references or calls. *)
let expr_to_value (e : Ast.expr) : Value.t option =
  if not (Ast.is_literal e) then None
  else
    match Eval.eval_expr e with
    | v -> Some v
    | exception _ -> None
