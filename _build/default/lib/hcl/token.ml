(** Tokens produced by the {!Lexer}.

    Quoted strings are lexed into a list of {!str_part}s: literal text
    interleaved with the token streams of [${...}] interpolations, which
    the parser later parses recursively with the ordinary expression
    grammar. *)

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | QUOTED of str_part list  (** double-quoted string template *)
  | HEREDOC of str_part list  (** <<EOF ... EOF template *)
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | COLON
  | QUESTION
  | ASSIGN  (** [=] *)
  | FATARROW  (** [=>] used in for-expressions over maps *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ  (** [==] *)
  | NEQ
  | LT
  | GT
  | LE
  | GE
  | AND
  | OR
  | NOT
  | ELLIPSIS  (** [...] *)
  | NEWLINE  (** significant inside block bodies *)
  | EOF

and str_part = Lit of string | Interp of spanned list
and spanned = { tok : t; span : Loc.span }

let rec describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT f -> Printf.sprintf "number %g" f
  | QUOTED _ -> "string"
  | HEREDOC _ -> "heredoc"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | COLON -> "':'"
  | QUESTION -> "'?'"
  | ASSIGN -> "'='"
  | FATARROW -> "'=>'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | EQ -> "'=='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | GT -> "'>'"
  | LE -> "'<='"
  | GE -> "'>='"
  | AND -> "'&&'"
  | OR -> "'||'"
  | NOT -> "'!'"
  | ELLIPSIS -> "'...'"
  | NEWLINE -> "newline"
  | EOF -> "end of input"

and describe_spanned { tok; _ } = describe tok
