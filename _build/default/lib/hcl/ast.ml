(** Abstract syntax for the HCL subset.

    The surface grammar follows Terraform's HCL2: a configuration is a
    sequence of blocks; block bodies contain attribute assignments and
    nested blocks; attribute values are full expressions with string
    templates, operators, conditionals, for-expressions and function
    calls. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Gt
  | Le
  | Ge
  | And
  | Or

type unop = Neg | Not

type expr = { desc : desc; espan : Loc.span }

and desc =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Template of part list
      (** string template; a single [Lit] part is a plain string *)
  | Var of string  (** root of a reference chain: [var], [aws_vpc], ... *)
  | GetAttr of expr * string  (** [e.attr] *)
  | Index of expr * expr  (** [e[i]] *)
  | Splat of expr * string  (** [e[*].attr] *)
  | ListLit of expr list
  | ObjectLit of (object_key * expr) list
  | Call of string * expr list * bool
      (** function call; the flag marks a trailing [...] expansion *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr  (** [c ? a : b] *)
  | ForList of for_clause  (** [\[for x in coll : body if cond\]] *)
  | ForMap of for_clause * expr
      (** [{for k, v in coll : key => value if cond}]; the extra expr is
          the value, [for_clause.body] is the key *)
  | Paren of expr

and part = Lit of string | Interp of expr

and object_key = Kident of string | Kexpr of expr

and for_clause = {
  key_var : string option;  (** bound to index/key when two vars given *)
  val_var : string;
  coll : expr;
  body : expr;
  cond : expr option;
}

(** A block such as [resource "aws_vpc" "main" { ... }]. *)
type block = {
  btype : string;  (** [resource], [variable], [module], ... *)
  labels : string list;
  bbody : body;
  bspan : Loc.span;
}

and body = { attrs : attribute list; blocks : block list }

and attribute = { aname : string; avalue : expr; aspan : Loc.span }

let mk ?(span = Loc.dummy) desc = { desc; espan = span }

let string_lit ?(span = Loc.dummy) s = mk ~span (Template [ Lit s ])

let empty_body = { attrs = []; blocks = [] }

(** [attr body name] finds the expression assigned to [name], if any. *)
let attr body name =
  List.find_map
    (fun a -> if a.aname = name then Some a.avalue else None)
    body.attrs

let attr_span body name =
  List.find_map
    (fun a -> if a.aname = name then Some a.aspan else None)
    body.attrs

(** Nested blocks of a given type, e.g. all [ingress] blocks. *)
let blocks_of_type body ty = List.filter (fun b -> b.btype = ty) body.blocks

(** [is_literal e] holds when [e] contains no references or calls, i.e.
    it can be evaluated without any scope. *)
let rec is_literal e =
  match e.desc with
  | Null | Bool _ | Int _ | Float _ -> true
  | Template parts ->
      List.for_all (function Lit _ -> true | Interp e -> is_literal e) parts
  | ListLit es -> List.for_all is_literal es
  | ObjectLit kvs ->
      List.for_all
        (fun (k, v) ->
          (match k with Kident _ -> true | Kexpr e -> is_literal e)
          && is_literal v)
        kvs
  | Paren e | Unop (_, e) -> is_literal e
  | Binop (_, a, b) -> is_literal a && is_literal b
  | Cond (c, a, b) -> is_literal c && is_literal a && is_literal b
  | Var _ | GetAttr _ | Index _ | Splat _ | Call _ | ForList _ | ForMap _ ->
      false

(** Fold over every sub-expression of [e], outermost first. *)
let rec fold_expr f acc e =
  let acc = f acc e in
  match e.desc with
  | Null | Bool _ | Int _ | Float _ | Var _ -> acc
  | Template parts ->
      List.fold_left
        (fun acc -> function Lit _ -> acc | Interp e -> fold_expr f acc e)
        acc parts
  | GetAttr (e, _) | Splat (e, _) | Paren e | Unop (_, e) -> fold_expr f acc e
  | Index (a, b) | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | ListLit es -> List.fold_left (fold_expr f) acc es
  | ObjectLit kvs ->
      List.fold_left
        (fun acc (k, v) ->
          let acc =
            match k with Kident _ -> acc | Kexpr e -> fold_expr f acc e
          in
          fold_expr f acc v)
        acc kvs
  | Call (_, args, _) -> List.fold_left (fold_expr f) acc args
  | Cond (c, a, b) -> fold_expr f (fold_expr f (fold_expr f acc c) a) b
  | ForList fc ->
      let acc = fold_expr f acc fc.coll in
      let acc = fold_expr f acc fc.body in
      (match fc.cond with Some c -> fold_expr f acc c | None -> acc)
  | ForMap (fc, v) ->
      let acc = fold_expr f acc fc.coll in
      let acc = fold_expr f acc fc.body in
      let acc = fold_expr f acc v in
      (match fc.cond with Some c -> fold_expr f acc c | None -> acc)

(** Every expression in a body, attributes first then nested blocks. *)
let rec body_exprs body =
  List.map (fun a -> a.avalue) body.attrs
  @ List.concat_map (fun b -> body_exprs b.bbody) body.blocks
