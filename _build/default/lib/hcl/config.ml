(** Structured view of a parsed configuration.

    Raises {!Config_error} when a well-formed HCL body is not a
    well-formed *configuration* (wrong label counts, unknown top-level
    block types, duplicate names, ...). *)

exception Config_error of string * Loc.span

let errf span fmt = Fmt.kstr (fun s -> raise (Config_error (s, span))) fmt

type variable = {
  vname : string;
  vtype : string option;  (** declared type, e.g. ["string"], ["list"] *)
  vdefault : Ast.expr option;
  vdescription : string option;
  vspan : Loc.span;
}

type lifecycle = {
  create_before_destroy : bool;
  prevent_destroy : bool;
  ignore_changes : string list;
}

let default_lifecycle =
  { create_before_destroy = false; prevent_destroy = false; ignore_changes = [] }

type resource = {
  rtype : string;
  rname : string;
  rbody : Ast.body;  (** body minus meta-arguments *)
  rcount : Ast.expr option;
  rfor_each : Ast.expr option;
  rprovider : string option;  (** explicit [provider =] override *)
  rdepends_on : (string * string) list;  (** (type, name) pairs *)
  rlifecycle : lifecycle;
  rspan : Loc.span;
}

type data_source = {
  dtype : string;
  dname : string;
  dbody : Ast.body;
  dspan : Loc.span;
}

type output = {
  oname : string;
  ovalue : Ast.expr;
  odescription : string option;
  ospan : Loc.span;
}

type module_call = {
  mname : string;
  msource : string;
  margs : (string * Ast.expr) list;  (** arguments minus meta-arguments *)
  mcount : Ast.expr option;
  mfor_each : Ast.expr option;
  mspan : Loc.span;
}

type provider_config = {
  pname : string;
  pbody : Ast.body;
  pspan : Loc.span;
}

type t = {
  file : string;
  variables : variable list;
  locals : (string * Ast.expr) list;
  resources : resource list;
  data_sources : data_source list;
  outputs : output list;
  modules : module_call list;
  providers : provider_config list;
}

let empty ~file =
  {
    file;
    variables = [];
    locals = [];
    resources = [];
    data_sources = [];
    outputs = [];
    modules = [];
    providers = [];
  }

(* ------------------------------------------------------------------ *)
(* Extraction helpers                                                  *)
(* ------------------------------------------------------------------ *)

let literal_string span e =
  match e.Ast.desc with
  | Ast.Template [ Ast.Lit s ] -> s
  | Ast.Template [] -> ""
  | _ -> errf span "expected a literal string"

let opt_literal_string body name =
  match Ast.attr body name with
  | None -> None
  | Some e ->
      let span = Option.value ~default:Loc.dummy (Ast.attr_span body name) in
      Some (literal_string span e)

let literal_bool span e =
  match e.Ast.desc with
  | Ast.Bool b -> b
  | _ -> errf span "expected a literal bool"

(* depends_on = [aws_vpc.main, module.net] : references given as bare
   traversals. *)
let parse_depends_on span e =
  let one (item : Ast.expr) =
    match Refs.of_expr item with
    | [ Refs.Tresource (t, n) ] -> (t, n)
    | [ Refs.Tdata (t, n) ] -> ("data." ^ t, n)
    | [ Refs.Tmodule (m, _) ] -> ("module", m)
    | _ -> errf span "depends_on entries must be resource references"
  in
  match e.Ast.desc with
  | Ast.ListLit items -> List.map one items
  | _ -> errf span "depends_on must be a list"

let parse_lifecycle (b : Ast.block) =
  let body = b.Ast.bbody in
  let get_bool name =
    match Ast.attr body name with
    | None -> false
    | Some e ->
        literal_bool (Option.value ~default:b.Ast.bspan (Ast.attr_span body name)) e
  in
  let ignore_changes =
    match Ast.attr body "ignore_changes" with
    | None -> []
    | Some { Ast.desc = Ast.ListLit items; _ } ->
        List.map
          (fun (item : Ast.expr) ->
            match item.Ast.desc with
            | Ast.Var name -> name
            | Ast.Template [ Ast.Lit s ] -> s
            | _ -> errf b.Ast.bspan "ignore_changes entries must be attribute names")
          items
    | Some _ -> errf b.Ast.bspan "ignore_changes must be a list"
  in
  {
    create_before_destroy = get_bool "create_before_destroy";
    prevent_destroy = get_bool "prevent_destroy";
    ignore_changes;
  }

(* Strip the meta-arguments out of a resource body, returning them
   separately. *)
let split_resource_body (b : Ast.block) =
  let body = b.Ast.bbody in
  let meta = [ "count"; "for_each"; "provider"; "depends_on" ] in
  let plain_attrs =
    List.filter (fun (a : Ast.attribute) -> not (List.mem a.Ast.aname meta)) body.attrs
  in
  let lifecycle_blocks, other_blocks =
    List.partition (fun (bl : Ast.block) -> bl.Ast.btype = "lifecycle") body.blocks
  in
  let rcount = Ast.attr body "count" in
  let rfor_each = Ast.attr body "for_each" in
  let rprovider =
    match Ast.attr body "provider" with
    | None -> None
    | Some e -> (
        match e.Ast.desc with
        | Ast.Var p -> Some p
        | Ast.GetAttr ({ Ast.desc = Ast.Var p; _ }, alias) -> Some (p ^ "." ^ alias)
        | Ast.Template [ Ast.Lit s ] -> Some s
        | _ -> errf b.Ast.bspan "provider must be a provider reference")
  in
  let rdepends_on =
    match Ast.attr body "depends_on" with
    | None -> []
    | Some e ->
        parse_depends_on
          (Option.value ~default:b.Ast.bspan (Ast.attr_span body "depends_on"))
          e
  in
  let rlifecycle =
    match lifecycle_blocks with
    | [] -> default_lifecycle
    | [ lb ] -> parse_lifecycle lb
    | _ -> errf b.Ast.bspan "multiple lifecycle blocks"
  in
  ( { Ast.attrs = plain_attrs; blocks = other_blocks },
    rcount,
    rfor_each,
    rprovider,
    rdepends_on,
    rlifecycle )

(* ------------------------------------------------------------------ *)
(* Top-level assembly                                                  *)
(* ------------------------------------------------------------------ *)

let of_body ~file (body : Ast.body) : t =
  if body.Ast.attrs <> [] then begin
    let a = List.hd body.Ast.attrs in
    errf a.Ast.aspan "attribute %S not allowed at top level" a.Ast.aname
  end;
  let cfg = ref (empty ~file) in
  let add_variable (b : Ast.block) name =
    let vb = b.Ast.bbody in
    let vtype =
      match Ast.attr vb "type" with
      | None -> None
      | Some e -> (
          match e.Ast.desc with
          | Ast.Var ty -> Some ty
          | Ast.Template [ Ast.Lit ty ] -> Some ty
          | Ast.Call (ctor, _, _) -> Some ctor
          | _ -> errf b.Ast.bspan "variable type must be a type name")
    in
    let v =
      {
        vname = name;
        vtype;
        vdefault = Ast.attr vb "default";
        vdescription = opt_literal_string vb "description";
        vspan = b.Ast.bspan;
      }
    in
    if List.exists (fun v' -> v'.vname = name) !cfg.variables then
      errf b.Ast.bspan "duplicate variable %S" name;
    cfg := { !cfg with variables = !cfg.variables @ [ v ] }
  in
  let add_resource (b : Ast.block) rtype rname =
    if
      List.exists
        (fun r -> r.rtype = rtype && r.rname = rname)
        !cfg.resources
    then errf b.Ast.bspan "duplicate resource %s.%s" rtype rname;
    let rbody, rcount, rfor_each, rprovider, rdepends_on, rlifecycle =
      split_resource_body b
    in
    let r =
      {
        rtype;
        rname;
        rbody;
        rcount;
        rfor_each;
        rprovider;
        rdepends_on;
        rlifecycle;
        rspan = b.Ast.bspan;
      }
    in
    cfg := { !cfg with resources = !cfg.resources @ [ r ] }
  in
  let add_data (b : Ast.block) dtype dname =
    if
      List.exists
        (fun d -> d.dtype = dtype && d.dname = dname)
        !cfg.data_sources
    then errf b.Ast.bspan "duplicate data source data.%s.%s" dtype dname;
    let d = { dtype; dname; dbody = b.Ast.bbody; dspan = b.Ast.bspan } in
    cfg := { !cfg with data_sources = !cfg.data_sources @ [ d ] }
  in
  let add_output (b : Ast.block) name =
    let ob = b.Ast.bbody in
    let ovalue =
      match Ast.attr ob "value" with
      | Some e -> e
      | None -> errf b.Ast.bspan "output %S has no value" name
    in
    let o =
      {
        oname = name;
        ovalue;
        odescription = opt_literal_string ob "description";
        ospan = b.Ast.bspan;
      }
    in
    if List.exists (fun o' -> o'.oname = name) !cfg.outputs then
      errf b.Ast.bspan "duplicate output %S" name;
    cfg := { !cfg with outputs = !cfg.outputs @ [ o ] }
  in
  let add_module (b : Ast.block) name =
    let mb = b.Ast.bbody in
    let msource =
      match Ast.attr mb "source" with
      | Some e ->
          literal_string
            (Option.value ~default:b.Ast.bspan (Ast.attr_span mb "source"))
            e
      | None -> errf b.Ast.bspan "module %S has no source" name
    in
    let meta = [ "source"; "count"; "for_each"; "providers"; "depends_on" ] in
    let margs =
      List.filter_map
        (fun (a : Ast.attribute) ->
          if List.mem a.Ast.aname meta then None
          else Some (a.Ast.aname, a.Ast.avalue))
        mb.Ast.attrs
    in
    let m =
      {
        mname = name;
        msource;
        margs;
        mcount = Ast.attr mb "count";
        mfor_each = Ast.attr mb "for_each";
        mspan = b.Ast.bspan;
      }
    in
    if List.exists (fun m' -> m'.mname = name) !cfg.modules then
      errf b.Ast.bspan "duplicate module %S" name;
    cfg := { !cfg with modules = !cfg.modules @ [ m ] }
  in
  let add_locals (b : Ast.block) =
    let entries =
      List.map (fun (a : Ast.attribute) -> (a.Ast.aname, a.Ast.avalue)) b.Ast.bbody.attrs
    in
    List.iter
      (fun (name, _) ->
        if List.mem_assoc name !cfg.locals then
          errf b.Ast.bspan "duplicate local %S" name)
      entries;
    cfg := { !cfg with locals = !cfg.locals @ entries }
  in
  let add_provider (b : Ast.block) name =
    let p = { pname = name; pbody = b.Ast.bbody; pspan = b.Ast.bspan } in
    cfg := { !cfg with providers = !cfg.providers @ [ p ] }
  in
  List.iter
    (fun (b : Ast.block) ->
      match (b.Ast.btype, b.Ast.labels) with
      | "variable", [ name ] -> add_variable b name
      | "variable", _ -> errf b.Ast.bspan "variable block takes exactly one label"
      | "resource", [ rtype; rname ] -> add_resource b rtype rname
      | "resource", _ -> errf b.Ast.bspan "resource block takes two labels"
      | "data", [ dtype; dname ] -> add_data b dtype dname
      | "data", _ -> errf b.Ast.bspan "data block takes two labels"
      | "output", [ name ] -> add_output b name
      | "output", _ -> errf b.Ast.bspan "output block takes exactly one label"
      | "module", [ name ] -> add_module b name
      | "module", _ -> errf b.Ast.bspan "module block takes exactly one label"
      | "locals", [] -> add_locals b
      | "locals", _ -> errf b.Ast.bspan "locals block takes no labels"
      | "provider", [ name ] -> add_provider b name
      | "provider", _ -> errf b.Ast.bspan "provider block takes exactly one label"
      | "terraform", _ -> ()  (* settings block: accepted and ignored *)
      | ty, _ -> errf b.Ast.bspan "unknown top-level block type %S" ty)
    body.Ast.blocks;
  !cfg

(** Parse source text into a structured configuration. *)
let parse ~file src = of_body ~file (Parser.parse ~file src)

let find_resource t rtype rname =
  List.find_opt (fun r -> r.rtype = rtype && r.rname = rname) t.resources

let find_variable t name = List.find_opt (fun v -> v.vname = name) t.variables

let find_module t name = List.find_opt (fun m -> m.mname = name) t.modules

(** Reconstruct a printable AST body from a structured config.  Blocks
    appear in a conventional order: variables, locals, data, resources,
    modules, outputs. *)
let to_body (t : t) : Ast.body =
  let variable_block v =
    let attrs =
      (match v.vtype with
      | Some ty ->
          [ { Ast.aname = "type"; avalue = Ast.mk (Ast.Var ty); aspan = Loc.dummy } ]
      | None -> [])
      @ (match v.vdefault with
        | Some d -> [ { Ast.aname = "default"; avalue = d; aspan = Loc.dummy } ]
        | None -> [])
      @
      match v.vdescription with
      | Some d ->
          [
            {
              Ast.aname = "description";
              avalue = Ast.string_lit d;
              aspan = Loc.dummy;
            };
          ]
      | None -> []
    in
    {
      Ast.btype = "variable";
      labels = [ v.vname ];
      bbody = { Ast.attrs; blocks = [] };
      bspan = v.vspan;
    }
  in
  let locals_block =
    if t.locals = [] then []
    else
      [
        {
          Ast.btype = "locals";
          labels = [];
          bbody =
            {
              Ast.attrs =
                List.map
                  (fun (name, e) ->
                    { Ast.aname = name; avalue = e; aspan = Loc.dummy })
                  t.locals;
              blocks = [];
            };
          bspan = Loc.dummy;
        };
      ]
  in
  let data_block d =
    { Ast.btype = "data"; labels = [ d.dtype; d.dname ]; bbody = d.dbody; bspan = d.dspan }
  in
  let resource_block r =
    let meta_attrs =
      (match r.rcount with
      | Some c -> [ { Ast.aname = "count"; avalue = c; aspan = Loc.dummy } ]
      | None -> [])
      @
      match r.rfor_each with
      | Some fe -> [ { Ast.aname = "for_each"; avalue = fe; aspan = Loc.dummy } ]
      | None -> []
    in
    let depends_attr =
      if r.rdepends_on = [] then []
      else
        [
          {
            Ast.aname = "depends_on";
            avalue =
              Ast.mk
                (Ast.ListLit
                   (List.map
                      (fun (ty, n) ->
                        Ast.mk (Ast.GetAttr (Ast.mk (Ast.Var ty), n)))
                      r.rdepends_on));
            aspan = Loc.dummy;
          };
        ]
    in
    {
      Ast.btype = "resource";
      labels = [ r.rtype; r.rname ];
      bbody =
        {
          Ast.attrs = meta_attrs @ r.rbody.Ast.attrs @ depends_attr;
          blocks = r.rbody.Ast.blocks;
        };
      bspan = r.rspan;
    }
  in
  let module_block m =
    let attrs =
      { Ast.aname = "source"; avalue = Ast.string_lit m.msource; aspan = Loc.dummy }
      :: List.map
           (fun (name, e) -> { Ast.aname = name; avalue = e; aspan = Loc.dummy })
           m.margs
    in
    {
      Ast.btype = "module";
      labels = [ m.mname ];
      bbody = { Ast.attrs; blocks = [] };
      bspan = m.mspan;
    }
  in
  let output_block o =
    {
      Ast.btype = "output";
      labels = [ o.oname ];
      bbody =
        {
          Ast.attrs =
            [ { Ast.aname = "value"; avalue = o.ovalue; aspan = Loc.dummy } ];
          blocks = [];
        };
      bspan = o.ospan;
    }
  in
  let provider_block p =
    { Ast.btype = "provider"; labels = [ p.pname ]; bbody = p.pbody; bspan = p.pspan }
  in
  {
    Ast.attrs = [];
    blocks =
      List.map provider_block t.providers
      @ List.map variable_block t.variables
      @ locals_block
      @ List.map data_block t.data_sources
      @ List.map resource_block t.resources
      @ List.map module_block t.modules
      @ List.map output_block t.outputs;
  }

(** Render a structured configuration back to HCL text. *)
let to_string t = Printer.config_to_string (to_body t)

(** Merge several parsed files into one configuration (Terraform's
    directory model: all [*.tf] files in a directory form one module).
    Duplicate declarations across files are errors, like within one
    file. *)
let merge (configs : t list) : t =
  match configs with
  | [] -> empty ~file:"<empty>"
  | first :: rest ->
      List.fold_left
        (fun acc c ->
          List.iter
            (fun (v : variable) ->
              if List.exists (fun v' -> v'.vname = v.vname) acc.variables then
                errf v.vspan "duplicate variable %S across files" v.vname)
            c.variables;
          List.iter
            (fun (r : resource) ->
              if
                List.exists
                  (fun r' -> r'.rtype = r.rtype && r'.rname = r.rname)
                  acc.resources
              then
                errf r.rspan "duplicate resource %s.%s across files" r.rtype
                  r.rname)
            c.resources;
          List.iter
            (fun (o : output) ->
              if List.exists (fun o' -> o'.oname = o.oname) acc.outputs then
                errf o.ospan "duplicate output %S across files" o.oname)
            c.outputs;
          List.iter
            (fun (m : module_call) ->
              if List.exists (fun m' -> m'.mname = m.mname) acc.modules then
                errf m.mspan "duplicate module %S across files" m.mname)
            c.modules;
          List.iter
            (fun (name, _) ->
              if List.mem_assoc name acc.locals then
                errf Loc.dummy "duplicate local %S across files" name)
            c.locals;
          {
            acc with
            variables = acc.variables @ c.variables;
            locals = acc.locals @ c.locals;
            resources = acc.resources @ c.resources;
            data_sources = acc.data_sources @ c.data_sources;
            outputs = acc.outputs @ c.outputs;
            modules = acc.modules @ c.modules;
            providers = acc.providers @ c.providers;
          })
        first rest
