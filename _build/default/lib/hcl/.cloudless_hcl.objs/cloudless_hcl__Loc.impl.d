lib/hcl/loc.ml: Fmt
