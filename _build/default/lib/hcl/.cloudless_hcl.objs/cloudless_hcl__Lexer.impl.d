lib/hcl/lexer.ml: Buffer List Loc Printf String Token
