lib/hcl/eval.ml: Addr Ast Buffer Config Float Fmt Fun Funcs Hashtbl List Loc Parser Printf Refs String Value
