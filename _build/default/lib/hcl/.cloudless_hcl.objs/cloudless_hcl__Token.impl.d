lib/hcl/token.ml: Loc Printf
