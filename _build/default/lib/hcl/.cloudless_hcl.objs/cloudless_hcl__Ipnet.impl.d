lib/hcl/ipnet.ml: Fmt Int32 Printf String
