lib/hcl/value.ml: Bool Buffer Float Fmt List Map Printf String
