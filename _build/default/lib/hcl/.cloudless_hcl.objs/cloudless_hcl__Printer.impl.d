lib/hcl/printer.ml: Ast Buffer List String Value
