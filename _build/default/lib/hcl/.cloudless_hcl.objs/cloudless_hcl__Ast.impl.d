lib/hcl/ast.ml: List Loc
