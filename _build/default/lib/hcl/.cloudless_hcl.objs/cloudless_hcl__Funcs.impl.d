lib/hcl/funcs.ml: Buffer Bytes Char Float Fmt Int64 Ipnet List Printf Smap String Value
