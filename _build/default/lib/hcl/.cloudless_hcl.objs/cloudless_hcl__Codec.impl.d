lib/hcl/codec.ml: Ast Eval List Value
