lib/hcl/addr.ml: Fmt List Map Printf Scanf Set Stdlib String
