lib/hcl/refs.ml: Ast List Option
