lib/hcl/config.ml: Ast Fmt List Loc Option Parser Printer Refs
