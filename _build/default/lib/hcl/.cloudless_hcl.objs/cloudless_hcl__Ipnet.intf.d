lib/hcl/ipnet.mli:
