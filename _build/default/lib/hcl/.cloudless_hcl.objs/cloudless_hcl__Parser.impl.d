lib/hcl/parser.ml: Ast Lexer List Loc Printf Token
