(** The HCL standard function library.

    A close subset of Terraform's built-in functions: string, numeric,
    collection, encoding and network (CIDR) functions.  Functions are
    pure; unknown-value short-circuiting is handled by the evaluator
    before the call, so implementations here may assume fully-known
    arguments. *)

open Value

exception Call_error of string

let err fmt = Fmt.kstr (fun s -> raise (Call_error s)) fmt

let arity name n args =
  if List.length args <> n then
    err "%s expects %d argument(s), got %d" name n (List.length args)

let arity_min name n args =
  if List.length args < n then
    err "%s expects at least %d argument(s), got %d" name n (List.length args)

let arg1 name = function [ a ] -> a | args -> (arity name 1 args; assert false)

let arg2 name = function
  | [ a; b ] -> (a, b)
  | args ->
      arity name 2 args;
      assert false

let arg3 name = function
  | [ a; b; c ] -> (a, b, c)
  | args ->
      arity name 3 args;
      assert false

(* ------------------------------------------------------------------ *)
(* String functions                                                    *)
(* ------------------------------------------------------------------ *)

let fn_upper args = Vstring (String.uppercase_ascii (to_string (arg1 "upper" args)))
let fn_lower args = Vstring (String.lowercase_ascii (to_string (arg1 "lower" args)))
let fn_trim_space args = Vstring (String.trim (to_string (arg1 "trimspace" args)))

let fn_strlen args = Vint (String.length (to_string (arg1 "strlen" args)))

let fn_substr args =
  let s, off, len = arg3 "substr" args in
  let s = to_string s and off = to_int off and len = to_int len in
  let n = String.length s in
  let off = if off < 0 then max 0 (n + off) else min off n in
  let len = if len < 0 then n - off else min len (n - off) in
  Vstring (String.sub s off len)

let fn_replace args =
  let s, old_sub, new_sub =
    match args with
    | [ a; b; c ] -> (to_string a, to_string b, to_string c)
    | _ -> err "replace expects 3 arguments"
  in
  if old_sub = "" then Vstring s
  else begin
    let buf = Buffer.create (String.length s) in
    let olen = String.length old_sub in
    let rec go i =
      if i > String.length s - olen then
        Buffer.add_string buf (String.sub s i (String.length s - i))
      else if String.sub s i olen = old_sub then begin
        Buffer.add_string buf new_sub;
        go (i + olen)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0;
    Vstring (Buffer.contents buf)
  end

let fn_split args =
  let sep, s = arg2 "split" args in
  let sep = to_string sep and s = to_string s in
  if sep = "" then err "split: empty separator";
  let parts = ref [] in
  let slen = String.length sep in
  let rec go start i =
    if i > String.length s - slen then
      parts := String.sub s start (String.length s - start) :: !parts
    else if String.sub s i slen = sep then begin
      parts := String.sub s start (i - start) :: !parts;
      go (i + slen) (i + slen)
    end
    else go start (i + 1)
  in
  go 0 0;
  Vlist (List.rev_map (fun p -> Vstring p) !parts)

let fn_join args =
  match args with
  | [ sep; lst ] ->
      let sep = to_string sep in
      Vstring (String.concat sep (List.map to_string (to_list lst)))
  | _ -> err "join expects 2 arguments"

let fn_title args =
  let s = to_string (arg1 "title" args) in
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  for i = 0 to n - 1 do
    let at_word_start =
      i = 0
      ||
      match Bytes.get b (i - 1) with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> false
      | _ -> true
    in
    if at_word_start then Bytes.set b i (Char.uppercase_ascii (Bytes.get b i))
  done;
  Vstring (Bytes.to_string b)

let fn_trimprefix args =
  let s, p = arg2 "trimprefix" args in
  let s = to_string s and p = to_string p in
  if String.length s >= String.length p && String.sub s 0 (String.length p) = p
  then Vstring (String.sub s (String.length p) (String.length s - String.length p))
  else Vstring s

let fn_trimsuffix args =
  let s, p = arg2 "trimsuffix" args in
  let s = to_string s and p = to_string p in
  let sl = String.length s and pl = String.length p in
  if sl >= pl && String.sub s (sl - pl) pl = p then
    Vstring (String.sub s 0 (sl - pl))
  else Vstring s

let fn_startswith args =
  let s, p = arg2 "startswith" args in
  let s = to_string s and p = to_string p in
  Vbool (String.length s >= String.length p && String.sub s 0 (String.length p) = p)

let fn_endswith args =
  let s, p = arg2 "endswith" args in
  let s = to_string s and p = to_string p in
  let sl = String.length s and pl = String.length p in
  Vbool (sl >= pl && String.sub s (sl - pl) pl = p)

(* Terraform-style format: %s %d %f %% and %v verbs. *)
let format_value fmt_str args =
  let buf = Buffer.create (String.length fmt_str + 16) in
  let args = ref args in
  let next name =
    match !args with
    | [] -> err "format: not enough arguments for %s" name
    | a :: rest ->
        args := rest;
        a
  in
  let n = String.length fmt_str in
  let pad zero width s =
    if String.length s >= width then s
    else
      let fill = String.make (width - String.length s) (if zero then '0' else ' ') in
      fill ^ s
  in
  let rec go i =
    if i >= n then ()
    else if fmt_str.[i] = '%' && i + 1 < n then begin
      (* optional zero flag and width, e.g. %02d *)
      let j = ref (i + 1) in
      let zero = !j < n && fmt_str.[!j] = '0' in
      if zero then incr j;
      let wstart = !j in
      while !j < n && fmt_str.[!j] >= '0' && fmt_str.[!j] <= '9' do
        incr j
      done;
      let width =
        if !j > wstart then int_of_string (String.sub fmt_str wstart (!j - wstart))
        else 0
      in
      if !j >= n then err "format: dangling %%";
      (match fmt_str.[!j] with
      | 's' -> Buffer.add_string buf (pad zero width (to_string (next "%s")))
      | 'd' ->
          Buffer.add_string buf
            (pad zero width (string_of_int (to_int (next "%d"))))
      | 'f' -> Buffer.add_string buf (Printf.sprintf "%f" (to_float (next "%f")))
      | 'g' -> Buffer.add_string buf (Printf.sprintf "%g" (to_float (next "%g")))
      | 'v' -> Buffer.add_string buf (to_string (next "%v"))
      | '%' -> Buffer.add_char buf '%'
      | c -> err "format: unsupported verb %%%c" c);
      go (!j + 1)
    end
    else begin
      Buffer.add_char buf fmt_str.[i];
      go (i + 1)
    end
  in
  go 0;
  if !args <> [] then err "format: too many arguments";
  Buffer.contents buf

let fn_format args =
  match args with
  | fmt :: rest -> Vstring (format_value (to_string fmt) rest)
  | [] -> err "format expects at least 1 argument"

let fn_formatlist args =
  match args with
  | fmt :: rest ->
      let fmt = to_string fmt in
      let lists = List.map to_list rest in
      let len =
        match lists with
        | [] -> 0
        | l :: _ -> List.length l
      in
      if List.exists (fun l -> List.length l <> len) lists then
        err "formatlist: argument lists have different lengths";
      let rows =
        List.init len (fun i -> List.map (fun l -> List.nth l i) lists)
      in
      Vlist (List.map (fun row -> Vstring (format_value fmt row)) rows)
  | [] -> err "formatlist expects at least 1 argument"

(* ------------------------------------------------------------------ *)
(* Numeric functions                                                   *)
(* ------------------------------------------------------------------ *)

let numeric1 name f g args =
  match arg1 name args with
  | Vint n -> f n
  | v -> g (to_float v)

let fn_abs = numeric1 "abs" (fun n -> Vint (abs n)) (fun f -> Vfloat (Float.abs f))
let fn_ceil args = Vint (int_of_float (Float.ceil (to_float (arg1 "ceil" args))))
let fn_floor args = Vint (int_of_float (Float.floor (to_float (arg1 "floor" args))))

let fn_min args =
  arity_min "min" 1 args;
  List.fold_left (fun acc v -> if compare_values v acc < 0 then v else acc)
    (List.hd args) (List.tl args)

let fn_max args =
  arity_min "max" 1 args;
  List.fold_left (fun acc v -> if compare_values v acc > 0 then v else acc)
    (List.hd args) (List.tl args)

let fn_pow args =
  let b, e = arg2 "pow" args in
  Vfloat (Float.pow (to_float b) (to_float e))

let fn_signum args =
  match arg1 "signum" args with
  | Vint n -> Vint (compare n 0)
  | v ->
      let f = to_float v in
      Vint (compare f 0.)

let fn_parseint args =
  let s, base = arg2 "parseint" args in
  let s = to_string s and base = to_int base in
  let digit c =
    if c >= '0' && c <= '9' then Char.code c - Char.code '0'
    else if c >= 'a' && c <= 'z' then Char.code c - Char.code 'a' + 10
    else if c >= 'A' && c <= 'Z' then Char.code c - Char.code 'A' + 10
    else err "parseint: invalid digit %C" c
  in
  let neg, s =
    if String.length s > 0 && s.[0] = '-' then
      (true, String.sub s 1 (String.length s - 1))
    else (false, s)
  in
  if s = "" then err "parseint: empty string";
  let v =
    String.fold_left
      (fun acc c ->
        let d = digit c in
        if d >= base then err "parseint: digit %C out of range for base %d" c base;
        (acc * base) + d)
      0 s
  in
  Vint (if neg then -v else v)

(* ------------------------------------------------------------------ *)
(* Collection functions                                                *)
(* ------------------------------------------------------------------ *)

let fn_length args =
  match arg1 "length" args with
  | Vlist vs -> Vint (List.length vs)
  | Vmap m -> Vint (Smap.cardinal m)
  | Vstring s -> Vint (String.length s)
  | v -> err "length: expected list, map or string, got %s" (type_name v)

let fn_element args =
  let lst, idx = arg2 "element" args in
  let vs = to_list lst and i = to_int idx in
  let n = List.length vs in
  if n = 0 then err "element: empty list";
  List.nth vs (((i mod n) + n) mod n)

let fn_concat args =
  Vlist (List.concat_map to_list args)

let fn_contains args =
  let lst, v = arg2 "contains" args in
  Vbool (List.exists (equal v) (to_list lst))

let fn_index args =
  let lst, v = arg2 "index" args in
  let rec go i = function
    | [] -> err "index: element not found"
    | x :: _ when equal x v -> Vint i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 (to_list lst)

let fn_keys args = Vlist (List.map (fun (k, _) -> Vstring k) (to_assoc (arg1 "keys" args)))
let fn_values args = Vlist (List.map snd (to_assoc (arg1 "values" args)))

let fn_lookup args =
  match args with
  | [ m; k ] -> (
      let m = to_map m and k = to_string k in
      match Smap.find_opt k m with
      | Some v -> v
      | None -> err "lookup: key %S not found and no default given" k)
  | [ m; k; default ] -> (
      let m = to_map m and k = to_string k in
      match Smap.find_opt k m with Some v -> v | None -> default)
  | _ -> err "lookup expects 2 or 3 arguments"

let fn_merge args =
  let merged =
    List.fold_left
      (fun acc m -> Smap.union (fun _ _ v -> Some v) acc (to_map m))
      Smap.empty args
  in
  Vmap merged

let fn_zipmap args =
  let ks, vs = arg2 "zipmap" args in
  let ks = List.map to_string (to_list ks) and vs = to_list vs in
  if List.length ks <> List.length vs then
    err "zipmap: key and value lists have different lengths";
  of_assoc (List.combine ks vs)

let fn_flatten args =
  let rec flat v =
    match v with Vlist vs -> List.concat_map flat vs | v -> [ v ]
  in
  Vlist (flat (Vlist (to_list (arg1 "flatten" args))))

let fn_compact args =
  Vlist
    (List.filter
       (function Vstring "" | Vnull -> false | _ -> true)
       (to_list (arg1 "compact" args)))

let fn_distinct args =
  let seen = ref [] in
  let keep v =
    if List.exists (equal v) !seen then false
    else begin
      seen := v :: !seen;
      true
    end
  in
  Vlist (List.filter keep (to_list (arg1 "distinct" args)))

let fn_sort args =
  Vlist (List.sort compare_values (to_list (arg1 "sort" args)))

let fn_reverse args = Vlist (List.rev (to_list (arg1 "reverse" args)))

let fn_slice args =
  let lst, a, b = arg3 "slice" args in
  let vs = to_list lst and a = to_int a and b = to_int b in
  if a < 0 || b > List.length vs || a > b then err "slice: index out of bounds";
  Vlist (List.filteri (fun i _ -> i >= a && i < b) vs)

let fn_range args =
  let start, stop, step =
    match args with
    | [ stop ] -> (0, to_int stop, 1)
    | [ start; stop ] -> (to_int start, to_int stop, 1)
    | [ start; stop; step ] -> (to_int start, to_int stop, to_int step)
    | _ -> err "range expects 1-3 arguments"
  in
  if step = 0 then err "range: zero step";
  let rec go acc v =
    if (step > 0 && v >= stop) || (step < 0 && v <= stop) then List.rev acc
    else go (Vint v :: acc) (v + step)
  in
  Vlist (go [] start)

let fn_sum args =
  let vs = to_list (arg1 "sum" args) in
  if vs = [] then err "sum: empty list";
  if List.for_all (function Vint _ -> true | _ -> false) vs then
    Vint (List.fold_left (fun acc v -> acc + to_int v) 0 vs)
  else Vfloat (List.fold_left (fun acc v -> acc +. to_float v) 0. vs)

let fn_coalesce args =
  arity_min "coalesce" 1 args;
  match
    List.find_opt (function Vnull | Vstring "" -> false | _ -> true) args
  with
  | Some v -> v
  | None -> err "coalesce: all arguments are null or empty"

let fn_coalescelist args =
  arity_min "coalescelist" 1 args;
  match
    List.find_opt (fun v -> match v with Vlist (_ :: _) -> true | _ -> false) args
  with
  | Some v -> v
  | None -> err "coalescelist: all lists are empty"

let fn_setunion args =
  let all = List.concat_map to_list args in
  fn_distinct [ Vlist all ]

let fn_setintersection args =
  match List.map to_list args with
  | [] -> err "setintersection expects at least 1 argument"
  | first :: rest ->
      let keep v = List.for_all (fun l -> List.exists (equal v) l) rest in
      fn_distinct [ Vlist (List.filter keep first) ]

let fn_chunklist args =
  let lst, size = arg2 "chunklist" args in
  let vs = to_list lst and size = to_int size in
  if size <= 0 then err "chunklist: chunk size must be positive";
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else Vlist (List.rev cur) :: acc)
    | v :: rest ->
        if n = size then go (Vlist (List.rev cur) :: acc) [ v ] 1 rest
        else go acc (v :: cur) (n + 1) rest
  in
  Vlist (go [] [] 0 vs)

let fn_transpose args =
  (* map of string -> list(string)  =>  inverted map *)
  let m = to_map (arg1 "transpose" args) in
  let out = ref Smap.empty in
  Smap.iter
    (fun k vs ->
      List.iter
        (fun v ->
          let v = to_string v in
          let existing =
            match Smap.find_opt v !out with
            | Some (Vlist l) -> l
            | _ -> []
          in
          out := Smap.add v (Vlist (existing @ [ Vstring k ])) !out)
        (to_list vs))
    m;
  Vmap !out

let fn_one args =
  match to_list (arg1 "one" args) with
  | [] -> Vnull
  | [ v ] -> v
  | vs -> err "one: list has %d elements" (List.length vs)

let fn_tolist args = Vlist (to_list (arg1 "tolist" args))
let fn_toset = fn_distinct

(* ------------------------------------------------------------------ *)
(* Type conversion                                                     *)
(* ------------------------------------------------------------------ *)

let fn_tostring args = Vstring (to_string (arg1 "tostring" args))

let fn_tonumber args =
  match arg1 "tonumber" args with
  | (Vint _ | Vfloat _) as v -> v
  | Vstring s -> (
      match int_of_string_opt s with
      | Some n -> Vint n
      | None -> (
          match float_of_string_opt s with
          | Some f -> Vfloat f
          | None -> err "tonumber: cannot convert %S" s))
  | v -> err "tonumber: cannot convert %s" (type_name v)

let fn_tobool args =
  match arg1 "tobool" args with
  | Vbool _ as v -> v
  | Vstring "true" -> Vbool true
  | Vstring "false" -> Vbool false
  | v -> err "tobool: cannot convert %s" (type_name v)

let fn_try args =
  (* try() is special-cased in the evaluator; if we get here all
     arguments evaluated successfully, so return the first. *)
  match args with
  | v :: _ -> v
  | [] -> err "try expects at least 1 argument"

let fn_can args =
  ignore (arg1 "can" args);
  Vbool true

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let fn_jsonencode args = Vstring (to_json_string (arg1 "jsonencode" args))

let base64_alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let fn_base64encode args =
  let s = to_string (arg1 "base64encode" args) in
  let buf = Buffer.create ((String.length s / 3 * 4) + 4) in
  let n = String.length s in
  let get i = if i < n then Char.code s.[i] else 0 in
  let rec go i =
    if i >= n then ()
    else begin
      let b0 = get i and b1 = get (i + 1) and b2 = get (i + 2) in
      let triple = (b0 lsl 16) lor (b1 lsl 8) lor b2 in
      Buffer.add_char buf base64_alphabet.[(triple lsr 18) land 63];
      Buffer.add_char buf base64_alphabet.[(triple lsr 12) land 63];
      Buffer.add_char buf
        (if i + 1 < n then base64_alphabet.[(triple lsr 6) land 63] else '=');
      Buffer.add_char buf
        (if i + 2 < n then base64_alphabet.[triple land 63] else '=');
      go (i + 3)
    end
  in
  go 0;
  Vstring (Buffer.contents buf)

let fn_base64decode args =
  let s = to_string (arg1 "base64decode" args) in
  let value c =
    match String.index_opt base64_alphabet c with
    | Some i -> i
    | None -> err "base64decode: invalid character %C" c
  in
  let buf = Buffer.create (String.length s * 3 / 4) in
  let chars = List.filter (fun c -> c <> '=') (List.init (String.length s) (String.get s)) in
  let rec go = function
    | c0 :: c1 :: c2 :: c3 :: rest ->
        let quad =
          (value c0 lsl 18) lor (value c1 lsl 12) lor (value c2 lsl 6)
          lor value c3
        in
        Buffer.add_char buf (Char.chr ((quad lsr 16) land 255));
        Buffer.add_char buf (Char.chr ((quad lsr 8) land 255));
        Buffer.add_char buf (Char.chr (quad land 255));
        go rest
    | [ c0; c1; c2 ] ->
        let triple = (value c0 lsl 18) lor (value c1 lsl 12) lor (value c2 lsl 6) in
        Buffer.add_char buf (Char.chr ((triple lsr 16) land 255));
        Buffer.add_char buf (Char.chr ((triple lsr 8) land 255))
    | [ c0; c1 ] ->
        let pair = (value c0 lsl 18) lor (value c1 lsl 12) in
        Buffer.add_char buf (Char.chr ((pair lsr 16) land 255))
    | [ _ ] -> err "base64decode: truncated input"
    | [] -> ()
  in
  go chars;
  Vstring (Buffer.contents buf)

(* FNV-1a, hex-encoded: a deterministic stand-in for md5/sha in resource
   naming scenarios. *)
let fn_hash args =
  let s = to_string (arg1 "hash" args) in
  let h =
    String.fold_left
      (fun acc c ->
        let acc = Int64.logxor acc (Int64.of_int (Char.code c)) in
        Int64.mul acc 0x100000001b3L)
      0xcbf29ce484222325L s
  in
  Vstring (Printf.sprintf "%016Lx" h)

(* ------------------------------------------------------------------ *)
(* Network functions                                                   *)
(* ------------------------------------------------------------------ *)

let wrap_ipnet f =
  try f () with Ipnet.Invalid msg -> err "%s" msg

let fn_cidrsubnet args =
  let p, newbits, netnum = arg3 "cidrsubnet" args in
  wrap_ipnet (fun () ->
      let prefix = Ipnet.parse_prefix (to_string p) in
      Vstring
        (Ipnet.prefix_to_string
           (Ipnet.subnet prefix ~newbits:(to_int newbits) ~netnum:(to_int netnum))))

let fn_cidrhost args =
  let p, n = arg2 "cidrhost" args in
  wrap_ipnet (fun () ->
      let prefix = Ipnet.parse_prefix (to_string p) in
      Vstring (Ipnet.addr_to_string (Ipnet.host prefix (to_int n))))

let fn_cidrnetmask args =
  let p = arg1 "cidrnetmask" args in
  wrap_ipnet (fun () ->
      let prefix = Ipnet.parse_prefix (to_string p) in
      Vstring (Ipnet.addr_to_string (Ipnet.netmask prefix)))

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let table : (string * (t list -> t)) list =
  [
    ("upper", fn_upper);
    ("lower", fn_lower);
    ("trimspace", fn_trim_space);
    ("strlen", fn_strlen);
    ("substr", fn_substr);
    ("replace", fn_replace);
    ("split", fn_split);
    ("join", fn_join);
    ("title", fn_title);
    ("trimprefix", fn_trimprefix);
    ("trimsuffix", fn_trimsuffix);
    ("startswith", fn_startswith);
    ("endswith", fn_endswith);
    ("format", fn_format);
    ("formatlist", fn_formatlist);
    ("abs", fn_abs);
    ("ceil", fn_ceil);
    ("floor", fn_floor);
    ("min", fn_min);
    ("max", fn_max);
    ("pow", fn_pow);
    ("signum", fn_signum);
    ("parseint", fn_parseint);
    ("length", fn_length);
    ("element", fn_element);
    ("concat", fn_concat);
    ("contains", fn_contains);
    ("index", fn_index);
    ("keys", fn_keys);
    ("values", fn_values);
    ("lookup", fn_lookup);
    ("merge", fn_merge);
    ("zipmap", fn_zipmap);
    ("flatten", fn_flatten);
    ("compact", fn_compact);
    ("distinct", fn_distinct);
    ("sort", fn_sort);
    ("reverse", fn_reverse);
    ("slice", fn_slice);
    ("range", fn_range);
    ("sum", fn_sum);
    ("coalesce", fn_coalesce);
    ("coalescelist", fn_coalescelist);
    ("setunion", fn_setunion);
    ("setintersection", fn_setintersection);
    ("chunklist", fn_chunklist);
    ("transpose", fn_transpose);
    ("one", fn_one);
    ("tolist", fn_tolist);
    ("toset", fn_toset);
    ("tostring", fn_tostring);
    ("tonumber", fn_tonumber);
    ("tobool", fn_tobool);
    ("try", fn_try);
    ("can", fn_can);
    ("jsonencode", fn_jsonencode);
    ("base64encode", fn_base64encode);
    ("base64decode", fn_base64decode);
    ("hash", fn_hash);
    ("cidrsubnet", fn_cidrsubnet);
    ("cidrhost", fn_cidrhost);
    ("cidrnetmask", fn_cidrnetmask);
  ]

let find name = List.assoc_opt name table

let names = List.map fst table

let call name args =
  match find name with
  | Some f -> f args
  | None -> err "unknown function %S" name
