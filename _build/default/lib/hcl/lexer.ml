(** Hand-written lexer for the HCL subset.

    Handles [#], [//] and [/* ... */] comments, decimal integers and
    floats, identifiers, operators, double-quoted string templates with
    [${...}] interpolation (lexed recursively so nested strings inside
    interpolations work), and [<<EOF]/[<<-EOF] heredocs.

    Newlines are significant in HCL (they terminate attribute
    definitions), so the lexer emits [NEWLINE] tokens; the parser decides
    where they matter. *)

exception Error of string * Loc.span

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make ~file src = { src; file; pos = 0; line = 1; col = 1 }

let cur_pos st : Loc.pos = { line = st.line; col = st.col; offset = st.pos }

let span_from st (start : Loc.pos) =
  Loc.make ~file:st.file ~start_pos:start ~end_pos:(cur_pos st)

let error st start msg = raise (Error (msg, span_from st start))

let peek st = if st.pos >= String.length st.src then None else Some st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then None else Some st.src.[st.pos + 1]

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c || c = '-'

(* Skip spaces, tabs, carriage returns and comments.  Newlines are NOT
   skipped: they become tokens. *)
let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r') ->
      advance st;
      skip_trivia st
  | Some '#' ->
      skip_line_comment st;
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      skip_line_comment st;
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      skip_block_comment st;
      skip_trivia st
  | _ -> ()

and skip_line_comment st =
  let rec loop () =
    match peek st with
    | Some '\n' | None -> ()
    | Some _ ->
        advance st;
        loop ()
  in
  loop ()

and skip_block_comment st =
  let start = cur_pos st in
  advance st;
  advance st;
  let rec loop () =
    match (peek st, peek2 st) with
    | Some '*', Some '/' ->
        advance st;
        advance st
    | None, _ -> error st start "unterminated block comment"
    | Some _, _ ->
        advance st;
        loop ()
  in
  loop ()

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_number st start =
  let begin_pos = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float = ref false in
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      is_float := true;
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | _ -> ());
  let text = String.sub st.src begin_pos (st.pos - begin_pos) in
  if !is_float then Token.FLOAT (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Token.INT n
    | None -> error st start (Printf.sprintf "invalid number %S" text)

(* Lex a full token stream (terminated by EOF). *)
let rec tokens st : Token.spanned list =
  let acc = ref [] in
  let rec loop () =
    skip_trivia st;
    let start = cur_pos st in
    match peek st with
    | None ->
        acc := { Token.tok = Token.EOF; span = span_from st start } :: !acc
    | Some c ->
        let tok = lex_one st start c in
        acc := { Token.tok; span = span_from st start } :: !acc;
        loop ()
  in
  loop ();
  List.rev !acc

and lex_one st start c : Token.t =
  match c with
  | '\n' ->
      advance st;
      Token.NEWLINE
  | '{' ->
      advance st;
      Token.LBRACE
  | '}' ->
      advance st;
      Token.RBRACE
  | '[' ->
      advance st;
      Token.LBRACKET
  | ']' ->
      advance st;
      Token.RBRACKET
  | '(' ->
      advance st;
      Token.LPAREN
  | ')' ->
      advance st;
      Token.RPAREN
  | ',' ->
      advance st;
      Token.COMMA
  | ':' ->
      advance st;
      Token.COLON
  | '?' ->
      advance st;
      Token.QUESTION
  | '+' ->
      advance st;
      Token.PLUS
  | '-' ->
      advance st;
      Token.MINUS
  | '*' ->
      advance st;
      Token.STAR
  | '%' ->
      advance st;
      Token.PERCENT
  | '/' ->
      advance st;
      Token.SLASH
  | '.' ->
      if peek2 st = Some '.' then begin
        advance st;
        advance st;
        match peek st with
        | Some '.' ->
            advance st;
            Token.ELLIPSIS
        | _ -> error st start "expected '...'"
      end
      else begin
        advance st;
        Token.DOT
      end
  | '=' -> (
      advance st;
      match peek st with
      | Some '=' ->
          advance st;
          Token.EQ
      | Some '>' ->
          advance st;
          Token.FATARROW
      | _ -> Token.ASSIGN)
  | '!' -> (
      advance st;
      match peek st with
      | Some '=' ->
          advance st;
          Token.NEQ
      | _ -> Token.NOT)
  | '<' -> (
      advance st;
      match peek st with
      | Some '=' ->
          advance st;
          Token.LE
      | Some '<' ->
          advance st;
          lex_heredoc st start
      | _ -> Token.LT)
  | '>' -> (
      advance st;
      match peek st with
      | Some '=' ->
          advance st;
          Token.GE
      | _ -> Token.GT)
  | '&' -> (
      advance st;
      match peek st with
      | Some '&' ->
          advance st;
          Token.AND
      | _ -> error st start "expected '&&'")
  | '|' -> (
      advance st;
      match peek st with
      | Some '|' ->
          advance st;
          Token.OR
      | _ -> error st start "expected '||'")
  | '"' ->
      advance st;
      Token.QUOTED (lex_string_parts st start)
  | c when is_digit c -> lex_number st start
  | c when is_ident_start c -> Token.IDENT (lex_ident st)
  | c -> error st start (Printf.sprintf "unexpected character %C" c)

(* Body of a double-quoted string, cursor just past the opening quote. *)
and lex_string_parts st start : Token.str_part list =
  let buf = Buffer.create 16 in
  let parts = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      parts := Token.Lit (Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  let rec loop () =
    match peek st with
    | None -> error st start "unterminated string"
    | Some '"' ->
        advance st;
        flush ()
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '$' -> Buffer.add_char buf '$'
        | Some c -> error st start (Printf.sprintf "invalid escape '\\%c'" c)
        | None -> error st start "unterminated string");
        advance st;
        loop ()
    | Some '$' when peek2 st = Some '{' ->
        flush ();
        advance st;
        advance st;
        parts := Token.Interp (lex_interp st start) :: !parts;
        loop ()
    | Some '\n' -> error st start "newline in string literal"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  List.rev !parts

(* Tokens of a ${...} interpolation, up to the matching '}'.  Braces nest
   (e.g. object literals inside interpolations). *)
and lex_interp st start : Token.spanned list =
  let acc = ref [] in
  let depth = ref 0 in
  let rec loop () =
    skip_trivia st;
    let tok_start = cur_pos st in
    match peek st with
    | None -> error st start "unterminated interpolation"
    | Some '}' when !depth = 0 ->
        advance st;
        acc := { Token.tok = Token.EOF; span = span_from st tok_start } :: !acc
    | Some c ->
        let tok = lex_one st tok_start c in
        (match tok with
        | Token.LBRACE -> incr depth
        | Token.RBRACE -> decr depth
        | _ -> ());
        acc := { Token.tok; span = span_from st tok_start } :: !acc;
        loop ()
  in
  loop ();
  List.rev !acc

(* <<EOF / <<-EOF heredoc; cursor just past "<<". *)
and lex_heredoc st start : Token.t =
  let indent_mode =
    if peek st = Some '-' then begin
      advance st;
      true
    end
    else false
  in
  let tag = lex_ident st in
  if tag = "" then error st start "expected heredoc tag after '<<'";
  (match peek st with
  | Some '\n' -> advance st
  | _ -> error st start "expected newline after heredoc tag");
  (* Collect raw lines until a line equal to the tag (modulo leading
     whitespace when in indent mode). *)
  let lines = ref [] in
  let buf = Buffer.create 64 in
  let rec read_line () =
    match peek st with
    | None -> error st start "unterminated heredoc"
    | Some '\n' ->
        advance st;
        let l = Buffer.contents buf in
        Buffer.clear buf;
        l
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        read_line ()
  in
  let strip s = String.trim s in
  let rec collect () =
    let l = read_line () in
    if strip l = tag then ()
    else begin
      lines := l :: !lines;
      collect ()
    end
  in
  collect ();
  let lines = List.rev !lines in
  let lines =
    if not indent_mode then lines
    else
      (* <<- strips the common leading whitespace *)
      let leading s =
        let n = String.length s in
        let rec go i = if i < n && (s.[i] = ' ' || s.[i] = '\t') then go (i + 1) else i in
        go 0
      in
      let min_indent =
        List.fold_left
          (fun acc l -> if strip l = "" then acc else min acc (leading l))
          max_int lines
      in
      let min_indent = if min_indent = max_int then 0 else min_indent in
      List.map
        (fun l ->
          if String.length l >= min_indent then
            String.sub l min_indent (String.length l - min_indent)
          else l)
        lines
  in
  let text = String.concat "\n" lines ^ if lines = [] then "" else "\n" in
  (* Re-lex the body for ${...} interpolations. *)
  Token.HEREDOC (template_parts ~file:st.file text)

(* Split raw template text into Lit/Interp parts (used by heredocs). *)
and template_parts ~file text : Token.str_part list =
  let st = make ~file text in
  let buf = Buffer.create 32 in
  let parts = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      parts := Token.Lit (Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  let rec loop () =
    match peek st with
    | None -> flush ()
    | Some '$' when peek2 st = Some '{' ->
        flush ();
        advance st;
        advance st;
        parts := Token.Interp (lex_interp st (cur_pos st)) :: !parts;
        loop ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  List.rev !parts

(** Tokenize a full source file. *)
let tokenize ~file src = tokens (make ~file src)
