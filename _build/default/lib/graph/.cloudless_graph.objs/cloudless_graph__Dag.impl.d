lib/graph/dag.ml: Buffer Cloudless_hcl Float Fmt Hashtbl List Option Printf
