lib/graph/dag.mli: Cloudless_hcl Format
