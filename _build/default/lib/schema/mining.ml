(** Specification mining over configuration corpora (§3.2).

    Following the Encore/association-rule line of work the paper cites,
    this module learns three kinds of specification from a corpus of
    existing configurations:

    - attribute *presence* rules ("resources of type T always set A"),
    - attribute *implication* rules ("when A is set, B is set too" —
      the admin_password/disable_password pattern),
    - semantic *type* observations (values of T.A always look like a
      CIDR), via {!Semantic_type.infer}.

    Mined specifications can be checked against a new configuration to
    flag deviations, and promoted into the {!Catalog} knowledge base. *)

module Value = Cloudless_hcl.Value
module Eval = Cloudless_hcl.Eval
module Smap = Value.Smap

type observation = {
  rtype : string;
  total : int;  (** instances of this type in the corpus *)
  attr_counts : (string * int) list;
  attr_types : (string * Semantic_type.t) list;
  pair_counts : ((string * string) * int) list;
      (** co-occurrence counts of attribute pairs *)
}

type spec =
  | Always_set of { rtype : string; attr : string; confidence : float }
  | Implies of {
      rtype : string;
      if_attr : string;
      then_attr : string;
      confidence : float;
    }
  | Has_type of { rtype : string; attr : string; ty : Semantic_type.t }

let spec_to_string = function
  | Always_set { rtype; attr; confidence } ->
      Printf.sprintf "%s always sets %s (conf %.2f)" rtype attr confidence
  | Implies { rtype; if_attr; then_attr; confidence } ->
      Printf.sprintf "%s: %s => %s (conf %.2f)" rtype if_attr then_attr
        confidence
  | Has_type { rtype; attr; ty } ->
      Printf.sprintf "%s.%s : %s" rtype attr (Semantic_type.to_string ty)

(* ------------------------------------------------------------------ *)
(* Corpus scanning                                                     *)
(* ------------------------------------------------------------------ *)

let observe (corpus : Eval.instance list list) : observation list =
  let tbl : (string, (string, int) Hashtbl.t
                     * (string, Semantic_type.t) Hashtbl.t
                     * (string * string, int) Hashtbl.t
                     * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun instances ->
      List.iter
        (fun (i : Eval.instance) ->
          let rtype = i.Eval.addr.Cloudless_hcl.Addr.rtype in
          let counts, types, pairs, total =
            match Hashtbl.find_opt tbl rtype with
            | Some e -> e
            | None ->
                let e =
                  (Hashtbl.create 8, Hashtbl.create 8, Hashtbl.create 8, ref 0)
                in
                Hashtbl.replace tbl rtype e;
                e
          in
          incr total;
          let attrs = Smap.bindings i.Eval.attrs in
          List.iter
            (fun (name, v) ->
              Hashtbl.replace counts name
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts name));
              let inferred = Semantic_type.infer v in
              let merged =
                match Hashtbl.find_opt types name with
                | Some prev -> Semantic_type.join prev inferred
                | None -> inferred
              in
              Hashtbl.replace types name merged)
            attrs;
          (* ordered pairs for implication mining *)
          List.iter
            (fun (a, _) ->
              List.iter
                (fun (b, _) ->
                  if a <> b then
                    Hashtbl.replace pairs (a, b)
                      (1 + Option.value ~default:0 (Hashtbl.find_opt pairs (a, b))))
                attrs)
            attrs)
        instances)
    corpus;
  Hashtbl.fold
    (fun rtype (counts, types, pairs, total) acc ->
      {
        rtype;
        total = !total;
        attr_counts =
          Hashtbl.fold (fun k v l -> (k, v) :: l) counts []
          |> List.sort compare;
        attr_types =
          Hashtbl.fold (fun k v l -> (k, v) :: l) types [] |> List.sort compare;
        pair_counts =
          Hashtbl.fold (fun k v l -> (k, v) :: l) pairs [] |> List.sort compare;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.rtype b.rtype)

(* ------------------------------------------------------------------ *)
(* Rule extraction                                                     *)
(* ------------------------------------------------------------------ *)

(** Extract specifications with at least [min_support] observations and
    [min_confidence] confidence. *)
let mine ?(min_support = 3) ?(min_confidence = 0.95)
    (corpus : Eval.instance list list) : spec list =
  let obs = observe corpus in
  List.concat_map
    (fun o ->
      if o.total < min_support then []
      else
        let always =
          List.filter_map
            (fun (attr, n) ->
              let conf = float_of_int n /. float_of_int o.total in
              if conf >= min_confidence then
                Some (Always_set { rtype = o.rtype; attr; confidence = conf })
              else None)
            o.attr_counts
        in
        let always_attrs =
          List.filter_map
            (function Always_set { attr; _ } -> Some attr | _ -> None)
            always
        in
        let implications =
          List.filter_map
            (fun ((a, b), n) ->
              match List.assoc_opt a o.attr_counts with
              | Some na when na >= min_support ->
                  let conf = float_of_int n /. float_of_int na in
                  (* skip implications already covered by Always_set b *)
                  if conf >= min_confidence && not (List.mem b always_attrs)
                  then
                    Some
                      (Implies
                         { rtype = o.rtype; if_attr = a; then_attr = b; confidence = conf })
                  else None
              | _ -> None)
            o.pair_counts
        in
        let types =
          List.filter_map
            (fun (attr, ty) ->
              match ty with
              | Semantic_type.Any | Semantic_type.Str -> None
              | ty -> Some (Has_type { rtype = o.rtype; attr; ty }))
            o.attr_types
        in
        always @ implications @ types)
    obs

(* ------------------------------------------------------------------ *)
(* Checking new configurations against mined specs                     *)
(* ------------------------------------------------------------------ *)

type deviation = {
  daddr : Cloudless_hcl.Addr.t;
  spec : spec;
  detail : string;
}

let deviation_to_string d =
  Printf.sprintf "%s deviates from mined spec [%s]: %s"
    (Cloudless_hcl.Addr.to_string d.daddr)
    (spec_to_string d.spec) d.detail

(** Outlier detection (§3.6): compare a new configuration's instances
    with mined specifications and report deviations from common
    practice. *)
let check_deviations (specs : spec list) (instances : Eval.instance list) :
    deviation list =
  List.concat_map
    (fun (i : Eval.instance) ->
      let rtype = i.Eval.addr.Cloudless_hcl.Addr.rtype in
      List.filter_map
        (fun spec ->
          match spec with
          | Always_set { rtype = rt; attr; _ } when rt = rtype ->
              if Smap.mem attr i.Eval.attrs then None
              else
                Some
                  {
                    daddr = i.Eval.addr;
                    spec;
                    detail = Printf.sprintf "attribute %S is missing" attr;
                  }
          | Implies { rtype = rt; if_attr; then_attr; _ } when rt = rtype ->
              if Smap.mem if_attr i.Eval.attrs && not (Smap.mem then_attr i.Eval.attrs)
              then
                Some
                  {
                    daddr = i.Eval.addr;
                    spec;
                    detail =
                      Printf.sprintf "%S set without %S" if_attr then_attr;
                  }
              else None
          | Has_type { rtype = rt; attr; ty } when rt = rtype -> (
              match Smap.find_opt attr i.Eval.attrs with
              | None -> None
              | Some v -> (
                  match Semantic_type.check ty v with
                  | Ok () -> None
                  | Error msg ->
                      Some { daddr = i.Eval.addr; spec; detail = msg }))
          | _ -> None)
        specs)
    instances

(** Promote mined attribute types of an unknown resource type into a
    fresh knowledge-base entry. *)
let promote_to_schema (specs : spec list) ~rtype : Resource_schema.t option =
  let attrs =
    List.filter_map
      (function
        | Has_type { rtype = rt; attr; ty } when rt = rtype ->
            Some (Resource_schema.attr attr ty)
        | Always_set { rtype = rt; attr; _ } when rt = rtype ->
            Some (Resource_schema.attr ~required:true attr Semantic_type.Any)
        | _ -> None)
      specs
  in
  if attrs = [] then None
  else
    (* merge duplicate names, preferring typed entries *)
    let merged =
      List.fold_left
        (fun acc (a : Resource_schema.attr) ->
          match List.assoc_opt a.Resource_schema.aname acc with
          | None -> acc @ [ (a.Resource_schema.aname, a) ]
          | Some prev ->
              let better =
                if prev.Resource_schema.aty = Semantic_type.Any then
                  { a with Resource_schema.required = prev.Resource_schema.required || a.Resource_schema.required }
                else
                  { prev with Resource_schema.required = prev.Resource_schema.required || a.Resource_schema.required }
              in
              List.map
                (fun (n, x) -> if n = a.Resource_schema.aname then (n, better) else (n, x))
                acc)
        [] attrs
      |> List.map snd
    in
    let provider =
      match String.index_opt rtype '_' with
      | Some i -> String.sub rtype 0 i
      | None -> rtype
    in
    Some
      (Resource_schema.make ~rtype ~provider
         ~doc:(Printf.sprintf "mined from corpus") merged)
