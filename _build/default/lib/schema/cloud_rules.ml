(** Cloud-side semantic checks for the simulator.

    These mirror {!Rules} but run *inside* the simulated cloud, over
    concrete cloud ids, and fail with the vague, API-level error
    messages real providers emit — including the paper's running
    example: a VM whose NIC lives in another region fails with
    "specified NIC not found", not with the actual root cause.  The
    §3.5 debugger exists to translate exactly these messages. *)

module Value = Cloudless_hcl.Value
module Ipnet = Cloudless_hcl.Ipnet
module Smap = Value.Smap
module Cloud = Cloudless_sim.Cloud

let string_attr attrs name =
  match Smap.find_opt name attrs with
  | Some (Value.Vstring s) -> Some s
  | _ -> None

let list_attr attrs name =
  match Smap.find_opt name attrs with
  | Some (Value.Vlist vs) -> vs
  | Some v -> [ v ]
  | None -> []

let region_of (r : Cloud.resource) = r.Cloud.region

(* The paper's flagship opaque error: region mismatch reported as a
   missing NIC. *)
let vm_nic_check : Cloud.semantic_check =
 fun ~lookup ~rtype ~region ~attrs ->
  if
    not
      (List.mem rtype
         [
           "aws_virtual_machine";
           "azurerm_linux_virtual_machine";
           "azurerm_virtual_machine";
         ])
  then Ok ()
  else
    let nic_ids =
      list_attr attrs "nic_ids"
      |> List.filter_map (function Value.Vstring s -> Some s | _ -> None)
    in
    let rec go = function
      | [] -> Ok ()
      | nic_id :: rest -> (
          match lookup nic_id with
          | None ->
              Error
                (Printf.sprintf
                   "Virtual machine creation failed because specified NIC %s \
                    is not found"
                   nic_id)
          | Some nic ->
              if region_of nic <> region then
                (* the cloud *knows* the real cause but reports the
                   misleading message, like Azure does *)
                Error
                  (Printf.sprintf
                     "Virtual machine creation failed because specified NIC \
                      %s is not found"
                     nic_id)
              else go rest)
    in
    go nic_ids

(* Referenced parent resources must exist and share the region. *)
let reference_checks : (string * string * string) list =
  (* (rtype, attr, referenced type description) *)
  [
    ("aws_subnet", "vpc_id", "VPC");
    ("aws_internet_gateway", "vpc_id", "VPC");
    ("aws_route_table", "vpc_id", "VPC");
    ("aws_security_group", "vpc_id", "VPC");
    ("aws_nat_gateway", "subnet_id", "subnet");
    ("aws_lb_listener", "load_balancer_id", "load balancer");
    ("aws_route53_record", "zone_id", "hosted zone");
    ("aws_iam_role_policy_attachment", "role_id", "role");
    ("azurerm_subnet", "virtual_network_id", "virtual network");
    ("azurerm_virtual_network", "resource_group_id", "resource group");
  ]

let parent_reference_check : Cloud.semantic_check =
 fun ~lookup ~rtype ~region ~attrs ->
  let rec go = function
    | [] -> Ok ()
    | (rt, attr_name, desc) :: rest ->
        if rt <> rtype then go rest
        else (
          match string_attr attrs attr_name with
          | None -> go rest
          | Some id -> (
              match lookup id with
              | None ->
                  Error
                    (Printf.sprintf "%s creation failed: referenced %s %s does \
                                     not exist"
                       rtype desc id)
              | Some parent ->
                  (* region-scoped services require same region; global
                     services (iam, dns) are exempt *)
                  let global =
                    List.mem rtype
                      [ "aws_iam_role_policy_attachment"; "aws_route53_record" ]
                  in
                  if (not global) && region_of parent <> region then
                    Error
                      (Printf.sprintf
                         "%s creation failed: referenced %s %s does not exist"
                         rtype desc id)
                  else go rest))
  in
  go reference_checks

(* Subnet prefix containment, checked against the live parent. *)
let subnet_cidr_check : Cloud.semantic_check =
 fun ~lookup ~rtype ~region:_ ~attrs ->
  let parent_attr, cidr_attr, space_attr =
    match rtype with
    | "aws_subnet" -> (Some "vpc_id", "cidr_block", "cidr_block")
    | "azurerm_subnet" -> (Some "virtual_network_id", "address_prefix", "address_space")
    | _ -> (None, "", "")
  in
  match parent_attr with
  | None -> Ok ()
  | Some pa -> (
      match (string_attr attrs pa, string_attr attrs cidr_attr) with
      | Some parent_id, Some cidr -> (
          match (lookup parent_id, Ipnet.parse_prefix cidr) with
          | Some parent, inner ->
              let outers =
                (match Smap.find_opt space_attr parent.Cloud.attrs with
                | Some (Value.Vlist vs) -> vs
                | Some v -> [ v ]
                | None -> [])
                |> List.filter_map (function
                     | Value.Vstring s -> (
                         match Ipnet.parse_prefix s with
                         | p -> Some p
                         | exception Ipnet.Invalid _ -> None)
                     | _ -> None)
              in
              if outers = [] then Ok ()
              else if List.exists (fun outer -> Ipnet.contains ~outer ~inner) outers
              then Ok ()
              else
                Error
                  (Printf.sprintf
                     "InvalidSubnet.Range: the CIDR %s is invalid for the \
                      network"
                     cidr)
          | None, _ -> Ok ()  (* missing parent caught elsewhere *)
          | exception Ipnet.Invalid _ ->
              Error (Printf.sprintf "InvalidParameterValue: bad CIDR %S" cidr))
      | _ -> Ok ())

(* Password/flag coupling enforced cloud-side, with an opaque message. *)
let password_check : Cloud.semantic_check =
 fun ~lookup:_ ~rtype ~region:_ ~attrs ->
  if
    not (List.mem rtype [ "azurerm_linux_virtual_machine"; "azurerm_virtual_machine" ])
  then Ok ()
  else
    match Smap.find_opt "admin_password" attrs with
    | Some (Value.Vstring _) -> (
        match Smap.find_opt "disable_password" attrs with
        | Some (Value.Vbool false) -> Ok ()
        | _ ->
            Error
              "OperationNotAllowed: the property 'adminPassword' is not valid \
               for this request")
    | _ -> Ok ()

(* Peered networks with overlapping address spaces are rejected (the
   Azure behaviour §3.2 cites), with a ResourceManager-style message. *)
let peering_overlap_check : Cloud.semantic_check =
 fun ~lookup ~rtype ~region:_ ~attrs ->
  if
    not
      (List.mem rtype
         [ "azurerm_virtual_network_peering"; "aws_vpc_peering_connection" ])
  then Ok ()
  else
    let endpoint name =
      match string_attr attrs name with
      | Some id -> lookup id
      | None -> None
    in
    let a =
      match endpoint "vnet_id" with Some x -> Some x | None -> endpoint "vpc_id"
    in
    let b =
      match endpoint "remote_vnet_id" with
      | Some x -> Some x
      | None -> endpoint "peer_vpc_id"
    in
    let cidrs (r : Cloud.resource) =
      (match Smap.find_opt "address_space" r.Cloud.attrs with
      | Some (Value.Vlist vs) -> vs
      | Some v -> [ v ]
      | None -> [])
      @ (match Smap.find_opt "cidr_block" r.Cloud.attrs with
        | Some v -> [ v ]
        | None -> [])
      |> List.filter_map (function
           | Value.Vstring s -> (
               match Ipnet.parse_prefix s with
               | p -> Some p
               | exception Ipnet.Invalid _ -> None)
           | _ -> None)
    in
    match (a, b) with
    | Some va, Some vb ->
        if
          List.exists
            (fun pa -> List.exists (Ipnet.overlaps pa) (cidrs vb))
            (cidrs va)
        then
          Error
            "CannotPeerNetworksWithOverlappingAddressSpace: the referenced \
             networks have overlapping address prefixes"
        else Ok ()
    | _ -> Ok ()

(* Security-group rules with inverted port ranges are rejected. *)
let sg_rule_port_check : Cloud.semantic_check =
 fun ~lookup:_ ~rtype ~region:_ ~attrs ->
  if rtype <> "aws_security_group_rule" then Ok ()
  else
    match (Smap.find_opt "from_port" attrs, Smap.find_opt "to_port" attrs) with
    | Some (Value.Vint f), Some (Value.Vint t) when f > t ->
        Error
          (Printf.sprintf
             "InvalidParameterValue: invalid port range %d-%d" f t)
    | _ -> Ok ()

let all : Cloud.semantic_check list =
  [
    vm_nic_check;
    parent_reference_check;
    subnet_cidr_check;
    password_check;
    peering_overlap_check;
    sg_rule_port_check;
  ]

(** A simulator config with the cloud-level constraints installed. *)
let config_with_checks ?(base = Cloud.default_config) () =
  { base with Cloud.semantic_checks = all @ base.Cloud.semantic_checks }
