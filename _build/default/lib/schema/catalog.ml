(** The resource-type knowledge base (§3.2).

    A registry of {!Resource_schema.t} covering the AWS-flavoured and
    Azure-flavoured types used across the examples, workloads and
    benches.  §3.2 argues this knowledge base should be *derived and
    continuously updated* from documentation and usage; {!Mining} adds
    learned entries at runtime via {!register}. *)

open Resource_schema
module T = Semantic_type

let std_computed =
  [
    attr ~computed:true "id" T.Str;
    attr ~computed:true "arn" T.Str;
  ]

let a = attr

let aws : Resource_schema.t list =
  [
    make ~rtype:"aws_vpc" ~provider:"aws" ~doc:"Virtual private cloud"
      (std_computed
      @ [
          a ~required:true ~force_new:true "cidr_block" T.Cidr;
          a "region" T.Region;
          a "enable_dns" T.Bool;
          a "name" T.Name;
          a "tags" (T.Map_of T.Str);
        ]);
    make ~rtype:"aws_subnet" ~provider:"aws" ~doc:"VPC subnet"
      (std_computed
      @ [
          a ~required:true ~force_new:true "vpc_id" (T.Resource_id "aws_vpc");
          a ~required:true ~force_new:true "cidr_block" T.Cidr;
          a "region" T.Region;
          a ~force_new:true "availability_zone" T.Str;
          a "tags" (T.Map_of T.Str);
        ]);
    make ~rtype:"aws_internet_gateway" ~provider:"aws" ~doc:"Internet gateway"
      (std_computed
      @ [
          a ~required:true "vpc_id" (T.Resource_id "aws_vpc");
          a "region" T.Region;
        ]);
    make ~rtype:"aws_nat_gateway" ~provider:"aws" ~doc:"NAT gateway"
      (std_computed
      @ [
          a ~required:true ~force_new:true "subnet_id" (T.Resource_id "aws_subnet");
          a "allocation_id" (T.Resource_id "aws_eip");
          a "region" T.Region;
        ]);
    make ~rtype:"aws_eip" ~provider:"aws" ~doc:"Elastic IP"
      (std_computed
      @ [ a "vpc" T.Bool; a "region" T.Region;
          a ~computed:true "public_ip" T.Ip_address ]);
    make ~rtype:"aws_route_table" ~provider:"aws" ~doc:"Route table"
      (std_computed
      @ [
          a ~required:true "vpc_id" (T.Resource_id "aws_vpc");
          a "region" T.Region;
        ]);
    make ~rtype:"aws_route" ~provider:"aws" ~doc:"Route entry"
      (std_computed
      @ [
          a ~required:true "route_table_id" (T.Resource_id "aws_route_table");
          a ~required:true "destination_cidr_block" T.Cidr;
          a "gateway_id" (T.Resource_id "aws_internet_gateway");
          a "nat_gateway_id" (T.Resource_id "aws_nat_gateway");
          a "region" T.Region;
        ]);
    make ~rtype:"aws_security_group" ~provider:"aws" ~doc:"Security group"
      (std_computed
      @ [
          a "name" T.Name;
          a ~required:true "vpc_id" (T.Resource_id "aws_vpc");
          a "region" T.Region;
          a "description" T.Str;
        ]);
    make ~rtype:"aws_security_group_rule" ~provider:"aws"
      ~doc:"Security group rule"
      (std_computed
      @ [
          a ~required:true "security_group_id" (T.Resource_id "aws_security_group");
          a ~required:true "type" (T.Enum [ "ingress"; "egress" ]);
          a ~required:true "from_port" T.Port;
          a ~required:true "to_port" T.Port;
          a ~required:true "protocol" T.Protocol;
          a "cidr_blocks" (T.List_of T.Cidr);
          a "region" T.Region;
        ]);
    make ~rtype:"aws_network_interface" ~provider:"aws" ~doc:"Network interface"
      (std_computed
      @ [
          a "name" T.Name;
          a "subnet_id" (T.Resource_id "aws_subnet");
          a "location" T.Region;
          a "region" T.Region;
          a "private_ip" T.Ip_address;
          a "security_groups" (T.List_of (T.Resource_id "aws_security_group"));
        ]);
    make ~rtype:"aws_instance" ~provider:"aws" ~doc:"EC2 instance"
      (std_computed
      @ [
          a ~required:true ~force_new:true "ami" T.Str;
          a ~required:true "instance_type" T.Str;
          a ~force_new:true "subnet_id" (T.Resource_id "aws_subnet");
          a "region" T.Region;
          a "vpc_security_group_ids" (T.List_of (T.Resource_id "aws_security_group"));
          a "tags" (T.Map_of T.Str);
          a ~computed:true "private_ip" T.Ip_address;
          a ~computed:true "public_ip" T.Ip_address;
          a "user_data" T.Str;
        ]);
    make ~rtype:"aws_virtual_machine" ~provider:"aws"
      ~doc:"Simplified VM (the paper's Figure 2 type)"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a "nic_ids" (T.List_of (T.Resource_id "aws_network_interface"));
          a "location" T.Region;
          a "region" T.Region;
        ]);
    make ~rtype:"aws_launch_template" ~provider:"aws" ~doc:"Launch template"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "image_id" T.Str;
          a "instance_type" T.Str;
          a "region" T.Region;
        ]);
    make ~rtype:"aws_autoscaling_group" ~provider:"aws" ~doc:"Auto-scaling group"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "min_size" T.Int;
          a ~required:true "max_size" T.Int;
          a "desired_capacity" T.Int;
          a "launch_template_id" (T.Resource_id "aws_launch_template");
          a "subnet_ids" (T.List_of (T.Resource_id "aws_subnet"));
          a "region" T.Region;
        ]);
    make ~rtype:"aws_lb" ~provider:"aws" ~doc:"Load balancer"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a "internal" T.Bool;
          a "subnet_ids" (T.List_of (T.Resource_id "aws_subnet"));
          a "security_groups" (T.List_of (T.Resource_id "aws_security_group"));
          a "region" T.Region;
          a ~computed:true "dns_name" T.Str;
        ]);
    make ~rtype:"aws_lb_target_group" ~provider:"aws" ~doc:"LB target group"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "port" T.Port;
          a ~required:true "protocol" T.Protocol;
          a ~required:true "vpc_id" (T.Resource_id "aws_vpc");
          a "region" T.Region;
        ]);
    make ~rtype:"aws_lb_listener" ~provider:"aws" ~doc:"LB listener"
      (std_computed
      @ [
          a ~required:true "load_balancer_id" (T.Resource_id "aws_lb");
          a ~required:true "port" T.Port;
          a "protocol" T.Protocol;
          a "target_group_id" (T.Resource_id "aws_lb_target_group");
          a "region" T.Region;
        ]);
    make ~rtype:"aws_vpn_gateway" ~provider:"aws" ~doc:"VPN gateway"
      (std_computed
      @ [
          a ~required:true "vpc_id" (T.Resource_id "aws_vpc");
          a "region" T.Region;
          a "capacity_mbps" T.Int;
        ]);
    make ~rtype:"aws_vpn_connection" ~provider:"aws" ~doc:"VPN tunnel"
      (std_computed
      @ [
          a ~required:true "vpn_gateway_id" (T.Resource_id "aws_vpn_gateway");
          a ~required:true "customer_ip" T.Ip_address;
          a "region" T.Region;
          a "bandwidth_mbps" T.Int;
        ]);
    make ~rtype:"aws_vpc_peering_connection" ~provider:"aws" ~doc:"VPC peering"
      (std_computed
      @ [
          a ~required:true "vpc_id" (T.Resource_id "aws_vpc");
          a ~required:true "peer_vpc_id" (T.Resource_id "aws_vpc");
          a "region" T.Region;
        ]);
    make ~rtype:"aws_route53_zone" ~provider:"aws" ~doc:"DNS zone"
      (std_computed @ [ a ~required:true "name" T.Str; a "region" T.Region ]);
    make ~rtype:"aws_route53_record" ~provider:"aws" ~doc:"DNS record"
      (std_computed
      @ [
          a ~required:true "zone_id" (T.Resource_id "aws_route53_zone");
          a ~required:true "name" T.Str;
          a ~required:true "type" (T.Enum [ "A"; "AAAA"; "CNAME"; "TXT"; "MX" ]);
          a "records" (T.List_of T.Str);
          a "ttl" T.Int;
          a "region" T.Region;
        ]);
    make ~rtype:"aws_s3_bucket" ~provider:"aws" ~doc:"Object storage bucket"
      (std_computed
      @ [
          a ~required:true ~force_new:true "bucket" T.Name;
          a "region" T.Region;
          a "versioning" T.Bool;
          a "tags" (T.Map_of T.Str);
        ]);
    make ~rtype:"aws_s3_bucket_policy" ~provider:"aws" ~doc:"Bucket policy"
      (std_computed
      @ [
          a ~required:true "bucket_id" (T.Resource_id "aws_s3_bucket");
          a ~required:true "policy" T.Str;
          a "region" T.Region;
        ]);
    make ~rtype:"aws_ebs_volume" ~provider:"aws" ~doc:"Block volume"
      (std_computed
      @ [
          a ~required:true "size_gb" T.Int;
          a ~force_new:true "availability_zone" T.Str;
          a "region" T.Region;
        ]);
    make ~rtype:"aws_db_subnet_group" ~provider:"aws" ~doc:"DB subnet group"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "subnet_ids" (T.List_of (T.Resource_id "aws_subnet"));
          a "region" T.Region;
        ]);
    make ~rtype:"aws_db_instance" ~provider:"aws" ~doc:"Managed database"
      (std_computed
      @ [
          a ~required:true "identifier" T.Name;
          a ~required:true ~force_new:true "engine"
            (T.Enum [ "postgres"; "mysql"; "mariadb" ]);
          a ~required:true "instance_class" T.Str;
          a "allocated_storage" T.Int;
          a "db_subnet_group_id" (T.Resource_id "aws_db_subnet_group");
          a "security_group_ids" (T.List_of (T.Resource_id "aws_security_group"));
          a "region" T.Region;
          a "multi_az" T.Bool;
          a ~computed:true "endpoint" T.Str;
        ]);
    make ~rtype:"aws_elasticache_cluster" ~provider:"aws" ~doc:"Cache cluster"
      (std_computed
      @ [
          a ~required:true "cluster_id" T.Name;
          a ~required:true "engine" (T.Enum [ "redis"; "memcached" ]);
          a "node_type" T.Str;
          a "num_nodes" T.Int;
          a "region" T.Region;
        ]);
    make ~rtype:"aws_dynamodb_table" ~provider:"aws" ~doc:"NoSQL table"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "hash_key" T.Str;
          a "billing_mode" (T.Enum [ "PROVISIONED"; "PAY_PER_REQUEST" ]);
          a "region" T.Region;
        ]);
    make ~rtype:"aws_iam_role" ~provider:"aws" ~doc:"IAM role"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "assume_role_policy" T.Str;
          a "region" T.Region;
        ]);
    make ~rtype:"aws_iam_policy" ~provider:"aws" ~doc:"IAM policy"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "policy" T.Str;
          a "region" T.Region;
        ]);
    make ~rtype:"aws_iam_role_policy_attachment" ~provider:"aws"
      ~doc:"Role/policy attachment"
      (std_computed
      @ [
          a ~required:true "role_id" (T.Resource_id "aws_iam_role");
          a ~required:true "policy_id" (T.Resource_id "aws_iam_policy");
          a "region" T.Region;
        ]);
    make ~rtype:"aws_lambda_function" ~provider:"aws" ~doc:"Serverless function"
      (std_computed
      @ [
          a ~required:true "function_name" T.Name;
          a ~required:true "runtime" T.Str;
          a ~required:true "handler" T.Str;
          a "role_id" (T.Resource_id "aws_iam_role");
          a "memory_mb" T.Int;
          a "region" T.Region;
        ]);
  ]

let azure : Resource_schema.t list =
  [
    make ~rtype:"azurerm_resource_group" ~provider:"azurerm"
      ~doc:"Resource group"
      (std_computed
      @ [ a ~required:true "name" T.Name; a ~required:true "location" T.Region ]);
    make ~rtype:"azurerm_virtual_network" ~provider:"azurerm"
      ~doc:"Virtual network"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "location" T.Region;
          a ~required:true "resource_group_id" (T.Resource_id "azurerm_resource_group");
          a ~required:true "address_space" (T.List_of T.Cidr);
        ]);
    make ~rtype:"azurerm_subnet" ~provider:"azurerm" ~doc:"Subnet"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "virtual_network_id" (T.Resource_id "azurerm_virtual_network");
          a ~required:true "address_prefix" T.Cidr;
        ]);
    make ~rtype:"azurerm_network_interface" ~provider:"azurerm"
      ~doc:"Network interface card"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "location" T.Region;
          a "subnet_id" (T.Resource_id "azurerm_subnet");
          a "private_ip" T.Ip_address;
        ]);
    make ~rtype:"azurerm_linux_virtual_machine" ~provider:"azurerm"
      ~doc:"Linux virtual machine"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "location" T.Region;
          a ~required:true "size" T.Str;
          a ~required:true "nic_ids" (T.List_of (T.Resource_id "azurerm_network_interface"));
          a "admin_password" T.Str;
          a "disable_password" T.Bool;
        ]);
    make ~rtype:"azurerm_public_ip" ~provider:"azurerm" ~doc:"Public IP"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "location" T.Region;
          a "allocation" (T.Enum [ "Static"; "Dynamic" ]);
        ]);
    make ~rtype:"azurerm_network_security_group" ~provider:"azurerm"
      ~doc:"Network security group"
      (std_computed
      @ [ a ~required:true "name" T.Name; a ~required:true "location" T.Region ]);
    make ~rtype:"azurerm_lb" ~provider:"azurerm" ~doc:"Load balancer"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "location" T.Region;
          a "frontend_ip_id" (T.Resource_id "azurerm_public_ip");
        ]);
    make ~rtype:"azurerm_virtual_network_gateway" ~provider:"azurerm"
      ~doc:"VPN gateway"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "location" T.Region;
          a "vnet_id" (T.Resource_id "azurerm_virtual_network");
          a "sku" T.Str;
        ]);
    make ~rtype:"azurerm_virtual_network_peering" ~provider:"azurerm"
      ~doc:"VNet peering"
      (std_computed
      @ [
          a ~required:true "vnet_id" (T.Resource_id "azurerm_virtual_network");
          a ~required:true "remote_vnet_id" (T.Resource_id "azurerm_virtual_network");
        ]);
    make ~rtype:"azurerm_storage_account" ~provider:"azurerm"
      ~doc:"Storage account"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "location" T.Region;
          a "tier" (T.Enum [ "Standard"; "Premium" ]);
        ]);
    make ~rtype:"azurerm_sql_database" ~provider:"azurerm" ~doc:"SQL database"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "location" T.Region;
          a "sku" T.Str;
        ]);
  ]

let gcp : Resource_schema.t list =
  [
    make ~rtype:"google_compute_network" ~provider:"google" ~doc:"VPC network"
      (std_computed
      @ [
          a ~required:true ~force_new:true "name" T.Name;
          a "auto_create_subnetworks" T.Bool;
          a "region" T.Region;
        ]);
    make ~rtype:"google_compute_subnetwork" ~provider:"google" ~doc:"Subnetwork"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "network" (T.Resource_id "google_compute_network");
          a ~required:true ~force_new:true "ip_cidr_range" T.Cidr;
          a ~required:true "region" T.Region;
        ]);
    make ~rtype:"google_compute_instance" ~provider:"google" ~doc:"VM instance"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "machine_type" T.Str;
          a ~required:true "zone" T.Str;
          a "subnetwork" (T.Resource_id "google_compute_subnetwork");
          a "region" T.Region;
          a "labels" (T.Map_of T.Str);
        ]);
    make ~rtype:"google_compute_firewall" ~provider:"google" ~doc:"Firewall rule"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "network" (T.Resource_id "google_compute_network");
          a "source_ranges" (T.List_of T.Cidr);
          a "region" T.Region;
        ]);
    make ~rtype:"google_compute_address" ~provider:"google" ~doc:"Static IP"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a "region" T.Region;
          a ~computed:true "address" T.Ip_address;
        ]);
    make ~rtype:"google_compute_router" ~provider:"google" ~doc:"Cloud router"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "network" (T.Resource_id "google_compute_network");
          a ~required:true "region" T.Region;
        ]);
    make ~rtype:"google_sql_database_instance" ~provider:"google"
      ~doc:"Cloud SQL instance"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true ~force_new:true "database_version"
            (T.Enum [ "POSTGRES_15"; "MYSQL_8_0" ]);
          a ~required:true "tier" T.Str;
          a ~required:true "region" T.Region;
          a ~computed:true "connection_name" T.Str;
        ]);
    make ~rtype:"google_storage_bucket" ~provider:"google" ~doc:"GCS bucket"
      (std_computed
      @ [
          a ~required:true ~force_new:true "name" T.Name;
          a ~required:true "location" T.Region;
          a "versioning" T.Bool;
        ]);
    make ~rtype:"google_container_cluster" ~provider:"google" ~doc:"GKE cluster"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "location" T.Region;
          a "network" (T.Resource_id "google_compute_network");
          a "initial_node_count" T.Int;
          a ~computed:true "endpoint" T.Ip_address;
        ]);
    make ~rtype:"google_pubsub_topic" ~provider:"google" ~doc:"Pub/Sub topic"
      (std_computed @ [ a ~required:true "name" T.Name; a "region" T.Region ]);
    make ~rtype:"google_cloudfunctions_function" ~provider:"google"
      ~doc:"Cloud Function"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "runtime" T.Str;
          a ~required:true "entry_point" T.Str;
          a "region" T.Region;
          a "available_memory_mb" T.Int;
        ]);
    make ~rtype:"google_dns_managed_zone" ~provider:"google" ~doc:"DNS zone"
      (std_computed
      @ [
          a ~required:true "name" T.Name;
          a ~required:true "dns_name" T.Str;
          a "region" T.Region;
        ]);
  ]

(* Runtime registry so mining / tests can extend the knowledge base. *)
let registry : (string, Resource_schema.t) Hashtbl.t = Hashtbl.create 64

let register schema = Hashtbl.replace registry schema.rtype schema

let () = List.iter register (aws @ azure @ gcp)

let find rtype = Hashtbl.find_opt registry rtype

let known_types () =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort String.compare

let is_known rtype = Hashtbl.mem registry rtype

(** Schemas whose type belongs to [provider]. *)
let of_provider provider =
  Hashtbl.fold
    (fun _ s acc -> if s.provider = provider then s :: acc else acc)
    registry []
  |> List.sort (fun a b -> String.compare a.rtype b.rtype)
