(** Semantic attribute types (§3.2).

    Where stock IaC treats most attributes as opaque strings, the
    knowledge base assigns *semantic* types: "this string is a region",
    "this string is the id of an aws_network_interface".  Composition
    errors — passing a subnet id where a NIC id is expected — become
    type errors at validation time instead of deploy-time surprises.

    Plan-time unknowns ("known after apply") carry their provenance
    address, which is what makes reference typing possible before
    anything exists: [Vunknown "aws_subnet.a.id"] fails to check
    against [Resource_id "aws_network_interface"]. *)

module Value = Cloudless_hcl.Value
module Ipnet = Cloudless_hcl.Ipnet
module Addr = Cloudless_hcl.Addr

type t =
  | Any
  | Str
  | Int
  | Num
  | Bool
  | Name  (** resource display name: restricted charset and length *)
  | Region
  | Cidr
  | Ip_address
  | Port
  | Protocol
  | Resource_id of string  (** the id of a specific resource type *)
  | Enum of string list
  | List_of of t
  | Map_of of t

let rec to_string = function
  | Any -> "any"
  | Str -> "string"
  | Int -> "int"
  | Num -> "number"
  | Bool -> "bool"
  | Name -> "name"
  | Region -> "region"
  | Cidr -> "cidr"
  | Ip_address -> "ip"
  | Port -> "port"
  | Protocol -> "protocol"
  | Resource_id rt -> "id<" ^ rt ^ ">"
  | Enum vs -> "enum(" ^ String.concat "|" vs ^ ")"
  | List_of t -> "list<" ^ to_string t ^ ">"
  | Map_of t -> "map<" ^ to_string t ^ ">"

let known_regions =
  [
    "us-east-1"; "us-west-2"; "eu-west-1"; "ap-southeast-1";
    (* azure-style names, used by azurerm examples *)
    "eastus"; "westus2"; "westeurope"; "southeastasia";
    (* gcp-style names *)
    "us-central1"; "us-east4"; "europe-west1"; "asia-southeast1";
  ]

let looks_like_ip s =
  match Ipnet.parse_addr s with _ -> true | exception Ipnet.Invalid _ -> false

let valid_name s =
  let n = String.length s in
  n >= 1 && n <= 80
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       s

(* The provenance of an unknown is "<addr>.<attr>" or nested forms; the
   reference is well-typed when the addr has the wanted resource type
   and the attribute is [id]. *)
let unknown_id_matches ~wanted provenance =
  match String.rindex_opt provenance '.' with
  | None -> `Unknown_shape
  | Some i ->
      let addr_part = String.sub provenance 0 i in
      let attr = String.sub provenance (i + 1) (String.length provenance - i - 1) in
      (match Addr.of_string addr_part with
      | Some a ->
          if a.Addr.rtype = wanted && attr = "id" then `Match
          else `Mismatch (a.Addr.rtype, attr)
      | None -> `Unknown_shape)

(** [check ty v] validates a value against a semantic type.  Unknowns
    are accepted unless their provenance demonstrably contradicts the
    type (the resource-id case). *)
let rec check (ty : t) (v : Value.t) : (unit, string) result =
  match (ty, v) with
  | _, Value.Vnull -> Ok ()  (* absence is handled by 'required' *)
  | Any, _ -> Ok ()
  | Resource_id wanted, Value.Vunknown p -> (
      match unknown_id_matches ~wanted p with
      | `Match | `Unknown_shape -> Ok ()
      | `Mismatch (got_type, got_attr) ->
          Error
            (Printf.sprintf
               "expected the id of a %s, got %s.%s (wrong resource type)"
               wanted got_type got_attr))
  | _, Value.Vunknown _ -> Ok ()
  | Str, Value.Vstring _ -> Ok ()
  | Str, v -> Error (Printf.sprintf "expected string, got %s" (Value.type_name v))
  | Int, Value.Vint _ -> Ok ()
  | Int, v -> Error (Printf.sprintf "expected integer, got %s" (Value.type_name v))
  | Num, (Value.Vint _ | Value.Vfloat _) -> Ok ()
  | Num, v -> Error (Printf.sprintf "expected number, got %s" (Value.type_name v))
  | Bool, Value.Vbool _ -> Ok ()
  | Bool, v -> Error (Printf.sprintf "expected bool, got %s" (Value.type_name v))
  | Name, Value.Vstring s ->
      if valid_name s then Ok ()
      else Error (Printf.sprintf "invalid resource name %S" s)
  | Name, v -> Error (Printf.sprintf "expected name string, got %s" (Value.type_name v))
  | Region, Value.Vstring s ->
      if List.mem s known_regions then Ok ()
      else Error (Printf.sprintf "unknown region %S" s)
  | Region, v -> Error (Printf.sprintf "expected region, got %s" (Value.type_name v))
  | Cidr, Value.Vstring s ->
      if Ipnet.is_valid_prefix s then Ok ()
      else Error (Printf.sprintf "invalid CIDR block %S" s)
  | Cidr, v -> Error (Printf.sprintf "expected CIDR, got %s" (Value.type_name v))
  | Ip_address, Value.Vstring s ->
      if looks_like_ip s then Ok ()
      else Error (Printf.sprintf "invalid IP address %S" s)
  | Ip_address, v -> Error (Printf.sprintf "expected IP, got %s" (Value.type_name v))
  | Port, Value.Vint n ->
      if n >= 0 && n <= 65535 then Ok ()
      else Error (Printf.sprintf "port %d out of range" n)
  | Port, v -> Error (Printf.sprintf "expected port, got %s" (Value.type_name v))
  | Protocol, Value.Vstring s ->
      if List.mem (String.lowercase_ascii s) [ "tcp"; "udp"; "icmp"; "-1"; "all" ]
      then Ok ()
      else Error (Printf.sprintf "unknown protocol %S" s)
  | Protocol, v -> Error (Printf.sprintf "expected protocol, got %s" (Value.type_name v))
  | Resource_id _, Value.Vstring _ -> Ok ()  (* imported/literal ids *)
  | Resource_id _, v ->
      Error (Printf.sprintf "expected a resource id, got %s" (Value.type_name v))
  | Enum allowed, Value.Vstring s ->
      if List.mem s allowed then Ok ()
      else
        Error
          (Printf.sprintf "value %S not in {%s}" s (String.concat ", " allowed))
  | Enum _, v -> Error (Printf.sprintf "expected enum string, got %s" (Value.type_name v))
  | List_of inner, Value.Vlist vs ->
      let rec go i = function
        | [] -> Ok ()
        | v :: rest -> (
            match check inner v with
            | Ok () -> go (i + 1) rest
            | Error msg -> Error (Printf.sprintf "element %d: %s" i msg))
      in
      go 0 vs
  | List_of _, v -> Error (Printf.sprintf "expected list, got %s" (Value.type_name v))
  | Map_of inner, Value.Vmap m ->
      Value.Smap.fold
        (fun k v acc ->
          match acc with
          | Error _ -> acc
          | Ok () -> (
              match check inner v with
              | Ok () -> Ok ()
              | Error msg -> Error (Printf.sprintf "key %S: %s" k msg)))
        m (Ok ())
  | Map_of _, v -> Error (Printf.sprintf "expected map, got %s" (Value.type_name v))

(** Infer a semantic type from an observed literal value — the building
    block of specification mining (values seen in a corpus suggest the
    attribute's semantic type). *)
let rec infer (v : Value.t) : t =
  match v with
  | Value.Vstring s ->
      if Ipnet.is_valid_prefix s then Cidr
      else if looks_like_ip s then Ip_address
      else if List.mem s known_regions then Region
      else Str
  | Value.Vint n when n >= 0 && n <= 65535 -> Port
  | Value.Vint _ -> Int
  | Value.Vfloat _ -> Num
  | Value.Vbool _ -> Bool
  | Value.Vlist (v :: _) -> List_of (infer v)
  | Value.Vlist [] -> List_of Any
  | Value.Vmap _ -> Map_of Any
  | Value.Vnull | Value.Vunknown _ -> Any

(** Widen two inferred types to their join (used when a corpus shows
    conflicting observations). *)
let rec join a b =
  if a = b then a
  else
    match (a, b) with
    | Any, t | t, Any -> t
    | (Port, Int | Int, Port) -> Int
    | (Cidr, Str | Str, Cidr) -> Str
    | (Region, Str | Str, Region) -> Str
    | (Ip_address, Str | Str, Ip_address) -> Str
    | (Name, Str | Str, Name) -> Str
    | Enum xs, Enum ys -> Enum (List.sort_uniq compare (xs @ ys))
    | (Enum _, Str | Str, Enum _) -> Str
    | List_of x, List_of y -> List_of (join x y)
    | Map_of x, Map_of y -> Map_of (join x y)
    | Int, Num | Num, Int -> Num
    | _ -> Any
