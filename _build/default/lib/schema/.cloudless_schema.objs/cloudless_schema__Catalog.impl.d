lib/schema/catalog.ml: Hashtbl List Resource_schema Semantic_type String
