lib/schema/cloud_rules.ml: Cloudless_hcl Cloudless_sim List Printf
