lib/schema/rules.ml: Cloudless_hcl Fmt List String
