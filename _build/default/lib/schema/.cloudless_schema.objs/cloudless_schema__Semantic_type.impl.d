lib/schema/semantic_type.ml: Cloudless_hcl List Printf String
