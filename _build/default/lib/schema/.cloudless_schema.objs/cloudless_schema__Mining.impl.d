lib/schema/mining.ml: Cloudless_hcl Hashtbl List Option Printf Resource_schema Semantic_type String
