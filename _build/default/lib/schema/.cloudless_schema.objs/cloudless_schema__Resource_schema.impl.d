lib/schema/resource_schema.ml: List Semantic_type
