(** Per-resource-type schemas: the typed vocabulary of the knowledge
    base. *)

type attr = {
  aname : string;
  aty : Semantic_type.t;
  required : bool;
  computed : bool;  (** set by the cloud, not the user (e.g. [id]) *)
  force_new : bool;  (** changing it requires destroy + recreate *)
}

let attr ?(required = false) ?(computed = false) ?(force_new = false) aname aty
    =
  { aname; aty; required; computed; force_new }

type t = {
  rtype : string;
  provider : string;
  doc : string;
  attrs : attr list;
}

let make ~rtype ~provider ~doc attrs = { rtype; provider; doc; attrs }

let find_attr t name = List.find_opt (fun a -> a.aname = name) t.attrs

let required_attrs t = List.filter (fun a -> a.required) t.attrs

let force_new_attrs t =
  List.filter (fun a -> a.force_new) t.attrs |> List.map (fun a -> a.aname)

(** Attributes a user may set (not computed). *)
let settable_attrs t = List.filter (fun a -> not a.computed) t.attrs

(** Attribute names the cloud computes; the importer of §3.1 strips
    these when porting cloud state to IaC. *)
let computed_attr_names t =
  List.filter (fun a -> a.computed) t.attrs |> List.map (fun a -> a.aname)
