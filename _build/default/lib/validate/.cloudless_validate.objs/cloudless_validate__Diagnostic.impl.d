lib/validate/diagnostic.ml: Cloudless_hcl Fmt List Printf
