lib/validate/validate.ml: Cloudless_hcl Cloudless_schema Diagnostic List Printf
