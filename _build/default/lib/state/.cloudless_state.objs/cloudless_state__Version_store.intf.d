lib/state/version_store.mli: Format State
