lib/state/state.ml: Cloudless_hcl List Option Printf String
