lib/state/version_store.ml: Fmt List Printf State
