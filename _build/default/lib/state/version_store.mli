(** The §3.4 "time machine": version control for (configuration, state)
    pairs, enabling faithful rollback planning. *)

type version = {
  id : int;
  parent : int option;
  description : string;
  config_src : string;  (** the IaC program text at this version *)
  state : State.t;
  created_at : float;  (** simulated time *)
}

type t

val create : unit -> t

val head : t -> int option
val find : t -> int -> version option
val head_version : t -> version option

(** Record a new version on top of the current head and move head to
    it; returns the new id. *)
val checkpoint :
  t -> time:float -> description:string -> config_src:string -> state:State.t -> int

(** All versions, oldest first. *)
val history : t -> version list

val length : t -> int

(** Move head back to an earlier version. *)
val reset_head : t -> int -> (unit, string) result

(** Chain from the root to [id], oldest first. *)
val lineage : t -> int -> version list

val diff_versions : t -> from_id:int -> to_id:int -> (State.state_diff, string) result

val pp_version : Format.formatter -> version -> unit
