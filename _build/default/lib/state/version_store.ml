(** The §3.4 "time machine": version control for (configuration, state)
    pairs.

    Every applied change checkpoints the configuration source together
    with the resulting deployment state, so rollback planning can pair
    "the config we want to return to" with "the state the world was in
    when that config was live" — the paper notes that replaying an old
    config alone is *not* a faithful rollback. *)

type version = {
  id : int;
  parent : int option;
  description : string;
  config_src : string;  (** the IaC program text at this version *)
  state : State.t;
  created_at : float;  (** simulated time *)
}

type t = {
  mutable versions : version list;  (** newest first *)
  mutable next_id : int;
  mutable head : int option;
}

let create () = { versions = []; next_id = 0; head = None }

let head t = t.head

let find t id = List.find_opt (fun v -> v.id = id) t.versions

let head_version t =
  match t.head with None -> None | Some id -> find t id

(** Record a new version on top of the current head and move head to
    it.  Returns the new version id. *)
let checkpoint t ~time ~description ~config_src ~state =
  let v =
    {
      id = t.next_id;
      parent = t.head;
      description;
      config_src;
      state;
      created_at = time;
    }
  in
  t.next_id <- t.next_id + 1;
  t.versions <- v :: t.versions;
  t.head <- Some v.id;
  v.id

(** All versions, oldest first. *)
let history t = List.rev t.versions

let length t = List.length t.versions

(** Move head back to an earlier version (the state/config pair a
    rollback should target).  The versions after it are kept — a
    rollback is itself recorded as a new checkpoint by the caller. *)
let reset_head t id =
  match find t id with
  | None -> Error (Printf.sprintf "unknown version %d" id)
  | Some _ ->
      t.head <- Some id;
      Ok ()

(** Chain of versions from [id] back to the root, newest first. *)
let lineage t id =
  let rec go acc = function
    | None -> List.rev acc
    | Some id -> (
        match find t id with
        | None -> List.rev acc
        | Some v -> go (v :: acc) v.parent)
  in
  List.rev (go [] (Some id))

(** State diff between two recorded versions. *)
let diff_versions t ~from_id ~to_id =
  match (find t from_id, find t to_id) with
  | Some a, Some b -> Ok (State.diff a.state b.state)
  | None, _ -> Error (Printf.sprintf "unknown version %d" from_id)
  | _, None -> Error (Printf.sprintf "unknown version %d" to_id)

let pp_version ppf v =
  Fmt.pf ppf "v%d%s (%d resources) %s" v.id
    (match v.parent with Some p -> Printf.sprintf " <- v%d" p | None -> "")
    (State.size v.state) v.description
