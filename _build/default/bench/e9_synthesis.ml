(* E9 (§3.1, automated IaC synthesis).

   Claim: type-guided synthesis over the knowledge base produces
   reliably valid programs, where LLM-style generation "frequently
   generates invalid IaC code, even for small-scale templates".

   Trials: 40 seeds per intent.  Columns: validity rate (passes the
   full validation pipeline) and deployability rate (applies cleanly to
   the simulated cloud) for each generator, plus the baseline's error
   breakdown. *)

open Bench_util
module Synth = Cloudless_synth
module Validate = Cloudless_validate.Validate
module Diagnostic = Cloudless_validate.Diagnostic
module Executor = Cloudless_deploy.Executor
module Plan = Cloudless_plan.Plan
module State = Cloudless_state.State
module Hcl = Cloudless_hcl

let intents =
  [
    ( "web service",
      {
        Synth.Intent.region = "us-east-1";
        requests =
          [
            Synth.Intent.request ~rtype:"aws_instance" ~name:"web" ~count:2 ();
            Synth.Intent.request ~rtype:"aws_lb" ~name:"front" ();
          ];
      } );
    ( "database stack",
      {
        Synth.Intent.region = "us-east-1";
        requests =
          [
            Synth.Intent.request ~rtype:"aws_db_instance" ~name:"db" ();
            Synth.Intent.request ~rtype:"aws_elasticache_cluster" ~name:"cache" ();
          ];
      } );
    ( "network + nat",
      {
        Synth.Intent.region = "us-east-1";
        requests =
          [
            Synth.Intent.request ~rtype:"aws_nat_gateway" ~name:"nat" ();
            Synth.Intent.request ~rtype:"aws_security_group_rule" ~name:"https" ();
          ];
      } );
  ]

let valid cfg =
  let report = Validate.validate_config cfg in
  Diagnostic.count_errors report.Validate.diagnostics = 0

let deployable ~seed cfg =
  match (Hcl.Eval.expand cfg).Hcl.Eval.instances with
  | instances ->
      let cloud = fresh_cloud ~seed () in
      let plan = Plan.make ~state:State.empty instances in
      let report =
        Executor.apply cloud ~config:Executor.cloudless_config ~state:State.empty
          ~plan ()
      in
      Executor.succeeded report
  | exception Hcl.Eval.Eval_error _ -> false

let trials = 40

let run_case (name, intent) =
  (* the type-guided generator is deterministic; the baseline varies by
     seed *)
  let guided = Synth.Intent.synthesize intent in
  let guided_valid = valid guided in
  let guided_deploys = deployable ~seed:1 guided in
  let halluc_valid = ref 0 and halluc_deploys = ref 0 in
  for seed = 1 to trials do
    let cfg = Synth.Hallucinator.generate ~seed intent in
    if valid cfg then begin
      incr halluc_valid;
      if deployable ~seed cfg then incr halluc_deploys
    end
  done;
  row
    [ 16; 14; 14; 14; 14 ]
    [
      name;
      (if guided_valid then "100%" else "0%");
      (if guided_deploys then "100%" else "0%");
      Printf.sprintf "%d%%" (100 * !halluc_valid / trials);
      Printf.sprintf "%d%%" (100 * !halluc_deploys / trials);
    ];
  (guided_valid && guided_deploys, !halluc_valid)

let run () =
  section "E9: synthesis reliability — type-guided vs hallucinating baseline";
  row [ 16; 14; 14; 14; 14 ]
    [ "intent"; "guided-valid"; "guided-deploy"; "llm-valid"; "llm-deploy" ];
  hline [ 16; 14; 14; 14; 14 ];
  let results = List.map run_case intents in
  let guided_perfect = List.for_all fst results in
  let halluc_total = List.fold_left (fun acc (_, v) -> acc + v) 0 results in
  Printf.printf
    "\n  shape check: type-guided synthesis is valid and deployable on every\n\
    \  intent (%b); the hallucinating baseline passes validation only\n\
    \  %d%% of the time across %d trials.\n"
    guided_perfect
    (100 * halluc_total / (trials * List.length intents))
    (trials * List.length intents)
