bench/e6_validation.ml: Array Bench_util Cloudless_validate List Printf Workload
