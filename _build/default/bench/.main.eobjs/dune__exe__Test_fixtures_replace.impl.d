bench/test_fixtures_replace.ml: Buffer String
