bench/e5_drift.ml: Bench_util Cloudless_deploy Cloudless_drift Cloudless_hcl Cloudless_sim Cloudless_state Float List Option Printf
