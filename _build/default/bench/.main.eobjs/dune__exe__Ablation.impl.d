bench/ablation.ml: Bench_util Cloudless_deploy Cloudless_plan Cloudless_sim Cloudless_state List Printf Workload
