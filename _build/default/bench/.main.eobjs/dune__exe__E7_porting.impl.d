bench/e7_porting.ml: Bench_util Cloudless_deploy Cloudless_synth List Printf
