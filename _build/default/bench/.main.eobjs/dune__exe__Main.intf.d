bench/main.mli:
