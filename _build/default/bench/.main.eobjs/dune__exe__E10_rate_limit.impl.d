bench/e10_rate_limit.ml: Bench_util Cloudless_deploy Cloudless_plan Cloudless_sim List Printf
