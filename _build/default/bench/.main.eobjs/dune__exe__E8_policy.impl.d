bench/e8_policy.ml: Bench_util Cloudless Cloudless_hcl Cloudless_state Float List Printf
