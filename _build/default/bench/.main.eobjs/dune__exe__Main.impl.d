bench/main.ml: Ablation Array E10_rate_limit E1_deploy_scaling E2_incremental E3_locks E4_rollback E5_drift E6_validation E7_porting E8_policy E9_synthesis List Micro Sys
