bench/e3_locks.ml: Bench_util Cloudless_hcl Cloudless_lock Cloudless_sim Cloudless_state List Printf
