(* E6 (§3.2, validating IaC).

   Claim: each added validation stage (references -> semantic types ->
   cloud-level rules) catches misconfigurations the previous stages
   pass, eliminating deploy-time surprises.

   Corpus: one program per misconfiguration class (all drawn from the
   paper's own examples) plus a correct control.  Matrix: class x
   pipeline level -> caught? *)

open Bench_util
module Validate = Cloudless_validate.Validate
module Diagnostic = Cloudless_validate.Diagnostic

let levels =
  [
    ("syntax", Validate.L_syntax);
    ("refs", Validate.L_references);
    ("types", Validate.L_types);
    ("cloud", Validate.L_cloud);
  ]

let caught level src =
  let report = Validate.validate_source ~level ~file:"e6.tf" src in
  Diagnostic.count_errors report.Validate.diagnostics > 0

let run () =
  section "E6: misconfiguration catch rate by validation stage";
  let corpus = Workload.misconfig_corpus () in
  row [ 22; 8; 8; 8; 8 ] ("misconfig" :: List.map fst levels);
  hline [ 22; 8; 8; 8; 8 ];
  let counts = Array.make (List.length levels) 0 in
  List.iter
    (fun (name, src, injected) ->
      let marks =
        List.mapi
          (fun i (_, level) ->
            let c = caught level src in
            if c && injected then counts.(i) <- counts.(i) + 1;
            if c then "CAUGHT" else "-")
          levels
      in
      row [ 22; 8; 8; 8; 8 ] (name :: marks))
    corpus;
  hline [ 22; 8; 8; 8; 8 ];
  let total =
    List.length (List.filter (fun (_, _, injected) -> injected) corpus)
  in
  row [ 22; 8; 8; 8; 8 ]
    ("caught/total"
    :: Array.to_list (Array.map (fun c -> Printf.sprintf "%d/%d" c total) counts));
  Printf.printf
    "\n  shape check: monotone increase across stages; the full pipeline\n\
    \  catches %d/%d pre-deployment (syntax-only validation, today's\n\
    \  'terraform validate', catches %d/%d).\n"
    counts.(3) total counts.(0) total
