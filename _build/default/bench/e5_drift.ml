(* E5 (§3.5, drift detection).

   Claim: driftctl-style scanning pays O(deployment size) management-API
   reads per sweep and collides with rate limits; tailing the activity
   log detects the same events with near-zero API cost and bounded
   latency.

   Sweep: deployment size.  Columns: API reads per detection sweep for
   each approach, throttle events, and detection outcome. *)

open Bench_util
module Executor = Cloudless_deploy.Executor
module State = Cloudless_state.State
module Cloud = Cloudless_sim.Cloud
module Drift = Cloudless_drift.Drift
module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap

let fleet n =
  Printf.sprintf
    {|
resource "aws_instance" "w" {
  count         = %d
  ami           = "ami-drift"
  instance_type = "t3.small"
  region        = "us-east-1"
}
|}
    n

let run_case n =
  let cloud, report = deploy ~seed:13 ~engine:Executor.cloudless_config (fleet n) in
  let state = report.Executor.state in
  (* inject 3 drift events *)
  let drifted = [ 0; n / 2; n - 1 ] in
  List.iter
    (fun i ->
      let addr = Addr.make ~rtype:"aws_instance" ~rname:"w" ~key:(Addr.Kint i) () in
      let r = Option.get (State.find_opt state addr) in
      ignore
        (Cloud.mutate_oob cloud ~script:"legacy" ~cloud_id:r.State.cloud_id
           ~attr:"instance_type" ~value:(Value.Vstring "t3.metal")))
    drifted;
  (* scan-based sweep *)
  let scan = Drift.Scanner.scan cloud ~state () in
  (* log-based sweep on the same cloud *)
  let before_reads = Cloud.api_call_count cloud in
  let tailer = Drift.Log_tailer.create () in
  let log_events = Drift.Log_tailer.poll tailer cloud ~state in
  let log_reads = Cloud.api_call_count cloud - before_reads in
  row
    [ 8; 12; 12; 12; 12; 12 ]
    [
      string_of_int n;
      string_of_int scan.Drift.Scanner.api_reads;
      string_of_int scan.Drift.Scanner.throttled;
      string_of_int (List.length scan.Drift.Scanner.events);
      string_of_int log_reads;
      string_of_int (List.length log_events);
    ];
  (scan, log_reads)

(* Detection latency under periodic polling: a drift event lands at a
   known simulated time; the scanner sweeps every 30 min (any more
   often would exhaust the API budget per the cost table), while the
   log tailer — being nearly free — polls every minute. *)
let latency_case n =
  (* one fresh world per detector so polling costs don't interact *)
  let make_world () =
    let cloud, report = deploy ~seed:14 ~engine:Executor.cloudless_config (fleet n) in
    let state = report.Executor.state in
    let t0 = Cloud.now cloud in
    let t_drift = t0 +. 137. in
    let mutate () =
      Cloud.advance_to cloud t_drift;
      let addr = Addr.make ~rtype:"aws_instance" ~rname:"w" ~key:(Addr.Kint 0) () in
      let r = Option.get (State.find_opt state addr) in
      match
        Cloud.mutate_oob cloud ~script:"legacy" ~cloud_id:r.State.cloud_id
          ~attr:"instance_type" ~value:(Value.Vstring "t3.metal")
      with
      | Ok () -> ()
      | Error _ -> assert false
    in
    (cloud, state, t0, t_drift, mutate)
  in
  (* drive periodic polls; the mutation fires when the clock passes
     t_drift, like a cron job racing an unrelated script *)
  let detect ~period ~poll =
    let cloud, state, t0, t_drift, mutate = make_world () in
    let mutated = ref false in
    let rec go k =
      if k > 1000 then infinity
      else begin
        let t = t0 +. (period *. float_of_int k) in
        if (not !mutated) && t >= t_drift then begin
          mutate ();
          mutated := true
        end;
        Cloud.advance_to cloud t;
        if poll cloud state then Cloud.now cloud -. t_drift else go (k + 1)
      end
    in
    go 1
  in
  let log_latency =
    let tailer = Drift.Log_tailer.create () in
    detect ~period:60. ~poll:(fun cloud state ->
        Drift.Log_tailer.poll tailer cloud ~state <> [])
  in
  let scan_latency =
    detect ~period:1800. ~poll:(fun cloud state ->
        (Drift.Scanner.scan cloud ~state ()).Drift.Scanner.events <> [])
  in
  row [ 8; 16; 16 ]
    [ string_of_int n; fmt_s scan_latency; fmt_s log_latency ];
  (scan_latency, log_latency)

let run () =
  section "E5: drift detection — API scan (driftctl-style) vs activity log tail";
  row [ 8; 12; 12; 12; 12; 12 ]
    [ "fleet"; "scan-reads"; "scan-429s"; "scan-found"; "log-reads"; "log-found" ];
  hline [ 8; 12; 12; 12; 12; 12 ];
  let results = List.map run_case [ 10; 25; 50; 100; 200 ] in
  let max_scan_reads =
    List.fold_left (fun acc (s, _) -> max acc s.Drift.Scanner.api_reads) 0 results
  in
  let any_throttled =
    List.exists (fun (s, _) -> s.Drift.Scanner.throttled > 0) results
  in
  Printf.printf
    "\n  shape check: scan cost grows linearly with deployment size (up to %d\n\
    \  reads/sweep, throttled: %b); log tailing finds the same 3 events at\n\
    \  zero management-API reads regardless of size.\n"
    max_scan_reads any_throttled;
  subsection "detection latency (scan every 30min — API budget-bound — vs log every 1min)";
  row [ 8; 16; 16 ] [ "fleet"; "scan-latency"; "log-latency" ];
  hline [ 8; 16; 16 ];
  let latencies = List.map latency_case [ 25; 100 ] in
  let max_log = List.fold_left (fun acc (_, l) -> Float.max acc l) 0. latencies in
  Printf.printf
    "\n  shape check: log-based detection latency is bounded by its polling\n\
    \  period (<= %.0fs) independent of fleet size; scan latency is the sweep\n\
    \  period plus the sweep itself.\n"
    max_log
