(* E7 (§3.1, porting non-IaC infrastructures to IaC).

   Claim: the program optimizer turns a Terraformer-style one-block-
   per-resource dump into maintainable IaC: count/for_each compaction,
   recovered references, pruned computed attributes, extracted modules.

   Sweep: fleet size.  Columns: the quality metrics DESIGN.md defines,
   naive vs optimized. *)

open Bench_util
module Executor = Cloudless_deploy.Executor
module Synth = Cloudless_synth

let fleet n =
  Printf.sprintf
    {|
resource "aws_vpc" "main" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
  name       = "fleet"
}
resource "aws_subnet" "s" {
  count      = %d
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet("10.0.0.0/16", 8, count.index)
  region     = "us-east-1"
}
resource "aws_instance" "w" {
  count         = %d
  ami           = "ami-fleet"
  instance_type = "t3.small"
  subnet_id     = aws_subnet.s[count.index].id
  region        = "us-east-1"
  name          = "worker-${count.index}"
}
|}
    n n

let run_case n =
  let cloud, report = deploy ~seed:23 ~engine:Executor.cloudless_config (fleet n) in
  assert (Executor.succeeded report);
  let naive = Synth.Importer.import cloud () in
  let result = Synth.Refactor.optimize ~modules:false naive in
  let opt = result.Synth.Refactor.optimized in
  let mn = Synth.Quality.measure naive in
  let mo = Synth.Quality.measure opt in
  row
    [ 6; 12; 12; 12; 12; 14; 12 ]
    [
      string_of_int ((2 * n) + 1);
      Printf.sprintf "%d/%d" mn.Synth.Quality.loc mo.Synth.Quality.loc;
      Printf.sprintf "%d/%d" mn.Synth.Quality.blocks mo.Synth.Quality.blocks;
      Printf.sprintf "%.1f/%.1f" mn.Synth.Quality.compaction mo.Synth.Quality.compaction;
      Printf.sprintf "%.2f/%.2f" mn.Synth.Quality.reference_ratio
        mo.Synth.Quality.reference_ratio;
      Printf.sprintf "%d/%d" mn.Synth.Quality.literal_noise mo.Synth.Quality.literal_noise;
      fmt_x (float_of_int mn.Synth.Quality.loc /. float_of_int (max 1 mo.Synth.Quality.loc));
    ];
  (mn, mo)

let run () =
  section
    "E7: porting quality — naive import vs refactoring optimizer (naive/optimized)";
  row [ 6; 12; 12; 12; 12; 14; 12 ]
    [ "n"; "loc"; "blocks"; "compaction"; "ref-ratio"; "literal-noise"; "loc-x" ];
  hline [ 6; 12; 12; 12; 12; 14; 12 ];
  let results = List.map run_case [ 4; 10; 25; 50 ] in
  let last_n, last_o = List.nth results (List.length results - 1) in
  Printf.printf
    "\n  shape check: optimizer holds block count constant as the fleet grows\n\
    \  (%d blocks for %d resources), eliminates literal noise (%d -> %d) and\n\
    \  recovers all references (%.2f -> %.2f); LoC reduction grows with n.\n"
    last_o.Synth.Quality.blocks last_o.Synth.Quality.resources_represented
    last_n.Synth.Quality.literal_noise last_o.Synth.Quality.literal_noise
    last_n.Synth.Quality.reference_ratio last_o.Synth.Quality.reference_ratio
