(* E3 (§3.4, concurrent updates and mutual exclusion).

   Claim: per-resource locks let teams updating disjoint resources run
   in parallel, where today's whole-infrastructure lock serializes
   them; conflicting updates still serialize correctly.

   Sweep: team count x overlap fraction.  Columns: makespan under the
   global lock vs per-resource locks, lock waits, speedup. *)

open Bench_util
module Lock_manager = Cloudless_lock.Lock_manager
module Txn = Cloudless_lock.Txn
module Team_sim = Cloudless_lock.Team_sim
module State = Cloudless_state.State
module Cloud = Cloudless_sim.Cloud
module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap

(* seed a cloud with n instances and matching state *)
let seeded n =
  let cloud = fresh_cloud ~seed:17 () in
  let state = ref State.empty in
  for i = 0 to n - 1 do
    let name = Printf.sprintf "r%d" i in
    match
      Cloud.run_sync cloud
        ~actor:(Cloudless_sim.Activity_log.Iac_engine "setup")
        (Cloud.Create
           {
             rtype = "aws_instance";
             region = "us-east-1";
             attrs = Smap.singleton "name" (Value.Vstring name);
           })
    with
    | Ok attrs ->
        let cloud_id = Value.to_string (Smap.find "id" attrs) in
        state :=
          State.add !state
            {
              State.addr = Addr.make ~rtype:"aws_instance" ~rname:name ();
              cloud_id;
              rtype = "aws_instance";
              region = "us-east-1";
              attrs;
              deps = [];
            }
    | Error _ -> assert false
  done;
  (cloud, !state)

(* team t owns resources [t*per .. t*per+per-1]; an "overlapping" update
   touches resource 0 (shared hot spot) instead *)
let queues ~teams ~updates ~per ~overlap_every =
  List.init teams (fun t ->
      List.init updates (fun u ->
          let shared = overlap_every > 0 && u mod overlap_every = 0 && t > 0 in
          let target =
            if shared then Addr.make ~rtype:"aws_instance" ~rname:"r0" ()
            else
              Addr.make ~rtype:"aws_instance"
                ~rname:(Printf.sprintf "r%d" ((t * per) + (u mod per)))
                ()
          in
          {
            Team_sim.team = Printf.sprintf "team-%d" t;
            addrs = [ target ];
            tag = Printf.sprintf "t%d-u%d" t u;
          }))

let run_case ~teams ~overlap_every label =
  let per = 4 and updates = 5 in
  let run granularity =
    let cloud, state = seeded (teams * per) in
    let store = Txn.create_store state in
    Team_sim.run cloud ~store ~granularity
      (queues ~teams ~updates ~per ~overlap_every)
  in
  let g = run Lock_manager.Global in
  let f = run Lock_manager.Per_resource in
  row
    [ 10; 12; 12; 12; 10; 10; 8 ]
    [
      string_of_int teams;
      label;
      fmt_s g.Team_sim.makespan;
      fmt_s f.Team_sim.makespan;
      string_of_int g.Team_sim.lock_waits;
      string_of_int f.Team_sim.lock_waits;
      fmt_x (g.Team_sim.makespan /. f.Team_sim.makespan);
    ];
  (g, f)

let run () =
  section "E3: concurrent updates — global lock vs per-resource locks";
  row [ 10; 12; 12; 12; 10; 10; 8 ]
    [ "teams"; "overlap"; "global"; "per-res"; "g-waits"; "f-waits"; "speedup" ];
  hline [ 10; 12; 12; 12; 10; 10; 8 ];
  let disjoint =
    List.map
      (fun teams -> run_case ~teams ~overlap_every:0 "none")
      [ 2; 4; 8; 16 ]
  in
  let overlapping =
    List.map
      (fun teams -> run_case ~teams ~overlap_every:2 "1-in-2")
      [ 4; 8 ]
  in
  let speedup (g, f) = g.Team_sim.makespan /. f.Team_sim.makespan in
  Printf.printf
    "\n  shape check: disjoint speedup grows with team count (%.1fx at 2 teams\n\
    \  -> %.1fx at 16); overlap caps the win (%.1fx at 8 teams, 1-in-2 shared).\n"
    (speedup (List.nth disjoint 0))
    (speedup (List.nth disjoint 3))
    (speedup (List.nth overlapping 1))
