(* E8 (§3.6, policing IaC).

   Claim: observation/action policies express autoscaling rules
   provider-native triggers cannot ("scale out the number of VPN
   gateways and attached tunnels if traffic throughput is close to
   their capacity"), and the controller keeps the infrastructure inside
   its SLO under a shifting load trace.

   Simulation: a deterministic diurnal traffic trace drives telemetry
   ticks.  Policies under test: none, provider-native (CPU-only — blind
   to VPN throughput, so it never fires), and the cloudless obs/action
   policy.  Metric: fraction of ticks spent overloaded (util > 0.9) and
   tunnel-hours provisioned. *)

open Bench_util
module Lifecycle = Cloudless.Lifecycle
module State = Cloudless_state.State
module Value = Cloudless_hcl.Value

let vpn_src count =
  Printf.sprintf
    {|
resource "aws_vpc" "v" {
  cidr_block = "10.0.0.0/16"
  region     = "us-east-1"
}
resource "aws_vpn_gateway" "gw" {
  vpc_id        = aws_vpc.v.id
  region        = "us-east-1"
  capacity_mbps = 1000
}
resource "aws_vpn_connection" "tunnel" {
  count          = %d
  vpn_gateway_id = aws_vpn_gateway.gw.id
  customer_ip    = "203.0.113.9"
  region         = "us-east-1"
  bandwidth_mbps = 500
}
|}
    count

let scale_out_and_in_policy =
  {|
policy "scale_out_tunnels" {
  on   = "telemetry"
  when = obs.vpn_utilization > 0.8

  action "add_tunnel" {
    kind   = "set_count"
    target = "aws_vpn_connection.tunnel"
    value  = obs.tunnel_count + 1
  }
}

policy "scale_in_tunnels" {
  on   = "telemetry"
  when = obs.vpn_utilization < 0.3 && obs.tunnel_count > 2

  action "remove_tunnel" {
    kind   = "set_count"
    target = "aws_vpn_connection.tunnel"
    value  = obs.tunnel_count - 1
  }
}
|}

(* provider-native autoscaling: only CPU is observable; VPN throughput
   is not an exposed trigger, so the policy can never fire *)
let provider_native_policy =
  {|
policy "cpu_scaling" {
  on   = "telemetry"
  when = obs.cpu_utilization > 0.8

  action "add_tunnel" {
    kind   = "set_count"
    target = "aws_vpn_connection.tunnel"
    value  = obs.tunnel_count + 1
  }
}
|}

(* deterministic diurnal-ish offered load in Mbps, 48 ticks *)
let trace =
  List.init 48 (fun i ->
      let phase = float_of_int i /. 48. *. 2. *. Float.pi in
      600. +. (500. *. sin phase) +. if i mod 12 = 0 then 250. else 0.)

let tunnels state =
  List.length
    (List.filter
       (fun (r : State.resource_state) -> r.State.rtype = "aws_vpn_connection")
       (State.resources state))

let run_scenario name policies =
  let t =
    match policies with
    | Some p -> Lifecycle.create ~policies:p ()
    | None -> Lifecycle.create ()
  in
  (match Lifecycle.deploy t (vpn_src 2) with
  | Ok _ -> ()
  | Error e -> failwith (Lifecycle.error_to_string e));
  let overloaded = ref 0 in
  let tunnel_hours = ref 0. in
  let reconfigs = ref 0 in
  List.iter
    (fun load ->
      let n = tunnels (Lifecycle.state t) in
      let capacity = float_of_int n *. 500. in
      let util = load /. capacity in
      if util > 0.9 then incr overloaded;
      tunnel_hours := !tunnel_hours +. float_of_int n;
      match
        Lifecycle.police t
          ~extra:
            [
              ("vpn_utilization", Value.Vfloat util);
              ("tunnel_count", Value.Vint n);
              (* cpu stays calm: the VPN is the bottleneck *)
              ("cpu_utilization", Value.Vfloat 0.35);
            ]
      with
      | Ok r -> if r.Lifecycle.reapplied <> None then incr reconfigs
      | Error e -> failwith (Lifecycle.error_to_string e))
    trace;
  row
    [ 18; 12; 14; 12; 12 ]
    [
      name;
      Printf.sprintf "%d/%d" !overloaded (List.length trace);
      Printf.sprintf "%.0f" !tunnel_hours;
      string_of_int !reconfigs;
      string_of_int (tunnels (Lifecycle.state t));
    ];
  (!overloaded, !tunnel_hours)

let run () =
  section "E8: policy-driven autoscaling — VPN throughput scenario";
  row [ 18; 12; 14; 12; 12 ]
    [ "policy"; "overloaded"; "tunnel-hours"; "reconfigs"; "final-n" ];
  hline [ 18; 12; 14; 12; 12 ];
  let none_over, none_hours = run_scenario "none (static 2)" None in
  let native_over, _ = run_scenario "provider-native" (Some provider_native_policy) in
  let cl_over, cl_hours = run_scenario "cloudless" (Some scale_out_and_in_policy) in
  Printf.printf
    "\n  shape check: provider-native autoscaling cannot observe VPN\n\
    \  throughput, so it behaves like no policy (%d vs %d overloaded ticks);\n\
    \  the obs/action policy cuts overload to %d while provisioning\n\
    \  %.0f%% of the static fleet's always-on tunnel-hours.\n"
    native_over none_over cl_over
    (100. *. cl_hours /. none_hours)
