(* The experiment harness: regenerates every table in EXPERIMENTS.md.

   Usage:
     dune exec bench/main.exe            # E1-E10 (simulated-time experiments)
     dune exec bench/main.exe -- micro   # bechamel microbenches only
     dune exec bench/main.exe -- e3 e5   # a subset
     dune exec bench/main.exe -- all     # experiments + microbenches *)

let experiments =
  [
    ("e1", E1_deploy_scaling.run);
    ("e2", E2_incremental.run);
    ("e3", E3_locks.run);
    ("e4", E4_rollback.run);
    ("e5", E5_drift.run);
    ("e6", E6_validation.run);
    ("e7", E7_porting.run);
    ("e8", E8_policy.run);
    ("e9", E9_synthesis.run);
    ("e10", E10_rate_limit.run);
    ("ablation", Ablation.run);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let run_experiments names =
    List.iter
      (fun (name, f) -> if names = [] || List.mem name names then f ())
      experiments
  in
  match args with
  | [] ->
      print_endline "cloudless experiment harness (see EXPERIMENTS.md)";
      run_experiments []
  | [ "micro" ] -> Micro.run ()
  | [ "all" ] ->
      run_experiments [];
      Micro.run ()
  | names ->
      let micro = List.mem "micro" names in
      run_experiments (List.filter (fun n -> n <> "micro") names);
      if micro then Micro.run ()
