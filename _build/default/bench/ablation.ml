(* Ablation: which cloudless engine design choice buys what (§3.3).

   The cloudless engine differs from the baseline along three axes:
   unbounded width (vs -parallelism=10), critical-path priority (vs
   FIFO), and client-side rate pacing (vs burst+retry).  Each variant
   toggles one axis to attribute the end-to-end win.

   Priority matters only when width is capped (with unbounded width
   nothing ever queues), so the cap10+CP variant is the interesting
   pairing; pacing matters only near the API budget, so the sweep
   includes a tight-budget workload. *)

open Bench_util
module Executor = Cloudless_deploy.Executor
module Plan = Cloudless_plan.Plan
module State = Cloudless_state.State
module Cloud = Cloudless_sim.Cloud
module Rate_limiter = Cloudless_sim.Rate_limiter

let variants =
  [
    ("cap10+fifo (baseline)", Executor.baseline_config);
    ( "cap10+priority",
      { Executor.baseline_config with Executor.name = "prio"; policy = Executor.Critical_path } );
    ( "unbounded+fifo",
      {
        Executor.baseline_config with
        Executor.name = "wide";
        parallelism = None;
      } );
    ( "unbounded+prio+pace (full)",
      { Executor.cloudless_config with Executor.refresh = Executor.Refresh_full } );
  ]

let mean_makespan ?(tight = false) ~engine src =
  let seeds = [ 42; 43; 44 ] in
  let total =
    List.fold_left
      (fun acc seed ->
        let cloud =
          if tight then
            (* no cross-resource checks: the workload references an
               external vpc id; this isolates rate-limit behaviour *)
            Cloud.create
              ~write_limiter:(Rate_limiter.azure_write ())
              ~read_limiter:(Rate_limiter.azure_read ())
              ~seed ()
          else fresh_cloud ~seed ()
        in
        let engine =
          if tight then { engine with Executor.pacing_budget = (40., 1200. /. 3600.) }
          else engine
        in
        let instances = expand_src src in
        let plan = Plan.make ~state:State.empty instances in
        let report =
          Executor.apply cloud ~config:engine ~state:State.empty ~plan ()
        in
        assert (Executor.succeeded report);
        acc +. report.Executor.makespan)
      0. seeds
  in
  total /. float_of_int (List.length seeds)

let run () =
  section "ABLATION: contribution of each cloudless engine design choice";
  let workloads =
    [
      ("microservices x12", Workload.microservices ~services:12 (), false);
      ("web-tier 32 vms", Workload.web_tier ~web_count:32 (), false);
      ( "60 sg burst (tight API budget)",
        Printf.sprintf
          {|
resource "aws_security_group" "sg" {
  count  = 60
  name   = "sg-${count.index}"
  vpc_id = "vpc-external"
  region = "us-east-1"
}
|},
        true );
    ]
  in
  row [ 30; 16; 16; 16 ]
    [ "variant"; "microsvc x12"; "web 32vms"; "60sg tight" ];
  hline [ 30; 16; 16; 16 ];
  List.iter
    (fun (vname, engine) ->
      let cells =
        List.map
          (fun (_, src, tight) -> fmt_s (mean_makespan ~tight ~engine src))
          workloads
      in
      row [ 30; 16; 16; 16 ] (vname :: cells))
    variants;
  Printf.printf
    "\n  reading: width removes the parallelism-cap penalty on wide graphs;\n\
    \  priority helps under a cap (better packing of long tasks) and is\n\
    \  neutral unbounded; pacing only matters against tight API budgets,\n\
    \  where it converts retry storms into schedule-time waits.\n"
