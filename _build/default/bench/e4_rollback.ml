(* E4 (§3.4, rollbacks during updates).

   Claim: reversibility-aware rollback (a) repairs out-of-band
   modifications naive config-replay misses, and (b) redeploys only the
   resources whose diverged attributes force recreation.

   Scenario sweep: number of drifted resources x kind of change
   (reversible attr / force-new attr / out-of-band).  Columns: resources
   redeployed, updated in place, and residual divergence after rollback,
   for each strategy. *)

open Bench_util
module Executor = Cloudless_deploy.Executor
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan
module Rollback = Cloudless_rollback.Rollback
module Cloud = Cloudless_sim.Cloud
module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap

type change_kind = Reversible | Force_new | Out_of_band

let kind_label = function
  | Reversible -> "reversible"
  | Force_new -> "force-new"
  | Out_of_band -> "oob"

let live_of cloud state addr =
  match State.find_opt state addr with
  | Some (r : State.resource_state) ->
      Option.map
        (fun (res : Cloud.resource) -> res.Cloud.attrs)
        (Cloud.lookup cloud r.State.cloud_id)
  | None -> None

(* deploy a fleet, checkpoint, then mutate k instances the given way *)
let scenario ~k ~kind =
  let src =
    {|
resource "aws_instance" "w" {
  count         = 8
  ami           = "ami-base"
  instance_type = "t3.small"
  region        = "us-east-1"
}
|}
  in
  let cloud, report = deploy ~seed:31 ~engine:Executor.cloudless_config src in
  let target = report.Executor.state in
  let current = ref target in
  for i = 0 to k - 1 do
    let addr = Addr.make ~rtype:"aws_instance" ~rname:"w" ~key:(Addr.Kint i) () in
    let r = Option.get (State.find_opt target addr) in
    match kind with
    | Reversible ->
        ignore
          (Cloud.run_sync cloud
             ~actor:(Cloudless_sim.Activity_log.Iac_engine "update")
             (Cloud.Update
                {
                  cloud_id = r.State.cloud_id;
                  attrs = Smap.singleton "instance_type" (Value.Vstring "t3.xlarge");
                }));
        current :=
          State.update_attrs !current addr
            (Smap.add "instance_type" (Value.Vstring "t3.xlarge") r.State.attrs)
    | Force_new ->
        ignore
          (Cloud.run_sync cloud
             ~actor:(Cloudless_sim.Activity_log.Iac_engine "update")
             (Cloud.Update
                {
                  cloud_id = r.State.cloud_id;
                  attrs = Smap.singleton "ami" (Value.Vstring "ami-new");
                }));
        current :=
          State.update_attrs !current addr
            (Smap.add "ami" (Value.Vstring "ami-new") r.State.attrs)
    | Out_of_band ->
        (* invisible to the state file *)
        ignore
          (Cloud.mutate_oob cloud ~script:"legacy.sh" ~cloud_id:r.State.cloud_id
             ~attr:"instance_type" ~value:(Value.Vstring "t3.metal"))
  done;
  (cloud, target, !current)

let run_case ~k ~kind =
  let run strategy =
    let cloud, target, current = scenario ~k ~kind in
    let rb =
      Rollback.plan_rollback ~strategy ~target ~current
        ~live:(fun a -> live_of cloud current a)
        ()
    in
    let report =
      Executor.apply cloud ~config:Executor.cloudless_config ~state:current
        ~plan:rb.Rollback.plan ()
    in
    let residual =
      Rollback.residual_divergence ~target
        ~live:(fun a -> live_of cloud report.Executor.state a)
    in
    (rb, List.length residual)
  in
  let naive, naive_residual = run Rollback.Naive_reapply in
  let aware, aware_residual = run Rollback.Reversibility_aware in
  row
    [ 4; 12; 14; 14; 14; 14 ]
    [
      string_of_int k;
      kind_label kind;
      Printf.sprintf "%d rdep/%d upd"
        (List.length naive.Rollback.redeployed)
        (List.length naive.Rollback.updated);
      string_of_int naive_residual;
      Printf.sprintf "%d rdep/%d upd"
        (List.length aware.Rollback.redeployed)
        (List.length aware.Rollback.updated);
      string_of_int aware_residual;
    ];
  (naive_residual, aware_residual, List.length aware.Rollback.redeployed)

let run () =
  section "E4: rollback fidelity — naive config replay vs reversibility-aware";
  row [ 4; 12; 14; 14; 14; 14 ]
    [ "k"; "change"; "naive-plan"; "naive-resid"; "aware-plan"; "aware-resid" ];
  hline [ 4; 12; 14; 14; 14; 14 ];
  let cases =
    List.map
      (fun (k, kind) -> run_case ~k ~kind)
      [
        (1, Reversible); (4, Reversible);
        (1, Force_new); (4, Force_new);
        (1, Out_of_band); (4, Out_of_band);
      ]
  in
  let aware_all_clean = List.for_all (fun (_, r, _) -> r = 0) cases in
  let naive_misses_oob =
    List.exists (fun (r, _, _) -> r > 0) cases
  in
  Printf.printf
    "\n  shape check: aware rollback always converges (residual 0: %b);\n\
    \  naive replay leaves residual divergence on oob changes (%b); aware\n\
    \  redeploys only force-new changes, updating the rest in place.\n"
    aware_all_clean naive_misses_oob
