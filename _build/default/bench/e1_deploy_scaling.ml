(* E1 (§3.3, accelerating IaC deployment).

   Claim: critical-path-first scheduling with unbounded width beats
   Terraform's best-effort walk with -parallelism=10, and approaches the
   critical-path lower bound.

   Sweep: infrastructure size (layered topologies and microservice
   fleets).  Columns: makespan for each engine, the critical-path lower
   bound, and the speedup. *)

open Bench_util
module Dag = Cloudless_graph.Dag
module Service_model = Cloudless_sim.Service_model
module Executor = Cloudless_deploy.Executor
module Plan = Cloudless_plan.Plan
module State = Cloudless_state.State

let lower_bound instances =
  let g = Dag.of_instances instances in
  let duration addr =
    Service_model.expected addr.Cloudless_hcl.Addr.rtype Service_model.Op_create
  in
  fst (Dag.critical_path g ~duration)

let seeds = [ 42; 43; 44 ]

(* mean makespan across seeds: service times carry ±20% jitter, which a
   single draw of a 600s VPN gateway would dominate *)
let mean_makespan ~engine src =
  let total =
    List.fold_left
      (fun acc seed ->
        let _, r = deploy ~seed ~engine src in
        assert (Executor.succeeded r);
        acc +. r.Executor.makespan)
      0. seeds
  in
  total /. float_of_int (List.length seeds)

let run_case name src =
  let instances = expand_src src in
  let n = List.length instances in
  let bound = lower_bound instances in
  let base_makespan = mean_makespan ~engine:Executor.baseline_config src in
  let cl_makespan = mean_makespan ~engine:Executor.cloudless_config src in
  row
    [ 22; 6; 10; 10; 10; 9; 9 ]
    [
      name;
      string_of_int n;
      fmt_s base_makespan;
      fmt_s cl_makespan;
      fmt_s bound;
      fmt_x (base_makespan /. cl_makespan);
      Printf.sprintf "%.2f" (cl_makespan /. bound);
    ];
  (base_makespan, cl_makespan, bound)

let run () =
  section "E1: deployment makespan — baseline walk vs critical-path scheduling";
  row [ 22; 6; 10; 10; 10; 9; 9 ]
    [ "workload"; "n"; "baseline"; "cloudless"; "cp-bound"; "speedup"; "cl/bound" ];
  hline [ 22; 6; 10; 10; 10; 9; 9 ];
  let cases =
    [
      ("web-tier", Bench_util.Workload.web_tier ());
      ("web-tier 32 vms", Bench_util.Workload.web_tier ~web_count:32 ());
      ("microservices x4", Bench_util.Workload.microservices ~services:4 ());
      ("microservices x12", Bench_util.Workload.microservices ~services:12 ());
      ("microservices x25", Bench_util.Workload.microservices ~services:25 ());
      ("layered 16x8 (deep)", Bench_util.Workload.layered ~width:16 ~depth:8 ());
      ("multi-region", Bench_util.Workload.multi_region ());
      ( "multi-region x8",
        Bench_util.Workload.multi_region
          ~regions:[ "us-east-1"; "us-west-2"; "eu-west-1"; "ap-southeast-1" ]
          ~vms_per_region:8 () );
    ]
  in
  let results = List.map (fun (n, s) -> run_case n s) cases in
  let wins = List.filter (fun (b, c, _) -> c < b) results in
  let worst_ratio =
    List.fold_left (fun acc (_, c, bound) -> Float.max acc (c /. bound)) 1. results
  in
  Printf.printf
    "\n  shape check: cloudless beats the baseline on %d/%d workloads and\n\
    \  never loses; it stays within %.2fx of the critical-path lower bound\n\
    \  on every workload, while the baseline falls behind whenever graph\n\
    \  width exceeds its parallelism cap of 10.\n"
    (List.length wins) (List.length results) worst_ratio
