(* Wall-clock microbenchmarks of the framework's own hot paths, via
   Bechamel: parsing, expansion, graph analysis, planning, state
   serialization.  These measure the *tooling* cost (always sub-second
   here), complementing E1-E10 which measure simulated cloud time. *)

open Bechamel
open Toolkit

let web_src = Cloudless_workload.Workload.microservices ~services:10 ()

let parsed = Cloudless_hcl.Config.parse ~file:"micro.tf" web_src

let expanded = (Cloudless_hcl.Eval.expand parsed).Cloudless_hcl.Eval.instances

let graph = Cloudless_graph.Dag.of_instances expanded

let state_of_instances () =
  List.fold_left
    (fun s (i : Cloudless_hcl.Eval.instance) ->
      Cloudless_state.State.add s
        {
          Cloudless_state.State.addr = i.Cloudless_hcl.Eval.addr;
          cloud_id = Cloudless_hcl.Addr.to_string i.Cloudless_hcl.Eval.addr;
          rtype = i.Cloudless_hcl.Eval.addr.Cloudless_hcl.Addr.rtype;
          region = "us-east-1";
          attrs =
            Cloudless_hcl.Value.Smap.filter
              (fun _ v -> not (Cloudless_hcl.Value.has_unknown v))
              i.Cloudless_hcl.Eval.attrs;
          deps = [];
        })
    Cloudless_state.State.empty expanded

let state = state_of_instances ()
let state_text = Cloudless_state.State.to_string state

let tests =
  Test.make_grouped ~name:"cloudless" ~fmt:"%s/%s"
    [
      Test.make ~name:"parse (10-svc fleet)"
        (Staged.stage (fun () ->
             ignore (Cloudless_hcl.Config.parse ~file:"micro.tf" web_src)));
      Test.make ~name:"expand"
        (Staged.stage (fun () -> ignore (Cloudless_hcl.Eval.expand parsed)));
      Test.make ~name:"graph build"
        (Staged.stage (fun () ->
             ignore (Cloudless_graph.Dag.of_instances expanded)));
      Test.make ~name:"topo+critical path"
        (Staged.stage (fun () ->
             ignore
               (Cloudless_graph.Dag.critical_path graph ~duration:(fun _ -> 1.))));
      Test.make ~name:"plan diff"
        (Staged.stage (fun () ->
             ignore (Cloudless_plan.Plan.make ~state expanded)));
      Test.make ~name:"validate (full)"
        (Staged.stage (fun () ->
             ignore (Cloudless_validate.Validate.validate_config parsed)));
      Test.make ~name:"state serialize"
        (Staged.stage (fun () -> ignore (Cloudless_state.State.to_string state)));
      Test.make ~name:"state parse"
        (Staged.stage (fun () ->
             ignore (Cloudless_state.State.of_string state_text)));
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  results

let run () =
  Bench_util.section "MICRO: framework hot paths (wall clock, via bechamel)";
  let results = benchmark () in
  Hashtbl.iter
    (fun _label by_test ->
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) by_test []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> Printf.printf "  %-40s %10.1f ns/run\n" name t
          | _ -> Printf.printf "  %-40s (no estimate)\n" name)
        rows)
    results
