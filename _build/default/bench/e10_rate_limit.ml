(* E10 (§3.3, rate-limit-aware deployment).

   Claim: bursting write calls into a throttled management API causes
   429s and retry storms; client-side pacing against the documented
   budget avoids throttling entirely at (nearly) no makespan cost.

   Workload: wide fleets of fast-to-create resources deployed all at
   once — the worst case for burst admission.  Columns: 429 responses,
   retries, API calls and makespan per engine. *)

open Bench_util
module Executor = Cloudless_deploy.Executor

let burst n =
  Printf.sprintf
    {|
resource "aws_security_group" "sg" {
  count  = %d
  name   = "sg-${count.index}"
  vpc_id = "vpc-external"
  region = "us-east-1"
}
|}
    n

(* the parent-existence check would reject vpc-external; use a config
   without cross-resource checks to isolate the rate-limit behaviour.
   The cloud enforces the tight Azure-style budget (1200 writes/hour). *)
let deploy_burst ~engine n =
  let cloud =
    Cloudless_sim.Cloud.create
      ~write_limiter:(Cloudless_sim.Rate_limiter.azure_write ())
      ~read_limiter:(Cloudless_sim.Rate_limiter.azure_read ())
      ~seed:51 ()
  in
  let instances = expand_src (burst n) in
  let plan = Cloudless_plan.Plan.make ~state:Bench_util.State.empty instances in
  let report =
    Executor.apply cloud ~config:engine ~state:Bench_util.State.empty ~plan ()
  in
  report

let azure_budget = (40., 1200. /. 3600.)

let unpaced =
  { Executor.cloudless_config with Executor.name = "unpaced"; client_pacing = false }

let paced =
  {
    Executor.cloudless_config with
    Executor.name = "paced";
    pacing_budget = azure_budget;
  }

let run_case n =
  let a = deploy_burst ~engine:unpaced n in
  let b = deploy_burst ~engine:paced n in
  assert (Executor.succeeded a && Executor.succeeded b);
  row
    [ 6; 10; 10; 10; 10; 12; 12 ]
    [
      string_of_int n;
      string_of_int a.Executor.throttled;
      string_of_int a.Executor.retries;
      string_of_int b.Executor.throttled;
      string_of_int b.Executor.retries;
      fmt_s a.Executor.makespan;
      fmt_s b.Executor.makespan;
    ];
  (a, b)

let run () =
  section "E10: API rate limits — burst admission vs client-side pacing";
  row [ 6; 10; 10; 10; 10; 12; 12 ]
    [ "n"; "b-429s"; "b-retry"; "p-429s"; "p-retry"; "b-time"; "p-time" ];
  hline [ 6; 10; 10; 10; 10; 12; 12 ];
  let results = List.map run_case [ 20; 60; 120; 200 ] in
  let burst_429s =
    List.fold_left (fun acc (a, _) -> acc + a.Executor.throttled) 0 results
  in
  let paced_429s =
    List.fold_left (fun acc (_, b) -> acc + b.Executor.throttled) 0 results
  in
  Printf.printf
    "\n  shape check: bursting provokes %d total 429s across the sweep while\n\
    \  pacing provokes %d; above the bucket burst size (~40) both engines are\n\
    \  bound by the providers' refill rate, so makespans converge.\n"
    burst_429s paced_429s
