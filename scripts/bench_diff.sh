#!/usr/bin/env bash
# Compare two E16 result files (BENCH_raw.json schema) stage by stage:
#
#   scripts/bench_diff.sh OLD.json NEW.json
#
# Prints wall-second and minor-word deltas per fleet size, plus the
# journal and allocation headline numbers, so a perf PR can show its
# before/after from the committed trajectory file vs a fresh run
# without hand-diffing JSON.  Exits 0 always — it reports, the
# check.sh gates decide.
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 OLD.json NEW.json" >&2
  exit 2
fi

python3 - "$1" "$2" <<'PY'
import json, sys

old_path, new_path = sys.argv[1], sys.argv[2]
old = json.load(open(old_path))
new = json.load(open(new_path))

stages = ["eval", "intern", "plan", "dag", "execute", "journal", "group"]

def fmt_delta(o, n, unit=""):
    if o is None or n is None:
        return "      -"
    d = n - o
    pct = (100.0 * d / o) if o else 0.0
    return f"{n:9.3f}{unit} ({pct:+6.1f}%)"

old_by_n = {s["n"]: s for s in old.get("samples", [])}
print(f"old: {old_path}\nnew: {new_path}\n")
for s in new.get("samples", []):
    n = s["n"]
    o = old_by_n.get(n)
    print(f"n={n}")
    if o is None:
        print("  (no matching size in old file)")
        continue
    for st in stages:
        k = f"{st}_s"
        if k not in s and k not in (o or {}):
            continue
        print(f"  {st:<8} wall {fmt_delta(o.get(k), s.get(k), 's')}"
              f"   minor {fmt_delta(o.get(st + '_minor_mwords'), s.get(st + '_minor_mwords'), 'MW')}")
    for k, unit in [("journal_us_per_change", "us"),
                    ("group_us_per_change", "us"),
                    ("exec_words_per_change", "w")]:
        if k in s or k in o:
            print(f"  {k:<22} {fmt_delta(o.get(k), s.get(k), unit)}")
    print()

def dom_wall(doc):
    runs = doc.get("domain_leg", {}).get("runs", [])
    return {r["domains"]: r["wall_s"] for r in runs}

ow, nw = dom_wall(old), dom_wall(new)
if ow or nw:
    print("domain leg")
    for d in sorted(set(ow) | set(nw)):
        print(f"  domains={d:<3} wall {fmt_delta(ow.get(d), nw.get(d), 's')}")
PY
