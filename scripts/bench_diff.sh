#!/usr/bin/env bash
# Compare two bench result files stage by stage:
#
#   scripts/bench_diff.sh OLD.json NEW.json
#
# Understands four schemas, dispatched on the "experiment" field:
#   - e16_raw_speed (BENCH_raw.json):     per-fleet-size pipeline stages,
#     journal and allocation headlines, domain-sweep wall times
#   - e14_service   (BENCH_service.json): per-tenant-count cloudless vs
#     baseline legs and their p99/reads ratios
#   - e15_fleet     (BENCH_fleet.json):   per-shard-count legs, the
#     tailer-vs-subscription read bill, crash and backpressure headlines
#   - e17_soak      (BENCH_soak.json):    per-episode convergence
#     checkpoints, breaker/parking/fault headlines, crash leg
#   - e18_wave      (BENCH_wave.json):    blast-radius and gating-cost
#     headlines for the bad change, clean-rollout wave schedule,
#     crash-mid-rollout resume leg
#
# Stages, samples, and keys present in only one file are reported as
# one-sided rather than failing, so a trajectory file from before a
# schema extension still diffs against a fresh run.  Exits 0 always —
# it reports, the check.sh gates decide.
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 OLD.json NEW.json" >&2
  exit 2
fi

python3 - "$1" "$2" <<'PY'
import json, sys

old_path, new_path = sys.argv[1], sys.argv[2]
old = json.load(open(old_path))
new = json.load(open(new_path))

def fmt_delta(o, n, unit=""):
    if o is None and n is None:
        return "      -"
    if o is None:
        return f"{n:9.3f}{unit} (new only)"
    if n is None:
        return f"{o:9.3f}{unit} (old only)"
    d = n - o
    pct = (100.0 * d / o) if o else 0.0
    return f"{n:9.3f}{unit} ({pct:+6.1f}%)"

def diff_keyed(olds, news, key, fields):
    """Diff two sample lists joined on `key`; one-sided rows tolerated."""
    old_by = {s[key]: s for s in olds}
    new_by = {s[key]: s for s in news}
    for k in sorted(set(old_by) | set(new_by)):
        o, n = old_by.get(k, {}), new_by.get(k, {})
        side = "" if (o and n) else ("   (new only)" if n else "   (old only)")
        print(f"{key}={k}{side}")
        for f, unit in fields:
            ov, nv = o.get(f), n.get(f)
            if ov is None and nv is None:
                continue
            print(f"  {f:<22} {fmt_delta(ov, nv, unit)}")
        print()

def diff_flat(o, n, fields, title):
    rows = [(f, unit) for f, unit in fields
            if o.get(f) is not None or n.get(f) is not None]
    if not rows:
        return
    print(title)
    for f, unit in rows:
        print(f"  {f:<22} {fmt_delta(o.get(f), n.get(f), unit)}")
    print()

exp_old = old.get("experiment", "e16_raw_speed")
exp_new = new.get("experiment", "e16_raw_speed")
print(f"old: {old_path} ({exp_old})\nnew: {new_path} ({exp_new})\n")
if exp_old != exp_new:
    print("schemas differ; nothing comparable")
    sys.exit(0)

if exp_new == "e14_service":
    flat_old, flat_new = [], []
    for doc, flat in [(old, flat_old), (new, flat_new)]:
        for s in doc.get("samples", []):
            row = {"tenants": s["tenants"],
                   "p99_ratio": s.get("p99_ratio"),
                   "reads_ratio": s.get("reads_ratio")}
            for leg in ("cloudless", "baseline"):
                for f in ("p50", "p99", "drift_p50", "mgmt_reads", "lock_waits"):
                    v = s.get(leg, {}).get(f)
                    if v is not None:
                        row[f"{leg}_{f}"] = float(v)
            flat.append(row)
    fields = [(f"{leg}_{f}", "") for leg in ("cloudless", "baseline")
              for f in ("p50", "p99", "drift_p50", "mgmt_reads", "lock_waits")]
    fields += [("p99_ratio", "x"), ("reads_ratio", "x")]
    diff_keyed(flat_old, flat_new, "tenants", fields)
    diff_flat(old.get("crash", {}), new.get("crash", {}),
              [("orphans", ""), ("dup_creates", ""), ("managed", "")],
              "crash leg")
elif exp_new == "e15_fleet":
    fields = [(f, "") for f in
              ("p50", "p99", "makespan", "drift_p50", "drift_max",
               "mgmt_reads", "api_calls", "cross_shard_routed")]
    diff_keyed(old.get("shard_sweep", []), new.get("shard_sweep", []),
               "shards", fields)
    diff_flat(old, new,
              [("tailer_mgmt_reads", ""), ("mgmt_reads_ratio", "x")],
              "read bill")
    diff_flat(old.get("big", {}), new.get("big", {}), fields,
              "1024-tenant leg")
    diff_flat(old.get("crash", {}), new.get("crash", {}),
              [("orphans", ""), ("dup_creates", ""), ("managed", "")],
              "crash leg")
    diff_flat(old.get("backpressure", {}), new.get("backpressure", {}),
              [("deferred", ""), ("rejected", ""), ("rebalance_moves", "")],
              "backpressure leg")
elif exp_new == "e17_soak":
    diff_keyed(old.get("checkpoints", []), new.get("checkpoints", []),
               "episode",
               [("at", "s"), ("managed", ""), ("parked", ""),
                ("open_cells", "")])
    diff_flat(old, new,
              [("episode_faults", ""), ("requests_done", ""),
               ("requests_parked", ""), ("reconciles_parked", ""),
               ("degraded_entries", "")],
              "soak headlines")
    diff_flat(old.get("breaker", {}), new.get("breaker", {}),
              [("opened", ""), ("fast_fails", ""), ("violations", "")],
              "breaker")
    diff_flat(old.get("unaffected", {}), new.get("unaffected", {}),
              [("calm_p99", "s"), ("worst_p99", "s")],
              "unaffected tenants")
    diff_flat(old.get("crash", {}), new.get("crash", {}),
              [("orphans", ""), ("dup_creates", ""), ("managed", "")],
              "crash leg")
elif exp_new == "e18_wave":
    diff_flat(old.get("bad_change", {}), new.get("bad_change", {}),
              [("wave1_size", ""), ("tenants_reached_gated", ""),
               ("tenants_reached_naive", ""),
               ("residual_violating_gated", ""),
               ("residual_violating_naive", ""),
               ("rollback_latency_s", "s"), ("gated_mgmt_calls", ""),
               ("gate_checks", ""), ("gated_api_calls", ""),
               ("naive_api_calls", "")],
              "bad change (blast radius)")
    diff_flat(old.get("clean_change", {}), new.get("clean_change", {}),
              [("committed_tenants", ""), ("waves", ""),
               ("expected_waves", ""), ("rollbacks", ""),
               ("violations", "")],
              "clean change")
    diff_flat(old.get("crash", {}), new.get("crash", {}),
              [("crash_after", ""), ("resumed_from_wave", ""),
               ("orphans", ""), ("dup_creates", "")],
              "crash leg")
else:
    stages = ["eval", "intern", "plan", "dag", "execute", "journal", "group"]
    old_by_n = {s["n"]: s for s in old.get("samples", [])}
    for s in new.get("samples", []):
        n = s["n"]
        o = old_by_n.get(n)
        print(f"n={n}")
        if o is None:
            print("  (no matching size in old file)")
            continue
        for st in stages:
            k = f"{st}_s"
            if k not in s and k not in (o or {}):
                continue
            print(f"  {st:<8} wall {fmt_delta(o.get(k), s.get(k), 's')}"
                  f"   minor {fmt_delta(o.get(st + '_minor_mwords'), s.get(st + '_minor_mwords'), 'MW')}")
        for k, unit in [("journal_us_per_change", "us"),
                        ("group_us_per_change", "us"),
                        ("exec_words_per_change", "w")]:
            if k in s or k in o:
                print(f"  {k:<22} {fmt_delta(o.get(k), s.get(k), unit)}")
        print()

    def dom_wall(doc):
        runs = doc.get("domain_leg", {}).get("runs", [])
        return {r["domains"]: r["wall_s"] for r in runs}

    ow, nw = dom_wall(old), dom_wall(new)
    if ow or nw:
        print("domain leg")
        for d in sorted(set(ow) | set(nw)):
            print(f"  domains={d:<3} wall {fmt_delta(ow.get(d), nw.get(d), 's')}")
PY
