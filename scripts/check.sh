#!/usr/bin/env bash
# Tier-1 gate: full build, full test suite, and the E11 engine-scale
# smoke run (≤5s sweep; writes BENCH_scale.json with quick=true).
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bench/main.exe -- e11 --quick
