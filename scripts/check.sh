#!/usr/bin/env bash
# Tier-1 gate: full build, full test suite, the engine-scale smoke
# runs (quick sweeps; they write BENCH_*_quick.json, never the
# committed trajectory files), the typed-error lint, and the example
# programs as end-to-end smokes.  The E12 smoke gets a wall-clock
# budget: a reintroduced quadratic scan in the config→plan front half
# blows far past it and fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

# -- typed-error lint ------------------------------------------------
# lib/ reports failure through Cloudless_error (stage tag + location),
# never bare failwith.  New offenders must be argued into the
# allowlist, not snuck past it.
allowlist=scripts/failwith_allowlist.txt
offenders=$(grep -rln 'failwith' lib/ --include='*.ml' --include='*.mli' | sort | while read -r f; do
  grep -qxF "$f" <(grep -v '^#' "$allowlist") || echo "$f"
done)
if [[ -n "$offenders" ]]; then
  echo "check.sh: bare failwith in lib/ outside $allowlist:" >&2
  echo "$offenders" >&2
  exit 1
fi

dune build @all
dune runtest
dune exec bench/main.exe -- e11 --quick

E12_BUDGET_S=120
SECONDS=0
dune exec bench/main.exe -- e12 --quick
if (( SECONDS > E12_BUDGET_S )); then
  echo "check.sh: e12 --quick took ${SECONDS}s (budget ${E12_BUDGET_S}s)" >&2
  exit 1
fi

# Kill-anywhere crash sweep: the quick run fails hard if the journaled
# engine leaves any orphan/duplicate/divergence or loses determinism.
dune exec bench/main.exe -- e13 --quick

# Multi-tenant service load: the quick run self-asserts the control
# plane's claims (per-deployment admission beats the global lock on
# p99, flat tailer drift latency, crash-resume with zero orphans,
# byte-deterministic metrics).  Budgeted: the whole sweep is simulated
# time, so a wall-clock blowout means an event-loop regression.
E14_BUDGET_S=60
SECONDS=0
dune exec bench/main.exe -- e14 --quick
if (( SECONDS > E14_BUDGET_S )); then
  echo "check.sh: e14 --quick took ${SECONDS}s (budget ${E14_BUDGET_S}s)" >&2
  exit 1
fi

# Multi-shard fleet: the quick run self-asserts the E15 claims (p99
# and drift p50 flat as shards scale, push-based drift with zero log
# polls vs the tailer's poll bill, shard-count-invariant state digest,
# crash-resume at shard granularity, defer/reject backpressure) and
# checks metrics byte-determinism at --shards {1,2,4}.  Budgeted: the
# sweep is simulated time, so a wall-clock blowout means a fleet
# drive-loop regression.
E15_BUDGET_S=60
SECONDS=0
dune exec bench/main.exe -- e15 --quick
if (( SECONDS > E15_BUDGET_S )); then
  echo "check.sh: e15 --quick took ${SECONDS}s (budget ${E15_BUDGET_S}s)" >&2
  exit 1
fi

# Raw-speed core: per-stage pipeline timings, WAL + group-commit
# journal overhead, and the byte-identical --domains {1,2,4,0} digest
# assertion (the bench itself asserts; a digest mismatch or failed
# apply exits non-zero).  The bench also gates allocation: the bare
# apply must stay under its minor-words-per-change budget, so a
# reintroduced per-change tree-path copy or closure pileup fails here
# even when wall time hides it.  Budgeted like E12: the quick sweep is
# small, so a blowout means a hot-path regression in
# eval/intern/plan/dag/execute.
E16_BUDGET_S=60
SECONDS=0
dune exec bench/main.exe -- e16 --quick
if (( SECONDS > E16_BUDGET_S )); then
  echo "check.sh: e16 --quick took ${SECONDS}s (budget ${E16_BUDGET_S}s)" >&2
  exit 1
fi

# Chaos soak: the quick run drives the full 2-simulated-hour episode
# schedule (outage, error/throttle storms, spot waves, quota cut) on a
# shrunk fleet and self-asserts the E17 claims (convergence after
# every episode, zero calls through an open breaker, mid-outage
# crash-resume with zero orphans/duplicates, unaffected-tenant p99
# within 2x calm, chaos metrics determinism).  Budgeted: all simulated
# time, so a wall-clock blowout means the degraded-mode machinery is
# busy-spinning.
E17_BUDGET_S=60
SECONDS=0
dune exec bench/main.exe -- e17 --quick
if (( SECONDS > E17_BUDGET_S )); then
  echo "check.sh: e17 --quick took ${SECONDS}s (budget ${E17_BUDGET_S}s)" >&2
  exit 1
fi

# Bulk-change waves: the quick run self-asserts the E18 claims (a
# policy-violating change stops at the canary wave and is rolled back
# to zero residual violations while the naive baseline taints the
# whole fleet, a clean change converges on the canary*growth^k
# schedule, and a crash between wave commits resumes from the journal
# to the committed-wave boundary with zero orphans/duplicates and an
# unchanged state digest).  Budgeted: all simulated time, so a
# wall-clock blowout means the rollout driver is busy-polling.
E18_BUDGET_S=60
SECONDS=0
dune exec bench/main.exe -- e18 --quick
if (( SECONDS > E18_BUDGET_S )); then
  echo "check.sh: e18 --quick took ${SECONDS}s (budget ${E18_BUDGET_S}s)" >&2
  exit 1
fi

# -- hot-path Addr.Map gate ------------------------------------------
# The plan/apply hot path runs on interned int ids (Plan.exec_graph);
# Addr.Map belongs only to the Dag-returning analysis/oracle side
# (Plan.execution_graph, the Reference modules).  New Addr.Map uses in
# lib/plan or lib/deploy mean someone re-introduced address-keyed maps
# into the apply path — argue it here before raising the baseline.
ADDR_MAP_BASELINE=9
addr_map_count=$(grep -o 'Addr\.Map' lib/plan/*.ml lib/deploy/*.ml | wc -l)
if (( addr_map_count > ADDR_MAP_BASELINE )); then
  echo "check.sh: ${addr_map_count} Addr.Map uses in lib/plan+lib/deploy (baseline ${ADDR_MAP_BASELINE}) — keep the hot path on interned ids" >&2
  exit 1
fi

# -- example smokes --------------------------------------------------
# Every example must run to completion: they are the executable
# documentation for the lifecycle facade and the EDSL.
for ex in quickstart lifecycle autoscaling import_refactor debugging pulumi_style; do
  echo "== examples/$ex"
  dune exec "examples/$ex.exe" > /dev/null
done
echo "check.sh: all gates passed"
