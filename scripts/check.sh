#!/usr/bin/env bash
# Tier-1 gate: full build, full test suite, and the engine-scale smoke
# runs (quick sweeps; they write BENCH_*_quick.json, never the
# committed trajectory files).  The E12 smoke gets a wall-clock budget:
# a reintroduced quadratic scan in the config→plan front half blows
# far past it and fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bench/main.exe -- e11 --quick

E12_BUDGET_S=120
SECONDS=0
dune exec bench/main.exe -- e12 --quick
if (( SECONDS > E12_BUDGET_S )); then
  echo "check.sh: e12 --quick took ${SECONDS}s (budget ${E12_BUDGET_S}s)" >&2
  exit 1
fi
