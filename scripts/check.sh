#!/usr/bin/env bash
# Tier-1 gate: full build, full test suite, the engine-scale smoke
# runs (quick sweeps; they write BENCH_*_quick.json, never the
# committed trajectory files), the typed-error lint, and the example
# programs as end-to-end smokes.  The E12 smoke gets a wall-clock
# budget: a reintroduced quadratic scan in the config→plan front half
# blows far past it and fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

# -- typed-error lint ------------------------------------------------
# lib/ reports failure through Cloudless_error (stage tag + location),
# never bare failwith.  New offenders must be argued into the
# allowlist, not snuck past it.
allowlist=scripts/failwith_allowlist.txt
offenders=$(grep -rln 'failwith' lib/ --include='*.ml' --include='*.mli' | sort | while read -r f; do
  grep -qxF "$f" <(grep -v '^#' "$allowlist") || echo "$f"
done)
if [[ -n "$offenders" ]]; then
  echo "check.sh: bare failwith in lib/ outside $allowlist:" >&2
  echo "$offenders" >&2
  exit 1
fi

dune build @all
dune runtest
dune exec bench/main.exe -- e11 --quick

E12_BUDGET_S=120
SECONDS=0
dune exec bench/main.exe -- e12 --quick
if (( SECONDS > E12_BUDGET_S )); then
  echo "check.sh: e12 --quick took ${SECONDS}s (budget ${E12_BUDGET_S}s)" >&2
  exit 1
fi

# Kill-anywhere crash sweep: the quick run fails hard if the journaled
# engine leaves any orphan/duplicate/divergence or loses determinism.
dune exec bench/main.exe -- e13 --quick

# Multi-tenant service load: the quick run self-asserts the control
# plane's claims (per-deployment admission beats the global lock on
# p99, flat tailer drift latency, crash-resume with zero orphans,
# byte-deterministic metrics).  Budgeted: the whole sweep is simulated
# time, so a wall-clock blowout means an event-loop regression.
E14_BUDGET_S=60
SECONDS=0
dune exec bench/main.exe -- e14 --quick
if (( SECONDS > E14_BUDGET_S )); then
  echo "check.sh: e14 --quick took ${SECONDS}s (budget ${E14_BUDGET_S}s)" >&2
  exit 1
fi

# -- example smokes --------------------------------------------------
# Every example must run to completion: they are the executable
# documentation for the lifecycle facade and the EDSL.
for ex in quickstart lifecycle autoscaling import_refactor debugging pulumi_style; do
  echo "== examples/$ex"
  dune exec "examples/$ex.exe" > /dev/null
done
echo "check.sh: all gates passed"
