(** The infrastructure controller (§3.6): holds the policy set; at each
    lifecycle phase the caller provides the phase's observation context
    and, depending on the phase, either a plan (admission control) or a
    configuration (actions evolve the IaC program, which the caller
    then replans and redeploys — policies never touch the cloud
    directly). *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Smap = Value.Smap
module Plan = Cloudless_plan.Plan
module State = Cloudless_state.State

type t

val create : Policy.t list -> t

(** @raise Policy.Policy_error on malformed policy source. *)
val of_source : file:string -> string -> t

(** Notifications emitted so far, oldest first. *)
val notifications : t -> string list

type tick_result = {
  decisions : Policy.decision list;
  denied : string option;  (** first deny message, if any *)
  new_config : Hcl.Config.t option;  (** rewritten config, when it changed *)
}

(** Standard observations derivable from state + plan ([resource_count],
    [count_by_type], [hourly_cost], plan deltas and projected cost);
    harnesses extend via [extra]. *)
val standard_obs :
  ?state:State.t ->
  ?plan:Plan.t ->
  ?extra:(string * Value.t) list ->
  unit ->
  Policy.obs

(** Split ["type.name"] into [("type", "name")]. *)
val split_target : string -> string * string

(** Apply one decision to a configuration, returning the updated
    configuration and whether anything changed. *)
val apply_decision : Hcl.Config.t -> Policy.decision -> Hcl.Config.t * bool

(** Run all policies registered for [phase].  [config] is required for
    phases whose actions evolve the program; the result carries the
    rewritten configuration when any action changed it. *)
val tick :
  t -> phase:Policy.phase -> obs:Policy.obs -> ?config:Hcl.Config.t -> unit ->
  tick_result

(** (evaluations, fired) counters. *)
val stats : t -> int * int
