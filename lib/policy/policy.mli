(** The observation/action policy language (§3.6).

    A policy pairs *observations* (metrics, resource counts, drift
    events, cost — anything exposed at a given lifecycle phase) with
    *actions* (evolve the IaC program: change a count, set an
    attribute, deny a plan, notify), written in the same HCL the
    infrastructure uses. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Smap = Value.Smap

(** Lifecycle phase a policy is registered for. *)
type phase = On_plan | On_telemetry | On_drift | On_update

val phase_of_string : string -> phase option
val phase_to_string : phase -> string

type action_kind =
  | Set_count of { target : string; value : Hcl.Ast.expr }
      (** rewrite [count] of resource [target] ("type.name") *)
  | Set_attr of { target : string; attr : string; value : Hcl.Ast.expr }
  | Deny of { message : Hcl.Ast.expr }  (** reject the plan (admission) *)
  | Notify of { message : Hcl.Ast.expr }

type action = { aname : string; kind : action_kind }

type t = {
  pname : string;
  phase : phase;
  when_ : Hcl.Ast.expr;  (** guard over observations *)
  actions : action list;
  pspan : Hcl.Loc.span;
}

exception Policy_error of string * Hcl.Loc.span

(** Parse one [action "name" { ... }] block.  Shared with the wave
    subsystem's [change] blocks, which reuse the action vocabulary. *)
val parse_action : Hcl.Ast.block -> action

val parse_policy : Hcl.Ast.block -> t

(** Parse a policy file (a sequence of [policy "name" { ... }] blocks).
    @raise Policy_error on malformed blocks. *)
val parse : file:string -> string -> t list

(** Observation context: the [obs.*] namespace for one evaluation. *)
type obs = Value.t Smap.t

val obs_of_list : (string * Value.t) list -> obs

(** Rewrite surface [obs.x] references to [var.__obs.x] so the stock
    HCL evaluator handles them. *)
val rewrite_obs : Hcl.Ast.expr -> Hcl.Ast.expr

val eval_with_obs : obs -> Hcl.Ast.expr -> Value.t

(** Does the policy fire under these observations?  A guard that
    references an observation the current phase does not provide
    simply does not fire. *)
val triggered : t -> obs -> bool

(** A concrete decision produced by a fired policy. *)
type decision =
  | D_set_count of { target : string; count : int }
  | D_set_attr of { target : string; attr : string; value : Value.t }
  | D_deny of string
  | D_notify of string

val decision_to_string : decision -> string

(** Evaluate a fired policy's actions. *)
val decide : t -> obs -> decision list
