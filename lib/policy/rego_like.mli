(** A deliberately-restricted baseline policy engine modelling today's
    assertion checkers (Terrascan/Checkov-style, §3.6): deny-only, no
    runtime telemetry, fixed predicate vocabulary over resource
    attributes.  The wave subsystem reuses the predicate vocabulary for
    its between-wave policy gates. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Smap = Value.Smap
module Eval = Hcl.Eval

type predicate =
  | Attr_equals of { rtype : string; attr : string; value : Value.t }
  | Attr_present of { rtype : string; attr : string }
  | Attr_absent of { rtype : string; attr : string }
  | Type_forbidden of string
  | Count_at_most of { rtype : string; limit : int }

type check = { cname : string; predicate : predicate; deny_message : string }

type violation = {
  vcheck : string;
  vaddr : Hcl.Addr.t option;
  vmessage : string;
}

val eval_check : Eval.instance list -> check -> violation list

(** Evaluate all checks; any violation denies the plan. *)
val evaluate : check list -> Eval.instance list -> violation list
