(** Validation diagnostics — re-exported from the base error library;
    the same {!Cloudless_error.Diagnostic} type now spans the whole
    lifecycle (validation, planning, deployment, state IO, policy). *)

include Cloudless_error.Diagnostic
