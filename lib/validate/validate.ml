(** The staged validation pipeline (§3.2).

    Four stages, each catching strictly more than stock tooling:

    1. {b Syntax}: lexing/parsing/structural errors — what [terraform
       validate] catches today.
    2. {b References}: every [var.x] / [aws_vpc.y] / [module.z]
       reference must resolve to a declaration.
    3. {b Types}: attributes checked against the knowledge base's
       semantic types (wrong-type resource references, bad CIDRs,
       unknown regions, missing required attributes).
    4. {b Cloud rules}: cross-resource cloud-level constraints
       (VM/NIC same region, peering overlaps, ...).

    Experiment E6 measures the misconfiguration catch rate of each
    prefix of this pipeline. *)

module Hcl = Cloudless_hcl
module Schema = Cloudless_schema
module Trace = Cloudless_obs.Trace
module Smap = Hcl.Value.Smap
module Sset = Set.Make (String)

module Pset = Set.Make (struct
  type t = string * string

  let compare = Stdlib.compare
end)

type level = L_syntax | L_references | L_types | L_cloud

let level_includes level stage =
  let rank = function
    | L_syntax -> 0
    | L_references -> 1
    | L_types -> 2
    | L_cloud -> 3
  in
  let stage_rank = function
    | Diagnostic.Syntax -> 0
    | Diagnostic.References -> 1
    | Diagnostic.Types -> 2
    | Diagnostic.Cloud_rules | Diagnostic.Mined -> 3
    (* engine stages never originate in the validator; deepest rank *)
    | Diagnostic.Plan_stage | Diagnostic.Deploy | Diagnostic.State_io
    | Diagnostic.Policy | Diagnostic.Internal ->
        3
  in
  stage_rank stage <= rank level

(* ------------------------------------------------------------------ *)
(* Stage 2: reference checking                                         *)
(* ------------------------------------------------------------------ *)

let check_references (cfg : Hcl.Config.t) : Diagnostic.t list =
  (* declared-name sets are built once, so each reference resolves in
     O(log d) instead of a List.mem scan over every declaration *)
  let declared_vars =
    Sset.of_list (List.map (fun v -> v.Hcl.Config.vname) cfg.variables)
  in
  let declared_locals = Sset.of_list (List.map fst cfg.locals) in
  let declared_resources =
    Pset.of_list
      (List.map (fun r -> (r.Hcl.Config.rtype, r.Hcl.Config.rname)) cfg.resources)
  in
  let declared_data =
    Pset.of_list
      (List.map
         (fun d -> (d.Hcl.Config.dtype, d.Hcl.Config.dname))
         cfg.data_sources)
  in
  let declared_modules =
    Sset.of_list (List.map (fun m -> m.Hcl.Config.mname) cfg.modules)
  in
  let check_targets ~where span targets =
    List.filter_map
      (fun t ->
        let issue code msg =
          Some (Diagnostic.make ~stage:Diagnostic.References ~code ~span msg)
        in
        match t with
        | Hcl.Refs.Tvar x when not (Sset.mem x declared_vars) ->
            issue "undeclared-variable"
              (Printf.sprintf "%s references undeclared variable var.%s" where x)
        | Hcl.Refs.Tlocal x when not (Sset.mem x declared_locals) ->
            issue "undeclared-local"
              (Printf.sprintf "%s references undeclared local.%s" where x)
        | Hcl.Refs.Tresource (ty, n) when not (Pset.mem (ty, n) declared_resources)
          ->
            issue "undeclared-resource"
              (Printf.sprintf "%s references undeclared resource %s.%s" where ty n)
        | Hcl.Refs.Tdata (ty, n) when not (Pset.mem (ty, n) declared_data) ->
            issue "undeclared-data"
              (Printf.sprintf "%s references undeclared data.%s.%s" where ty n)
        | Hcl.Refs.Tmodule (m, _) when not (Sset.mem m declared_modules) ->
            issue "undeclared-module"
              (Printf.sprintf "%s references undeclared module.%s" where m)
        | _ -> None)
      targets
  in
  let resource_diags =
    List.concat_map
      (fun (r : Hcl.Config.resource) ->
        let where = Printf.sprintf "%s.%s" r.rtype r.rname in
        check_targets ~where r.rspan
          (Hcl.Refs.of_body r.rbody
          @ (match r.rcount with Some e -> Hcl.Refs.of_expr e | None -> [])
          @
          match r.rfor_each with Some e -> Hcl.Refs.of_expr e | None -> []))
      cfg.resources
  in
  let local_diags =
    List.concat_map
      (fun (name, e) ->
        check_targets ~where:("local." ^ name) Hcl.Loc.dummy (Hcl.Refs.of_expr e))
      cfg.locals
  in
  let output_diags =
    List.concat_map
      (fun (o : Hcl.Config.output) ->
        check_targets ~where:("output." ^ o.oname) o.ospan
          (Hcl.Refs.of_expr o.ovalue))
      cfg.outputs
  in
  let module_diags =
    List.concat_map
      (fun (m : Hcl.Config.module_call) ->
        List.concat_map
          (fun (_, e) ->
            check_targets ~where:("module." ^ m.mname) m.mspan
              (Hcl.Refs.of_expr e))
          m.margs)
      cfg.modules
  in
  resource_diags @ local_diags @ output_diags @ module_diags

(* ------------------------------------------------------------------ *)
(* Stage 3: schema / semantic type checking over expanded instances    *)
(* ------------------------------------------------------------------ *)

let check_types (instances : Hcl.Eval.instance list) : Diagnostic.t list =
  List.concat_map
    (fun (i : Hcl.Eval.instance) ->
      let rtype = i.Hcl.Eval.addr.Hcl.Addr.rtype in
      match Schema.Catalog.find rtype with
      | None ->
          [
            Diagnostic.make ~severity:Diagnostic.Warning ~stage:Diagnostic.Types
              ~code:"unknown-resource-type" ~span:i.Hcl.Eval.ispan
              ~addr:i.Hcl.Eval.addr
              (Printf.sprintf "resource type %S is not in the knowledge base"
                 rtype);
          ]
      | Some schema ->
          let missing_required =
            Schema.Resource_schema.required_attrs schema
            |> List.filter_map (fun (a : Schema.Resource_schema.attr) ->
                   match Smap.find_opt a.aname i.Hcl.Eval.attrs with
                   | Some v when v <> Hcl.Value.Vnull -> None
                   | _ ->
                       Some
                         (Diagnostic.make ~stage:Diagnostic.Types
                            ~code:"missing-required" ~span:i.Hcl.Eval.ispan
                            ~addr:i.Hcl.Eval.addr
                            (Printf.sprintf
                               "required attribute %S is not set" a.aname)))
          in
          let attr_diags =
            Smap.bindings i.Hcl.Eval.attrs
            |> List.concat_map (fun (name, v) ->
                   match Schema.Resource_schema.find_attr schema name with
                   | None ->
                       [
                         Diagnostic.make ~severity:Diagnostic.Warning
                           ~stage:Diagnostic.Types ~code:"unknown-attribute"
                           ~span:i.Hcl.Eval.ispan ~addr:i.Hcl.Eval.addr
                           (Printf.sprintf
                              "attribute %S is not part of %s's schema" name
                              rtype);
                       ]
                   | Some a -> (
                       if a.computed then
                         (* users setting computed attrs is suspicious
                            but happens in imported configs *)
                         []
                       else
                         match Schema.Semantic_type.check a.aty v with
                         | Ok () -> []
                         | Error msg ->
                             [
                               Diagnostic.make ~stage:Diagnostic.Types
                                 ~code:"type-mismatch" ~span:i.Hcl.Eval.ispan
                                 ~addr:i.Hcl.Eval.addr
                                 (Printf.sprintf "%s: %s" name msg);
                             ]))
          in
          missing_required @ attr_diags)
    instances

(* ------------------------------------------------------------------ *)
(* Stage 4: cloud-level cross-resource rules                           *)
(* ------------------------------------------------------------------ *)

let check_cloud_rules (instances : Hcl.Eval.instance list) : Diagnostic.t list =
  Schema.Rules.check_all instances
  |> List.map (fun (v : Schema.Rules.violation) ->
         Diagnostic.make ~stage:Diagnostic.Cloud_rules ~code:v.rule_id
           ~span:v.span ~addr:v.addr v.message)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

type report = {
  diagnostics : Diagnostic.t list;
  expansion : Hcl.Eval.expansion_result option;
      (** available when syntax+references+expansion succeeded *)
}

let ok report = Diagnostic.count_errors report.diagnostics = 0

let count_diags trace diags =
  Trace.count trace "diagnostics" (List.length diags);
  Trace.count trace "errors" (Diagnostic.count_errors diags)

(** Validate a configuration (already parsed).  With a live [trace],
    the pipeline runs in a ["validate"] span counting the diagnostics
    (total and errors) it produced. *)
let validate_config ?(level = L_cloud) ?(env = Hcl.Eval.default_env)
    ?(vars = Smap.empty) ?(trace = Trace.null) (cfg : Hcl.Config.t) : report =
  Trace.with_span trace "validate" @@ fun () ->
  let finish report =
    count_diags trace report.diagnostics;
    report
  in
  finish
  @@
  let ref_diags =
    if level_includes level Diagnostic.References then check_references cfg
    else []
  in
  (* If references are broken, expansion would raise; stop here. *)
  if List.exists Diagnostic.is_error ref_diags then
    { diagnostics = ref_diags; expansion = None }
  else
    match Hcl.Eval.expand ~env ~vars cfg with
    | exception Hcl.Eval.Eval_error (msg, span) ->
        (* expansion failures are reference-stage findings; at the
           syntax-only level they are out of scope *)
        let diag =
          if level_includes level Diagnostic.References then
            [
              Diagnostic.make ~stage:Diagnostic.References ~code:"eval-error"
                ~span msg;
            ]
          else []
        in
        { diagnostics = ref_diags @ diag; expansion = None }
    | expansion ->
        let type_diags =
          if level_includes level Diagnostic.Types then
            check_types expansion.Hcl.Eval.instances
          else []
        in
        let rule_diags =
          if level_includes level Diagnostic.Cloud_rules then
            check_cloud_rules expansion.Hcl.Eval.instances
          else []
        in
        {
          diagnostics = ref_diags @ type_diags @ rule_diags;
          expansion = Some expansion;
        }

(** Syntax-stage diagnostic for a frontend exception, if it is one.
    Shared by {!validate_source} and the engine boundary. *)
let diagnostic_of_frontend_exn = function
  | Hcl.Lexer.Error (msg, span) ->
      Some (Diagnostic.make ~stage:Diagnostic.Syntax ~code:"lex-error" ~span msg)
  | Hcl.Parser.Error (msg, span) ->
      Some
        (Diagnostic.make ~stage:Diagnostic.Syntax ~code:"parse-error" ~span msg)
  | Hcl.Config.Config_error (msg, span) ->
      Some
        (Diagnostic.make ~stage:Diagnostic.Syntax ~code:"structure-error" ~span
           msg)
  | Hcl.Eval.Eval_error (msg, span) ->
      Some
        (Diagnostic.make ~stage:Diagnostic.References ~code:"eval-error" ~span
           msg)
  | _ -> None

(** Validate source text end to end. *)
let validate_source ?(level = L_cloud) ?(env = Hcl.Eval.default_env)
    ?(vars = Smap.empty) ?(trace = Trace.null) ~file src : report =
  match Hcl.Config.parse ~file src with
  | cfg -> validate_config ~level ~env ~vars ~trace cfg
  | exception
      ((Hcl.Lexer.Error _ | Hcl.Parser.Error _ | Hcl.Config.Config_error _) as e)
    ->
      let report =
        {
          diagnostics = [ Option.get (diagnostic_of_frontend_exn e) ];
          expansion = None;
        }
      in
      Trace.with_span trace "validate" (fun () ->
          count_diags trace report.diagnostics;
          report)

(** Check instances against previously mined specifications (§3.6
    outlier detection) and convert deviations to diagnostics. *)
let check_mined_specs specs (instances : Hcl.Eval.instance list) :
    Diagnostic.t list =
  Schema.Mining.check_deviations specs instances
  |> List.map (fun (d : Schema.Mining.deviation) ->
         Diagnostic.make ~severity:Diagnostic.Warning ~stage:Diagnostic.Mined
           ~code:"spec-deviation" ~addr:d.daddr
           (Schema.Mining.deviation_to_string d))
