(* See metrics.mli.  Design constraints that shape the implementation:

   - Deterministic export: the control-plane benchmark asserts that two
     identical runs produce byte-identical snapshots, so every number
     here must derive from the simulated timeline (values recorded,
     simulated timestamps), never from wall clocks, and [to_json] must
     emit metrics and labels in a canonical (sorted) order with exact
     float round-trip ([Trace.float_lit]).

   - Cheap hot path: [inc]/[observe] on the service event loop are a
     hashtable probe plus an array write; percentile sorting happens
     only at snapshot time. *)

type hist = {
  mutable samples : float array;
  mutable len : int;
  mutable sum : float;
}

type metric =
  | Counter of { mutable count : int }
  | Gauge of { mutable last : float; mutable max : float; mutable set : bool }
  | Histogram of hist

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let mismatch name m want =
  raise
    (Invalid_argument
       (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name m) want))

let inc t ?(by = 1) name =
  match Hashtbl.find_opt t.table name with
  | None -> Hashtbl.replace t.table name (Counter { count = by })
  | Some (Counter c) -> c.count <- c.count + by
  | Some m -> mismatch name m "counter"

let set t name v =
  match Hashtbl.find_opt t.table name with
  | None -> Hashtbl.replace t.table name (Gauge { last = v; max = v; set = true })
  | Some (Gauge g) ->
      g.last <- v;
      if (not g.set) || v > g.max then g.max <- v;
      g.set <- true
  | Some m -> mismatch name m "gauge"

let observe t name v =
  match Hashtbl.find_opt t.table name with
  | None ->
      let h = { samples = Array.make 16 0.; len = 1; sum = v } in
      h.samples.(0) <- v;
      Hashtbl.replace t.table name (Histogram h)
  | Some (Histogram h) ->
      if h.len = Array.length h.samples then begin
        let bigger = Array.make (2 * h.len) 0. in
        Array.blit h.samples 0 bigger 0 h.len;
        h.samples <- bigger
      end;
      h.samples.(h.len) <- v;
      h.len <- h.len + 1;
      h.sum <- h.sum +. v
  | Some m -> mismatch name m "histogram"

let counter t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c.count
  | None -> 0
  | Some m -> mismatch name m "counter"

let gauge t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) when g.set -> Some g.last
  | Some (Gauge _) | None -> None
  | Some m -> mismatch name m "gauge"

let sorted_samples h =
  let a = Array.sub h.samples 0 h.len in
  Array.sort compare a;
  a

(* Nearest-rank percentile over the recorded samples (no
   interpolation): p99 of 200 samples is the 198th order statistic. *)
let rank p n = min (n - 1) (max 0 (int_of_float (ceil (p /. 100. *. float n)) - 1))

let percentile t name p =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) when h.len > 0 ->
      let a = sorted_samples h in
      Some a.(rank p h.len)
  | Some (Histogram _) | None -> None
  | Some m -> mismatch name m "histogram"

let histogram_count t name =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> h.len
  | None -> 0
  | Some m -> mismatch name m "histogram"

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Label scopes                                                        *)
(* ------------------------------------------------------------------ *)

(* A scope is a recording handle that writes each signal twice: once
   under the bare name (the fleet-wide series) and once under
   "name.<label>" (the per-shard breakdown).  An unlabeled scope writes
   the bare name only, so shared code records through a scope without
   the single-loop callers paying for (or emitting) labels. *)
type scope = { st : t; label : string option }

let scoped t label = { st = t; label }
let unscoped t = { st = t; label = None }

let labelled s name =
  match s.label with None -> None | Some l -> Some (name ^ "." ^ l)

let scope_inc s ?(by = 1) name =
  inc s.st ~by name;
  match labelled s name with None -> () | Some n -> inc s.st ~by n

let scope_set s name v =
  set s.st name v;
  match labelled s name with None -> () | Some n -> set s.st n v

let scope_observe s name v =
  observe s.st name v;
  match labelled s name with None -> () | Some n -> observe s.st n v

let scope_metrics s = s.st
let scope_label s = s.label

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                       *)
(* ------------------------------------------------------------------ *)

let kv k v = Printf.sprintf "\"%s\":%s" (Trace.json_escape k) v

let metric_to_json = function
  | Counter c -> Printf.sprintf "{\"type\":\"counter\",\"count\":%d}" c.count
  | Gauge g ->
      if g.set then
        Printf.sprintf "{\"type\":\"gauge\",\"last\":%s,\"max\":%s}"
          (Trace.float_lit g.last) (Trace.float_lit g.max)
      else "{\"type\":\"gauge\"}"
  | Histogram h ->
      if h.len = 0 then "{\"type\":\"histogram\",\"count\":0}"
      else begin
        let a = sorted_samples h in
        let pct p = Trace.float_lit a.(rank p h.len) in
        Printf.sprintf
          "{\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
          h.len
          (Trace.float_lit h.sum)
          (Trace.float_lit a.(0))
          (Trace.float_lit a.(h.len - 1))
          (pct 50.) (pct 90.) (pct 99.)
      end

let to_json t =
  let fields =
    List.map (fun n -> kv n (metric_to_json (Hashtbl.find t.table n))) (names t)
  in
  "{\n  " ^ String.concat ",\n  " fields ^ "\n}\n"

let write_json t ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))
