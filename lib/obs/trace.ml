(** Stage tracing for the engine run-context.

    A {!t} is a lightweight tracer every lifecycle layer shares.  Each
    stage runs inside a {b span} ({!with_span}) carrying:

    - the stage name and nesting depth,
    - simulated-clock start/end (the cloud's discrete-event time) and
      wall-clock start/end (the engine's own overhead),
    - named integer counters ([api_calls], [throttled], [retries],
      [refresh_reads], ...) bumped by whichever layer owns the number
      via {!count} — the simulator counts API calls, the executor
      counts retries, the planner counts changes,
    - free-form [meta] key/value annotations.

    Spans are delivered to a pluggable sink when they end (children
    before parents, begin order recoverable from [seq]).  Three sinks
    ship: {!null} (disabled, zero allocation on the hot path),
    {!memory_sink} (tests, benchmarks) and the JSONL renderer
    ({!write_jsonl} / {!read_jsonl} round-trip, the CLI's [--trace]
    output). *)

type span = {
  name : string;
  seq : int;  (** begin order, 0-based, unique per tracer *)
  depth : int;  (** nesting depth at begin (0 = top-level verb) *)
  sim_start : float;
  mutable sim_end : float;
  wall_start : float;
  mutable wall_end : float;
  counters : (string, int) Hashtbl.t;
  mutable meta : (string * string) list;
}

type sink = span -> unit

type t = {
  mutable sim_clock : unit -> float;
  wall_clock : unit -> float;
  sink : sink option;  (** [None] = tracing disabled *)
  mutable stack : span list;  (** innermost first *)
  mutable next_seq : int;
}

let disabled_tracer =
  {
    sim_clock = (fun () -> 0.);
    wall_clock = (fun () -> 0.);
    sink = None;
    stack = [];
    next_seq = 0;
  }

(** The no-op tracer: spans are not recorded, counters vanish. *)
let null = disabled_tracer

let enabled t = t.sink <> None

(** [create ~sim_clock sink] makes a live tracer.  [sim_clock] should
    read the simulated cloud's clock (default: constant 0, for flows
    with no simulator). *)
let create ?(sim_clock = fun () -> 0.) ?(wall_clock = Unix.gettimeofday) sink =
  { sim_clock; wall_clock; sink = Some sink; stack = []; next_seq = 0 }

(** Point the tracer at a live simulated clock.  The cloud is usually
    created after the tracer, so {!Cloud.set_trace} calls this to make
    subsequent spans carry discrete-event timestamps. *)
let set_sim_clock t clock = if enabled t then t.sim_clock <- clock

(** A sink that accumulates spans in memory; the second component
    returns them in emission order (end order). *)
let memory_sink () =
  let acc = ref [] in
  ((fun s -> acc := s :: !acc), fun () -> List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

(** Bump counter [key] by [n] on the innermost active span.  No-op when
    tracing is disabled or no span is open — layers call this
    unconditionally. *)
let count t key n =
  match t.stack with
  | [] -> ()
  | span :: _ ->
      Hashtbl.replace span.counters key
        (n + Option.value ~default:0 (Hashtbl.find_opt span.counters key))

(** Annotate the innermost active span. *)
let meta t key value =
  match t.stack with
  | [] -> ()
  | span :: _ -> span.meta <- (key, value) :: List.remove_assoc key span.meta

(** Run [f] inside a span named [name].  The span is emitted to the
    sink when [f] returns {i or raises} — a failing stage still leaves
    its timing and counters in the trace. *)
let with_span t ?(meta = []) name f =
  match t.sink with
  | None -> f ()
  | Some emit ->
      let span =
        {
          name;
          seq = t.next_seq;
          depth = List.length t.stack;
          sim_start = t.sim_clock ();
          sim_end = nan;
          wall_start = t.wall_clock ();
          wall_end = nan;
          counters = Hashtbl.create 8;
          meta;
        }
      in
      t.next_seq <- t.next_seq + 1;
      t.stack <- span :: t.stack;
      let finish () =
        span.sim_end <- t.sim_clock ();
        span.wall_end <- t.wall_clock ();
        (match t.stack with
        | s :: rest when s == span -> t.stack <- rest
        | _ -> t.stack <- List.filter (fun s -> not (s == span)) t.stack);
        emit span
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          span.meta <- ("error", Printexc.to_string e) :: span.meta;
          finish ();
          raise e)

(** Emit a span for {e asynchronous} work that began at simulated time
    [sim_start] and is finishing now.  {!with_span} models a call
    stack, which event-loop work (many interleaved units of work in
    flight at once) cannot use; the control plane records each
    completed unit of work through this instead.  The span is emitted
    at depth 0 with the given counters and meta; wall times both read
    the wall clock at emission (async work has no meaningful exclusive
    wall interval). *)
let emit_span t ?(meta = []) ?(counters = []) ~sim_start name =
  match t.sink with
  | None -> ()
  | Some emit ->
      let tbl = Hashtbl.create (max 8 (List.length counters)) in
      List.iter
        (fun (k, n) ->
          Hashtbl.replace tbl k
            (n + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        counters;
      let wall = t.wall_clock () in
      let span =
        {
          name;
          seq = t.next_seq;
          depth = 0;
          sim_start;
          sim_end = t.sim_clock ();
          wall_start = wall;
          wall_end = wall;
          counters = tbl;
          meta;
        }
      in
      t.next_seq <- t.next_seq + 1;
      emit span

let counter span key =
  Option.value ~default:0 (Hashtbl.find_opt span.counters key)

let counters span =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) span.counters []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* JSONL rendering                                                     *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips every float through float_of_string exactly. *)
let float_lit f =
  if Float.is_nan f then "null" else Printf.sprintf "%.17g" f

(** One span as a single-line JSON object (the JSONL record). *)
let span_to_json s =
  let kv_int k v = Printf.sprintf "\"%s\":%d" k v in
  let kv_str k v = Printf.sprintf "\"%s\":\"%s\"" k (json_escape v) in
  let kv_float k v = Printf.sprintf "\"%s\":%s" k (float_lit v) in
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  obj
    [
      kv_int "seq" s.seq;
      kv_str "name" s.name;
      kv_int "depth" s.depth;
      kv_float "sim_start" s.sim_start;
      kv_float "sim_end" s.sim_end;
      kv_float "wall_start" s.wall_start;
      kv_float "wall_end" s.wall_end;
      Printf.sprintf "\"counters\":%s"
        (obj (List.map (fun (k, v) -> kv_int k v) (counters s)));
      Printf.sprintf "\"meta\":%s"
        (obj
           (List.map
              (fun (k, v) -> kv_str k v)
              (List.sort compare s.meta)));
    ]

let spans_to_jsonl spans =
  String.concat "" (List.map (fun s -> span_to_json s ^ "\n") spans)

(** A sink that appends each finished span to [path] as one JSON line.
    Returns the sink and a [close] function flushing the file. *)
let jsonl_file_sink path =
  let oc = open_out_bin path in
  ( (fun span ->
      output_string oc (span_to_json span);
      output_char oc '\n'),
    fun () -> close_out oc )

(* ---- minimal JSON reader for the flat span schema ----------------- *)

exception Parse_error of string

type json =
  | Jnull
  | Jnum of float
  | Jstr of string
  | Jobj of (string * json) list

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while !pos < len && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* spans only escape control chars; no surrogate pairs *)
              Buffer.add_char buf (Char.chr (code land 0xff));
              go ()
          | Some c -> advance (); Buffer.add_char buf c; go ()
          | None -> fail "unterminated escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < len
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '"' -> Jstr (parse_string ())
    | Some 'n' ->
        if !pos + 4 <= len && String.sub s !pos 4 = "null" then begin
          pos := !pos + 4;
          Jnull
        end
        else fail "bad literal"
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Jobj []
    end
    else begin
      let rec fields acc =
        let key = (skip_ws (); parse_string ()) in
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
        | Some '}' ->
            advance ();
            Jobj (List.rev ((key, v) :: acc))
        | _ -> fail "expected , or }"
      in
      fields []
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing input";
  v

(** Parse one JSONL record back into a span (inverse of
    {!span_to_json}; raises {!Parse_error} on malformed input). *)
let span_of_json line =
  let fields =
    match parse_json line with
    | Jobj fields -> fields
    | _ -> raise (Parse_error "span record must be an object")
  in
  let find k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> raise (Parse_error ("missing field " ^ k))
  in
  let num k =
    match find k with
    | Jnum f -> f
    | Jnull -> nan
    | _ -> raise (Parse_error (k ^ " must be a number"))
  in
  let str k =
    match find k with
    | Jstr s -> s
    | _ -> raise (Parse_error (k ^ " must be a string"))
  in
  let counters = Hashtbl.create 8 in
  (match find "counters" with
  | Jobj kvs ->
      List.iter
        (fun (k, v) ->
          match v with
          | Jnum f -> Hashtbl.replace counters k (int_of_float f)
          | _ -> raise (Parse_error "counter must be a number"))
        kvs
  | _ -> raise (Parse_error "counters must be an object"));
  let meta =
    match find "meta" with
    | Jobj kvs ->
        List.map
          (fun (k, v) ->
            match v with
            | Jstr s -> (k, s)
            | _ -> raise (Parse_error "meta value must be a string"))
          kvs
    | _ -> raise (Parse_error "meta must be an object")
  in
  {
    name = str "name";
    seq = int_of_float (num "seq");
    depth = int_of_float (num "depth");
    sim_start = num "sim_start";
    sim_end = num "sim_end";
    wall_start = num "wall_start";
    wall_end = num "wall_end";
    counters;
    meta;
  }

let spans_of_jsonl text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map span_of_json

let write_jsonl ~path spans =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (spans_to_jsonl spans))

let read_jsonl ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> spans_of_jsonl (really_input_string ic (in_channel_length ic)))
