(** Stage tracing for the engine run-context.

    A {!t} is a lightweight tracer every lifecycle layer shares.  Each
    stage runs inside a {b span} ({!with_span}) carrying the stage
    name, nesting depth, simulated-clock and wall-clock start/end,
    named integer counters, and free-form metadata.  Spans are
    delivered to a pluggable {!sink} when they end (children before
    parents; begin order is recoverable from [seq]).  Three sinks
    ship: {!null} (disabled, zero allocation on the hot path),
    {!memory_sink} (tests, benchmarks) and the JSONL renderer
    ({!write_jsonl} / {!read_jsonl}, the CLI's [--trace] output). *)

type span = {
  name : string;
  seq : int;  (** begin order, 0-based, unique per tracer *)
  depth : int;  (** nesting depth at begin (0 = top-level verb) *)
  sim_start : float;
  mutable sim_end : float;
  wall_start : float;
  mutable wall_end : float;
  counters : (string, int) Hashtbl.t;
  mutable meta : (string * string) list;
}

type sink = span -> unit

(** A tracer.  Abstract: mutate it only through {!set_sim_clock},
    {!with_span}, {!emit_span}, {!count} and {!meta}. *)
type t

(** The no-op tracer: spans are not recorded, counters vanish. *)
val null : t

val enabled : t -> bool

(** [create ~sim_clock sink] makes a live tracer.  [sim_clock] should
    read the simulated cloud's clock (default: constant 0, for flows
    with no simulator); [wall_clock] defaults to
    [Unix.gettimeofday]. *)
val create :
  ?sim_clock:(unit -> float) -> ?wall_clock:(unit -> float) -> sink -> t

(** Point the tracer at a live simulated clock.  The cloud is usually
    created after the tracer, so [Cloud.set_trace] calls this to make
    subsequent spans carry discrete-event timestamps. *)
val set_sim_clock : t -> (unit -> float) -> unit

(** A sink that accumulates spans in memory; the second component
    returns them in emission order (end order). *)
val memory_sink : unit -> sink * (unit -> span list)

(** Bump counter [key] by [n] on the innermost active span.  No-op when
    tracing is disabled or no span is open — layers call this
    unconditionally. *)
val count : t -> string -> int -> unit

(** Annotate the innermost active span. *)
val meta : t -> string -> string -> unit

(** Run [f] inside a span named [name].  The span is emitted to the
    sink when [f] returns {i or raises} — a failing stage still leaves
    its timing and counters in the trace. *)
val with_span : t -> ?meta:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Emit a span for {e asynchronous} work that began at simulated time
    [sim_start] and is finishing now.  {!with_span} models a call
    stack, which event-loop work (many interleaved units of work in
    flight at once) cannot use; the control plane records each
    completed unit of work through this instead.  Emitted at depth 0;
    both wall times read the wall clock at emission. *)
val emit_span :
  t ->
  ?meta:(string * string) list ->
  ?counters:(string * int) list ->
  sim_start:float ->
  string ->
  unit

(** Counter [key] of a finished span (0 when never bumped). *)
val counter : span -> string -> int

(** All counters of a span, sorted by name. *)
val counters : span -> (string * int) list

(* ------------------------------------------------------------------ *)
(* JSONL rendering                                                     *)
(* ------------------------------------------------------------------ *)

(** Escape a string for inclusion in a JSON string literal. *)
val json_escape : string -> string

(** Render a float so [float_of_string] round-trips it exactly
    ([%.17g]); NaN renders as [null]. *)
val float_lit : float -> string

(** One span as a single-line JSON object (the JSONL record). *)
val span_to_json : span -> string

val spans_to_jsonl : span list -> string

(** A sink that appends each finished span to [path] as one JSON line.
    Returns the sink and a [close] function flushing the file. *)
val jsonl_file_sink : string -> sink * (unit -> unit)

exception Parse_error of string

(** Minimal JSON for the flat span schema (also reused by the
    deployment journal's reader). *)
type json = Jnull | Jnum of float | Jstr of string | Jobj of (string * json) list

(** Parse one JSON value; raises {!Parse_error} on malformed input. *)
val parse_json : string -> json

(** Parse one JSONL record back into a span (inverse of
    {!span_to_json}; raises {!Parse_error} on malformed input). *)
val span_of_json : string -> span

val spans_of_jsonl : string -> span list
val write_jsonl : path:string -> span list -> unit
val read_jsonl : path:string -> span list
