(** A small metrics registry for long-running services.

    The control plane records its operational signals here — work-queue
    depth, lock waits, per-tenant API calls, request latency — as three
    metric kinds keyed by name:

    - {b counters} ({!inc}): monotone event counts,
    - {b gauges} ({!set}): last-written value plus the high-water mark,
    - {b histograms} ({!observe}): raw sample sets with nearest-rank
      percentiles computed at read time.

    Metrics are created on first touch; touching a name with the wrong
    kind raises [Invalid_argument] (a programming error, not an
    operational condition).  Per-tenant/per-deployment breakdowns are
    encoded in the name (["api_calls.tenant3"]) — the registry itself
    is label-free.

    Snapshots ({!to_json}) are canonical: names sorted, floats
    rendered with the exact-round-trip literal ({!Trace.float_lit}).
    Feed only simulated-time-derived values and two identical runs
    produce byte-identical snapshots — the E14 benchmark asserts
    exactly that. *)

type t

val create : unit -> t

(** Bump counter [name] by [by] (default 1). *)
val inc : t -> ?by:int -> string -> unit

(** Set gauge [name], tracking the maximum ever set. *)
val set : t -> string -> float -> unit

(** Record one sample into histogram [name]. *)
val observe : t -> string -> float -> unit

(** Current counter value (0 when never bumped). *)
val counter : t -> string -> int

(** Last value set on the gauge, if any. *)
val gauge : t -> string -> float option

(** Nearest-rank percentile [p] (in 0..100) of the recorded samples;
    [None] when no sample was observed. *)
val percentile : t -> string -> float -> float option

(** Number of samples recorded into the histogram. *)
val histogram_count : t -> string -> int

(** All metric names, sorted. *)
val names : t -> string list

(** A labeled recording handle.  Writing through a scope built with
    [scoped t (Some "shard0")] records each signal twice: under the
    bare name (the fleet-wide series) and under ["name.shard0"] (the
    per-shard breakdown).  An unlabeled scope ({!unscoped}, or
    [scoped t None]) records the bare name only, so shared code can
    always go through a scope and single-instance callers emit exactly
    what they did before labels existed. *)
type scope

val scoped : t -> string option -> scope
val unscoped : t -> scope
val scope_inc : scope -> ?by:int -> string -> unit
val scope_set : scope -> string -> float -> unit
val scope_observe : scope -> string -> float -> unit

(** The registry behind the scope. *)
val scope_metrics : scope -> t

(** The scope's label, if any. *)
val scope_label : scope -> string option

(** The canonical snapshot: one JSON object, names sorted, counters as
    [{type,count}], gauges as [{type,last,max}], histograms as
    [{type,count,sum,min,max,p50,p90,p99}]. *)
val to_json : t -> string

val write_json : t -> path:string -> unit
