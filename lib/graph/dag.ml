(** Resource dependency DAG.

    The central data structure of IaC planning (§2.1): nodes are
    resource instances addressed by {!Cloudless_hcl.Addr.t}, edges point
    from a resource to the resources it depends on.  Supports the
    analyses §3.3 calls for: stable topological order, parallel levels,
    critical-path extraction under a duration model, and impact-scope
    slicing for incremental updates. *)

module Addr = Cloudless_hcl.Addr

(** The compiled (interned) form of a graph's topology: node ids are
    insertion indices minted by one {!Intern} table, adjacency is flat
    int arrays in ascending-address order (the order [Addr.Set.iter]
    walks), so every traversal below runs on array reads instead of
    polymorphic-compare tree walks.  Built lazily, cached per value;
    the functional constructors hand out fresh records so a stale
    cache can never be observed.

    [sched] is the Kahn rounds in flat form: [s_order] is the full
    topological order, [s_order.(s_offsets.(k)) ..
    s_order.(s_offsets.(k+1)-1)] is round k (ascending ids = insertion
    order within the round), and [s_offsets.(s_rounds)] is the number
    of nodes processed. *)
type sched = { s_order : int array; s_offsets : int array; s_rounds : int }

type flat = {
  f_intern : Intern.t;  (** id = insertion index of the node *)
  f_deps : int array array;  (** ascending-address order per node *)
  f_rdeps : int array array;
  mutable f_sched : sched option;  (** cached Kahn rounds *)
}

type 'a t = {
  payloads : 'a Addr.Map.t;
  deps : Addr.Set.t Addr.Map.t;  (** node -> nodes it depends on *)
  rdeps : Addr.Set.t Addr.Map.t;  (** node -> nodes depending on it *)
  order : Addr.t list;  (** insertion order, for stable iteration *)
  mutable rounds_memo : Addr.t list list option;
      (** cached Kahn rounds (= parallel levels); reset by any
          topology-changing constructor so [topo_sort], [levels],
          [depth] and [max_width] share one traversal *)
  mutable flat_memo : flat option;
      (** cached compiled topology; same invalidation discipline *)
}

exception Cycle of Addr.t list

let empty =
  {
    payloads = Addr.Map.empty;
    deps = Addr.Map.empty;
    rdeps = Addr.Map.empty;
    order = [];
    rounds_memo = None;
    flat_memo = None;
  }

let mem t addr = Addr.Map.mem addr t.payloads
let find_opt t addr = Addr.Map.find_opt addr t.payloads
let size t = Addr.Map.cardinal t.payloads
let nodes t = List.rev t.order

let payload t addr =
  match Addr.Map.find_opt addr t.payloads with
  | Some p -> p
  | None ->
      Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
        ~code:"unknown-node" ~addr "Dag.payload: unknown node %s"
        (Addr.to_string addr)

let add_node t addr payload =
  if mem t addr then
    (* payload replacement leaves the topology (and the cache) intact *)
    { t with payloads = Addr.Map.add addr payload t.payloads }
  else
    {
      payloads = Addr.Map.add addr payload t.payloads;
      deps = Addr.Map.add addr Addr.Set.empty t.deps;
      rdeps = Addr.Map.add addr Addr.Set.empty t.rdeps;
      order = addr :: t.order;
      rounds_memo = None;
      flat_memo = None;
    }

(** Add a dependency edge: [dependent] needs [dependency] first.  Both
    nodes must already exist. *)
let add_edge t ~dependent ~dependency =
  if not (mem t dependent) then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"unknown-node" ~addr:dependent "Dag.add_edge: unknown node %s"
      (Addr.to_string dependent);
  if not (mem t dependency) then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"unknown-node" ~addr:dependency "Dag.add_edge: unknown node %s"
      (Addr.to_string dependency);
  if Addr.equal dependent dependency then t
  else
    {
      t with
      deps =
        Addr.Map.update dependent
          (fun s -> Some (Addr.Set.add dependency (Option.value ~default:Addr.Set.empty s)))
          t.deps;
      rdeps =
        Addr.Map.update dependency
          (fun s -> Some (Addr.Set.add dependent (Option.value ~default:Addr.Set.empty s)))
          t.rdeps;
      rounds_memo = None;
      flat_memo = None;
    }

let deps_of t addr =
  Option.value ~default:Addr.Set.empty (Addr.Map.find_opt addr t.deps)

let rdeps_of t addr =
  Option.value ~default:Addr.Set.empty (Addr.Map.find_opt addr t.rdeps)

let edge_count t =
  Addr.Map.fold (fun _ s acc -> acc + Addr.Set.cardinal s) t.deps 0

(* ------------------------------------------------------------------ *)
(* Compilation to the flat (interned) form                             *)
(* ------------------------------------------------------------------ *)

(* One pass over the maps: mint ids in insertion order, then freeze
   each adjacency set into an int array.  [Addr.Set.iter] walks sets in
   ascending address order, so the arrays inherit that order — the
   traversals below rely on it wherever the seed code's iteration
   order was observable (critical-path predecessor choice). *)
let compile t =
  let n = Addr.Map.cardinal t.payloads in
  let intern = Intern.create ~capacity:(max 1 n) () in
  List.iter (fun a -> ignore (Intern.intern intern a)) (nodes t);
  let to_ids s =
    let arr = Array.make (Addr.Set.cardinal s) 0 in
    let i = ref 0 in
    Addr.Set.iter
      (fun d ->
        (match Intern.find_opt intern d with
        | Some id -> arr.(!i) <- id
        | None -> assert false (* edges only connect existing nodes *));
        incr i)
      s;
    arr
  in
  let f_deps = Array.make n [||] and f_rdeps = Array.make n [||] in
  Intern.iter
    (fun id a ->
      f_deps.(id) <- to_ids (deps_of t a);
      f_rdeps.(id) <- to_ids (rdeps_of t a))
    intern;
  { f_intern = intern; f_deps; f_rdeps; f_sched = None }

let compiled t =
  match t.flat_memo with
  | Some fl -> fl
  | None ->
      let fl = compile t in
      t.flat_memo <- Some fl;
      fl

(* ------------------------------------------------------------------ *)
(* Topological order                                                   *)
(* ------------------------------------------------------------------ *)

(* In-place ascending heapsort of [a.(lo) .. a.(lo+len-1)].  Ids within
   a round are distinct, so an unstable sort is fine; heapsort keeps
   the kernel allocation-free at any round width (a 1M-wide fleet round
   would make insertion sort quadratic and [List.sort] cons a copy). *)
let sort_slice a lo len =
  if len > 1 then begin
    (* max-heap sift-down of [root] within the first [len'] slots *)
    let sift root len' =
      let r = ref root in
      let live = ref true in
      while !live do
        let l = (2 * !r) + 1 in
        if l >= len' then live := false
        else begin
          let c =
            if l + 1 < len' && a.(lo + l + 1) > a.(lo + l) then l + 1 else l
          in
          if a.(lo + c) > a.(lo + !r) then begin
            let tmp = a.(lo + c) in
            a.(lo + c) <- a.(lo + !r);
            a.(lo + !r) <- tmp;
            r := c
          end
          else live := false
        end
      done
    in
    for i = (len / 2) - 1 downto 0 do
      sift i len
    done;
    for last = len - 1 downto 1 do
      let tmp = a.(lo) in
      a.(lo) <- a.(lo + last);
      a.(lo + last) <- tmp;
      sift 0 last
    done
  end

(* Kahn's algorithm by rounds, allocation-free: [order] doubles as the
   work queue (the write cursor only ever runs ahead of the read
   cursor), [offsets.(k)] is where round k starts, and each new round's
   slice is heapsorted in place — ids ARE insertion indices, so an
   ascending int sort makes round k match the seed's per-round
   [List.partition] scan byte for byte.  [indeg] is caller-supplied
   scratch (consumed; holds residual in-degrees on return, which is how
   cycles are diagnosed: processed < n and the blocked nodes are those
   with indeg > 0).  Requires [Array.length order >= n] and
   [Array.length offsets >= n + 1]; returns the round count, with
   [offsets.(rounds)] = number of nodes processed. *)
let rounds_kernel ~rdeps ~indeg ~order ~offsets =
  let n = Array.length indeg in
  let w = ref 0 in
  for id = 0 to n - 1 do
    if indeg.(id) = 0 then begin
      order.(!w) <- id;
      incr w
    end
  done;
  offsets.(0) <- 0;
  let rounds = ref 0 in
  let r_start = ref 0 in
  while !r_start < !w do
    let r_end = !w in
    for i = !r_start to r_end - 1 do
      let rd = rdeps.(order.(i)) in
      for j = 0 to Array.length rd - 1 do
        let d = rd.(j) in
        let c = indeg.(d) - 1 in
        indeg.(d) <- c;
        if c = 0 then begin
          order.(!w) <- d;
          incr w
        end
      done
    done;
    incr rounds;
    offsets.(!rounds) <- r_end;
    sort_slice order r_end (!w - r_end);
    r_start := r_end
  done;
  !rounds

(* Run the kernel over a compiled topology, memoizing the result.
   Raises {!Cycle} with the blocked nodes (insertion order) when the
   graph has one. *)
let flat_sched fl =
  match fl.f_sched with
  | Some s -> s
  | None ->
      let n = Array.length fl.f_deps in
      let indeg = Array.map Array.length fl.f_deps in
      let order = Array.make (max 1 n) 0 in
      let offsets = Array.make (n + 1) 0 in
      let rounds = rounds_kernel ~rdeps:fl.f_rdeps ~indeg ~order ~offsets in
      if offsets.(rounds) < n then begin
        let blocked = ref [] in
        for id = n - 1 downto 0 do
          if indeg.(id) > 0 then
            blocked := Intern.addr fl.f_intern id :: !blocked
        done;
        raise (Cycle !blocked)
      end;
      let s = { s_order = order; s_offsets = offsets; s_rounds = rounds } in
      fl.f_sched <- Some s;
      s

(** Fill caller-supplied arrays with the Kahn rounds of [t]:
    [order.(offsets.(k)) .. order.(offsets.(k+1)-1)] is round k of
    interned ids (= insertion indices), returns the round count.
    Requires [Array.length order >= size t] and [Array.length offsets
    >= size t + 1]; allocation-free past the compiled-topology cache.
    Raises {!Cycle} when the graph has one. *)
let rounds_into t ~order ~offsets =
  let fl = compiled t in
  let s = flat_sched fl in
  let n = s.s_offsets.(s.s_rounds) in
  Array.blit s.s_order 0 order 0 n;
  Array.blit s.s_offsets 0 offsets 0 (s.s_rounds + 1);
  s.s_rounds

let rounds t =
  match t.rounds_memo with
  | Some r -> r
  | None ->
      let fl = compiled t in
      let s = flat_sched fl in
      let r = ref [] in
      for k = s.s_rounds - 1 downto 0 do
        let round = ref [] in
        for i = s.s_offsets.(k + 1) - 1 downto s.s_offsets.(k) do
          round := Intern.addr fl.f_intern s.s_order.(i) :: !round
        done;
        r := !round :: !r
      done;
      t.rounds_memo <- Some !r;
      !r

(** Stable topological sort: among nodes whose dependencies are
    satisfied, insertion order wins.  Raises {!Cycle} with the offending
    nodes when the graph has one. *)
let topo_sort t =
  let fl = compiled t in
  let s = flat_sched fl in
  let acc = ref [] in
  for i = s.s_offsets.(s.s_rounds) - 1 downto 0 do
    acc := Intern.addr fl.f_intern s.s_order.(i) :: !acc
  done;
  !acc

let has_cycle t =
  match topo_sort t with _ -> false | exception Cycle _ -> true

(** Group nodes into parallel levels: level 0 has no dependencies,
    level k depends only on levels < k.  The number of levels is the
    graph depth; the widest level bounds achievable parallelism. *)
let levels t = match rounds t with [] -> [ [] ] | rs -> rs

let depth t = List.length (levels t)
let max_width t = List.fold_left (fun acc l -> max acc (List.length l)) 0 (levels t)

(* ------------------------------------------------------------------ *)
(* Critical path                                                       *)
(* ------------------------------------------------------------------ *)

(** [critical_path t ~duration] computes, under the given per-node
    duration model, the longest dependency chain — the inherent lower
    bound on deployment makespan with unlimited parallelism.  Returns
    the total duration and the path from first to last node.

    Also exposes each node's "earliest finish" and "slack"
    ({!priorities}), which the cloudless scheduler uses to order work:
    zero-slack nodes are on the critical path and must never wait. *)
let critical_path t ~duration =
  let fl = compiled t in
  let s = flat_sched fl in
  let total = s.s_offsets.(s.s_rounds) in
  if total = 0 then (0., [])
  else begin
      let n = Array.length fl.f_deps in
      let finish = Array.make n 0. in
      let dur = Array.make n 0. in
      for i = 0 to total - 1 do
        let id = s.s_order.(i) in
        let start =
          Array.fold_left
            (fun acc d -> Float.max acc finish.(d))
            0. fl.f_deps.(id)
        in
        dur.(id) <- duration (Intern.addr fl.f_intern id);
        finish.(id) <- start +. dur.(id)
      done;
      let last = ref s.s_order.(0) in
      for i = 1 to total - 1 do
        let id = s.s_order.(i) in
        if finish.(id) > finish.(!last) then last := id
      done;
      let last = !last in
      (* Walk backwards along the tight predecessors; the arrays are in
         ascending-address order, so the first tight hit matches the
         seed's [Addr.Set.fold] choice. *)
      let rec back id acc =
        let start = finish.(id) -. dur.(id) in
        let pred = ref None in
        (try
           Array.iter
             (fun d ->
               if Float.abs (finish.(d) -. start) < 1e-9 then begin
                 pred := Some d;
                 raise Exit
               end)
             fl.f_deps.(id)
         with Exit -> ());
        match !pred with None -> id :: acc | Some p -> back p (id :: acc)
      in
      ( finish.(last),
        List.map (Intern.addr fl.f_intern) (back last []) )
    end

(** Remaining-longest-path priority for every node: the length of the
    longest duration chain from the node (inclusive) to any sink.
    Higher priority = more critical. *)
let priorities t ~duration =
  let fl = compiled t in
  let s = flat_sched fl in
  let n = Array.length fl.f_deps in
  let prio = Array.make n 0. in
  for i = s.s_offsets.(s.s_rounds) - 1 downto 0 do
    let id = s.s_order.(i) in
    let tail =
      Array.fold_left (fun acc r -> Float.max acc prio.(r)) 0. fl.f_rdeps.(id)
    in
    prio.(id) <- tail +. duration (Intern.addr fl.f_intern id)
  done;
  fun addr ->
    match Intern.find_opt fl.f_intern addr with
    | Some id -> prio.(id)
    | None -> 0.

(* ------------------------------------------------------------------ *)
(* Reachability and impact scope                                       *)
(* ------------------------------------------------------------------ *)

(* Reachability over the flat adjacency with a byte visited-array;
   seeds outside the graph stay in the closure (no out-edges), exactly
   like the seed's set-based walk. *)
let closure t dir seeds =
  let fl = compiled t in
  let n = Array.length fl.f_deps in
  let adj = match dir with `Deps -> fl.f_deps | `Rdeps -> fl.f_rdeps in
  let visited = Bytes.make n '\000' in
  let out = ref Addr.Set.empty in
  let stack = ref [] in
  Addr.Set.iter
    (fun a ->
      match Intern.find_opt fl.f_intern a with
      | Some id -> stack := id :: !stack
      | None -> out := Addr.Set.add a !out)
    seeds;
  let rec go () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if Bytes.get visited id = '\000' then begin
          Bytes.set visited id '\001';
          out := Addr.Set.add (Intern.addr fl.f_intern id) !out;
          Array.iter
            (fun d -> if Bytes.get visited d = '\000' then stack := d :: !stack)
            adj.(id)
        end;
        go ()
  in
  go ();
  !out

(** Transitive dependencies of [seeds], including the seeds. *)
let ancestors t seeds = closure t `Deps seeds

(** Transitive dependents of [seeds], including the seeds. *)
let descendants t seeds = closure t `Rdeps seeds

(** §3.3 impact scope: the nodes whose plan can be affected by a change
    to [seeds] — the seeds, everything that (transitively) consumes
    their attributes, plus the direct dependencies of that set (needed
    to re-evaluate expressions, but not themselves replanned). *)
let impact_scope t seeds =
  let dependents = descendants t seeds in
  let context =
    Addr.Set.fold
      (fun a acc -> Addr.Set.union acc (deps_of t a))
      dependents Addr.Set.empty
  in
  Addr.Set.union dependents context

(** Restrict the graph to a node subset (edges within the subset are
    kept). *)
let restrict t keep =
  let keep_list = List.filter (fun a -> Addr.Set.mem a keep) (nodes t) in
  let base =
    List.fold_left (fun acc a -> add_node acc a (payload t a)) empty keep_list
  in
  List.fold_left
    (fun acc a ->
      Addr.Set.fold
        (fun d acc ->
          if Addr.Set.mem d keep then add_edge acc ~dependent:a ~dependency:d
          else acc)
        (deps_of t a) acc)
    base keep_list

(* ------------------------------------------------------------------ *)
(* Construction from expanded instances                                *)
(* ------------------------------------------------------------------ *)

(** Build the graph from expansion output: one node per instance; edges
    from each instance to the instances its references and
    [depends_on] name.  Dependency addresses referring to a resource
    base (no instance key) connect to every instance of that base. *)
let of_instances (instances : Cloudless_hcl.Eval.instance list) :
    Cloudless_hcl.Eval.instance t =
  let t =
    List.fold_left
      (fun acc (i : Cloudless_hcl.Eval.instance) ->
        add_node acc i.Cloudless_hcl.Eval.addr i)
      empty instances
  in
  (* base address -> instances of that base, in insertion order, so a
     dependency on [aws_subnet.s] finds all its instances in O(log n)
     instead of scanning every address per edge *)
  let by_base =
    List.fold_left
      (fun m a ->
        Addr.Map.update (Addr.base a)
          (fun l -> Some (a :: Option.value ~default:[] l))
          m)
      Addr.Map.empty (nodes t)
  in
  let resolve dep =
    if mem t dep then [ dep ]
    else
      match Addr.Map.find_opt (Addr.base dep) by_base with
      | Some l -> List.rev l
      | None -> []
  in
  List.fold_left
    (fun acc (i : Cloudless_hcl.Eval.instance) ->
      let deps =
        i.Cloudless_hcl.Eval.ref_deps @ i.Cloudless_hcl.Eval.explicit_deps
      in
      List.fold_left
        (fun acc dep ->
          List.fold_left
            (fun acc d ->
              if Addr.equal d i.Cloudless_hcl.Eval.addr then acc
              else add_edge acc ~dependent:i.Cloudless_hcl.Eval.addr ~dependency:d)
            acc (resolve dep))
        acc deps)
    t instances

(* ------------------------------------------------------------------ *)
(* Reference implementations                                           *)
(* ------------------------------------------------------------------ *)

(** The seed's list-based traversals, kept in-tree (like the executor's
    [Sched_list]) so tests and the E12 bench can assert that the Kahn
    implementations above produce byte-identical orders and levels. *)
module Reference = struct
  (* The cons-cell Kahn loop the zero-alloc kernel replaced: per-round
     int lists with a [List.sort] per round.  Kept as the oracle for
     the kernel's round structure (QCheck equivalence in
     test_raw_speed). *)
  let rounds t =
    let fl = compiled t in
    let n = Array.length fl.f_deps in
    let indeg = Array.map Array.length fl.f_deps in
    let first = ref [] in
    for id = n - 1 downto 0 do
      if indeg.(id) = 0 then first := id :: !first
    done;
    let processed = ref 0 in
    let rec go ready acc =
      match ready with
      | [] -> List.rev acc
      | _ ->
          processed := !processed + List.length ready;
          let next = ref [] in
          List.iter
            (fun id ->
              Array.iter
                (fun d ->
                  indeg.(d) <- indeg.(d) - 1;
                  if indeg.(d) = 0 then next := d :: !next)
                fl.f_rdeps.(id))
            ready;
          go (List.sort Int.compare !next) (ready :: acc)
    in
    let rounds = go !first [] in
    if !processed < n then begin
      let blocked = ref [] in
      for id = n - 1 downto 0 do
        if indeg.(id) > 0 then blocked := Intern.addr fl.f_intern id :: !blocked
      done;
      raise (Cycle !blocked)
    end;
    List.map (List.map (Intern.addr fl.f_intern)) rounds

  (* per-round List.partition over the remaining nodes: O(depth * V) *)
  let topo_sort t =
    let in_degree = Hashtbl.create 64 in
    List.iter
      (fun a -> Hashtbl.replace in_degree a (Addr.Set.cardinal (deps_of t a)))
      (nodes t);
    let result = ref [] in
    let remaining = ref (nodes t) in
    let progress = ref true in
    while !remaining <> [] && !progress do
      progress := false;
      let ready, blocked =
        List.partition (fun a -> Hashtbl.find in_degree a = 0) !remaining
      in
      if ready <> [] then begin
        progress := true;
        List.iter
          (fun a ->
            result := a :: !result;
            Addr.Set.iter
              (fun d -> Hashtbl.replace in_degree d (Hashtbl.find in_degree d - 1))
              (rdeps_of t a))
          ready;
        remaining := blocked
      end
    done;
    if !remaining <> [] then raise (Cycle !remaining);
    List.rev !result

  (* per-level List.filter over the full order: O(depth * V) *)
  let levels t =
    let level = Hashtbl.create 64 in
    let order = topo_sort t in
    List.iter
      (fun a ->
        let l =
          Addr.Set.fold
            (fun d acc -> max acc (Hashtbl.find level d + 1))
            (deps_of t a) 0
        in
        Hashtbl.replace level a l)
      order;
    let max_level =
      List.fold_left (fun acc a -> max acc (Hashtbl.find level a)) 0 order
    in
    List.init (max_level + 1) (fun l ->
        List.filter (fun a -> Hashtbl.find level a = l) order)
end

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp ppf t =
  List.iter
    (fun a ->
      let ds = Addr.Set.elements (deps_of t a) in
      if ds = [] then Fmt.pf ppf "%a@." Addr.pp a
      else
        Fmt.pf ppf "%a <- %a@." Addr.pp a
          Fmt.(list ~sep:(any ", ") Addr.pp)
          ds)
    (nodes t)

let to_dot ?(name = "deps") t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun a ->
      Buffer.add_string buf (Printf.sprintf "  %S;\n" (Addr.to_string a));
      Addr.Set.iter
        (fun d ->
          Buffer.add_string buf
            (Printf.sprintf "  %S -> %S;\n" (Addr.to_string a) (Addr.to_string d)))
        (deps_of t a))
    (nodes t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
