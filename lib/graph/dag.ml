(** Resource dependency DAG.

    The central data structure of IaC planning (§2.1): nodes are
    resource instances addressed by {!Cloudless_hcl.Addr.t}, edges point
    from a resource to the resources it depends on.  Supports the
    analyses §3.3 calls for: stable topological order, parallel levels,
    critical-path extraction under a duration model, and impact-scope
    slicing for incremental updates. *)

module Addr = Cloudless_hcl.Addr

type 'a t = {
  payloads : 'a Addr.Map.t;
  deps : Addr.Set.t Addr.Map.t;  (** node -> nodes it depends on *)
  rdeps : Addr.Set.t Addr.Map.t;  (** node -> nodes depending on it *)
  order : Addr.t list;  (** insertion order, for stable iteration *)
  mutable rounds_memo : Addr.t list list option;
      (** cached Kahn rounds (= parallel levels); reset by any
          topology-changing constructor so [topo_sort], [levels],
          [depth] and [max_width] share one traversal *)
}

exception Cycle of Addr.t list

let empty =
  {
    payloads = Addr.Map.empty;
    deps = Addr.Map.empty;
    rdeps = Addr.Map.empty;
    order = [];
    rounds_memo = None;
  }

let mem t addr = Addr.Map.mem addr t.payloads
let find_opt t addr = Addr.Map.find_opt addr t.payloads
let size t = Addr.Map.cardinal t.payloads
let nodes t = List.rev t.order

let payload t addr =
  match Addr.Map.find_opt addr t.payloads with
  | Some p -> p
  | None ->
      Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
        ~code:"unknown-node" ~addr "Dag.payload: unknown node %s"
        (Addr.to_string addr)

let add_node t addr payload =
  if mem t addr then
    (* payload replacement leaves the topology (and the cache) intact *)
    { t with payloads = Addr.Map.add addr payload t.payloads }
  else
    {
      payloads = Addr.Map.add addr payload t.payloads;
      deps = Addr.Map.add addr Addr.Set.empty t.deps;
      rdeps = Addr.Map.add addr Addr.Set.empty t.rdeps;
      order = addr :: t.order;
      rounds_memo = None;
    }

(** Add a dependency edge: [dependent] needs [dependency] first.  Both
    nodes must already exist. *)
let add_edge t ~dependent ~dependency =
  if not (mem t dependent) then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"unknown-node" ~addr:dependent "Dag.add_edge: unknown node %s"
      (Addr.to_string dependent);
  if not (mem t dependency) then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"unknown-node" ~addr:dependency "Dag.add_edge: unknown node %s"
      (Addr.to_string dependency);
  if Addr.equal dependent dependency then t
  else
    {
      t with
      deps =
        Addr.Map.update dependent
          (fun s -> Some (Addr.Set.add dependency (Option.value ~default:Addr.Set.empty s)))
          t.deps;
      rdeps =
        Addr.Map.update dependency
          (fun s -> Some (Addr.Set.add dependent (Option.value ~default:Addr.Set.empty s)))
          t.rdeps;
      rounds_memo = None;
    }

let deps_of t addr =
  Option.value ~default:Addr.Set.empty (Addr.Map.find_opt addr t.deps)

let rdeps_of t addr =
  Option.value ~default:Addr.Set.empty (Addr.Map.find_opt addr t.rdeps)

let edge_count t =
  Addr.Map.fold (fun _ s acc -> acc + Addr.Set.cardinal s) t.deps 0

(* ------------------------------------------------------------------ *)
(* Topological order                                                   *)
(* ------------------------------------------------------------------ *)

(* Kahn's algorithm by rounds.  Round k holds exactly the nodes of
   level k (all dependencies in rounds < k), each round in insertion
   order — the same order the seed's per-round [List.partition] scan
   produced, but in O(V log V + E) instead of O(depth * V): only the
   nodes whose in-degree just reached zero are touched between rounds,
   and each round is sorted by insertion index.  Raises {!Cycle} with
   the blocked nodes (insertion order) when the graph has one. *)
let kahn_rounds t =
  let n = Addr.Map.cardinal t.payloads in
  let idx = Hashtbl.create (2 * n) in
  let in_degree = Hashtbl.create (2 * n) in
  let first = ref [] in
  List.iteri
    (fun i a ->
      Hashtbl.replace idx a i;
      let d = Addr.Set.cardinal (deps_of t a) in
      Hashtbl.replace in_degree a d;
      if d = 0 then first := a :: !first)
    (nodes t);
  let by_insertion l =
    List.sort (fun a b -> compare (Hashtbl.find idx a) (Hashtbl.find idx b)) l
  in
  let processed = ref 0 in
  let rec go ready acc =
    match ready with
    | [] -> List.rev acc
    | _ ->
        let round = by_insertion ready in
        processed := !processed + List.length round;
        let next =
          List.fold_left
            (fun next a ->
              Addr.Set.fold
                (fun d next ->
                  let deg = Hashtbl.find in_degree d - 1 in
                  Hashtbl.replace in_degree d deg;
                  if deg = 0 then d :: next else next)
                (rdeps_of t a) next)
            [] round
        in
        go next (round :: acc)
  in
  let rounds = go !first [] in
  if !processed < n then
    raise (Cycle (List.filter (fun a -> Hashtbl.find in_degree a > 0) (nodes t)));
  rounds

let rounds t =
  match t.rounds_memo with
  | Some r -> r
  | None ->
      let r = kahn_rounds t in
      t.rounds_memo <- Some r;
      r

(** Stable topological sort: among nodes whose dependencies are
    satisfied, insertion order wins.  Raises {!Cycle} with the offending
    nodes when the graph has one. *)
let topo_sort t = List.concat (rounds t)

let has_cycle t =
  match topo_sort t with _ -> false | exception Cycle _ -> true

(** Group nodes into parallel levels: level 0 has no dependencies,
    level k depends only on levels < k.  The number of levels is the
    graph depth; the widest level bounds achievable parallelism. *)
let levels t = match rounds t with [] -> [ [] ] | rs -> rs

let depth t = List.length (levels t)
let max_width t = List.fold_left (fun acc l -> max acc (List.length l)) 0 (levels t)

(* ------------------------------------------------------------------ *)
(* Critical path                                                       *)
(* ------------------------------------------------------------------ *)

(** [critical_path t ~duration] computes, under the given per-node
    duration model, the longest dependency chain — the inherent lower
    bound on deployment makespan with unlimited parallelism.  Returns
    the total duration and the path from first to last node.

    Also exposes each node's "earliest finish" and "slack"
    ({!priorities}), which the cloudless scheduler uses to order work:
    zero-slack nodes are on the critical path and must never wait. *)
let critical_path t ~duration =
  let finish = Hashtbl.create 64 in
  let order = topo_sort t in
  List.iter
    (fun a ->
      let start =
        Addr.Set.fold (fun d acc -> Float.max acc (Hashtbl.find finish d)) (deps_of t a) 0.
      in
      Hashtbl.replace finish a (start +. duration a))
    order;
  match order with
  | [] -> (0., [])
  | _ ->
      let last =
        List.fold_left
          (fun acc a ->
            match acc with
            | None -> Some a
            | Some b -> if Hashtbl.find finish a > Hashtbl.find finish b then Some a else Some b)
          None order
      in
      let last = Option.get last in
      (* Walk backwards along the tight predecessors. *)
      let rec back a acc =
        let start = Hashtbl.find finish a -. duration a in
        let pred =
          Addr.Set.fold
            (fun d found ->
              match found with
              | Some _ -> found
              | None ->
                  if Float.abs (Hashtbl.find finish d -. start) < 1e-9 then Some d
                  else None)
            (deps_of t a) None
        in
        match pred with None -> a :: acc | Some p -> back p (a :: acc)
      in
      (Hashtbl.find finish last, back last [])

(** Remaining-longest-path priority for every node: the length of the
    longest duration chain from the node (inclusive) to any sink.
    Higher priority = more critical. *)
let priorities t ~duration =
  let prio = Hashtbl.create 64 in
  let order = List.rev (topo_sort t) in
  List.iter
    (fun a ->
      let tail =
        Addr.Set.fold (fun d acc -> Float.max acc (Hashtbl.find prio d)) (rdeps_of t a) 0.
      in
      Hashtbl.replace prio a (tail +. duration a))
    order;
  fun addr ->
    match Hashtbl.find_opt prio addr with Some p -> p | None -> 0.

(* ------------------------------------------------------------------ *)
(* Reachability and impact scope                                       *)
(* ------------------------------------------------------------------ *)

let closure next seeds =
  let rec go visited frontier =
    match frontier with
    | [] -> visited
    | a :: rest ->
        if Addr.Set.mem a visited then go visited rest
        else
          let visited = Addr.Set.add a visited in
          go visited (Addr.Set.elements (next a) @ rest)
  in
  go Addr.Set.empty (Addr.Set.elements seeds)

(** Transitive dependencies of [seeds], including the seeds. *)
let ancestors t seeds = closure (deps_of t) seeds

(** Transitive dependents of [seeds], including the seeds. *)
let descendants t seeds = closure (rdeps_of t) seeds

(** §3.3 impact scope: the nodes whose plan can be affected by a change
    to [seeds] — the seeds, everything that (transitively) consumes
    their attributes, plus the direct dependencies of that set (needed
    to re-evaluate expressions, but not themselves replanned). *)
let impact_scope t seeds =
  let dependents = descendants t seeds in
  let context =
    Addr.Set.fold
      (fun a acc -> Addr.Set.union acc (deps_of t a))
      dependents Addr.Set.empty
  in
  Addr.Set.union dependents context

(** Restrict the graph to a node subset (edges within the subset are
    kept). *)
let restrict t keep =
  let keep_list = List.filter (fun a -> Addr.Set.mem a keep) (nodes t) in
  let base =
    List.fold_left (fun acc a -> add_node acc a (payload t a)) empty keep_list
  in
  List.fold_left
    (fun acc a ->
      Addr.Set.fold
        (fun d acc ->
          if Addr.Set.mem d keep then add_edge acc ~dependent:a ~dependency:d
          else acc)
        (deps_of t a) acc)
    base keep_list

(* ------------------------------------------------------------------ *)
(* Construction from expanded instances                                *)
(* ------------------------------------------------------------------ *)

(** Build the graph from expansion output: one node per instance; edges
    from each instance to the instances its references and
    [depends_on] name.  Dependency addresses referring to a resource
    base (no instance key) connect to every instance of that base. *)
let of_instances (instances : Cloudless_hcl.Eval.instance list) :
    Cloudless_hcl.Eval.instance t =
  let t =
    List.fold_left
      (fun acc (i : Cloudless_hcl.Eval.instance) ->
        add_node acc i.Cloudless_hcl.Eval.addr i)
      empty instances
  in
  (* base address -> instances of that base, in insertion order, so a
     dependency on [aws_subnet.s] finds all its instances in O(log n)
     instead of scanning every address per edge *)
  let by_base =
    List.fold_left
      (fun m a ->
        Addr.Map.update (Addr.base a)
          (fun l -> Some (a :: Option.value ~default:[] l))
          m)
      Addr.Map.empty (nodes t)
  in
  let resolve dep =
    if mem t dep then [ dep ]
    else
      match Addr.Map.find_opt (Addr.base dep) by_base with
      | Some l -> List.rev l
      | None -> []
  in
  List.fold_left
    (fun acc (i : Cloudless_hcl.Eval.instance) ->
      let deps =
        i.Cloudless_hcl.Eval.ref_deps @ i.Cloudless_hcl.Eval.explicit_deps
      in
      List.fold_left
        (fun acc dep ->
          List.fold_left
            (fun acc d ->
              if Addr.equal d i.Cloudless_hcl.Eval.addr then acc
              else add_edge acc ~dependent:i.Cloudless_hcl.Eval.addr ~dependency:d)
            acc (resolve dep))
        acc deps)
    t instances

(* ------------------------------------------------------------------ *)
(* Reference implementations                                           *)
(* ------------------------------------------------------------------ *)

(** The seed's list-based traversals, kept in-tree (like the executor's
    [Sched_list]) so tests and the E12 bench can assert that the Kahn
    implementations above produce byte-identical orders and levels. *)
module Reference = struct
  (* per-round List.partition over the remaining nodes: O(depth * V) *)
  let topo_sort t =
    let in_degree = Hashtbl.create 64 in
    List.iter
      (fun a -> Hashtbl.replace in_degree a (Addr.Set.cardinal (deps_of t a)))
      (nodes t);
    let result = ref [] in
    let remaining = ref (nodes t) in
    let progress = ref true in
    while !remaining <> [] && !progress do
      progress := false;
      let ready, blocked =
        List.partition (fun a -> Hashtbl.find in_degree a = 0) !remaining
      in
      if ready <> [] then begin
        progress := true;
        List.iter
          (fun a ->
            result := a :: !result;
            Addr.Set.iter
              (fun d -> Hashtbl.replace in_degree d (Hashtbl.find in_degree d - 1))
              (rdeps_of t a))
          ready;
        remaining := blocked
      end
    done;
    if !remaining <> [] then raise (Cycle !remaining);
    List.rev !result

  (* per-level List.filter over the full order: O(depth * V) *)
  let levels t =
    let level = Hashtbl.create 64 in
    let order = topo_sort t in
    List.iter
      (fun a ->
        let l =
          Addr.Set.fold
            (fun d acc -> max acc (Hashtbl.find level d + 1))
            (deps_of t a) 0
        in
        Hashtbl.replace level a l)
      order;
    let max_level =
      List.fold_left (fun acc a -> max acc (Hashtbl.find level a)) 0 order
    in
    List.init (max_level + 1) (fun l ->
        List.filter (fun a -> Hashtbl.find level a = l) order)
end

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp ppf t =
  List.iter
    (fun a ->
      let ds = Addr.Set.elements (deps_of t a) in
      if ds = [] then Fmt.pf ppf "%a@." Addr.pp a
      else
        Fmt.pf ppf "%a <- %a@." Addr.pp a
          Fmt.(list ~sep:(any ", ") Addr.pp)
          ds)
    (nodes t)

let to_dot ?(name = "deps") t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun a ->
      Buffer.add_string buf (Printf.sprintf "  %S;\n" (Addr.to_string a));
      Addr.Set.iter
        (fun d ->
          Buffer.add_string buf
            (Printf.sprintf "  %S -> %S;\n" (Addr.to_string a) (Addr.to_string d)))
        (deps_of t a))
    (nodes t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
