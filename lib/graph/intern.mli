(** Address interner: dense int ids for {!Cloudless_hcl.Addr.t}.

    One table per compiled structure (a compiled {!Dag}, a plan
    execution graph); ids are assigned in interning order starting at
    0 and are stable for the table's lifetime.  Ids from different
    tables are unrelated — never mix them. *)

module Addr := Cloudless_hcl.Addr

type t

(** [create ?capacity ()] makes an empty table; [capacity] pre-sizes
    the id array and hash table (growable afterwards). *)
val create : ?capacity:int -> unit -> t

(** Number of distinct addresses interned so far; ids are
    [0 .. length t - 1]. *)
val length : t -> int

(** Id of the address, minting the next dense id on first sight. *)
val intern : t -> Addr.t -> int

val find_opt : t -> Addr.t -> int option
val mem : t -> Addr.t -> bool

(** Address of a minted id; raises {!Cloudless_error.Error} when out of
    range. *)
val addr : t -> int -> Addr.t

(** Intern a whole list (ids follow list order, duplicates collapse). *)
val of_list : Addr.t list -> t

(** [iter f t] calls [f id addr] for every minted id, ascending. *)
val iter : (int -> Addr.t -> unit) -> t -> unit
