(** Resource dependency DAG (§2.1, §3.3).

    Nodes are resource instances addressed by {!Cloudless_hcl.Addr.t};
    edges point from a resource to the resources it depends on.
    Supports stable topological order, parallel levels, critical-path
    analysis under a duration model, and impact-scope slicing. *)

module Addr := Cloudless_hcl.Addr

type 'a t

exception Cycle of Addr.t list

val empty : 'a t
val mem : 'a t -> Addr.t -> bool
val find_opt : 'a t -> Addr.t -> 'a option
val size : 'a t -> int

(** Nodes in insertion order. *)
val nodes : 'a t -> Addr.t list

(** Payload of a known node; raises {!Cloudless_error.Error} otherwise. *)
val payload : 'a t -> Addr.t -> 'a

(** Add (or re-payload) a node. *)
val add_node : 'a t -> Addr.t -> 'a -> 'a t

(** Add a dependency edge: [dependent] needs [dependency] first.  Both
    nodes must exist; self-edges are ignored. *)
val add_edge : 'a t -> dependent:Addr.t -> dependency:Addr.t -> 'a t

val deps_of : 'a t -> Addr.t -> Addr.Set.t
val rdeps_of : 'a t -> Addr.t -> Addr.Set.t
val edge_count : 'a t -> int

(** Stable topological order (insertion order among independents);
    raises {!Cycle}. *)
val topo_sort : 'a t -> Addr.t list

val has_cycle : 'a t -> bool

(** Zero-alloc Kahn rounds into caller-supplied scratch:
    [order.(offsets.(k)) .. order.(offsets.(k+1)-1)] is round k of
    interned ids (insertion indices, ascending within a round); returns
    the round count, with [offsets.(rounds)] = nodes processed.
    Requires [Array.length order >= size t] and
    [Array.length offsets >= size t + 1].  Raises {!Cycle}. *)
val rounds_into : 'a t -> order:int array -> offsets:int array -> int

(** The raw kernel behind {!rounds_into}, for callers that already hold
    flat adjacency (see {!Plan.exec_rounds_into}): [indeg] is consumed
    scratch (residual in-degrees on return — nonzero entries are the
    blocked nodes of a cycle, signalled by [offsets.(rounds) <
    Array.length indeg]).  Allocation-free. *)
val rounds_kernel :
  rdeps:int array array ->
  indeg:int array ->
  order:int array ->
  offsets:int array ->
  int

(** In-place ascending heapsort of [a.(lo) .. a.(lo+len-1)] — the
    closure-free int sort the kernel uses on each round slice, exposed
    for other hot paths (e.g. {!Plan.exec_graph}'s adjacency freeze)
    that would otherwise pay [Array.sort]'s comparator closure. *)
val sort_slice : int array -> int -> int -> unit

(** Parallel levels: level 0 has no dependencies, level k depends only
    on earlier levels. *)
val levels : 'a t -> Addr.t list list

val depth : 'a t -> int
val max_width : 'a t -> int

(** Longest dependency chain under the duration model: the inherent
    lower bound on deployment makespan.  Returns (total duration,
    path). *)
val critical_path : 'a t -> duration:(Addr.t -> float) -> float * Addr.t list

(** Remaining-longest-path priority per node (higher = more critical);
    what the cloudless scheduler orders the ready set by. *)
val priorities : 'a t -> duration:(Addr.t -> float) -> Addr.t -> float

(** Transitive dependencies of the seeds, inclusive. *)
val ancestors : 'a t -> Addr.Set.t -> Addr.Set.t

(** Transitive dependents of the seeds, inclusive. *)
val descendants : 'a t -> Addr.Set.t -> Addr.Set.t

(** §3.3 impact scope: dependents of the seeds plus the direct
    dependencies of that set (re-evaluation context). *)
val impact_scope : 'a t -> Addr.Set.t -> Addr.Set.t

(** Restrict to a node subset, keeping internal edges. *)
val restrict : 'a t -> Addr.Set.t -> 'a t

(** The seed's list-based traversals, kept in-tree (like the executor's
    [Sched_list]) so tests and benches can assert the Kahn
    implementations produce byte-identical orders and levels. *)
module Reference : sig
  (** The cons-cell Kahn rounds the zero-alloc kernel replaced
      (per-round int lists + [List.sort]); oracle for
      {!rounds_into}'s round structure. *)
  val rounds : 'a t -> Addr.t list list

  (** Per-round [List.partition] scan: O(depth * V). *)
  val topo_sort : 'a t -> Addr.t list

  (** Per-level [List.filter] over the full order: O(depth * V). *)
  val levels : 'a t -> Addr.t list list
end

(** One node per expanded instance; edges from reference and
    [depends_on] dependencies (base addresses fan out to every
    instance). *)
val of_instances : Cloudless_hcl.Eval.instance list -> Cloudless_hcl.Eval.instance t

val pp : Format.formatter -> 'a t -> unit

(** Graphviz rendering. *)
val to_dot : ?name:string -> 'a t -> string
