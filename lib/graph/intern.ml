(** Address interner: a bijection between {!Cloudless_hcl.Addr.t} and
    dense integer ids.

    The flat-array hot path (compiled {!Dag} traversals, the plan
    execution graph, the executor's ready set) keys everything by int
    instead of by structural address, so the inner loops become array
    reads instead of polymorphic-compare tree walks.  Ids are assigned
    in interning order, start at 0, and are stable for the lifetime of
    the table — one table per compiled structure, never shared across
    runs, so an id is meaningless outside the structure that minted it
    (see DESIGN.md "Raw-speed core"). *)

module Addr = Cloudless_hcl.Addr

(* array-fill placeholder for not-yet-minted slots; never observable
   because [addr] bounds-checks against [n] *)
let dummy = Addr.make ~rtype:"" ~rname:"" ()

type t = {
  mutable addrs : Addr.t array;  (** id -> address; [n] slots in use *)
  mutable n : int;
  ids : (Addr.t, int) Hashtbl.t;  (** address -> id *)
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  {
    addrs = Array.make capacity dummy;
    n = 0;
    ids = Hashtbl.create (2 * capacity);
  }

let length t = t.n

let grow t =
  let cap = Array.length t.addrs in
  let addrs = Array.make (2 * cap) dummy in
  Array.blit t.addrs 0 addrs 0 t.n;
  t.addrs <- addrs

(** Id of [addr], minting the next dense id on first sight. *)
let intern t addr =
  match Hashtbl.find_opt t.ids addr with
  | Some id -> id
  | None ->
      if t.n = Array.length t.addrs then grow t;
      let id = t.n in
      t.addrs.(id) <- addr;
      t.n <- id + 1;
      Hashtbl.replace t.ids addr id;
      id

let find_opt t addr = Hashtbl.find_opt t.ids addr
let mem t addr = Hashtbl.mem t.ids addr

let addr t id =
  if id < 0 || id >= t.n then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"unknown-id" "Intern.addr: id %d out of range (table has %d)" id t.n;
  t.addrs.(id)

let of_list addrs =
  let t = create ~capacity:(max 1 (List.length addrs)) () in
  List.iter (fun a -> ignore (intern t a)) addrs;
  t

let iter f t =
  for id = 0 to t.n - 1 do
    f id t.addrs.(id)
  done
