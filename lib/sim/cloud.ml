(** The simulated cloud: a discrete-event management plane.

    This is the substitute substrate for AWS/Azure (DESIGN.md,
    substitution table).  It models exactly the properties every §3
    mechanism interacts with:

    - asynchronous CRUD operations with per-type service times,
    - token-bucket API rate limiting with 429-style throttling,
    - per-type regional quotas,
    - transient/permanent failures and hangs,
    - an activity log recording every management operation,
    - out-of-band mutation (the source of drift).

    Deployment engines drive the cloud in callback style: {!submit}
    registers an operation; {!step}/{!run_until_idle} advance simulated
    time and deliver completions. *)

module Smap = Cloudless_hcl.Value.Smap
module Value = Cloudless_hcl.Value
module Trace = Cloudless_obs.Trace
module Diagnostic = Cloudless_error.Diagnostic

type status = Creating | Ready | Updating | Deleting | Failed of string

let status_to_string = function
  | Creating -> "creating"
  | Ready -> "ready"
  | Updating -> "updating"
  | Deleting -> "deleting"
  | Failed msg -> "failed:" ^ msg

type resource = {
  cloud_id : string;
  rtype : string;
  region : string;
  mutable attrs : Value.t Smap.t;
  mutable status : status;
  created_at : float;
  mutable updated_at : float;
}

type error =
  | Throttled of float  (** retry-after seconds *)
  | Not_found of string
  | Quota_exceeded of string
  | Transient of string
  | Invalid of string  (** permanent rejection, e.g. constraint violation *)

let error_to_string = function
  | Throttled after -> Printf.sprintf "429 throttled (retry after %.1fs)" after
  | Not_found id -> Printf.sprintf "404 resource %S not found" id
  | Quota_exceeded msg -> Printf.sprintf "409 quota exceeded: %s" msg
  | Transient msg -> Printf.sprintf "500 transient: %s" msg
  | Invalid msg -> Printf.sprintf "400 invalid: %s" msg

let is_retryable = function
  | Throttled _ | Transient _ -> true
  | Not_found _ | Quota_exceeded _ | Invalid _ -> false

type op =
  | Create of { rtype : string; region : string; attrs : Value.t Smap.t }
  | Update of { cloud_id : string; attrs : Value.t Smap.t }
  | Delete of { cloud_id : string }
  | Read of { cloud_id : string }
  | List_type of { rtype : string; region : string option }

type op_result = (Value.t Smap.t, error) result

(** Cloud-level semantic check, invoked before a create/update commits.
    Receives a lookup function over existing resources so cross-resource
    constraints ("the referenced NIC must exist and be in the same
    region") can be expressed.  Returning [Error msg] rejects the
    operation with [Invalid msg] *after* the service time has elapsed —
    cloud constraint violations surface late, which is precisely the
    §3.2 pain point. *)
type semantic_check =
  lookup:(string -> resource option) ->
  rtype:string ->
  region:string ->
  attrs:Value.t Smap.t ->
  (unit, string) result

type config = {
  regions : string list;
  api_latency : float;  (** per-call round-trip, seconds *)
  quotas : (string * int) list;  (** max instances per type per region *)
  failure : Failure.t;
  semantic_checks : semantic_check list;
  list_page_size : int;
}

let default_config =
  {
    regions =
      [
        "us-east-1"; "us-west-2"; "eu-west-1"; "ap-southeast-1";
        (* azure + gcp flavoured names used by those providers' types *)
        "eastus"; "westus2"; "westeurope"; "southeastasia";
        "us-central1"; "us-east4"; "europe-west1"; "asia-southeast1";
      ];
    api_latency = 0.15;
    quotas = [];
    failure = Failure.none;
    semantic_checks = [];
    list_page_size = 50;
  }

type t = {
  config : config;
  prng : Prng.t;
  mutable clock : float;
  events : (unit -> unit) Event_queue.t;
  resources : (string, resource) Hashtbl.t;  (** by cloud_id *)
  write_limiter : Rate_limiter.t;
  read_limiter : Rate_limiter.t;
  log : Activity_log.t;
  mutable id_counter : int;
  mutable prefix_key : string;  (** {!fresh_id}'s one-entry prefix cache *)
  mutable prefix_val : string;
  mutable api_calls : int;
  mutable episodes : Failure.episode list;
      (** time-windowed fault episodes, consulted before the static
          failure draw on every write *)
  mutable episode_faults : int;
      (** writes rejected (failed or throttled) by an active episode *)
  mutable trace : Trace.t;
      (** stage tracer; API-call and throttle counters land on whatever
          span is active when the call is submitted *)
}

let create ?(config = default_config) ?write_limiter ?read_limiter ~seed () =
  {
    config;
    prng = Prng.create seed;
    clock = 0.;
    events = Event_queue.create ();
    resources = Hashtbl.create 64;
    write_limiter =
      (match write_limiter with
      | Some l -> l
      | None -> Rate_limiter.default_write ());
    read_limiter =
      (match read_limiter with
      | Some l -> l
      | None -> Rate_limiter.default_read ());
    log = Activity_log.create ();
    id_counter = 0;
    prefix_key = "";
    prefix_val = "";
    api_calls = 0;
    episodes = [];
    episode_faults = 0;
    trace = Trace.null;
  }

let now t = t.clock
let log t = t.log
let api_call_count t = t.api_calls

(** Attach a tracer: every subsequent API call (and throttle) is
    counted on the tracer's innermost active span, so per-stage
    counters come from the layer that owns them. *)
let set_trace t trace =
  t.trace <- trace;
  (* spans begun after this point carry discrete-event timestamps *)
  Trace.set_sim_clock trace (fun () -> t.clock)

let write_throttle_stats t = Rate_limiter.stats t.write_limiter
let read_throttle_stats t = Rate_limiter.stats t.read_limiter

(* Short id prefix from the resource type, e.g. aws_vpc -> "vpc". *)
let id_prefix rtype =
  match String.rindex_opt rtype '_' with
  | Some i -> String.sub rtype (i + 1) (String.length rtype - i - 1)
  | None -> rtype

(* Byte-identical to [Printf.sprintf "%s-%06x"] without the format
   interpreter — ids are minted once per created resource, squarely on
   the apply hot path. *)
let hex = "0123456789abcdef"

let fresh_id t rtype =
  t.id_counter <- t.id_counter + 1;
  (* One-entry per-cloud prefix cache: a run mints ids for long
     streaks of the same resource type, and the substring per call
     showed up at 1M creates.  Equal-content keys hit too, covering
     plans whose rtype strings are not physically shared.  Lives on
     [t] (not a global) so sharded runs on parallel domains never
     share it. *)
  let prefix =
    if String.equal t.prefix_key rtype then t.prefix_val
    else begin
      let p = id_prefix rtype in
      t.prefix_key <- rtype;
      t.prefix_val <- p;
      p
    end
  in
  let p = String.length prefix in
  let c = t.id_counter in
  (* %06x: at least six hex digits, more only if the value needs them *)
  let digits =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 4) in
    max 6 (if c = 0 then 1 else go 0 c)
  in
  let b = Bytes.create (p + 1 + digits) in
  Bytes.blit_string prefix 0 b 0 p;
  Bytes.set b p '-';
  let v = ref c in
  for i = p + digits downto p + 1 do
    Bytes.set b i hex.[!v land 0xf];
    v := !v lsr 4
  done;
  Bytes.unsafe_to_string b

let lookup t cloud_id = Hashtbl.find_opt t.resources cloud_id

let resources_of_type t ?region rtype =
  Hashtbl.fold
    (fun _ r acc ->
      if
        r.rtype = rtype
        && (match region with Some reg -> r.region = reg | None -> true)
        && r.status <> Deleting
      then r :: acc
      else acc)
    t.resources []
  |> List.sort (fun a b -> String.compare a.cloud_id b.cloud_id)

let all_resources t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.resources []
  |> List.sort (fun a b -> String.compare a.cloud_id b.cloud_id)

let resource_count t = Hashtbl.length t.resources

let schedule t ~delay f =
  Event_queue.push t.events ~time:(t.clock +. delay) f

(** Advance to the next event and run it.  Returns [false] when the
    queue is empty. *)
let step t =
  match Event_queue.pop t.events with
  | None -> false
  | Some (time, f) ->
      t.clock <- Float.max t.clock time;
      f ();
      true

let run_until_idle t =
  while step t do
    ()
  done

(** Advance simulated time even with an empty queue (used by monitors
    that poll on a period). *)
let advance_to t time = if time > t.clock then t.clock <- time

(* ------------------------------------------------------------------ *)
(* Operation execution                                                 *)
(* ------------------------------------------------------------------ *)

let count_in_region t rtype region =
  Hashtbl.fold
    (fun _ r acc ->
      if r.rtype = rtype && r.region = region && r.status <> Deleting then
        acc + 1
      else acc)
    t.resources 0

let quota_of t rtype = List.assoc_opt rtype t.config.quotas

let check_semantics t ~rtype ~region ~attrs =
  match t.config.semantic_checks with
  | [] -> Ok ()  (* don't build the lookup closure for check-free clouds *)
  | checks ->
      let lookup id = lookup t id in
      let rec go = function
        | [] -> Ok ()
        | check :: rest -> (
            match check ~lookup ~rtype ~region ~attrs with
            | Ok () -> go rest
            | Error _ as e -> e)
      in
      go checks

let log_append t ~actor ~op ~cloud_id ~rtype ~region ~detail =
  ignore
    (Activity_log.append t.log ~time:t.clock ~actor ~op ~cloud_id ~rtype
       ~region ~detail)

(* ------------------------------------------------------------------ *)
(* Fault episodes                                                      *)
(* ------------------------------------------------------------------ *)

(** Install the episode schedule.  Window boundaries are appended to
    the activity log as [Log_failure "episode-start:…"/"episode-end:…"]
    markers under the internal actor, so log subscribers (and humans
    reading the log) can see the regime changes; the markers are not
    write ops and never trigger drift. *)
let set_episodes t eps =
  t.episodes <-
    List.sort (fun a b -> compare a.Failure.estart b.Failure.estart) eps;
  List.iter
    (fun (e : Failure.episode) ->
      let name = Failure.episode_kind_to_string e.Failure.ekind in
      let rtype = Option.value e.Failure.ertype ~default:"*" in
      let region = Option.value e.Failure.eregion ~default:"*" in
      let mark tag at =
        let delay = at -. t.clock in
        if delay >= 0. then
          schedule t ~delay (fun () ->
              log_append t ~actor:Activity_log.Cloud_internal
                ~op:(Activity_log.Log_failure (tag ^ ":" ^ name))
                ~cloud_id:"-" ~rtype ~region
                ~detail:(tag ^ " " ^ name))
      in
      mark "episode-start" e.Failure.estart;
      if e.Failure.ekind <> Failure.Spot_termination then
        mark "episode-end" e.Failure.efinish)
    eps

let episodes t = t.episodes
let episode_fault_count t = t.episode_faults

(* Verdict of the active episodes for one write, [None] = fall through
   to the static draw.  The [[] -> None] fast path keeps episode-free
   clouds allocation- and PRNG-identical to before. *)
let episode_reject t ~rtype ~region =
  match t.episodes with
  | [] -> None
  | eps -> Failure.episode_verdict eps t.prng ~now:t.clock ~rtype ~region

(* Static quota lowered by any active quota-cut episode. *)
let effective_quota t ~rtype ~region =
  let floor_ =
    match t.episodes with
    | [] -> None
    | eps -> Failure.quota_floor eps ~now:t.clock ~rtype ~region
  in
  match (quota_of t rtype, floor_) with
  | Some a, Some b -> Some (min a b)
  | (Some _ as q), None -> q
  | None, f -> f

(* Fail one write per an episode verdict: fast rejection at API
   latency, like a real provider's 5xx/429 front door. *)
let episode_fail t ~actor ~rtype ~region verdict k =
  t.episode_faults <- t.episode_faults + 1;
  match verdict with
  | Failure.Ep_error msg ->
      schedule t ~delay:t.config.api_latency (fun () ->
          log_append t ~actor
            ~op:(Activity_log.Log_failure msg)
            ~cloud_id:"-" ~rtype ~region ~detail:msg;
          k (Error (Transient msg)))
  | Failure.Ep_throttle after ->
      Trace.count t.trace "throttled" 1;
      schedule t ~delay:t.config.api_latency (fun () ->
          k (Error (Throttled after)))

(* Computed attributes the cloud adds to every resource.  The arn is
   hand-concatenated ([= sprintf "arn:sim:%s:%s:%s"] byte for byte);
   the format interpreter allocated measurably at 1M creates. *)
let computed_attrs t r =
  let lr = String.length r.region
  and lt = String.length r.rtype
  and li = String.length r.cloud_id in
  let b = Bytes.create (10 + lr + lt + li) in
  Bytes.blit_string "arn:sim:" 0 b 0 8;
  Bytes.blit_string r.region 0 b 8 lr;
  Bytes.set b (8 + lr) ':';
  Bytes.blit_string r.rtype 0 b (9 + lr) lt;
  Bytes.set b (9 + lr + lt) ':';
  Bytes.blit_string r.cloud_id 0 b (10 + lr + lt) li;
  let arn = Bytes.unsafe_to_string b in
  r.attrs
  |> Smap.add "id" (Value.Vstring r.cloud_id)
  |> Smap.add "arn" (Value.Vstring arn)
  |> Smap.add "region" (Value.Vstring r.region)
  |> fun attrs ->
  ignore t;
  attrs

let sample_duration t rtype kind = Service_model.sample t.prng rtype kind

(** Submit an operation on behalf of [actor]; [k] receives the result
    when the operation completes in simulated time. *)
let submit t ~actor op (k : op_result -> unit) =
  t.api_calls <- t.api_calls + 1;
  Trace.count t.trace "api_calls" 1;
  let limiter =
    match op with
    | Read _ | List_type _ -> t.read_limiter
    | Create _ | Update _ | Delete _ -> t.write_limiter
  in
  match Rate_limiter.try_acquire limiter ~now:t.clock with
  | Error retry_after ->
      (* Throttled calls are rejected fast (no service time). *)
      Trace.count t.trace "throttled" 1;
      schedule t ~delay:t.config.api_latency (fun () ->
          k (Error (Throttled retry_after)))
  | Ok () -> (
      match op with
      | Create { rtype; region; attrs } ->
          if not (List.mem region t.config.regions) then
            schedule t ~delay:t.config.api_latency (fun () ->
                k (Error (Invalid (Printf.sprintf "unknown region %S" region))))
          else begin
            match episode_reject t ~rtype ~region with
            | Some verdict -> episode_fail t ~actor ~rtype ~region verdict k
            | None -> (
            match effective_quota t ~rtype ~region with
            | Some q when count_in_region t rtype region >= q ->
                schedule t ~delay:t.config.api_latency (fun () ->
                    log_append t ~actor
                      ~op:(Activity_log.Log_failure "quota")
                      ~cloud_id:"-" ~rtype ~region ~detail:"quota exceeded";
                    k
                      (Error
                         (Quota_exceeded
                            (Printf.sprintf "%s limit %d in %s" rtype q region))))
            | _ -> (
                match Failure.draw t.config.failure t.prng ~rtype with
                | Failure.Fail_permanent msg ->
                    let d = sample_duration t rtype Service_model.Op_create in
                    schedule t ~delay:(t.config.api_latency +. (d *. 0.3))
                      (fun () ->
                        log_append t ~actor
                          ~op:(Activity_log.Log_failure msg) ~cloud_id:"-"
                          ~rtype ~region ~detail:msg;
                        k (Error (Invalid msg)))
                | Failure.Fail_transient msg ->
                    let d = sample_duration t rtype Service_model.Op_create in
                    schedule t ~delay:(t.config.api_latency +. (d *. 0.2))
                      (fun () ->
                        log_append t ~actor
                          ~op:(Activity_log.Log_failure msg) ~cloud_id:"-"
                          ~rtype ~region ~detail:msg;
                        k (Error (Transient msg)))
                | (Failure.Proceed | Failure.Slow _) as outcome ->
                    let factor =
                      match outcome with
                      | Failure.Slow f -> f
                      | _ -> 1.
                    in
                    let d =
                      sample_duration t rtype Service_model.Op_create *. factor
                    in
                    (* The resource is visible in Creating state
                       immediately (like real clouds). *)
                    let cloud_id = fresh_id t rtype in
                    let r =
                      {
                        cloud_id;
                        rtype;
                        region;
                        attrs;
                        status = Creating;
                        created_at = t.clock;
                        updated_at = t.clock;
                      }
                    in
                    Hashtbl.replace t.resources cloud_id r;
                    schedule t ~delay:(t.config.api_latency +. d) (fun () ->
                        (* semantic (cross-resource) validation happens
                           at materialization time *)
                        match check_semantics t ~rtype ~region ~attrs with
                        | Error msg ->
                            Hashtbl.remove t.resources cloud_id;
                            log_append t ~actor
                              ~op:(Activity_log.Log_failure msg) ~cloud_id
                              ~rtype ~region ~detail:msg;
                            k (Error (Invalid msg))
                        | Ok () ->
                            r.status <- Ready;
                            r.attrs <- computed_attrs t r;
                            r.updated_at <- t.clock;
                            log_append t ~actor ~op:Activity_log.Log_create
                              ~cloud_id ~rtype ~region ~detail:"created";
                            k (Ok r.attrs))))
          end
      | Update { cloud_id; attrs } -> (
          match lookup t cloud_id with
          | None ->
              schedule t ~delay:t.config.api_latency (fun () ->
                  k (Error (Not_found cloud_id)))
          | Some r -> (
              match episode_reject t ~rtype:r.rtype ~region:r.region with
              | Some verdict ->
                  episode_fail t ~actor ~rtype:r.rtype ~region:r.region verdict
                    k
              | None -> (
              match Failure.draw t.config.failure t.prng ~rtype:r.rtype with
              | Failure.Fail_transient msg ->
                  schedule t ~delay:(t.config.api_latency *. 2.) (fun () ->
                      k (Error (Transient msg)))
              | Failure.Fail_permanent msg ->
                  schedule t ~delay:(t.config.api_latency *. 2.) (fun () ->
                      k (Error (Invalid msg)))
              | (Failure.Proceed | Failure.Slow _) as outcome ->
                  let factor =
                    match outcome with Failure.Slow f -> f | _ -> 1.
                  in
                  let d =
                    sample_duration t r.rtype Service_model.Op_update *. factor
                  in
                  r.status <- Updating;
                  schedule t ~delay:(t.config.api_latency +. d) (fun () ->
                      match
                        check_semantics t ~rtype:r.rtype ~region:r.region
                          ~attrs
                      with
                      | Error msg ->
                          r.status <- Ready;
                          log_append t ~actor
                            ~op:(Activity_log.Log_failure msg) ~cloud_id
                            ~rtype:r.rtype ~region:r.region ~detail:msg;
                          k (Error (Invalid msg))
                      | Ok () ->
                          r.attrs <-
                            computed_attrs t
                              { r with attrs = Smap.union (fun _ _ v -> Some v) r.attrs attrs };
                          r.status <- Ready;
                          r.updated_at <- t.clock;
                          log_append t ~actor ~op:Activity_log.Log_update
                            ~cloud_id ~rtype:r.rtype ~region:r.region
                            ~detail:"updated";
                          k (Ok r.attrs)))))
      | Delete { cloud_id } -> (
          match lookup t cloud_id with
          | None ->
              schedule t ~delay:t.config.api_latency (fun () ->
                  k (Error (Not_found cloud_id)))
          | Some r -> (
              match episode_reject t ~rtype:r.rtype ~region:r.region with
              | Some verdict ->
                  episode_fail t ~actor ~rtype:r.rtype ~region:r.region verdict
                    k
              | None ->
                  let d = sample_duration t r.rtype Service_model.Op_delete in
                  r.status <- Deleting;
                  schedule t ~delay:(t.config.api_latency +. d) (fun () ->
                      Hashtbl.remove t.resources cloud_id;
                      log_append t ~actor ~op:Activity_log.Log_delete ~cloud_id
                        ~rtype:r.rtype ~region:r.region ~detail:"deleted";
                      k (Ok r.attrs))))
      | Read { cloud_id } -> (
          match lookup t cloud_id with
          | None ->
              schedule t ~delay:t.config.api_latency (fun () ->
                  k (Error (Not_found cloud_id)))
          | Some r ->
              let d = sample_duration t r.rtype Service_model.Op_read in
              schedule t ~delay:(t.config.api_latency +. d) (fun () ->
                  log_append t ~actor ~op:Activity_log.Log_read ~cloud_id
                    ~rtype:r.rtype ~region:r.region ~detail:"read";
                  k (Ok r.attrs)))
      | List_type { rtype; region } ->
          let rs = resources_of_type t ?region rtype in
          (* Pagination: each extra page is an extra read-limiter call;
             charge them up front. *)
          let pages =
            max 1
              ((List.length rs + t.config.list_page_size - 1)
              / t.config.list_page_size)
          in
          let throttled = ref None in
          for _ = 2 to pages do
            t.api_calls <- t.api_calls + 1;
            Trace.count t.trace "api_calls" 1;
            match Rate_limiter.try_acquire t.read_limiter ~now:t.clock with
            | Ok () -> ()
            | Error after ->
                Trace.count t.trace "throttled" 1;
                if !throttled = None then throttled := Some after
          done;
          (match !throttled with
          | Some after ->
              schedule t ~delay:t.config.api_latency (fun () ->
                  k (Error (Throttled after)))
          | None ->
              let d = 0.2 *. float_of_int pages in
              schedule t ~delay:(t.config.api_latency +. d) (fun () ->
                  let listing =
                    List.map
                      (fun r -> (r.cloud_id, Value.Vmap r.attrs))
                      rs
                  in
                  k (Ok (Smap.of_seq (List.to_seq listing))))))

(* ------------------------------------------------------------------ *)
(* Synchronous conveniences (drive the loop internally)                *)
(* ------------------------------------------------------------------ *)

(** Run [op] and drive the simulation until it completes.  Only safe
    when no other operations are in flight (tests, simple tools). *)
let run_sync t ~actor op =
  let result = ref None in
  submit t ~actor op (fun r -> result := Some r);
  let rec drive () =
    match !result with
    | Some r -> r
    | None ->
        if step t then drive ()
        else
          Cloudless_error.fail ~stage:Diagnostic.Internal ~code:"sim-stalled"
            "simulation stalled: operation submitted but event queue drained"
  in
  drive ()

(* ------------------------------------------------------------------ *)
(* Out-of-band mutation: the source of drift (§3.5)                    *)
(* ------------------------------------------------------------------ *)

(** Mutate a resource attribute directly, bypassing any IaC engine —
    models a legacy script or ClickOps change.  Logged with the
    out-of-band actor so log-based drift detection can spot it. *)
let mutate_oob t ~script ~cloud_id ~attr ~value =
  match lookup t cloud_id with
  | None -> Error (Not_found cloud_id)
  | Some r ->
      r.attrs <- Smap.add attr value r.attrs;
      r.updated_at <- t.clock;
      log_append t ~actor:(Activity_log.Oob_script script)
        ~op:Activity_log.Log_update ~cloud_id ~rtype:r.rtype ~region:r.region
        ~detail:(Printf.sprintf "set %s" attr);
      Ok ()

(** Delete a resource out-of-band. *)
let delete_oob t ~script ~cloud_id =
  match lookup t cloud_id with
  | None -> Error (Not_found cloud_id)
  | Some r ->
      Hashtbl.remove t.resources cloud_id;
      log_append t ~actor:(Activity_log.Oob_script script)
        ~op:Activity_log.Log_delete ~cloud_id ~rtype:r.rtype ~region:r.region
        ~detail:"deleted out of band";
      Ok ()

(** Create a resource out-of-band (an "unmanaged" resource). *)
let create_oob t ~script ~rtype ~region ~attrs =
  let cloud_id = fresh_id t rtype in
  let r =
    {
      cloud_id;
      rtype;
      region;
      attrs;
      status = Ready;
      created_at = t.clock;
      updated_at = t.clock;
    }
  in
  r.attrs <- computed_attrs t r;
  Hashtbl.replace t.resources cloud_id r;
  log_append t ~actor:(Activity_log.Oob_script script)
    ~op:Activity_log.Log_create ~cloud_id ~rtype ~region
    ~detail:"created out of band";
  cloud_id

(** Replace a resource's attributes wholesale without logging — used by
    tools that materialize a recorded deployment into a fresh simulator
    (state restore), not by anything that models real cloud traffic. *)
let restore_attrs t ~cloud_id ~attrs =
  match lookup t cloud_id with
  | None -> ()
  | Some r ->
      r.attrs <- attrs;
      r.attrs <- computed_attrs t r
