(** Generic keyed priority queue (binary heap).

    Shared by the simulator's {!Event_queue} (min-heap on time) and the
    deploy executor's ready set (max-heap on critical-path priority).

    Entries carry a float priority and a monotonically increasing
    insertion sequence number; the {!order} chosen at creation fixes
    both the priority sense and the tie-break, so every pop sequence is
    a total, deterministic order:

    - {!Min_first}: smallest priority first; ties pop in insertion
      order (FIFO) — what an event queue keyed by time wants.
    - {!Max_first}: largest priority first; ties pop most-recent-first
      (LIFO) — the order the executor's historical list scan produced
      for critical-path scheduling.

    Deletion by key is lazy: {!remove} tombstones the key in O(1) and
    {!pop}/{!peek} discard tombstoned entries on the way out, keeping
    every operation O(log n) amortized with no [decrease_key] plumbing.
    Storage is structure-of-arrays (priorities in an unboxed [float
    array]), growing by doubling with fresh slots seeded from the entry
    being pushed — no [Obj.magic] placeholder slots, and a push
    allocates nothing beyond amortized growth. *)

type order = Min_first | Max_first

type ('k, 'a) t

(** [track] (default [true]) maintains the per-key live/tombstone
    counters behind {!mem} and {!remove}.  Pass [~track:false] when
    neither is needed (the event queue): push/pop then touch no
    hashtable at all.  On an untracked queue {!mem} is always [false]
    and {!remove} raises [Invalid_argument]. *)
val create : ?initial_capacity:int -> ?track:bool -> order -> ('k, 'a) t

(** Number of live entries (pushed, not yet popped or removed). *)
val length : ('k, 'a) t -> int

val is_empty : ('k, 'a) t -> bool

(** High-water mark of {!length} over the queue's lifetime. *)
val peak_length : ('k, 'a) t -> int

(** Insert [payload] under [key] with priority [prio]. Keys need not be
    unique; they only matter to {!mem} and {!remove}. *)
val push : ('k, 'a) t -> prio:float -> key:'k -> 'a -> unit

(** Remove and return the live entry that orders first. *)
val pop : ('k, 'a) t -> (float * 'k * 'a) option

(** The entry {!pop} would return, without removing it. *)
val peek : ('k, 'a) t -> (float * 'k * 'a) option

(** Priority of the entry {!pop} would return. *)
val peek_prio : ('k, 'a) t -> float option

(** Is at least one live entry stored under this key? *)
val mem : ('k, 'a) t -> 'k -> bool

(** Lazily delete one live entry stored under [key]; returns [false]
    (and does nothing) when no live entry has the key.  The tombstone
    is resolved at pop time: the next entry under [key] to reach the
    front is the one discarded.  With unique keys (how the executor
    uses this) that is exactly the removed entry; under key reuse the
    choice is deterministic but unspecified. *)
val remove : ('k, 'a) t -> 'k -> bool
