(** Failure-injection policy for the simulated cloud. *)

type t = {
  transient_prob : float;  (** probability a write fails transiently *)
  permanent : (string * string) list;
      (** [(rtype, message)]: creates of this type always fail *)
  transient_types : (string * string) list;
      (** [(rtype, message)]: writes of this type always fail
          transiently — deterministically exhausts retry budgets *)
  hang_prob : float;  (** probability a write hangs (very slow) *)
  hang_factor : float;  (** duration multiplier when hanging *)
}

(** No injected failures. *)
val none : t

val make :
  ?transient_prob:float ->
  ?permanent:(string * string) list ->
  ?transient_types:(string * string) list ->
  ?hang_prob:float ->
  ?hang_factor:float ->
  unit ->
  t

type outcome =
  | Proceed
  | Slow of float  (** duration multiplier *)
  | Fail_transient of string
  | Fail_permanent of string

(** Draw the outcome for one write operation. *)
val draw : t -> Prng.t -> rtype:string -> outcome

(** Crash injection for the engine *process* (as opposed to the cloud):
    [Crash_after k] kills the engine at the (k+1)-th cloud write
    operation, modelling process death at an arbitrary event boundary.
    Executors honour it by raising {!Engine_crashed}. *)
type crash_policy = No_crash | Crash_after of int

exception Engine_crashed of int
(** The payload is the number of write operations initiated before
    death. *)
