(** Failure-injection policy for the simulated cloud. *)

type t = {
  transient_prob : float;  (** probability a write fails transiently *)
  permanent : (string * string) list;
      (** [(rtype, message)]: creates of this type always fail *)
  transient_types : (string * string) list;
      (** [(rtype, message)]: writes of this type always fail
          transiently — deterministically exhausts retry budgets *)
  hang_prob : float;  (** probability a write hangs (very slow) *)
  hang_factor : float;  (** duration multiplier when hanging *)
}

(** No injected failures. *)
val none : t

val make :
  ?transient_prob:float ->
  ?permanent:(string * string) list ->
  ?transient_types:(string * string) list ->
  ?hang_prob:float ->
  ?hang_factor:float ->
  unit ->
  t

type outcome =
  | Proceed
  | Slow of float  (** duration multiplier *)
  | Fail_transient of string
  | Fail_permanent of string

(** Draw the outcome for one write operation. *)
val draw : t -> Prng.t -> rtype:string -> outcome

(** {1 Time-windowed fault episodes}

    An episode is a fault regime bound to a window of simulated time:
    between [estart] and [efinish] every matching write is subject to
    the episode's verdict.  The cloud consults its installed episode
    list before the static per-call draw. *)

type episode_kind =
  | Outage  (** provider outage: every matching write fails *)
  | Error_storm  (** writes fail transiently with probability [emag] *)
  | Throttle_storm  (** writes are throttled with retry-after [emag] *)
  | Spot_termination
      (** out-of-band deletion wave of [emag] running instances;
          scheduled by the scenario installer, not by the cloud *)
  | Quota_cut  (** region quota floor drops to [emag] for the window *)

val episode_kind_to_string : episode_kind -> string

(** Inverse of {!episode_kind_to_string}; also accepts
    ["spot_termination"]. *)
val episode_kind_of_string : string -> episode_kind option

type episode = {
  ekind : episode_kind;
  ertype : string option;  (** [None] = every resource type *)
  eregion : string option;  (** [None] = every region *)
  estart : float;
  efinish : float;
  emag : float;
      (** kind-specific magnitude: error probability, throttle
          retry-after seconds, quota level, or spot-kill count *)
}

val episode :
  ?rtype:string ->
  ?region:string ->
  ?magnitude:float ->
  start_:float ->
  finish:float ->
  episode_kind ->
  episode

(** Is [e]'s window open at [now] for this (rtype, region)? *)
val episode_active :
  episode -> now:float -> rtype:string -> region:string -> bool

type episode_verdict =
  | Ep_error of string  (** fail the call transiently *)
  | Ep_throttle of float  (** throttle the call with this retry-after *)

(** First active episode's verdict for a write at [now], or [None] to
    fall through to the static draw.  Consumes PRNG only for an active
    [Error_storm] (one bernoulli per call), keeping calm-window replay
    byte-identical. *)
val episode_verdict :
  episode list ->
  Prng.t ->
  now:float ->
  rtype:string ->
  region:string ->
  episode_verdict option

(** Lowest active [Quota_cut] level for this (rtype, region), if any. *)
val quota_floor :
  episode list -> now:float -> rtype:string -> region:string -> int option

(** Crash injection for the engine *process* (as opposed to the cloud):
    [Crash_after k] kills the engine at the (k+1)-th cloud write
    operation, modelling process death at an arbitrary event boundary.
    Executors honour it by raising {!Engine_crashed}. *)
type crash_policy = No_crash | Crash_after of int

exception Engine_crashed of int
(** The payload is the number of write operations initiated before
    death. *)
