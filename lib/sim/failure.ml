(** Failure-injection policy for the simulated cloud.

    Transient failures model the retryable errors real providers emit
    (capacity blips, eventual-consistency 404s); permanent failures
    model configuration rejections.  Both are drawn deterministically
    from the simulation PRNG. *)

type t = {
  transient_prob : float;  (** probability a write op fails transiently *)
  permanent : (string * string) list;
      (** [(rtype, message)]: creates of this type always fail *)
  transient_types : (string * string) list;
      (** [(rtype, message)]: writes of this type always fail
          transiently — the deterministic way to exhaust an engine's
          retry budget *)
  hang_prob : float;  (** probability a write op hangs (very slow) *)
  hang_factor : float;  (** duration multiplier when hanging *)
}

let none =
  {
    transient_prob = 0.;
    permanent = [];
    transient_types = [];
    hang_prob = 0.;
    hang_factor = 1.;
  }

let make ?(transient_prob = 0.) ?(permanent = []) ?(transient_types = [])
    ?(hang_prob = 0.) ?(hang_factor = 20.) () =
  { transient_prob; permanent; transient_types; hang_prob; hang_factor }

type outcome =
  | Proceed
  | Slow of float  (** duration multiplier *)
  | Fail_transient of string
  | Fail_permanent of string

let draw t prng ~rtype =
  match List.assoc_opt rtype t.permanent with
  | Some msg -> Fail_permanent msg
  | None -> (
      match List.assoc_opt rtype t.transient_types with
      | Some msg -> Fail_transient msg
      | None ->
          if Prng.bernoulli prng t.transient_prob then
            Fail_transient "transient provider error (retryable)"
          else if Prng.bernoulli prng t.hang_prob then Slow t.hang_factor
          else Proceed)

(* ------------------------------------------------------------------ *)
(* Engine (process) death                                              *)
(* ------------------------------------------------------------------ *)

(** Crash injection for the *engine process* rather than the cloud:
    [Crash_after k] kills the engine at the (k+1)-th cloud write
    operation — the op's intent may already be durable (journaled) but
    the cloud never receives the call, while the up-to-[k] operations
    already in flight complete (or fail) on the cloud side with nobody
    listening.  Deterministic by construction: the crash point is an
    operation index, not a timer. *)
type crash_policy = No_crash | Crash_after of int

exception Engine_crashed of int
(** Raised by an executor honouring a {!crash_policy}; the payload is
    the number of cloud write operations initiated before death. *)
