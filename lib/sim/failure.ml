(** Failure-injection policy for the simulated cloud.

    Transient failures model the retryable errors real providers emit
    (capacity blips, eventual-consistency 404s); permanent failures
    model configuration rejections.  Both are drawn deterministically
    from the simulation PRNG. *)

type t = {
  transient_prob : float;  (** probability a write op fails transiently *)
  permanent : (string * string) list;
      (** [(rtype, message)]: creates of this type always fail *)
  transient_types : (string * string) list;
      (** [(rtype, message)]: writes of this type always fail
          transiently — the deterministic way to exhaust an engine's
          retry budget *)
  hang_prob : float;  (** probability a write op hangs (very slow) *)
  hang_factor : float;  (** duration multiplier when hanging *)
}

let none =
  {
    transient_prob = 0.;
    permanent = [];
    transient_types = [];
    hang_prob = 0.;
    hang_factor = 1.;
  }

let make ?(transient_prob = 0.) ?(permanent = []) ?(transient_types = [])
    ?(hang_prob = 0.) ?(hang_factor = 20.) () =
  { transient_prob; permanent; transient_types; hang_prob; hang_factor }

type outcome =
  | Proceed
  | Slow of float  (** duration multiplier *)
  | Fail_transient of string
  | Fail_permanent of string

let draw t prng ~rtype =
  match List.assoc_opt rtype t.permanent with
  | Some msg -> Fail_permanent msg
  | None -> (
      match List.assoc_opt rtype t.transient_types with
      | Some msg -> Fail_transient msg
      | None ->
          if Prng.bernoulli prng t.transient_prob then
            Fail_transient "transient provider error (retryable)"
          else if Prng.bernoulli prng t.hang_prob then Slow t.hang_factor
          else Proceed)

(* ------------------------------------------------------------------ *)
(* Time-windowed fault episodes                                        *)
(* ------------------------------------------------------------------ *)

(* Where the static policy above draws per call, an episode is a fault
   regime bound to a window of simulated time: between [estart] and
   [efinish] every matching write is subject to the episode's verdict.
   The cloud consults the episode list before the static draw, so a
   scenario can mix calm baseline noise with scheduled storms. *)

type episode_kind =
  | Outage  (** provider outage: every matching write fails *)
  | Error_storm  (** writes fail transiently with probability [emag] *)
  | Throttle_storm  (** writes are throttled with retry-after [emag] *)
  | Spot_termination
      (** out-of-band deletion wave of [emag] running instances;
          scheduled by the scenario installer, not by the cloud *)
  | Quota_cut  (** region quota floor drops to [emag] for the window *)

let episode_kind_to_string = function
  | Outage -> "outage"
  | Error_storm -> "error_storm"
  | Throttle_storm -> "throttle_storm"
  | Spot_termination -> "spot"
  | Quota_cut -> "quota_cut"

let episode_kind_of_string = function
  | "outage" -> Some Outage
  | "error_storm" -> Some Error_storm
  | "throttle_storm" -> Some Throttle_storm
  | "spot" | "spot_termination" -> Some Spot_termination
  | "quota_cut" -> Some Quota_cut
  | _ -> None

type episode = {
  ekind : episode_kind;
  ertype : string option;  (** [None] = every resource type *)
  eregion : string option;  (** [None] = every region *)
  estart : float;
  efinish : float;
  emag : float;
      (** kind-specific magnitude: error probability, throttle
          retry-after seconds, quota level, or spot-kill count *)
}

let episode ?rtype ?region ?(magnitude = 1.) ~start_ ~finish kind =
  {
    ekind = kind;
    ertype = rtype;
    eregion = region;
    estart = start_;
    efinish = finish;
    emag = magnitude;
  }

let episode_active e ~now ~rtype ~region =
  now >= e.estart && now < e.efinish
  && (match e.ertype with None -> true | Some t -> String.equal t rtype)
  && match e.eregion with None -> true | Some r -> String.equal r region

type episode_verdict =
  | Ep_error of string  (** fail the call transiently *)
  | Ep_throttle of float  (** throttle the call with this retry-after *)

let episode_verdict eps prng ~now ~rtype ~region =
  let rec go = function
    | [] -> None
    | e :: rest ->
        if not (episode_active e ~now ~rtype ~region) then go rest
        else (
          match e.ekind with
          | Outage -> Some (Ep_error "provider outage (episode)")
          | Error_storm ->
              if Prng.bernoulli prng e.emag then
                Some (Ep_error "error storm (episode)")
              else go rest
          | Throttle_storm -> Some (Ep_throttle e.emag)
          | Spot_termination | Quota_cut -> go rest)
  in
  go eps

let quota_floor eps ~now ~rtype ~region =
  List.fold_left
    (fun acc e ->
      if e.ekind = Quota_cut && episode_active e ~now ~rtype ~region then
        let q = int_of_float e.emag in
        match acc with None -> Some q | Some a -> Some (min a q)
      else acc)
    None eps

(* ------------------------------------------------------------------ *)
(* Engine (process) death                                              *)
(* ------------------------------------------------------------------ *)

(** Crash injection for the *engine process* rather than the cloud:
    [Crash_after k] kills the engine at the (k+1)-th cloud write
    operation — the op's intent may already be durable (journaled) but
    the cloud never receives the call, while the up-to-[k] operations
    already in flight complete (or fail) on the cloud side with nobody
    listening.  Deterministic by construction: the crash point is an
    operation index, not a timer. *)
type crash_policy = No_crash | Crash_after of int

exception Engine_crashed of int
(** Raised by an executor honouring a {!crash_policy}; the payload is
    the number of cloud write operations initiated before death. *)
