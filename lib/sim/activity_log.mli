(** Cloud activity log (Azure Activity Log / CloudTrail analogue).

    An append-only record of every management-plane operation,
    including those performed outside the IaC framework — the signal
    §3.5's log-based drift detector tails. *)

type actor =
  | Iac_engine of string  (** deployments driven by an IaC engine *)
  | Oob_script of string  (** out-of-band change (legacy script, portal) *)
  | Cloud_internal  (** provider-initiated events *)

type operation =
  | Log_create
  | Log_update
  | Log_delete
  | Log_read
  | Log_failure of string

type entry = {
  seq : int;  (** monotone sequence number, the cursor for tailing *)
  time : float;
  actor : actor;
  op : operation;
  cloud_id : string;
  rtype : string;
  region : string;
  detail : string;
}

type t

(** A registered push consumer (see {!subscribe}). *)
type subscription

val create : unit -> t

val append :
  t ->
  time:float ->
  actor:actor ->
  op:operation ->
  cloud_id:string ->
  rtype:string ->
  region:string ->
  detail:string ->
  entry

(** Total entries ever appended (= next sequence number). *)
val length : t -> int

(** Entries with [seq >= cursor], oldest first. *)
val since : t -> int -> entry list

(** All entries, oldest first. *)
val all : t -> entry list

(** Register a push consumer: every subsequently appended entry is
    delivered synchronously at append time, in subscription order —
    the multiplexed, event-driven alternative to per-consumer polling
    ({!since}).  [?from] first replays the recorded entries with
    [seq >= from], so a restarted consumer carries its cursor across
    the gap.  Delivery callbacks run inside {!append}; they must not
    themselves append re-entrantly. *)
val subscribe : t -> ?from:int -> (entry -> unit) -> subscription

(** Stop delivering to the subscription (idempotent). *)
val unsubscribe : t -> subscription -> unit

(** Currently active subscriptions. *)
val subscriber_count : t -> int

(** Total entries pushed to subscribers, replays included. *)
val deliveries : t -> int

val actor_to_string : actor -> string
val op_to_string : operation -> string
val pp_entry : Format.formatter -> entry -> unit

(** Write operations not attributable to an IaC engine — candidate
    drift events. *)
val non_iac_writes : t -> since:int -> entry list
