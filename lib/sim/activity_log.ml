(** Cloud activity log.

    Models Azure Monitor Activity Log / GCP Cloud Audit Logs: an
    append-only record of every management-plane operation, including
    those performed *outside* the IaC framework.  §3.5's log-based
    drift detector tails this log instead of scanning the deployment. *)

type actor =
  | Iac_engine of string  (** deployments driven by an IaC engine run id *)
  | Oob_script of string  (** out-of-band change, e.g. a legacy script *)
  | Cloud_internal  (** provider-initiated events (e.g. maintenance) *)

type operation =
  | Log_create
  | Log_update
  | Log_delete
  | Log_read
  | Log_failure of string

type entry = {
  seq : int;  (** monotone sequence number, the cursor for tailing *)
  time : float;
  actor : actor;
  op : operation;
  cloud_id : string;
  rtype : string;
  region : string;
  detail : string;
}

type subscription = { deliver : entry -> unit; mutable active : bool }

type t = {
  mutable entries : entry list;  (** newest first *)
  mutable next_seq : int;
  mutable subs : subscription list;
      (** oldest subscription first = delivery order *)
  mutable deliveries : int;
}

let create () = { entries = []; next_seq = 0; subs = []; deliveries = 0 }

(* Entries are newest-first with strictly decreasing [seq], so the tail
   read stops at the first entry below the cursor instead of filtering
   the whole history — per-deployment tailer polling at high tenant
   counts lives on this being O(new entries). *)
let since t cursor =
  let rec take acc = function
    | e :: rest when e.seq >= cursor -> take (e :: acc) rest
    | _ -> acc
  in
  take [] t.entries

let append t ~time ~actor ~op ~cloud_id ~rtype ~region ~detail =
  let e =
    { seq = t.next_seq; time; actor; op; cloud_id; rtype; region; detail }
  in
  t.next_seq <- t.next_seq + 1;
  t.entries <- e :: t.entries;
  List.iter
    (fun s ->
      if s.active then begin
        t.deliveries <- t.deliveries + 1;
        s.deliver e
      end)
    t.subs;
  e

let length t = t.next_seq

(** Register a push consumer: every entry appended from now on is
    delivered synchronously, in subscription order (deterministic fan-
    out).  [?from] replays the already-recorded entries with
    [seq >= from] first, so a resumed consumer can carry its cursor
    over a restart without losing events. *)
let subscribe t ?from deliver =
  let s = { deliver; active = true } in
  t.subs <- t.subs @ [ s ];
  (match from with
  | Some cursor when cursor < t.next_seq ->
      List.iter
        (fun e ->
          t.deliveries <- t.deliveries + 1;
          deliver e)
        (since t cursor)
  | _ -> ());
  s

(** Stop delivering to [s] (idempotent). *)
let unsubscribe t s =
  s.active <- false;
  t.subs <- List.filter (fun s' -> s'.active) t.subs

let subscriber_count t = List.length t.subs

(** Total entries pushed to subscribers (replays included) — the
    fan-out bill a fleet's metrics surface. *)
let deliveries t = t.deliveries

(** All entries, oldest first. *)
let all t = List.rev t.entries

let actor_to_string = function
  | Iac_engine run -> "iac:" ^ run
  | Oob_script name -> "oob:" ^ name
  | Cloud_internal -> "cloud"

let op_to_string = function
  | Log_create -> "create"
  | Log_update -> "update"
  | Log_delete -> "delete"
  | Log_read -> "read"
  | Log_failure msg -> "failure(" ^ msg ^ ")"

let pp_entry ppf e =
  Fmt.pf ppf "[%07.1f] #%d %s %s %s (%s in %s) %s" e.time e.seq
    (actor_to_string e.actor) (op_to_string e.op) e.cloud_id e.rtype e.region
    e.detail

(** Entries not attributable to any IaC engine — candidate drift
    events. *)
let non_iac_writes t ~since:cursor =
  List.filter
    (fun e ->
      match (e.actor, e.op) with
      | Iac_engine _, _ -> false
      | _, (Log_create | Log_update | Log_delete) -> true
      | _, (Log_read | Log_failure _) -> false)
    (since t cursor)
