(** Deterministic pseudo-random number generator (splitmix64).

    Everything stochastic in the simulator draws from explicit PRNG
    states seeded by the experiment harness, so every run is exactly
    reproducible. *)

type t

(** [create seed] — a fresh generator; equal seeds yield equal
    streams. *)
val create : int -> t

(** Independent copy (same future stream). *)
val copy : t -> t

(** Raw 64-bit step (exposed for hashing-style uses). *)
val next_int64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform int in [0, bound); raises {!Cloudless_error.Error} on
    non-positive bound. *)
val int : t -> int -> int

(** Uniform int in [lo, hi] inclusive. *)
val int_range : t -> int -> int -> int

(** Uniform float in [lo, hi). *)
val float_range : t -> float -> float -> float

(** Bernoulli draw with probability [p]. *)
val bernoulli : t -> float -> bool

(** Exponentially distributed with the given [mean]. *)
val exponential : t -> mean:float -> float

(** Uniformly random element of a non-empty list. *)
val choose : t -> 'a list -> 'a

(** Fisher-Yates shuffle (returns a new list). *)
val shuffle : t -> 'a list -> 'a list

(** Derive an independent child generator (stream splitting). *)
val split : t -> t
