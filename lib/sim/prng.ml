(** Deterministic pseudo-random number generator (splitmix64).

    Everything stochastic in the simulator (service-time jitter,
    transient failures, workload generation) draws from explicit PRNG
    states seeded by the experiment harness, so every run is exactly
    reproducible.  [Random.self_init] never appears in this codebase. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: good statistical quality, tiny, and portable. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"invalid-argument" "Prng.int: bound must be positive (got %d)" bound;
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 1) land max_int in
  r mod bound

(** Uniform int in [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"invalid-argument" "Prng.int_range: hi (%d) < lo (%d)" hi lo;
  lo + int t (hi - lo + 1)

(** Uniform float in [lo, hi). *)
let float_range t lo hi = lo +. (float t *. (hi -. lo))

(** Bernoulli draw with probability [p]. *)
let bernoulli t p = float t < p

(** Exponentially distributed with the given [mean]. *)
let exponential t ~mean =
  let u = float t in
  (* guard against log 0 *)
  let u = if u <= 1e-12 then 1e-12 else u in
  -.mean *. log u

(** Pick a uniformly random element of a non-empty list. *)
let choose t = function
  | [] ->
      Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
        ~code:"invalid-argument" "Prng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

(** Fisher-Yates shuffle (returns a new list). *)
let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(** Derive an independent child generator (for splitting streams between
    subsystems without correlating them). *)
let split t = { state = next_int64 t }
