(** Event queue for the discrete-event simulator: a thin veneer over
    the shared {!Pqueue} heap.

    Events are ordered by (time, sequence number): [Pqueue.Min_first]
    ties break in insertion order, which keeps runs deterministic. *)

type 'a t = (unit, 'a) Pqueue.t

(* untracked: the event loop never removes by key, so skip the per-push
   live-counter hashtable churn *)
let create () = Pqueue.create ~track:false Pqueue.Min_first

let is_empty = Pqueue.is_empty
let length = Pqueue.length

(** Schedule [payload] at absolute [time]. *)
let push t ~time payload = Pqueue.push t ~prio:time ~key:() payload

(** Remove and return the earliest event. *)
let pop t =
  match Pqueue.pop t with
  | None -> None
  | Some (time, (), payload) -> Some (time, payload)

(** Earliest event time without removing it. *)
let peek_time = Pqueue.peek_prio
