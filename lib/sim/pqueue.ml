(** Generic keyed priority queue (binary heap); see the interface for
    the ordering and lazy-deletion contract.

    Stored structure-of-arrays: priorities live in a bare [float
    array] (unboxed by the runtime), so a push allocates nothing
    beyond amortized growth — the previous per-entry record boxed the
    float and cost ~6 words on every event and every ready-set
    admission. *)

type order = Min_first | Max_first

type ('k, 'a) t = {
  order : order;
  mutable prios : float array;
  mutable seqs : int array;
  mutable keys : 'k array;
  mutable payloads : 'a array;
  mutable size : int;  (** slots in use, tombstoned entries included *)
  mutable next_seq : int;
  tracked : bool;  (** key accounting enabled ({!mem}/{!remove}) *)
  live : ('k, int) Hashtbl.t;  (** key -> live entries in the heap *)
  tombs : ('k, int) Hashtbl.t;  (** key -> entries pending lazy deletion *)
  mutable tomb_count : int;
  mutable peak : int;
}

let create ?(initial_capacity = 0) ?(track = true) order =
  {
    order;
    prios = [||];
    seqs = [||];
    keys = [||];
    payloads = [||];
    size = 0;
    next_seq = 0;
    tracked = track;
    live = Hashtbl.create (if track then max 16 initial_capacity else 1);
    tombs = Hashtbl.create (if track then 16 else 1);
    tomb_count = 0;
    peak = 0;
  }

let length t = t.size - t.tomb_count
let is_empty t = length t = 0
let peak_length t = t.peak

(* The (prio, seq) comparison is strict and total (seq is unique), so
   pops are deterministic regardless of heap shape. *)
let before t i j =
  let pi = t.prios.(i) and pj = t.prios.(j) in
  match t.order with
  | Min_first -> pi < pj || (pi = pj && t.seqs.(i) < t.seqs.(j))
  | Max_first -> pi > pj || (pi = pj && t.seqs.(i) > t.seqs.(j))

let swap t i j =
  let p = t.prios.(i) in
  t.prios.(i) <- t.prios.(j);
  t.prios.(j) <- p;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let a = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- a

let counter_get tbl k = match Hashtbl.find_opt tbl k with Some n -> n | None -> 0

let counter_incr tbl k = Hashtbl.replace tbl k (counter_get tbl k + 1)

let counter_decr tbl k =
  match counter_get tbl k - 1 with
  | 0 -> Hashtbl.remove tbl k
  | n -> Hashtbl.replace tbl k n

(* Grow by doubling, filling fresh key/payload slots with the values
   about to be pushed — live values, so no [Obj.magic] dummy is ever
   stored. *)
let ensure_capacity t key payload =
  if t.size = Array.length t.prios then begin
    let ncap = max 16 (2 * Array.length t.prios) in
    let np = Array.make ncap 0. in
    Array.blit t.prios 0 np 0 t.size;
    t.prios <- np;
    let ns = Array.make ncap 0 in
    Array.blit t.seqs 0 ns 0 t.size;
    t.seqs <- ns;
    let nk = Array.make ncap key in
    Array.blit t.keys 0 nk 0 t.size;
    t.keys <- nk;
    let na = Array.make ncap payload in
    Array.blit t.payloads 0 na 0 t.size;
    t.payloads <- na
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let first = ref i in
  if l < t.size && before t l !first then first := l;
  if r < t.size && before t r !first then first := r;
  if !first <> i then begin
    swap t i !first;
    sift_down t !first
  end

let push t ~prio ~key payload =
  ensure_capacity t key payload;
  let i = t.size in
  t.prios.(i) <- prio;
  t.seqs.(i) <- t.next_seq;
  t.keys.(i) <- key;
  t.payloads.(i) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i;
  if t.tracked then counter_incr t.live key;
  let live_now = length t in
  if live_now > t.peak then t.peak <- live_now

(* Drop the root: move the last element into its place and restore the
   heap property.  (The vacated tail slot keeps its old value, exactly
   like the record-array implementation did.) *)
let drop_root t =
  t.size <- t.size - 1;
  if t.size > 0 then begin
    swap t 0 t.size;
    sift_down t 0
  end

(* Discard tombstoned entries sitting at the root. *)
let rec settle t =
  if t.size > 0 && t.tomb_count > 0 then begin
    let k = t.keys.(0) in
    if counter_get t.tombs k > 0 then begin
      drop_root t;
      counter_decr t.tombs k;
      t.tomb_count <- t.tomb_count - 1;
      settle t
    end
  end

let pop t =
  settle t;
  if t.size = 0 then None
  else begin
    let prio = t.prios.(0) and key = t.keys.(0) and payload = t.payloads.(0) in
    drop_root t;
    if t.tracked then counter_decr t.live key;
    Some (prio, key, payload)
  end

let peek t =
  settle t;
  if t.size = 0 then None
  else Some (t.prios.(0), t.keys.(0), t.payloads.(0))

let peek_prio t = Option.map (fun (p, _, _) -> p) (peek t)

let mem t key = t.tracked && counter_get t.live key > 0

let remove t key =
  if not t.tracked then
    invalid_arg "Pqueue.remove: queue created with ~track:false";
  if counter_get t.live key > 0 then begin
    counter_decr t.live key;
    counter_incr t.tombs key;
    t.tomb_count <- t.tomb_count + 1;
    true
  end
  else false
