(** Generic keyed priority queue (binary heap); see the interface for
    the ordering and lazy-deletion contract. *)

type order = Min_first | Max_first

type ('k, 'a) entry = { prio : float; seq : int; key : 'k; payload : 'a }

type ('k, 'a) t = {
  order : order;
  mutable heap : ('k, 'a) entry array;  (** heap.(0) orders first *)
  mutable size : int;  (** slots in use, tombstoned entries included *)
  mutable next_seq : int;
  live : ('k, int) Hashtbl.t;  (** key -> live entries in the heap *)
  tombs : ('k, int) Hashtbl.t;  (** key -> entries pending lazy deletion *)
  mutable tomb_count : int;
  mutable peak : int;
}

let create ?(initial_capacity = 0) order =
  {
    order;
    heap = [||];
    size = 0;
    next_seq = 0;
    live = Hashtbl.create (max 16 initial_capacity);
    tombs = Hashtbl.create 16;
    tomb_count = 0;
    peak = 0;
  }

let length t = t.size - t.tomb_count
let is_empty t = length t = 0
let peak_length t = t.peak

(* The (prio, seq) comparison is strict and total (seq is unique), so
   pops are deterministic regardless of heap shape. *)
let before t a b =
  match t.order with
  | Min_first -> a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)
  | Max_first -> a.prio > b.prio || (a.prio = b.prio && a.seq > b.seq)

let counter_get tbl k = match Hashtbl.find_opt tbl k with Some n -> n | None -> 0

let counter_incr tbl k = Hashtbl.replace tbl k (counter_get tbl k + 1)

let counter_decr tbl k =
  match counter_get tbl k - 1 with
  | 0 -> Hashtbl.remove tbl k
  | n -> Hashtbl.replace tbl k n

(* Grow by doubling, filling fresh slots with the entry about to be
   pushed — a live value, so no [Obj.magic] dummy is ever stored. *)
let ensure_capacity t fill =
  if t.size = Array.length t.heap then begin
    let ncap = max 16 (2 * Array.length t.heap) in
    let nh = Array.make ncap fill in
    Array.blit t.heap 0 nh 0 t.size;
    t.heap <- nh
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let first = ref i in
  if l < t.size && before t t.heap.(l) t.heap.(!first) then first := l;
  if r < t.size && before t t.heap.(r) t.heap.(!first) then first := r;
  if !first <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!first);
    t.heap.(!first) <- tmp;
    sift_down t !first
  end

let push t ~prio ~key payload =
  let e = { prio; seq = t.next_seq; key; payload } in
  ensure_capacity t e;
  t.heap.(t.size) <- e;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  counter_incr t.live key;
  let live_now = length t in
  if live_now > t.peak then t.peak <- live_now

let pop_root t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  top

(* Discard tombstoned entries sitting at the root. *)
let rec settle t =
  if t.size > 0 && t.tomb_count > 0 then begin
    let root = t.heap.(0) in
    if counter_get t.tombs root.key > 0 then begin
      ignore (pop_root t);
      counter_decr t.tombs root.key;
      t.tomb_count <- t.tomb_count - 1;
      settle t
    end
  end

let pop t =
  settle t;
  if t.size = 0 then None
  else begin
    let top = pop_root t in
    counter_decr t.live top.key;
    Some (top.prio, top.key, top.payload)
  end

let peek t =
  settle t;
  if t.size = 0 then None
  else
    let top = t.heap.(0) in
    Some (top.prio, top.key, top.payload)

let peek_prio t = Option.map (fun (p, _, _) -> p) (peek t)

let mem t key = counter_get t.live key > 0

let remove t key =
  if counter_get t.live key > 0 then begin
    counter_decr t.live key;
    counter_incr t.tombs key;
    t.tomb_count <- t.tomb_count + 1;
    true
  end
  else false
