(** Token-bucket API rate limiter.

    Public clouds throttle management-plane calls (e.g. Azure Resource
    Manager allows ~12000 reads and ~1200 writes per hour per
    subscription and answers excess calls with 429 + Retry-After).
    §3.3 and §3.5 both hinge on this behaviour: deployment scheduling
    must respect it, and scan-based drift detection is expensive
    because of it. *)

(* The two hot cells live in a float array, not mutable float fields:
   the record also carries int counters, so it is not a flat float
   record and every [t.tokens <- ...] would box a fresh float.  Stores
   into a [float array] stay unboxed — the pacer runs per admitted
   change and showed up in apply-leg allocation profiles. *)
type t = {
  capacity : float;  (** bucket size (burst) *)
  refill_rate : float;  (** tokens per second *)
  cells : float array;  (** [|tokens; last_refill (sim time)|] *)
  mutable total_admitted : int;
  mutable total_throttled : int;
}

let create ~capacity ~refill_rate =
  {
    capacity;
    refill_rate;
    cells = [| capacity; 0. |];
    total_admitted = 0;
    total_throttled = 0;
  }

(* AWS-ish default write budget: token bucket with a ~2/s sustained
   rate (EC2-style request-rate limiting). *)
let default_write () = create ~capacity:50. ~refill_rate:2.

(* AWS-ish read budget. *)
let default_read () = create ~capacity:100. ~refill_rate:10.

(* Azure Resource Manager-style budgets: 1200 writes and 12000 reads
   per hour per subscription — the tight regime of §3.3/§3.5. *)
let azure_write () = create ~capacity:40. ~refill_rate:(1200. /. 3600.)
let azure_read () = create ~capacity:100. ~refill_rate:(12000. /. 3600.)

let refill t ~now =
  if now > t.cells.(1) then begin
    t.cells.(0) <-
      Float.min t.capacity
        (t.cells.(0) +. ((now -. t.cells.(1)) *. t.refill_rate));
    t.cells.(1) <- now
  end

(** Try to admit one call at simulation time [now].  On throttle,
    returns the Retry-After delay (seconds until a token will be
    available). *)
let try_acquire t ~now =
  refill t ~now;
  if t.cells.(0) >= 1. then begin
    t.cells.(0) <- t.cells.(0) -. 1.;
    t.total_admitted <- t.total_admitted + 1;
    Ok ()
  end
  else begin
    t.total_throttled <- t.total_throttled + 1;
    let deficit = 1. -. t.cells.(0) in
    Error (deficit /. t.refill_rate)
  end

(** Reserve one token, allowing the balance to go negative: returns the
    delay after which the reservation is covered by refill.  This is
    the client-side pacing primitive — K reservations beyond the burst
    capacity space themselves K/rate apart instead of colliding. *)
let reserve t ~now =
  refill t ~now;
  t.cells.(0) <- t.cells.(0) -. 1.;
  t.total_admitted <- t.total_admitted + 1;
  if t.cells.(0) >= 0. then 0. else -.t.cells.(0) /. t.refill_rate

(** Tokens currently available (after refill at [now]). *)
let available t ~now =
  refill t ~now;
  t.cells.(0)

(** Seconds until [n] tokens would be available. *)
let time_until t ~now n =
  refill t ~now;
  if t.cells.(0) >= n then 0. else (n -. t.cells.(0)) /. t.refill_rate

let stats t = (t.total_admitted, t.total_throttled)

let reset_stats t =
  t.total_admitted <- 0;
  t.total_throttled <- 0
