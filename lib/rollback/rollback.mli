(** Rollback planning (§3.4).

    "Simply applying a previous configuration doesn't always roll back
    the infrastructure to its intended previous state": some attribute
    changes are not reversible in place (force-new attributes), and the
    live resource may carry out-of-band modifications never captured in
    any configuration.

    - {!Naive_reapply} (the baseline) diffs the target state against
      the *recorded* current state only — exactly what replaying the
      old configuration does.  Misses out-of-band modifications.
    - {!Reversibility_aware} consults the *live* cloud attributes,
      classifies each divergence as reversible (plain update back),
      irreversible (destroy + recreate), or unmanaged drift (reset),
      and emits the minimal redeployment achieving the target. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module State = Cloudless_state.State
module Plan = Cloudless_plan.Plan

type strategy = Naive_reapply | Reversibility_aware

type classification =
  | Unchanged
  | Reversible of Plan.attr_change list
  | Irreversible of { changes : Plan.attr_change list; reasons : string list }

(** Strip cloud-computed attributes (fresh ids etc.) — they never count
    as divergence. *)
val managed_attrs : string -> Value.t Smap.t -> Value.t Smap.t

val diff_managed :
  string -> target:Value.t Smap.t -> actual:Value.t Smap.t ->
  Plan.attr_change list

val classify :
  string -> target:Value.t Smap.t -> actual:Value.t Smap.t -> classification

type rollback_plan = {
  plan : Plan.t;
  strategy : strategy;
  redeployed : Addr.t list;  (** resources destroyed + recreated *)
  updated : Addr.t list;
  missed_divergences : Addr.t list;
      (** resources whose live attrs diverge but the strategy didn't
          notice (naive only) *)
}

(** Plan a rollback to [target].  [current] is the recorded state after
    the failed/unwanted update; [live] reads the resource's *actual*
    cloud attributes ([None] = no longer exists in the cloud). *)
val plan_rollback :
  strategy:strategy ->
  target:State.t ->
  current:State.t ->
  live:(Addr.t -> Value.t Smap.t option) ->
  unit ->
  rollback_plan

(** After executing a rollback, measure residual divergence: managed
    attributes that still differ between the live cloud and the target
    state.  The criterion for a *faithful* rollback is the empty
    list. *)
val residual_divergence :
  target:State.t ->
  live:(Addr.t -> Value.t Smap.t option) ->
  (Addr.t * string) list
