(** The rollout state machine (E18).

    One {!t} tracks a {!Change.t} being carried across a fleet:
    tenants sliced into waves ({!Planner.waves}), each wave moving
    [Pending -> In_flight -> Committed] on a gate pass or
    [-> Rolled_back] (with every later wave [Halted]) on a gate fail.

    Every transition is journaled as a {!Journal.Wave_mark} in the
    rollout's own journal, flushed at the mark (both journal modes
    barrier on wave marks) — so a crash mid-wave leaves a durable
    record of exactly which waves committed.  {!cursor} reads that
    record back: resuming re-submits from the first uncommitted wave,
    and re-submitting an already-committed wave is harmless because
    its per-tenant plans are empty (the configs already converged).

    The machine is deliberately event-agnostic: the control-plane
    driver ([Cloudless_controlplane.Rollout]) owns submission, gate
    health collection and timing; this module owns only the schedule,
    the transitions and their durability. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Rollback = Cloudless_rollback.Rollback

type status = Pending | In_flight | Committed | Rolled_back | Halted

let status_to_string = function
  | Pending -> "pending"
  | In_flight -> "in_flight"
  | Committed -> "committed"
  | Rolled_back -> "rolled_back"
  | Halted -> "halted"

type wave = { index : int; tenants : string list; mutable status : status }

type t = {
  change : Change.t;
  waves : wave array;
  journal : Journal.t option;
}

let create ~(change : Change.t) ~tenants ?journal () =
  let slices =
    Planner.waves ~canary:change.Change.canary ~growth:change.Change.growth
      tenants
  in
  let waves =
    Array.of_list
      (List.mapi (fun index tenants -> { index; tenants; status = Pending }) slices)
  in
  { change; waves; journal }

let change t = t.change
let waves t = Array.to_list t.waves

let mark t ~wave ~phase ~tenants ~time =
  match t.journal with
  | None -> ()
  | Some j ->
      Journal.append j
        (Journal.Wave_mark { wave; wphase = phase; tenants; wtime = time })

let transition t i status ~phase ~time =
  let w = t.waves.(i) in
  w.status <- status;
  mark t ~wave:i ~phase ~tenants:w.tenants ~time

let start t i ~time = transition t i In_flight ~phase:"started" ~time
let commit t i ~time = transition t i Committed ~phase:"committed" ~time
let roll_back t i ~time = transition t i Rolled_back ~phase:"rolled_back" ~time

(** Halt every still-pending wave (one journal mark carrying all the
    never-touched tenants, recorded under the first halted index). *)
let halt t ~time =
  let halted =
    Array.to_list t.waves
    |> List.filter (fun w -> w.status = Pending || w.status = In_flight)
  in
  List.iter (fun w -> w.status <- Halted) halted;
  match halted with
  | [] -> ()
  | first :: _ ->
      mark t ~wave:first.index ~phase:"halted"
        ~tenants:(List.concat_map (fun w -> w.tenants) halted)
        ~time

(** The next wave to submit, in schedule order; [None] once every wave
    is committed, rolled back or halted. *)
let next t =
  let n = Array.length t.waves in
  let rec go i =
    if i >= n then None
    else
      match t.waves.(i).status with
      | Pending | In_flight -> Some t.waves.(i)
      | Committed -> go (i + 1)
      | Rolled_back | Halted -> None
  in
  go 0

let finished t = next t = None

(** Did the rollout converge fleet-wide? *)
let converged t = Array.for_all (fun w -> w.status = Committed) t.waves

(** Tenants a wave submission has ever reached (committed, in flight
    or rolled back) — the blast radius. *)
let touched_tenants t =
  Array.to_list t.waves
  |> List.concat_map (fun w ->
         match w.status with
         | In_flight | Committed | Rolled_back -> w.tenants
         | Pending | Halted -> [])

let committed_tenants t =
  Array.to_list t.waves
  |> List.concat_map (fun w ->
         if w.status = Committed then w.tenants else [])

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

type cursor =
  | Resume_at of int
      (** first uncommitted wave (0 = nothing durable yet) *)
  | Finished of string  (** terminal phase: "rolled_back" or "halted" *)

(** Read the durable rollout record back.  Commits advance the cursor;
    a rolled-back or halted mark is terminal (the rollout must not be
    resumed past a tripped gate). *)
let cursor entries =
  List.fold_left
    (fun acc e ->
      match (acc, e) with
      | Finished _, _ -> acc
      | Resume_at k, Journal.Wave_mark { wave; wphase = "committed"; _ } ->
          Resume_at (max k (wave + 1))
      | ( Resume_at _,
          Journal.Wave_mark { wphase = ("rolled_back" | "halted") as p; _ } ) ->
          Finished p
      | Resume_at _, _ -> acc)
    (Resume_at 0) entries

(** Restore wave statuses from a reloaded journal: waves below the
    cursor are committed, and a terminal mark reproduces the
    rolled-back/halted picture. *)
let restore t entries =
  (match cursor entries with
  | Resume_at k ->
      Array.iter (fun w -> if w.index < k then w.status <- Committed) t.waves
  | Finished _ ->
      List.iter
        (function
          | Journal.Wave_mark { wave; wphase; _ } ->
              let status =
                match wphase with
                | "committed" -> Some Committed
                | "rolled_back" -> Some Rolled_back
                | "halted" -> Some Halted
                | _ -> None
              in
              Option.iter
                (fun s ->
                  if wave < Array.length t.waves then
                    (* a halted mark covers every later wave too *)
                    if s = Halted then
                      Array.iter
                        (fun w -> if w.index >= wave then w.status <- Halted)
                        t.waves
                    else t.waves.(wave).status <- s)
                status
          | _ -> ())
        entries);
  t

(* ------------------------------------------------------------------ *)
(* Wave-scoped inverse plans                                           *)
(* ------------------------------------------------------------------ *)

(** The inverse plan for one tenant of a failed wave: reversibility-
    aware rollback from [current] (the state after the bad change) to
    [target] (the pre-wave snapshot), consulting [live] so out-of-band
    divergence accumulated during the wave is reset too. *)
let inverse_plan ~(target : State.t) ~(current : State.t)
    ~(live : Addr.t -> Value.t Smap.t option) : Rollback.rollback_plan =
  Rollback.plan_rollback ~strategy:Rollback.Reversibility_aware ~target
    ~current ~live ()
