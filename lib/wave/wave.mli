(** The rollout state machine (E18): a {!Change.t} carried across a
    fleet in canary → growing waves, every transition journaled as a
    {!Journal.Wave_mark} so a crash mid-wave resumes from the last
    committed wave boundary.  Event-agnostic: the control-plane driver
    owns submission, gate health and timing; this module owns the
    schedule, the transitions and their durability. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Rollback = Cloudless_rollback.Rollback

type status = Pending | In_flight | Committed | Rolled_back | Halted

val status_to_string : status -> string

type wave = { index : int; tenants : string list; mutable status : status }
type t

(** Slice [tenants] into waves per the change's canary/growth schedule.
    With [journal], transitions append {!Journal.Wave_mark} records. *)
val create :
  change:Change.t -> tenants:string list -> ?journal:Journal.t -> unit -> t

val change : t -> Change.t
val waves : t -> wave list

val start : t -> int -> time:float -> unit
val commit : t -> int -> time:float -> unit
val roll_back : t -> int -> time:float -> unit

(** Halt every still-pending wave (one journal mark carrying all the
    never-touched tenants). *)
val halt : t -> time:float -> unit

(** The next wave to submit, in schedule order; [None] once every wave
    is committed, rolled back or halted. *)
val next : t -> wave option

val finished : t -> bool

(** Did the rollout converge fleet-wide? *)
val converged : t -> bool

(** Tenants a wave submission has ever reached — the blast radius. *)
val touched_tenants : t -> string list

val committed_tenants : t -> string list

type cursor =
  | Resume_at of int
      (** first uncommitted wave (0 = nothing durable yet) *)
  | Finished of string  (** terminal phase: "rolled_back" or "halted" *)

(** Read the durable rollout record back.  Commits advance the cursor;
    a rolled-back or halted mark is terminal. *)
val cursor : Journal.entry list -> cursor

(** Restore wave statuses from a reloaded journal. *)
val restore : t -> Journal.entry list -> t

(** The inverse plan for one tenant of a failed wave: reversibility-
    aware rollback from [current] to the pre-wave [target], consulting
    [live] so out-of-band divergence accumulated during the wave is
    reset too. *)
val inverse_plan :
  target:State.t ->
  current:State.t ->
  live:(Addr.t -> Value.t Smap.t option) ->
  Rollback.rollback_plan
