(** Wave planning: slice the target fleet into canary → geometrically
    growing waves, and compile a {!Change.t} into per-tenant config
    rewrites. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Smap = Value.Smap
module Policy = Cloudless_policy.Policy

(** Slice [items] (order preserved) into waves: the first of size
    [canary], each subsequent [growth] x larger, the last taking
    whatever remains.  Invariants: concatenating the waves reproduces
    [items] exactly; no wave is empty; sizes follow the geometric
    schedule except the final remainder wave.
    @raise Invalid_argument when [canary < 1] or [growth < 1]. *)
val waves : canary:int -> growth:int -> 'a list -> 'a list list

(** Size each wave would have for a fleet of [n] tenants. *)
val wave_sizes : canary:int -> growth:int -> int -> int list

(** Fan a ["rtype.*"] (or bare ["rtype"]) target out to every resource
    of the type in [cfg]; exact targets pass through. *)
val expand_target : Hcl.Config.t -> string -> string list

val expand_decision : Hcl.Config.t -> Policy.decision -> Policy.decision list

(** Apply a change's decisions to one tenant's configuration.  Returns
    the rewritten config and whether anything changed. *)
val rewrite_config :
  Change.t -> ?obs:Policy.obs -> Hcl.Config.t -> Hcl.Config.t * bool

(** Apply a change to one tenant's configuration *source*: parse,
    rewrite, re-render canonically.  [None] when the change does not
    touch this tenant. *)
val rewrite_src :
  Change.t -> ?obs:Policy.obs -> file:string -> string -> string option
