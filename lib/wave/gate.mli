(** The between-wave policy/health gate: one {!health} snapshot per
    wave boundary folds into a {!verdict}, every failing signal
    reported. *)

module Rego_like = Cloudless_policy.Rego_like

type health = {
  violations : Rego_like.violation list;
      (** gate-predicate violations over the touched tenants'
          evaluated instances *)
  failed_requests : int;  (** apply failures inside the wave *)
  open_cells : int;  (** circuit-breaker cells currently open (E17) *)
  episode_faults : int;  (** injected-fault responses during the wave *)
  projected_cost : float option;
      (** fleet hourly cost if the rollout continues *)
}

(** All-quiet snapshot; harnesses override the fields they measure. *)
val calm : health

type verdict = Pass | Fail of string list

val evaluate : Change.t -> health -> verdict
val verdict_to_string : verdict -> string
