(** Wave planning: slice the target fleet into canary → geometrically
    growing waves, and compile a {!Change.t} into per-tenant config
    rewrites (whose plans the control plane then impact-scopes).

    The schedule is the classic staged rollout: wave 0 is the canary
    ([canary] tenants), wave k+1 is [growth] times the size of wave k,
    so a fleet of n tenants needs O(log n) gate evaluations while the
    blast radius of a bad change stays bounded by the canary. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Smap = Value.Smap
module Policy = Cloudless_policy.Policy
module Controller = Cloudless_policy.Controller

(* ------------------------------------------------------------------ *)
(* Wave schedule                                                       *)
(* ------------------------------------------------------------------ *)

(** Slice [items] (tenant order preserved) into waves: the first of
    size [canary], each subsequent [growth] x larger, the last taking
    whatever remains.  Invariants (QCheck-tested): concatenating the
    waves reproduces [items] exactly (every tenant in exactly one
    wave); no wave is empty; sizes follow the schedule except the
    final remainder wave. *)
let waves ~canary ~growth items =
  if canary < 1 then invalid_arg "Planner.waves: canary < 1";
  if growth < 1 then invalid_arg "Planner.waves: growth < 1";
  let rec go size = function
    | [] -> []
    | items ->
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> take (k - 1) (x :: acc) rest
        in
        let wave, rest = take size [] items in
        (* saturating multiply: a 10-wave schedule at growth 8 would
           otherwise overflow long before a realistic fleet runs out *)
        let next =
          if size > max_int / growth then max_int else size * growth
        in
        wave :: go next rest
  in
  go canary items

(** Size each wave would have for a fleet of [n] tenants. *)
let wave_sizes ~canary ~growth n =
  List.map List.length (waves ~canary ~growth (List.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* Config rewriting                                                    *)
(* ------------------------------------------------------------------ *)

(* A bulk change says "every aws_instance" where a policy says
   "aws_instance.web": targets of the form ["rtype.*"] or bare
   ["rtype"] fan the decision out to every resource of the type. *)
let expand_target (cfg : Hcl.Config.t) target =
  let rtype, rname = Controller.split_target target in
  if rname = "*" || rname = "" then
    List.filter_map
      (fun (r : Hcl.Config.resource) ->
        if r.Hcl.Config.rtype = rtype then
          Some (rtype ^ "." ^ r.Hcl.Config.rname)
        else None)
      cfg.Hcl.Config.resources
  else [ target ]

let expand_decision cfg (d : Policy.decision) : Policy.decision list =
  match d with
  | Policy.D_set_count { target; count } ->
      List.map
        (fun target -> Policy.D_set_count { target; count })
        (expand_target cfg target)
  | Policy.D_set_attr { target; attr; value } ->
      List.map
        (fun target -> Policy.D_set_attr { target; attr; value })
        (expand_target cfg target)
  | Policy.D_deny _ | Policy.D_notify _ -> [ d ]

(** Apply a change's decisions to one tenant's configuration.
    Returns the rewritten config and whether anything changed. *)
let rewrite_config (c : Change.t) ?(obs = Smap.empty) (cfg : Hcl.Config.t) :
    Hcl.Config.t * bool =
  List.fold_left
    (fun (cfg, any) d ->
      List.fold_left
        (fun (cfg, any) d ->
          let cfg', changed = Controller.apply_decision cfg d in
          (cfg', any || changed))
        (cfg, any) (expand_decision cfg d))
    (cfg, false) (Change.decide ~obs c)

(** Apply a change to one tenant's configuration *source*: parse,
    rewrite, re-render canonically.  [None] when the change does not
    touch this tenant (its plan would be empty anyway; skipping keeps
    the management-call bill honest). *)
let rewrite_src (c : Change.t) ?(obs = Smap.empty) ~file src : string option =
  let cfg = Hcl.Config.parse ~file src in
  let cfg', changed = rewrite_config c ~obs cfg in
  if changed then Some (Hcl.Config.to_string cfg') else None
