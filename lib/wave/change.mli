(** Fleet-wide bulk-change specs (E18): an intent stated once in HCL
    ([change "name" { ... }] blocks), carried across the fleet by the
    wave rollout machinery.  [action] sub-blocks reuse the policy
    DSL's action vocabulary; [gate] sub-blocks compile to
    {!Rego_like.check} predicates evaluated at every wave boundary. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Smap = Value.Smap
module Policy = Cloudless_policy.Policy
module Rego_like = Cloudless_policy.Rego_like

type t = {
  cname : string;
  actions : Policy.action list;
  canary : int;  (** tenants in the first wave (>= 1) *)
  growth : int;  (** geometric wave-size factor (>= 1) *)
  gates : Rego_like.check list;
      (** deny-predicates evaluated at every wave boundary *)
  budget : float option;  (** projected fleet hourly-cost ceiling *)
  cspan : Hcl.Loc.span;
}

val parse_gate : Hcl.Ast.block -> Rego_like.check
val parse_change : Hcl.Ast.block -> t

(** Parse a change file (a sequence of [change "name" { ... }] blocks).
    @raise Policy.Policy_error on malformed blocks. *)
val parse : file:string -> string -> t list

(** Evaluate the change's actions into concrete decisions (the policy
    engine's decision vocabulary, so config rewriting is shared).
    [obs] defaults to the empty observation context — bulk changes are
    usually literal. *)
val decide : ?obs:Policy.obs -> t -> Policy.decision list
