(** Fleet-wide bulk-change specs (E18).

    A *change* states an intent once — "bump [instance_type]
    everywhere", "forbid public buckets" — in the same HCL the
    infrastructure and policies use, and the wave rollout machinery
    carries it across the whole fleet:

    {v
    change "bump_itype" {
      canary = 1          # tenants in the first wave
      growth = 3          # wave k+1 is growth x the size of wave k
      budget = 250.0      # optional projected-hourly-cost ceiling

      action "bump" {
        kind   = "set_attr"
        target = "aws_instance.*"     # "*" = every resource of the type
        attr   = "instance_type"
        value  = "t3.large"
      }

      gate "no_public_acl" {
        kind    = "attr_equals"
        rtype   = "aws_s3_bucket"
        attr    = "acl"
        value   = "public-read"
        message = "public buckets are forbidden"
      }
    }
    v}

    [action] blocks reuse the policy DSL's action vocabulary
    ({!Policy.parse_action}); [gate] blocks compile to the baseline
    checker's predicates ({!Rego_like.check}), evaluated between waves
    over the evaluated instances of every tenant the change has
    touched so far. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Smap = Value.Smap
module Policy = Cloudless_policy.Policy
module Rego_like = Cloudless_policy.Rego_like

type t = {
  cname : string;
  actions : Policy.action list;
  canary : int;  (** tenants in the first wave (>= 1) *)
  growth : int;  (** geometric wave-size factor (>= 1) *)
  gates : Rego_like.check list;
      (** deny-predicates evaluated at every wave boundary *)
  budget : float option;  (** projected fleet hourly-cost ceiling *)
  cspan : Hcl.Loc.span;
}

let errf span fmt = Fmt.kstr (fun s -> raise (Policy.Policy_error (s, span))) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let literal_of b attr =
  match Hcl.Ast.attr b.Hcl.Ast.bbody attr with
  | Some { Hcl.Ast.desc = Hcl.Ast.Template [ Hcl.Ast.Lit s ]; _ } -> Some s
  | Some _ ->
      errf b.Hcl.Ast.bspan "gate %S: %S must be a literal string"
        (match b.Hcl.Ast.labels with [ n ] -> n | _ -> "?")
        attr
  | None -> None

let int_of b attr =
  match Hcl.Ast.attr b.Hcl.Ast.bbody attr with
  | Some { Hcl.Ast.desc = Hcl.Ast.Int n; _ } -> Some n
  | Some _ ->
      errf b.Hcl.Ast.bspan "%S must be an integer literal" attr
  | None -> None

let parse_gate (b : Hcl.Ast.block) : Rego_like.check =
  let name = match b.Hcl.Ast.labels with [ n ] -> n | _ -> "gate" in
  let req attr =
    match literal_of b attr with
    | Some s -> s
    | None -> errf b.Hcl.Ast.bspan "gate %S: missing %S" name attr
  in
  let deny_message =
    match literal_of b "message" with
    | Some m -> m
    | None -> Printf.sprintf "gate %s violated" name
  in
  let predicate =
    match req "kind" with
    | "attr_equals" ->
        Rego_like.Attr_equals
          {
            rtype = req "rtype";
            attr = req "attr";
            value = Value.Vstring (req "value");
          }
    | "attr_present" ->
        Rego_like.Attr_present { rtype = req "rtype"; attr = req "attr" }
    | "attr_absent" ->
        Rego_like.Attr_absent { rtype = req "rtype"; attr = req "attr" }
    | "type_forbidden" -> Rego_like.Type_forbidden (req "rtype")
    | "count_at_most" ->
        Rego_like.Count_at_most
          {
            rtype = req "rtype";
            limit =
              (match int_of b "limit" with
              | Some n -> n
              | None -> errf b.Hcl.Ast.bspan "gate %S: missing \"limit\"" name);
          }
    | k -> errf b.Hcl.Ast.bspan "gate %S: unknown kind %S" name k
  in
  { Rego_like.cname = name; predicate; deny_message }

let parse_change (b : Hcl.Ast.block) : t =
  let body = b.Hcl.Ast.bbody in
  let name =
    match b.Hcl.Ast.labels with
    | [ n ] -> n
    | _ -> errf b.Hcl.Ast.bspan "change needs one label"
  in
  let canary = Option.value ~default:1 (int_of b "canary") in
  let growth = Option.value ~default:2 (int_of b "growth") in
  if canary < 1 then errf b.Hcl.Ast.bspan "change %S: canary must be >= 1" name;
  if growth < 1 then errf b.Hcl.Ast.bspan "change %S: growth must be >= 1" name;
  let budget =
    match Hcl.Ast.attr body "budget" with
    | Some { Hcl.Ast.desc = Hcl.Ast.Float f; _ } -> Some f
    | Some { Hcl.Ast.desc = Hcl.Ast.Int n; _ } -> Some (float_of_int n)
    | Some _ -> errf b.Hcl.Ast.bspan "change %S: budget must be a number" name
    | None -> None
  in
  let actions =
    Hcl.Ast.blocks_of_type body "action" |> List.map Policy.parse_action
  in
  if actions = [] then errf b.Hcl.Ast.bspan "change %S has no actions" name;
  let gates = Hcl.Ast.blocks_of_type body "gate" |> List.map parse_gate in
  { cname = name; actions; canary; growth; gates; budget; cspan = b.Hcl.Ast.bspan }

(** Parse a change file (a sequence of [change "name" { ... }] blocks). *)
let parse ~file src : t list =
  let body = Hcl.Parser.parse ~file src in
  List.map
    (fun (b : Hcl.Ast.block) ->
      match b.Hcl.Ast.btype with
      | "change" -> parse_change b
      | ty -> errf b.Hcl.Ast.bspan "expected change block, found %S" ty)
    body.Hcl.Ast.blocks

(* ------------------------------------------------------------------ *)
(* Decisions                                                           *)
(* ------------------------------------------------------------------ *)

(** Evaluate the change's actions into concrete decisions (the policy
    engine's decision vocabulary, so config rewriting is shared). *)
let decide ?(obs = Smap.empty) (c : t) : Policy.decision list =
  let pseudo =
    {
      Policy.pname = c.cname;
      phase = Policy.On_update;
      when_ = Hcl.Ast.mk (Hcl.Ast.Bool true);
      actions = c.actions;
      pspan = c.cspan;
    }
  in
  Policy.decide pseudo obs
