(** The between-wave policy/health gate.

    After a wave's applies complete (and before the next wave is
    admitted), the rollout driver collects one {!health} snapshot and
    the gate folds it into a verdict.  Every failing signal is
    reported — a gate that says only "fail" teaches the operator
    nothing about which guardrail fired. *)

module Rego_like = Cloudless_policy.Rego_like

type health = {
  violations : Rego_like.violation list;
      (** gate-predicate violations over the touched tenants'
          evaluated instances *)
  failed_requests : int;  (** apply failures inside the wave *)
  open_cells : int;  (** circuit-breaker cells currently open (E17) *)
  episode_faults : int;  (** injected-fault responses during the wave *)
  projected_cost : float option;
      (** fleet hourly cost if the rollout continues *)
}

let calm =
  {
    violations = [];
    failed_requests = 0;
    open_cells = 0;
    episode_faults = 0;
    projected_cost = None;
  }

type verdict = Pass | Fail of string list

let evaluate (c : Change.t) (h : health) : verdict =
  let reasons = ref [] in
  let fail fmt = Fmt.kstr (fun s -> reasons := s :: !reasons) fmt in
  List.iter
    (fun (v : Rego_like.violation) ->
      fail "policy %s: %s%s" v.Rego_like.vcheck v.Rego_like.vmessage
        (match v.Rego_like.vaddr with
        | Some a -> " (" ^ Cloudless_hcl.Addr.to_string a ^ ")"
        | None -> ""))
    h.violations;
  if h.failed_requests > 0 then
    fail "%d request(s) failed to converge in the wave" h.failed_requests;
  if h.open_cells > 0 then
    fail "%d circuit-breaker cell(s) open" h.open_cells;
  (match (c.Change.budget, h.projected_cost) with
  | Some ceiling, Some projected when projected > ceiling ->
      fail "projected hourly cost %.2f exceeds budget %.2f" projected ceiling
  | _ -> ());
  match List.rev !reasons with [] -> Pass | rs -> Fail rs

let verdict_to_string = function
  | Pass -> "pass"
  | Fail rs -> "fail: " ^ String.concat "; " rs
