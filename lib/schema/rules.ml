(** Cross-resource constraint rules at the IaC level (§3.2 "deeper,
    cloud-specific validation").

    Each rule transplants a documented cloud-level expectation into a
    plan-time check over expanded instances, so the violation surfaces
    at validation instead of minutes into a deployment.  The built-in
    set includes every concrete example the paper gives: VM/NIC region
    agreement, the Azure [admin_password]/[disable_password] coupling,
    and non-overlapping address spaces for peered virtual networks. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Eval = Cloudless_hcl.Eval
module Ipnet = Cloudless_hcl.Ipnet
module Smap = Value.Smap

type violation = {
  rule_id : string;
  addr : Addr.t;
  message : string;
  span : Cloudless_hcl.Loc.span;
}

type ctx = {
  instances : Eval.instance list;
  by_addr : Eval.instance Addr.Map.t;
}

type rule = { id : string; doc : string; check : ctx -> violation list }

let make_ctx instances =
  {
    instances;
    by_addr =
      List.fold_left
        (fun acc (i : Eval.instance) -> Addr.Map.add i.Eval.addr i acc)
        Addr.Map.empty instances;
  }

let violation ~rule_id (inst : Eval.instance) fmt =
  Fmt.kstr
    (fun message ->
      { rule_id; addr = inst.Eval.addr; message; span = inst.Eval.ispan })
    fmt

(* ------------------------------------------------------------------ *)
(* Reference resolution helpers                                        *)
(* ------------------------------------------------------------------ *)

(* An attribute referencing another resource appears at plan time as
   [Vunknown "addr.id"]; resolve it back to the instance. *)
let deref ctx (v : Value.t) : Eval.instance option =
  match v with
  | Value.Vunknown p -> (
      match String.rindex_opt p '.' with
      | None -> None
      | Some i -> (
          let addr_part = String.sub p 0 i in
          match Addr.of_string addr_part with
          | Some a -> Addr.Map.find_opt a ctx.by_addr
          | None -> None))
  | _ -> None

let attr (inst : Eval.instance) name = Smap.find_opt name inst.Eval.attrs

let string_attr inst name =
  match attr inst name with Some (Value.Vstring s) -> Some s | _ -> None

let int_attr inst name =
  match attr inst name with Some (Value.Vint n) -> Some n | _ -> None

(* Region may be spelled [region] (AWS) or [location] (Azure). *)
let effective_region inst =
  match string_attr inst "region" with
  | Some r -> Some r
  | None -> string_attr inst "location"

let of_type ctx rtypes =
  List.filter
    (fun (i : Eval.instance) -> List.mem i.Eval.addr.Addr.rtype rtypes)
    ctx.instances

let list_attr inst name =
  match attr inst name with
  | Some (Value.Vlist vs) -> vs
  | Some v -> [ v ]
  | None -> []

let cidrs_of_vnet inst =
  (match attr inst "address_space" with
  | Some (Value.Vlist vs) -> vs
  | Some (Value.Vstring _ as v) -> [ v ]
  | _ -> [])
  @ (match attr inst "cidr_block" with Some v -> [ v ] | None -> [])
  |> List.filter_map (function
       | Value.Vstring s -> (
           match Ipnet.parse_prefix s with
           | p -> Some p
           | exception Ipnet.Invalid _ -> None)
       | _ -> None)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

(* Paper §3.2: "Azure requires that VMs and their attached network
   interface cards (NICs) must be in the same cloud region." *)
let vm_nic_same_region =
  {
    id = "vm-nic-same-region";
    doc = "A virtual machine and its network interfaces must share a region";
    check =
      (fun ctx ->
        of_type ctx
          [ "aws_virtual_machine"; "azurerm_linux_virtual_machine"; "azurerm_virtual_machine" ]
        |> List.concat_map (fun vm ->
               match effective_region vm with
               | None -> []
               | Some vm_region ->
                   list_attr vm "nic_ids"
                   |> List.filter_map (fun nic_ref ->
                          match deref ctx nic_ref with
                          | None -> None
                          | Some nic -> (
                              match effective_region nic with
                              | Some nic_region when nic_region <> vm_region ->
                                  Some
                                    (violation ~rule_id:"vm-nic-same-region" vm
                                       "VM is in %s but NIC %s is in %s"
                                       vm_region
                                       (Addr.to_string nic.Eval.addr)
                                       nic_region)
                              | _ -> None))));
  }

(* Paper §3.2: "Azure VMs could specify a password only if another
   disable_password attribute is explicitly set to false." *)
let password_requires_flag =
  {
    id = "password-flag";
    doc =
      "admin_password may only be set when disable_password is explicitly false";
    check =
      (fun ctx ->
        of_type ctx [ "azurerm_linux_virtual_machine"; "azurerm_virtual_machine" ]
        |> List.filter_map (fun vm ->
               match attr vm "admin_password" with
               | Some (Value.Vstring _) -> (
                   match attr vm "disable_password" with
                   | Some (Value.Vbool false) -> None
                   | Some (Value.Vbool true) ->
                       Some
                         (violation ~rule_id:"password-flag" vm
                            "admin_password set while disable_password = true")
                   | _ ->
                       Some
                         (violation ~rule_id:"password-flag" vm
                            "admin_password requires disable_password = false \
                             to be set explicitly"))
               | _ -> None));
  }

(* Paper §3.2: "Azure virtual networks cannot have overlapping address
   spaces if they are connected with each other through peering". *)
let peering_no_overlap =
  {
    id = "peering-no-overlap";
    doc = "Peered virtual networks must have disjoint address spaces";
    check =
      (fun ctx ->
        of_type ctx
          [ "azurerm_virtual_network_peering"; "aws_vpc_peering_connection" ]
        |> List.concat_map (fun peering ->
               let endpoint name =
                 match attr peering name with
                 | Some v -> deref ctx v
                 | None -> None
               in
               let a =
                 match endpoint "vnet_id" with
                 | Some x -> Some x
                 | None -> endpoint "vpc_id"
               in
               let b =
                 match endpoint "remote_vnet_id" with
                 | Some x -> Some x
                 | None -> endpoint "peer_vpc_id"
               in
               match (a, b) with
               | Some va, Some vb ->
                   let ca = cidrs_of_vnet va and cb = cidrs_of_vnet vb in
                   List.concat_map
                     (fun pa ->
                       List.filter_map
                         (fun pb ->
                           if Ipnet.overlaps pa pb then
                             Some
                               (violation ~rule_id:"peering-no-overlap" peering
                                  "peered networks %s and %s overlap (%s vs %s)"
                                  (Addr.to_string va.Eval.addr)
                                  (Addr.to_string vb.Eval.addr)
                                  (Ipnet.prefix_to_string pa)
                                  (Ipnet.prefix_to_string pb))
                           else None)
                         cb)
                     ca
               | _ -> []));
  }

(* A subnet's prefix must lie inside its parent network's space. *)
let subnet_within_network =
  {
    id = "subnet-within-network";
    doc = "Subnet CIDR must be contained in the parent network's space";
    check =
      (fun ctx ->
        of_type ctx [ "aws_subnet"; "azurerm_subnet" ]
        |> List.filter_map (fun subnet ->
               let parent_ref =
                 match attr subnet "vpc_id" with
                 | Some v -> Some v
                 | None -> attr subnet "virtual_network_id"
               in
               let own_cidr =
                 match string_attr subnet "cidr_block" with
                 | Some c -> Some c
                 | None -> string_attr subnet "address_prefix"
               in
               match (parent_ref, own_cidr) with
               | Some pref, Some cidr -> (
                   match (deref ctx pref, Ipnet.parse_prefix cidr) with
                   | Some parent, inner -> (
                       match cidrs_of_vnet parent with
                       | [] -> None
                       | outers ->
                           if
                             List.exists
                               (fun outer -> Ipnet.contains ~outer ~inner)
                               outers
                           then None
                           else
                             Some
                               (violation ~rule_id:"subnet-within-network" subnet
                                  "subnet %s is not contained in %s's address \
                                   space"
                                  cidr
                                  (Addr.to_string parent.Eval.addr)))
                   | None, _ -> None
                   | exception Ipnet.Invalid _ -> None)
               | _ -> None));
  }

(* Sibling subnets of one network must not overlap each other. *)
type subnet_entry = {
  sidx : int;  (** position in the subnet list, for stable ordering *)
  sinst : Eval.instance;
  sprefix : Ipnet.prefix;
  sstart : int;
  sstop : int;
}

let sibling_subnets_disjoint =
  {
    id = "sibling-subnets-disjoint";
    doc = "Subnets of the same network must not overlap";
    check =
      (fun ctx ->
        let subnets = of_type ctx [ "aws_subnet"; "azurerm_subnet" ] in
        let parent_of s =
          match attr s "vpc_id" with
          | Some v -> deref ctx v
          | None -> (
              match attr s "virtual_network_id" with
              | Some v -> deref ctx v
              | None -> None)
        in
        let cidr_of s =
          match
            (string_attr s "cidr_block", string_attr s "address_prefix")
          with
          | Some c, _ | None, Some c -> (
              match Ipnet.parse_prefix c with
              | p -> Some p
              | exception Ipnet.Invalid _ -> None)
          | None, None -> None
        in
        (* Resolve each subnet's parent and prefix once, then sweep each
           sibling group sorted by start address: O(s log s + hits)
           instead of deref-ing and testing all O(s^2) pairs.  Hits are
           re-sorted by list position so the violations come out in the
           same order the pairwise scan produced. *)
        let by_parent =
          List.mapi
            (fun i s ->
              match (parent_of s, cidr_of s) with
              | Some p, Some c ->
                  let sstart, sstop = Ipnet.range c in
                  Some
                    ( p.Eval.addr,
                      { sidx = i; sinst = s; sprefix = c; sstart; sstop } )
              | _ -> None)
            subnets
          |> List.filter_map Fun.id
          |> List.fold_left
               (fun acc (parent, e) ->
                 let prev =
                   Option.value ~default:[] (Addr.Map.find_opt parent acc)
                 in
                 Addr.Map.add parent (e :: prev) acc)
               Addr.Map.empty
        in
        let hits = ref [] in
        Addr.Map.iter
          (fun _ group ->
            let arr = Array.of_list group in
            Array.sort
              (fun a b -> compare (a.sstart, a.sidx) (b.sstart, b.sidx))
              arr;
            Array.iteri
              (fun i a ->
                let j = ref (i + 1) in
                while !j < Array.length arr && arr.(!j).sstart <= a.sstop do
                  let b = arr.(!j) in
                  let first, second =
                    if a.sidx < b.sidx then (a, b) else (b, a)
                  in
                  hits := (first, second) :: !hits;
                  incr j
                done)
              arr)
          by_parent;
        List.sort
          (fun (a1, b1) (a2, b2) ->
            compare (a1.sidx, b1.sidx) (a2.sidx, b2.sidx))
          !hits
        |> List.map (fun (s1, s2) ->
               violation ~rule_id:"sibling-subnets-disjoint" s2.sinst
                 "subnet overlaps sibling %s (%s vs %s)"
                 (Addr.to_string s1.sinst.Eval.addr)
                 (Ipnet.prefix_to_string s1.sprefix)
                 (Ipnet.prefix_to_string s2.sprefix)));
  }

let sg_rule_port_order =
  {
    id = "sg-rule-port-order";
    doc = "Security-group rules need from_port <= to_port";
    check =
      (fun ctx ->
        of_type ctx [ "aws_security_group_rule" ]
        |> List.filter_map (fun r ->
               match (int_attr r "from_port", int_attr r "to_port") with
               | Some f, Some t when f > t ->
                   Some
                     (violation ~rule_id:"sg-rule-port-order" r
                        "from_port %d > to_port %d" f t)
               | _ -> None));
  }

let asg_sizes_ordered =
  {
    id = "asg-sizes";
    doc = "Auto-scaling group needs min <= desired <= max";
    check =
      (fun ctx ->
        of_type ctx [ "aws_autoscaling_group" ]
        |> List.concat_map (fun g ->
               let mn = int_attr g "min_size"
               and mx = int_attr g "max_size"
               and d = int_attr g "desired_capacity" in
               let out = ref [] in
               (match (mn, mx) with
               | Some mn, Some mx when mn > mx ->
                   out :=
                     violation ~rule_id:"asg-sizes" g "min_size %d > max_size %d"
                       mn mx
                     :: !out
               | _ -> ());
               (match (d, mn, mx) with
               | Some d, Some mn, _ when d < mn ->
                   out :=
                     violation ~rule_id:"asg-sizes" g
                       "desired_capacity %d < min_size %d" d mn
                     :: !out
               | Some d, _, Some mx when d > mx ->
                   out :=
                     violation ~rule_id:"asg-sizes" g
                       "desired_capacity %d > max_size %d" d mx
                     :: !out
               | _ -> ());
               !out));
  }

let db_subnet_group_spread =
  {
    id = "db-subnet-spread";
    doc = "A DB subnet group needs at least two subnets";
    check =
      (fun ctx ->
        of_type ctx [ "aws_db_subnet_group" ]
        |> List.filter_map (fun g ->
               match attr g "subnet_ids" with
               | Some (Value.Vlist l) when List.length l < 2 ->
                   Some
                     (violation ~rule_id:"db-subnet-spread" g
                        "subnet group has %d subnet(s); at least 2 required"
                        (List.length l))
               | _ -> None));
  }

let dns_ttl_positive =
  {
    id = "dns-ttl";
    doc = "DNS record TTLs must be positive";
    check =
      (fun ctx ->
        of_type ctx [ "aws_route53_record" ]
        |> List.filter_map (fun r ->
               match int_attr r "ttl" with
               | Some ttl when ttl <= 0 ->
                   Some (violation ~rule_id:"dns-ttl" r "non-positive TTL %d" ttl)
               | _ -> None));
  }

let builtin_rules =
  [
    vm_nic_same_region;
    password_requires_flag;
    peering_no_overlap;
    subnet_within_network;
    sibling_subnets_disjoint;
    sg_rule_port_order;
    asg_sizes_ordered;
    db_subnet_group_spread;
    dns_ttl_positive;
  ]

(** Run all rules over an instance set. *)
let check_all ?(rules = builtin_rules) instances =
  let ctx = make_ctx instances in
  List.concat_map (fun r -> r.check ctx) rules
