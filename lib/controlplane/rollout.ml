(** The fleet-wide bulk-change rollout driver (E18).

    Binds the event-agnostic wave machinery ({!Cloudless_wave}) to a
    running {!Fleet}: per-tenant config rewrites submitted through the
    normal request path (journaled, locked, admission-metered), a
    polled quiescence check per wave, a policy/health gate at every
    wave boundary, and wave-scoped auto-rollback through the shards'
    dedicated rollback admission ({!Fleet.submit_rollback}) when the
    gate trips — halting every later wave.

    The driver holds the fleet by [ref] and deployments by
    [(tenant, dname)] {e name}: a crash-resume mid-rollout builds a new
    fleet instance with new deployment records, and every scheduled
    callback re-resolves through [!fleet_ref] at fire time.  Wave
    transitions are journaled ({!Journal.Wave_mark}) in the rollout's
    own journal; {!resume} restores the committed-wave boundary from it
    and re-submits from the first uncommitted wave (idempotent — an
    already-converged tenant's rewrite plans to nothing). *)

module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Metrics = Cloudless_obs.Metrics
module Breaker = Cloudless_deploy.Breaker
module Rego_like = Cloudless_policy.Rego_like
module Cost_model = Cloudless_policy.Cost_model
module Change = Cloudless_wave.Change
module Planner = Cloudless_wave.Planner
module Gate = Cloudless_wave.Gate
module Wave = Cloudless_wave.Wave
module Rollback = Cloudless_rollback.Rollback

type outcome =
  | Converged  (** every wave committed fleet-wide *)
  | Rolled_back of string list
      (** a gate tripped: the failing wave was rolled back, later waves
          halted; the payload is the gate's failure reasons *)
  | Halted of string list
      (** terminal without a rollback of our own — e.g. resumed from a
          journal whose durable record already ended the rollout *)

let outcome_to_string = function
  | Converged -> "converged"
  | Rolled_back rs -> "rolled_back: " ^ String.concat "; " rs
  | Halted rs -> "halted: " ^ String.concat "; " rs

type t = {
  change : Change.t;
  fleet : Fleet.t ref;
  journal : Journal.t option;
  check_period : float;
  mutable wave : Wave.t option;  (** built lazily, once deployments exist *)
  mutable targets : (string * string list) list;
      (** tenant -> dnames, lexicographic — deterministic across a
          crash-resume so the resumed wave slicing matches the journal *)
  snapshots : (string * string, string * State.t) Hashtbl.t;
      (** (tenant, dname) -> pre-wave (config_src, state), captured at
          wave-submission time; the rollback target *)
  mutable baseline_failures : int;  (** work_failures at wave start *)
  mutable baseline_faults : int;  (** episode faults at wave start *)
  mutable outcome : outcome option;
  mutable dead : bool;  (** abandoned driver: scheduled callbacks no-op *)
  mutable mgmt_calls : int;
      (** management-plane reads spent on gating: quiescence polls,
          instance expansions, live-attr lookups — the overhead side of
          the blast-radius trade *)
  mutable gate_checks : int;
  mutable submitted : int;  (** wave apply requests submitted *)
  mutable rollbacks : int;  (** rollback work units submitted *)
  mutable gate_failed_at : float option;
  mutable rollback_done_at : float option;
  mutable events : (float * string) list;  (** newest first *)
}

let create ?journal ?(check_period = 30.) ~change fleet_ref () =
  {
    change;
    fleet = fleet_ref;
    journal;
    check_period;
    wave = None;
    targets = [];
    snapshots = Hashtbl.create 64;
    baseline_failures = 0;
    baseline_faults = 0;
    outcome = None;
    dead = false;
    mgmt_calls = 0;
    gate_checks = 0;
    submitted = 0;
    rollbacks = 0;
    gate_failed_at = None;
    rollback_done_at = None;
    events = [];
  }

let event t fmt =
  Printf.ksprintf
    (fun msg ->
      let now = Cloud.now (Fleet.cloud !(t.fleet)) in
      t.events <- (now, msg) :: t.events)
    fmt

(* Every tenant with at least one deployment, lexicographic.  The order
   must be a pure function of the fleet's tenant set (not registration
   order): a resumed fleet rebuilds deployments in a different order,
   and the wave slicing must still line up with the journaled wave
   indices. *)
let target_map fleet =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (dep : Shard.deployment) ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt tbl dep.Shard.tenant)
      in
      Hashtbl.replace tbl dep.Shard.tenant (dep.Shard.dname :: cur))
    (Fleet.deployments fleet);
  Hashtbl.fold
    (fun tenant dnames acc -> (tenant, List.sort compare dnames) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let ensure_wave t =
  match t.wave with
  | Some w -> w
  | None ->
      t.targets <- target_map !(t.fleet);
      let w =
        Wave.create ~change:t.change
          ~tenants:(List.map fst t.targets)
          ?journal:t.journal ()
      in
      t.wave <- Some w;
      w

let dnames_of t tenant =
  Option.value ~default:[] (List.assoc_opt tenant t.targets)

let change_file t = Printf.sprintf "<change:%s>" t.change.Change.cname

(* ------------------------------------------------------------------ *)
(* The wave loop                                                       *)
(* ------------------------------------------------------------------ *)

let rec submit_wave t (w : Wave.wave) =
  let wv = ensure_wave t in
  let fleet = !(t.fleet) in
  let cloud = Fleet.cloud fleet in
  let now = Cloud.now cloud in
  Wave.start wv w.Wave.index ~time:now;
  t.baseline_failures <- Metrics.counter (Fleet.metrics fleet) "work_failures";
  t.baseline_faults <- Cloud.episode_fault_count cloud;
  let subs = ref 0 in
  List.iter
    (fun tenant ->
      List.iter
        (fun dname ->
          match Fleet.find_deployment fleet ~tenant ~dname with
          | None -> ()
          | Some dep ->
              Hashtbl.replace t.snapshots (tenant, dname)
                (dep.Shard.config_src, dep.Shard.state);
              (match
                 Planner.rewrite_src t.change ~file:(change_file t)
                   dep.Shard.config_src
               with
              | Some src ->
                  incr subs;
                  t.submitted <- t.submitted + 1;
                  ignore
                    (Fleet.submit_request fleet dep ~src
                      : [ `Accepted of int | `Deferred of int | `Rejected ])
              | None -> ()))
        (dnames_of t tenant))
    w.Wave.tenants;
  event t "wave %d: %d request(s) across %d tenant(s)" w.Wave.index !subs
    (List.length w.Wave.tenants);
  schedule_check t w

and schedule_check t (w : Wave.wave) =
  Cloud.schedule
    (Fleet.cloud !(t.fleet))
    ~delay:t.check_period
    (fun () -> if (not t.dead) && t.outcome = None then check t w)

(* Wave quiescence: every wave tenant's owning shard reports no queued
   or in-flight work for it.  Conservative — unrelated reconciles delay
   the boundary, they never let it pass early. *)
and check t (w : Wave.wave) =
  let fleet = !(t.fleet) in
  let pending =
    List.fold_left
      (fun acc tenant ->
        t.mgmt_calls <- t.mgmt_calls + 1;
        acc + Shard.tenant_pending (Fleet.owner_shard fleet tenant) tenant)
      0 w.Wave.tenants
  in
  if pending > 0 then schedule_check t w else gate t w

and gate t (w : Wave.wave) =
  let wv = ensure_wave t in
  let fleet = !(t.fleet) in
  let cloud = Fleet.cloud fleet in
  let now = Cloud.now cloud in
  t.gate_checks <- t.gate_checks + 1;
  let gates = t.change.Change.gates in
  (* Gate predicates run over every tenant the change has touched so
     far — a violation introduced by an earlier wave keeps blocking. *)
  let violations =
    List.concat_map
      (fun tenant ->
        List.concat_map
          (fun dname ->
            match Fleet.find_deployment fleet ~tenant ~dname with
            | None -> []
            | Some dep ->
                t.mgmt_calls <- t.mgmt_calls + 1;
                Rego_like.evaluate gates
                  (Shard.expand ~state:dep.Shard.state dep.Shard.config_src))
          (dnames_of t tenant))
      (Wave.touched_tenants wv)
  in
  let failed_requests =
    Metrics.counter (Fleet.metrics fleet) "work_failures" - t.baseline_failures
  in
  let open_cells =
    List.fold_left
      (fun acc s ->
        acc
        + (match Shard.breaker s with
          | Some b -> Breaker.open_cells b
          | None -> 0))
      0 (Fleet.shards fleet)
  in
  let episode_faults = Cloud.episode_fault_count cloud - t.baseline_faults in
  let projected_cost =
    match t.change.Change.budget with
    | None -> None
    | Some _ ->
        (* Current fleet cost plus the wave's mean per-tenant delta
           extrapolated over the tenants the rollout has yet to reach. *)
        let cost_of tenant dname =
          match Fleet.find_deployment fleet ~tenant ~dname with
          | Some dep -> Cost_model.of_state dep.Shard.state
          | None -> 0.
        in
        let total =
          List.fold_left
            (fun acc (dep : Shard.deployment) ->
              acc +. Cost_model.of_state dep.Shard.state)
            0. (Fleet.deployments fleet)
        in
        let wave_delta =
          List.fold_left
            (fun acc tenant ->
              List.fold_left
                (fun acc dname ->
                  match Hashtbl.find_opt t.snapshots (tenant, dname) with
                  | Some (_, pre) ->
                      acc +. (cost_of tenant dname -. Cost_model.of_state pre)
                  | None -> acc)
                acc (dnames_of t tenant))
            0. w.Wave.tenants
        in
        let per_tenant =
          wave_delta /. float_of_int (max 1 (List.length w.Wave.tenants))
        in
        let remaining =
          List.length t.targets - List.length (Wave.touched_tenants wv)
        in
        Some (total +. (per_tenant *. float_of_int (max 0 remaining)))
  in
  let health =
    { Gate.violations; failed_requests; open_cells; episode_faults;
      projected_cost }
  in
  match Gate.evaluate t.change health with
  | Gate.Pass -> (
      Wave.commit wv w.Wave.index ~time:now;
      event t "wave %d: gate passed, committed" w.Wave.index;
      match Wave.next wv with
      | Some w' -> submit_wave t w'
      | None ->
          t.outcome <- Some Converged;
          event t "rollout %s converged fleet-wide" t.change.Change.cname)
  | Gate.Fail reasons -> fail_wave t w reasons

(* Gate tripped: roll the failing wave back tenant by tenant through
   the shards' rollback admission, then mark + halt.  The inverse plan
   is computed at lock-grant time against the then-latest state; the
   pre-wave config revision is restored so later reconciles do not
   re-apply the bad change. *)
and fail_wave t (w : Wave.wave) reasons =
  let fleet = !(t.fleet) in
  let now = Cloud.now (Fleet.cloud fleet) in
  t.gate_failed_at <- Some now;
  event t "wave %d: gate FAILED (%s); rolling back" w.Wave.index
    (String.concat "; " reasons);
  let pending = ref 0 in
  let finish done_ =
    let wv = ensure_wave t in
    let now = Cloud.now (Fleet.cloud !(t.fleet)) in
    t.rollback_done_at <-
      Some
        (match t.rollback_done_at with
        | Some prev -> Float.max prev done_
        | None -> done_);
    decr pending;
    if !pending = 0 then begin
      Wave.roll_back wv w.Wave.index ~time:now;
      Wave.halt wv ~time:now;
      t.outcome <- Some (Rolled_back reasons);
      event t "wave %d rolled back; later waves halted" w.Wave.index
    end
  in
  List.iter
    (fun tenant ->
      List.iter
        (fun dname ->
          match
            ( Fleet.find_deployment fleet ~tenant ~dname,
              Hashtbl.find_opt t.snapshots (tenant, dname) )
          with
          | Some dep, Some (pre_src, pre_state) ->
              incr pending;
              t.rollbacks <- t.rollbacks + 1;
              let plan_of () =
                let fleet = !(t.fleet) in
                let cloud = Fleet.cloud fleet in
                let dep =
                  match Fleet.find_deployment fleet ~tenant ~dname with
                  | Some d -> d
                  | None -> dep
                in
                let live addr =
                  t.mgmt_calls <- t.mgmt_calls + 1;
                  match State.find_opt dep.Shard.state addr with
                  | None -> None
                  | Some r -> (
                      match Cloud.lookup cloud r.State.cloud_id with
                      | Some res -> Some res.Cloud.attrs
                      | None -> None)
                in
                (Wave.inverse_plan ~target:pre_state ~current:dep.Shard.state
                   ~live)
                  .Rollback.plan
              in
              Fleet.submit_rollback fleet dep
                ~label:
                  (Printf.sprintf "%s/wave%d" t.change.Change.cname
                     w.Wave.index)
                ~plan_of ~restore_src:pre_src ~notify:finish ()
          | _ -> ())
        (dnames_of t tenant))
    w.Wave.tenants;
  if !pending = 0 then begin
    let wv = ensure_wave t in
    Wave.roll_back wv w.Wave.index ~time:now;
    Wave.halt wv ~time:now;
    t.outcome <- Some (Rolled_back reasons)
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start t =
  let wv = ensure_wave t in
  match Wave.next wv with
  | Some w -> submit_wave t w
  | None ->
      t.outcome <-
        (if Wave.converged wv then Some Converged
         else Some (Halted [ "terminal journal record" ]))

let launch t ~at =
  let cloud = Fleet.cloud !(t.fleet) in
  let delay = Float.max 0. (at -. Cloud.now cloud) in
  Cloud.schedule cloud ~delay (fun () ->
      if (not t.dead) && t.outcome = None then start t)

let abandon t = t.dead <- true

let resume ?journal ?check_period ~change fleet_ref () =
  let t = create ?journal ?check_period ~change fleet_ref () in
  let wv = ensure_wave t in
  (match journal with
  | Some j -> ignore (Wave.restore wv (Journal.entries j) : Wave.t)
  | None -> ());
  t

let install (scn : Scenario.t) fleet_ref =
  List.map
    (fun (ws : Scenario.wave_spec) ->
      let t =
        create ~check_period:ws.Scenario.wcheck ~change:ws.Scenario.wchange
          fleet_ref ()
      in
      launch t ~at:ws.Scenario.wstart;
      t)
    scn.Scenario.waves

(* ------------------------------------------------------------------ *)
(* Observers                                                           *)
(* ------------------------------------------------------------------ *)

let change c = c.change
let outcome t = t.outcome
let converged t = t.outcome = Some Converged
let wave_machine t = ensure_wave t

let touched_tenants t =
  match t.wave with Some w -> Wave.touched_tenants w | None -> []

let committed_tenants t =
  match t.wave with Some w -> Wave.committed_tenants w | None -> []

let mgmt_calls t = t.mgmt_calls
let gate_checks t = t.gate_checks
let submitted t = t.submitted
let rollbacks t = t.rollbacks

let rollback_latency t =
  match (t.gate_failed_at, t.rollback_done_at) with
  | Some failed, Some done_ -> Some (done_ -. failed)
  | _ -> None

let events t = List.rev t.events
