(** Tenant-to-shard routing for the control-plane fleet (E15).

    Ownership placement is a consistent-hash ring: each shard
    contributes [vnodes_per_shard] virtual nodes at FNV-1a-derived
    points, and a tenant lands on the first vnode clockwise of its own
    hash.  Growing the fleet from [n] to [n+1] shards therefore remaps
    only ~1/(n+1) of tenants — the property the QCheck stability test
    pins down.  Rebalancing overlays explicit {!pin} overrides on top
    of the ring; the ring itself never changes for a given shard
    count, so assignment stays a pure function of the inputs.

    Deliberately no PRNG and no wall clock anywhere: routing decisions
    must be byte-reproducible across runs and identical on every
    resume. *)

type t

(** [create ~shards ()] builds the ring.  [vnodes_per_shard] (default
    64) trades balance quality against ring size.
    @raise Invalid_argument when [shards < 1]. *)
val create : ?vnodes_per_shard:int -> shards:int -> unit -> t

val shards : t -> int

(** Owning shard for [tenant]: the {!pin} override when present,
    otherwise the ring position. *)
val assign : t -> string -> int

(** Ring position alone, ignoring pins — what [tenant] would map to on
    a fresh fleet of this size. *)
val ring_assign : t -> string -> int

(** Override [tenant]'s placement (a rebalance move).  No-op when the
    tenant already resolves there.
    @raise Invalid_argument when [shard] is out of range. *)
val pin : t -> string -> int -> unit

(** Drop the override, reverting to the ring position. *)
val unpin : t -> string -> unit

(** Current overrides, sorted by tenant. *)
val pinned : t -> (string * int) list

(** Rebalance moves installed over the router's lifetime. *)
val moves : t -> int

(** Detection partition for an activity-log entry: which shard's
    subscription classifies events about [cloud_id].  Hashes cloud ids
    rather than tenants, so the detecting shard and the owning shard
    routinely differ — cross-shard drift routing is the common case,
    not the exception. *)
val partition : t -> string -> int

(**/**)

(** Exposed for tests: the stable string hash behind the ring. *)
val fnv1a : string -> int
