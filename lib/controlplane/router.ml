(* See router.mli.  The ring is a sorted array of (point, shard)
   vnodes; tenant lookup is an O(log vnodes) binary search for the
   first vnode clockwise of the tenant's hash.  Everything is derived
   from FNV-1a over strings — no PRNG, so assignment is a pure function
   of (tenant, shard count, vnode count) and identical on every run. *)

module Smap = Map.Make (String)

(* FNV-1a, folded into OCaml's 63-bit native int range (the offset
   basis keeps FNV's low 62 bits — the part that survives the fold).
   Good enough dispersion for placement; cheap; platform-stable. *)
let fnv1a (s : string) : int =
  let prime = 0x100000001b3 in
  let h = ref 0x0bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * prime)
    s;
  !h land max_int

type t = {
  shards : int;
  ring : (int * int) array;  (** (point, shard), sorted by point *)
  mutable pins : int Smap.t;  (** tenant -> shard overrides *)
  mutable moves : int;  (** pins installed over the lifetime *)
}

let build_ring ~shards ~vnodes_per_shard =
  let points =
    Array.init (shards * vnodes_per_shard) (fun i ->
        let shard = i / vnodes_per_shard and v = i mod vnodes_per_shard in
        (fnv1a (Printf.sprintf "shard-%d#%d" shard v), shard))
  in
  (* ties broken by shard index so the ring is a total order *)
  Array.sort compare points;
  points

let create ?(vnodes_per_shard = 64) ~shards () =
  if shards < 1 then invalid_arg "Router.create: shards must be >= 1";
  {
    shards;
    ring = build_ring ~shards ~vnodes_per_shard;
    pins = Smap.empty;
    moves = 0;
  }

let shards t = t.shards

(* First vnode with point >= h, wrapping to ring.(0) past the end. *)
let ring_assign t tenant =
  if t.shards = 1 then 0
  else begin
    let h = fnv1a tenant in
    let n = Array.length t.ring in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
    done;
    snd t.ring.(if !lo = n then 0 else !lo)
  end

let assign t tenant =
  match Smap.find_opt tenant t.pins with
  | Some s -> s
  | None -> ring_assign t tenant

let pin t tenant shard =
  if shard < 0 || shard >= t.shards then
    invalid_arg "Router.pin: shard out of range";
  if assign t tenant <> shard then begin
    t.moves <- t.moves + 1;
    t.pins <- Smap.add tenant shard t.pins
  end

let unpin t tenant = t.pins <- Smap.remove tenant t.pins
let pinned t = Smap.bindings t.pins
let moves t = t.moves

(* Detection partitioning: which shard's subscription classifies an
   activity-log entry.  Deliberately a *different* hash domain than
   tenant ownership (cloud ids, not tenant names), so the detecting
   shard and the owning shard routinely differ and cross-shard drift
   routing is exercised on every run, not just after rebalances. *)
let partition t cloud_id = fnv1a cloud_id mod t.shards
