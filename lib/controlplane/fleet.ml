(** The event-driven multi-shard control-plane fleet (E15).

    [N] {!Shard}s share one simulated cloud and one metrics registry.
    A {!Router} owns tenant placement (consistent-hash ring plus
    rebalance pins); the fleet drive loop steps the shared clock and
    drains every shard round-robin after each event, so execution
    interleaves deterministically regardless of shard count.

    Drift detection is push-based: instead of one polling tailer per
    deployment (O(deployments) LookupEvents calls per period), each
    shard holds exactly {e one} multiplexed activity-log subscription.
    An appended entry fans out to every shard; the shard whose
    {!Router.partition} covers the entry's cloud id classifies it
    ({!Drift.event_of_entry}) against the owning deployment's state and
    routes the resulting event to the owner's shard — which, because
    detection partitions hash cloud ids while ownership hashes tenants,
    is usually a {e different} shard ([cross_shard_routed] counts the
    hops).  Detection latency collapses to the entry's append instant
    and the tailer's per-poll log reads disappear entirely.

    Fleet-level concerns stay here: the shared crash gate ([Crash_after
    k] counts journaled writes across the whole fleet, so a crash lands
    on whichever shard issues the (k+1)-th write), the policy
    controller, queue-depth-driven rebalancing, crash {!resume} at
    shard granularity, and the shard-count-invariant {!state_digest}. *)

module Hcl = Cloudless_hcl
module Value = Hcl.Value
module Smap = Value.Smap
module Cloud = Cloudless_sim.Cloud
module Activity_log = Cloudless_sim.Activity_log
module Failure = Cloudless_sim.Failure
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Drift = Cloudless_drift.Drift
module Recovery = Cloudless_deploy.Recovery
module Controller = Cloudless_policy.Controller
module Policy = Cloudless_policy.Policy
module Trace = Cloudless_obs.Trace
module Metrics = Cloudless_obs.Metrics

(* Queue-depth gap between the deepest and shallowest shard that
   triggers a rebalance move at the next periodic check. *)
let rebalance_threshold = 4

type t = {
  cloud : Cloud.t;
  config : Shard.service_config;
  trace : Trace.t;
  registry : Metrics.t;
  router : Router.t;
  shards : Shard.t array;
  controller : Controller.t option;
  crash : Failure.crash_policy ref;
  dead : bool ref;
  mutable subs : Activity_log.subscription list;
  mutable cursor : int;  (** next log seq to consume on a resume *)
  mutable unmanaged : (string * float) list;
      (** detections with no owning deployment (newest first) *)
  mutable until : float;
}

let metrics t = t.registry
let cloud t = t.cloud
let router t = t.router
let shard_count t = Array.length t.shards
let shards t = Array.to_list t.shards
let set_crash t policy = t.crash := policy

let owner_shard t tenant = t.shards.(Router.assign t.router tenant)

let create ?cloud ?(trace = Trace.null) ?metrics ?(shards = 2)
    (config : Shard.service_config) =
  let cloud =
    match cloud with
    | Some c -> c
    | None ->
        Cloud.create
          ~config:(Cloudless_schema.Cloud_rules.config_with_checks ()) ~seed:42
          ()
  in
  let registry = match metrics with Some m -> m | None -> Metrics.create () in
  let controller =
    match config.Shard.policy_src with
    | Some src when config.Shard.policy_period > 0. ->
        Some (Controller.of_source ~file:"<service-policy>" src)
    | _ -> None
  in
  let crash = ref Failure.No_crash in
  let dead = ref false in
  let writes = ref 0 in
  (* one crash gate across the whole fleet: the service is one process
     no matter how many shards it runs *)
  let gate () =
    incr writes;
    match !crash with
    | Failure.Crash_after k when !writes > k ->
        dead := true;
        raise (Failure.Engine_crashed k)
    | _ -> ()
  in
  let host =
    { Shard.gate; alive = (fun () -> not !dead); on_policy = None }
  in
  let mk sid =
    Shard.create ~sid ~cloud ~config
      ~scope:(Metrics.scoped registry (Some (Printf.sprintf "shard%d" sid)))
      ~trace ~host ()
  in
  Metrics.set registry "fleet_shards" (float_of_int shards);
  {
    cloud;
    config;
    trace;
    registry;
    router = Router.create ~shards ();
    shards = Array.init shards mk;
    controller;
    crash;
    dead;
    subs = [];
    cursor = 0;
    unmanaged = [];
    until = 0.;
  }

let find_deployment t ~tenant ~dname =
  (* the router names the owner; fall back to a full sweep only if a
     caller races a rebalance move (defensive, not expected) *)
  match Shard.find_deployment (owner_shard t tenant) ~tenant ~dname with
  | Some d -> Some d
  | None ->
      Array.fold_left
        (fun acc s ->
          match acc with
          | Some _ -> acc
          | None -> Shard.find_deployment s ~tenant ~dname)
        None t.shards

let add_deployment t ~tenant ~dname ~src =
  Shard.add_deployment (owner_shard t tenant) ~tenant ~dname ~src

let submit_request t (dep : Shard.deployment) ~src =
  Shard.submit_request (owner_shard t dep.Shard.tenant) dep ~src

let submit_rollback t (dep : Shard.deployment) ~label ~plan_of ?restore_src
    ~notify () =
  Shard.submit_rollback
    (owner_shard t dep.Shard.tenant)
    dep ~label ~plan_of ?restore_src ~notify ()

let deployments t =
  Array.to_list t.shards |> List.concat_map Shard.deployments

let managed_resource_count t =
  Array.fold_left (fun acc s -> acc + Shard.managed_resource_count s) 0 t.shards

(** (cloud_id, detected_at) across every shard plus unmanaged-entry
    detections, ordered by detection time. *)
let drift_detections t =
  let shard_dets =
    Array.to_list t.shards |> List.concat_map Shard.drift_detections
  in
  List.stable_sort
    (fun (_, a) (_, b) -> compare a b)
    (shard_dets @ List.rev t.unmanaged)

let completed_requests t =
  Array.to_list t.shards
  |> List.concat_map (fun s ->
         List.map
           (fun (rid, at) -> (Shard.sid s, rid, at))
           (Shard.completed_requests s))
  |> List.stable_sort (fun (_, _, a) (_, _, b) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Event-driven drift: one multiplexed subscription per shard          *)
(* ------------------------------------------------------------------ *)

(* The owning deployment of a cloud id, fleet-wide.  O(deployments)
   state probes, paid only for non-IaC writes in this shard's
   partition. *)
let owning_deployment t cloud_id =
  let found = ref None in
  Array.iter
    (fun s ->
      if !found = None then
        List.iter
          (fun (d : Shard.deployment) ->
            if
              !found = None
              && State.find_by_cloud_id d.Shard.state cloud_id <> None
            then found := Some d)
          (Shard.deployments s))
    t.shards;
  !found

let deliver t sid (e : Activity_log.entry) =
  t.cursor <- e.Activity_log.seq + 1;
  if (not !(t.dead)) && Drift.oob_write e then
    if Router.partition t.router e.Activity_log.cloud_id = sid then begin
      match owning_deployment t e.Activity_log.cloud_id with
      | Some dep ->
          let owner = Router.assign t.router dep.Shard.tenant in
          if owner <> sid then Metrics.inc t.registry "cross_shard_routed";
          (match
             Drift.event_of_entry t.cloud ~state:dep.Shard.state e
           with
          | Some ev -> Shard.ingest_drift t.shards.(owner) dep [ ev ]
          | None -> ())
      | None ->
          (* no deployment tracks it: an unmanaged create (or noise
             about an already-forgotten id).  Record once, fleet-wide —
             the polling engine flags these once per deployment. *)
          (match e.Activity_log.op with
          | Activity_log.Log_create ->
              Metrics.inc t.registry "drift_events_unmanaged";
              t.unmanaged <-
                (e.Activity_log.cloud_id, e.Activity_log.time) :: t.unmanaged
          | _ -> ())
    end

let subscribe_shards t ~from =
  t.subs <-
    Array.to_list
      (Array.map
         (fun s ->
           let sid = Shard.sid s in
           Activity_log.subscribe (Cloud.log t.cloud) ~from (deliver t sid))
         t.shards)

let unsubscribe_shards t =
  let log = Cloud.log t.cloud in
  List.iter (Activity_log.unsubscribe log) t.subs;
  t.subs <- []

(* ------------------------------------------------------------------ *)
(* Rebalancing                                                         *)
(* ------------------------------------------------------------------ *)

(* One periodic check: if the deepest shard's queue exceeds the
   shallowest's by [rebalance_threshold], move the first quiescent
   tenant (no pending work on the source shard) over and pin it.  At
   most one tenant per tick keeps the churn observable and the
   decision trivially deterministic. *)
let rebalance_tick t =
  let n = Array.length t.shards in
  if n > 1 then begin
    let deepest = ref 0 and shallowest = ref 0 in
    Array.iteri
      (fun i s ->
        let d = Shard.queue_depth s in
        if d > Shard.queue_depth t.shards.(!deepest) then deepest := i;
        if d < Shard.queue_depth t.shards.(!shallowest) then shallowest := i;
        ignore s;
        ignore d)
      t.shards;
    let src = t.shards.(!deepest) and dst = t.shards.(!shallowest) in
    let gap = Shard.queue_depth src - Shard.queue_depth dst in
    Metrics.set t.registry "rebalance_gap" (float_of_int gap);
    if gap >= rebalance_threshold then begin
      let movable =
        List.filter
          (fun (d : Shard.deployment) ->
            Shard.tenant_pending src d.Shard.tenant = 0)
          (Shard.deployments src)
      in
      match movable with
      | [] -> ()
      | d :: _ ->
          let tenant = d.Shard.tenant in
          let moving =
            List.filter
              (fun (d : Shard.deployment) -> d.Shard.tenant = tenant)
              (Shard.deployments src)
          in
          List.iter
            (fun dep ->
              Shard.remove_deployment src dep;
              Shard.adopt_deployment dst dep)
            moving;
          Router.pin t.router tenant (Shard.sid dst);
          Metrics.inc t.registry "rebalance_moves";
          Trace.emit_span t.trace ~sim_start:(Cloud.now t.cloud)
            ~meta:
              [
                ("tenant", tenant);
                ("from", string_of_int (Shard.sid src));
                ("to", string_of_int (Shard.sid dst));
              ]
            ~counters:[ ("gap", gap); ("deployments", List.length moving) ]
            "rebalance"
    end
  end

let rec arm_rebalance_timer t =
  Cloud.schedule t.cloud ~delay:t.config.Shard.rebalance_period (fun () ->
      if not !(t.dead) then begin
        rebalance_tick t;
        if Cloud.now t.cloud +. t.config.Shard.rebalance_period <= t.until then
          arm_rebalance_timer t
      end)

(* ------------------------------------------------------------------ *)
(* Policy ticks (fleet-level)                                          *)
(* ------------------------------------------------------------------ *)

let policy_tick t c at =
  Metrics.inc t.registry "policy_ticks";
  let queue_depth =
    Array.fold_left (fun acc s -> acc + Shard.queue_depth s) 0 t.shards
  in
  let obs =
    Controller.standard_obs
      ~extra:
        [
          ("tenants", Value.Vint (List.length (deployments t)));
          ("managed_resources", Value.Vint (managed_resource_count t));
          ( "drift_events",
            Value.Vint (Metrics.counter t.registry "drift_events") );
          ("queue_depth", Value.Vint queue_depth);
          ("shards", Value.Vint (Array.length t.shards));
        ]
      ()
  in
  let r = Controller.tick c ~phase:Policy.On_telemetry ~obs () in
  Metrics.inc t.registry ~by:(List.length r.Controller.decisions)
    "policy_decisions";
  Trace.emit_span t.trace ~sim_start:at
    ~counters:[ ("decisions", List.length r.Controller.decisions) ]
    "policy_tick"

let rec arm_policy_timer t c =
  Cloud.schedule t.cloud ~delay:t.config.Shard.policy_period (fun () ->
      if not !(t.dead) then begin
        policy_tick t c (Cloud.now t.cloud);
        if Cloud.now t.cloud +. t.config.Shard.policy_period <= t.until then
          arm_policy_timer t c
      end)

(* ------------------------------------------------------------------ *)
(* The drive loop                                                      *)
(* ------------------------------------------------------------------ *)

(** Drive the fleet until the simulated event queue drains.  Arms every
    shard's timers (nothing in [Subscribe] mode), installs the per-
    shard log subscriptions, and steps the shared clock, draining each
    shard round-robin after every event.  Raises
    {!Failure.Engine_crashed} when the crash gate trips.  Call once per
    fleet instance ({!resume} builds the successor). *)
let run t ~until =
  t.until <- until;
  Array.iter (fun s -> Shard.arm_timers s ~until) t.shards;
  if t.config.Shard.drift_mode = Shard.Subscribe then
    subscribe_shards t ~from:t.cursor;
  (match t.controller with
  | Some c when t.config.Shard.policy_period > 0. -> arm_policy_timer t c
  | _ -> ());
  if t.config.Shard.rebalance_period > 0. && Array.length t.shards > 1 then
    arm_rebalance_timer t;
  let drain_all () = Array.iter Shard.drain t.shards in
  drain_all ();
  let rec drive () =
    if (not !(t.dead)) && Cloud.step t.cloud then begin
      drain_all ();
      drive ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (* a dead fleet must not keep classifying entries appended by its
         successor *)
      if !(t.dead) then unsubscribe_shards t)
    drive;
  Array.iter Shard.finish_stats t.shards;
  Metrics.set t.registry "log_deliveries"
    (float_of_int (Activity_log.deliveries (Cloud.log t.cloud)))

(* ------------------------------------------------------------------ *)
(* Crash recovery and audits                                           *)
(* ------------------------------------------------------------------ *)

(** Build the dead fleet's successor on the same cloud, at the same
    shard count.  Per deployment — regardless of which shard owned it —
    replay its journal over the last persisted state and adopt
    in-flight creates from the activity log ({!Recovery.resume_state};
    per-deployment engine names keep adoption tenant-safe), register it
    on the successor's ring (fresh, unpinned — rebalance pins are
    process-local ephemera), and enqueue a converge request.  The
    fleet's subscription cursor carries over, so entries appended
    between the last delivery and the crash replay into the new
    subscriptions instead of being lost.  Returns the new fleet and the
    per-deployment recovery reports. *)
let resume (old : t) =
  unsubscribe_shards old;
  let t =
    create ~cloud:old.cloud ~trace:old.trace
      ~shards:(Array.length old.shards) old.config
  in
  t.cursor <- old.cursor;
  let reports =
    List.map
      (fun (d : Shard.deployment) ->
        let entries = Journal.entries d.Shard.journal in
        let state, report =
          Recovery.resume_state old.cloud ~engine:d.Shard.engine
            ~state:d.Shard.persisted ~entries
        in
        let dep =
          add_deployment t ~tenant:d.Shard.tenant ~dname:d.Shard.dname
            ~src:d.Shard.config_src
        in
        dep.Shard.state <- state;
        dep.Shard.persisted <- state;
        (* keep journaling into the same (already-replayed) journal:
           op ids continue from [max_op], replay stays idempotent *)
        List.iter (Journal.append dep.Shard.journal) entries;
        Drift.Log_tailer.(
          (dep.Shard.tailer).cursor <- d.Shard.tailer.Drift.Log_tailer.cursor);
        ignore (submit_request t dep ~src:d.Shard.config_src);
        ((d.Shard.tenant, d.Shard.dname), report))
      (deployments old)
  in
  (t, reports)

(** IaC-engine-created resources alive in the cloud that no
    deployment's state tracks — the cross-tenant orphan audit. *)
let orphans t =
  let deps = deployments t in
  List.filter_map
    (fun (e : Activity_log.entry) ->
      match (e.Activity_log.op, e.Activity_log.actor) with
      | Activity_log.Log_create, Activity_log.Iac_engine _ ->
          let cid = e.Activity_log.cloud_id in
          if
            Cloud.lookup t.cloud cid <> None
            && List.for_all
                 (fun (d : Shard.deployment) ->
                   State.find_by_cloud_id d.Shard.state cid = None)
                 deps
          then Some cid
          else None
      | _ -> None)
    (Activity_log.all (Cloud.log t.cloud))
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Shard-count-invariant state digest                                  *)
(* ------------------------------------------------------------------ *)

(** MD5 over a canonical rendering of every deployment's state.  Cloud
    ids are minted by a global counter whose order depends on execution
    interleaving — and therefore on the shard count — so the rendering
    replaces every known cloud id with the address of the resource it
    names ("@tenant0.d0.aws_instance.web[3]") and drops the id-derived
    [arn]/[id] attributes.  Two fleets that converged every tenant to
    the same logical world digest identically at any [--shards N]. *)
let state_digest t =
  let deps =
    List.sort
      (fun (a : Shard.deployment) (b : Shard.deployment) ->
        compare (a.Shard.tenant, a.Shard.dname) (b.Shard.tenant, b.Shard.dname))
      (deployments t)
  in
  (* cloud id -> "tenant/dname/addr" across the whole fleet *)
  let addr_of = Hashtbl.create 256 in
  List.iter
    (fun (d : Shard.deployment) ->
      List.iter
        (fun (r : State.resource_state) ->
          Hashtbl.replace addr_of r.State.cloud_id
            (Printf.sprintf "%s/%s/%s" d.Shard.tenant d.Shard.dname
               (Hcl.Addr.to_string r.State.addr)))
        (State.resources d.Shard.state))
    deps;
  (* recursive: reference attributes carry cloud ids inside lists
     ([vpc_security_group_ids = ["group-…"]]) and maps too *)
  let rec render_value v =
    match v with
    | Value.Vstring s -> (
        match Hashtbl.find_opt addr_of s with
        | Some a -> "@" ^ a
        | None -> Value.show v)
    | Value.Vlist vs ->
        "[" ^ String.concat "," (List.map render_value vs) ^ "]"
    | Value.Vmap m ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) -> k ^ ":" ^ render_value v)
               (Smap.bindings m))
        ^ "}"
    | _ -> Value.show v
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (d : Shard.deployment) ->
      Buffer.add_string buf d.Shard.tenant;
      Buffer.add_char buf '/';
      Buffer.add_string buf d.Shard.dname;
      Buffer.add_char buf '\n';
      let rows =
        List.sort
          (fun (a : State.resource_state) (b : State.resource_state) ->
            compare
              (Hcl.Addr.to_string a.State.addr)
              (Hcl.Addr.to_string b.State.addr))
          (State.resources d.Shard.state)
      in
      List.iter
        (fun (r : State.resource_state) ->
          Buffer.add_string buf "  ";
          Buffer.add_string buf (Hcl.Addr.to_string r.State.addr);
          Buffer.add_char buf '|';
          Buffer.add_string buf r.State.rtype;
          Smap.iter
            (fun k v ->
              if k <> "arn" && k <> "id" then begin
                Buffer.add_char buf '|';
                Buffer.add_string buf k;
                Buffer.add_char buf '=';
                Buffer.add_string buf (render_value v)
              end)
            r.State.attrs;
          Buffer.add_char buf '\n')
        rows)
    deps;
  Digest.to_hex (Digest.string (Buffer.contents buf))
