(** The single-loop multi-tenant reconciliation control plane
    (§3.4–§3.6).

    Since E15 this module is a thin host around exactly one {!Shard} —
    the execution engine (work queue, lock-managed admission, journaled
    execution, drift machinery) lives there, shared with the
    multi-shard {!Fleet}.  What remains here is the service-process
    identity the pre-fleet experiments (E14, `serve` without
    [--shards]) depend on:

    - the crash gate and liveness flag ([Crash_after k] counts
      journaled writes across every tenant of this one process);
    - the policy controller and its tick handler;
    - crash {!resume} (per-deployment journal replay + orphan adoption)
      and the cross-tenant {!orphans} audit.

    Behavior is unchanged from the pre-shard monolith: same admission
    order, same spans, same metric names (the shard records through an
    {e unlabeled} metrics scope, which emits exactly the bare signal
    names), so traces and metric snapshots stay byte-identical.

    Two canonical service configurations mirror the experiment axes:

    - {!cloudless_service}: per-resource (here: per-deployment-rooted)
      locks, log-tailer drift detection, scoped reconciles, no
      refresh before apply.
    - {!baseline_service}: the Terraform-style operation — one global
      lock, a full state refresh before every apply, and periodic
      scan-based drift sweeps that read every tracked resource. *)

module Value = Cloudless_hcl.Value
module Cloud = Cloudless_sim.Cloud
module Activity_log = Cloudless_sim.Activity_log
module Failure = Cloudless_sim.Failure
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Lock_manager = Cloudless_lock.Lock_manager
module Drift = Cloudless_drift.Drift
module Recovery = Cloudless_deploy.Recovery
module Controller = Cloudless_policy.Controller
module Policy = Cloudless_policy.Policy
module Trace = Cloudless_obs.Trace
module Metrics = Cloudless_obs.Metrics

type drift_mode = Shard.drift_mode = Tailer | Scan | Subscribe
type admission = Shard.admission = Defer | Reject

type service_config = Shard.service_config = {
  sname : string;
  granularity : Lock_manager.granularity;
  drift_mode : drift_mode;
  drift_period : float;
  scoped_reconcile : bool;
  refresh_before_apply : bool;
  parallelism : int option;
  policy_period : float;
  policy_src : string option;
  max_queue_depth : int;
  admission : admission;
  defer_delay : float;
  rebalance_period : float;
  breaker : Cloudless_deploy.Breaker.config option;
}

let cloudless_service = Shard.cloudless_service
let baseline_service = Shard.baseline_service

type deployment = Shard.deployment = {
  tenant : string;
  dname : string;
  engine : string;
  root_key : Cloudless_hcl.Addr.t;
  mutable config_src : string;
  mutable state : State.t;
  mutable persisted : State.t;
  journal : Journal.t;
  tailer : Drift.Log_tailer.t;
}

type t = {
  cloud : Cloud.t;
  config : service_config;
  trace : Trace.t;
  shard : Shard.t;
  crash : Failure.crash_policy ref;  (** read by the gate closure *)
  dead : bool ref;
}

(* --- policy ticks --------------------------------------------------- *)

let exec_policy ~shard ~controller ~trace at =
  let m = Shard.metrics shard in
  Metrics.inc m "policy_ticks";
  let obs =
    Controller.standard_obs
      ~extra:
        [
          ("tenants", Value.Vint (List.length (Shard.deployments shard)));
          ( "managed_resources",
            Value.Vint (Shard.managed_resource_count shard) );
          ("drift_events", Value.Vint (Metrics.counter m "drift_events"));
          ("queue_depth", Value.Vint (Shard.queue_depth shard));
        ]
      ()
  in
  let r = Controller.tick controller ~phase:Policy.On_telemetry ~obs () in
  Metrics.inc m ~by:(List.length r.Controller.decisions) "policy_decisions";
  Trace.emit_span trace ~sim_start:at
    ~counters:[ ("decisions", List.length r.Controller.decisions) ]
    "policy_tick"

let create ?cloud ?(trace = Trace.null) ?metrics (config : service_config) =
  let cloud =
    match cloud with
    | Some c -> c
    | None ->
        Cloud.create
          ~config:(Cloudless_schema.Cloud_rules.config_with_checks ()) ~seed:42
          ()
  in
  let controller =
    match config.policy_src with
    | Some src when config.policy_period > 0. ->
        Some (Controller.of_source ~file:"<service-policy>" src)
    | _ -> None
  in
  let registry = match metrics with Some m -> m | None -> Metrics.create () in
  let writes = ref 0 in
  let crash = ref Failure.No_crash in
  let dead = ref false in
  (* Crash gate: called by the applier after each intent is journaled,
     before the cloud call is issued.  One counter across every tenant:
     the service is one process, and [Crash_after k] kills it at its
     (k+1)-th write wherever that lands. *)
  let gate () =
    incr writes;
    match !crash with
    | Failure.Crash_after k when !writes > k ->
        dead := true;
        raise (Failure.Engine_crashed k)
    | _ -> ()
  in
  (* the policy tick closes over the shard it runs against; tie the
     knot through a cell rather than a mutually recursive record *)
  let shard_cell = ref None in
  let host =
    {
      Shard.gate;
      alive = (fun () -> not !dead);
      on_policy =
        (match controller with
        | None -> None
        | Some c ->
            Some
              (fun at ->
                match !shard_cell with
                | Some shard -> exec_policy ~shard ~controller:c ~trace at
                | None -> ()));
    }
  in
  let shard =
    Shard.create ~cloud ~config ~scope:(Metrics.unscoped registry) ~trace ~host
      ()
  in
  shard_cell := Some shard;
  { cloud; config; trace; shard; crash; dead }

let shard t = t.shard
let metrics t = Shard.metrics t.shard
let cloud t = t.cloud
let lock t = Shard.lock t.shard
let deployments t = Shard.deployments t.shard
let completed_requests t = Shard.completed_requests t.shard
let drift_detections t = Shard.drift_detections t.shard
let set_crash t policy = t.crash := policy
let find_deployment t ~tenant ~dname = Shard.find_deployment t.shard ~tenant ~dname
let add_deployment t ~tenant ~dname ~src =
  Shard.add_deployment t.shard ~tenant ~dname ~src

let expand = Shard.expand

(** Submit an apply request for [dep] with configuration [src] at the
    current simulated time; returns the request id.  Latency metrics
    measure from this instant (queueing + admission + execution).  The
    single-loop service runs unbounded admission, so submission never
    defers or rejects. *)
let submit_request t dep ~src =
  match Shard.submit_request t.shard dep ~src with
  | `Accepted rid | `Deferred rid -> rid
  | `Rejected ->
      (* only reachable when a caller configures a bound + Reject on the
         single-loop service; surface it as a work failure *)
      Metrics.inc (metrics t) "work_failures";
      -1

(** Drive the service until the simulated event queue drains.  Periodic
    timers (drift pollers, policy ticks) re-arm themselves only up to
    [until], so the loop terminates shortly after; request callbacks
    installed by the scenario fire at their scheduled times along the
    way.  Raises {!Failure.Engine_crashed} if a crash policy trips —
    the service process is then dead ({!resume} builds its successor).
    Call once per control-plane instance. *)
let run t ~until =
  Shard.arm_timers t.shard ~until;
  Shard.drain t.shard;
  let rec drive () =
    if (not !(t.dead)) && Cloud.step t.cloud then begin
      Shard.drain t.shard;
      drive ()
    end
  in
  drive ();
  Shard.finish_stats t.shard

(* ------------------------------------------------------------------ *)
(* Crash recovery and audits                                           *)
(* ------------------------------------------------------------------ *)

(** Build the dead service's successor on the same cloud: per
    deployment, replay its journal over the last persisted state and
    adopt in-flight creates from the activity log
    ({!Recovery.resume_state} — per-deployment engine names keep
    adoption tenant-safe), then enqueue a converge request against the
    deployment's current configuration.  Tailer cursors carry over so
    old events are not re-flagged.  Returns the new control plane and
    the per-deployment recovery reports. *)
let resume (old : t) =
  let t = create ~cloud:old.cloud ~trace:old.trace old.config in
  let reports =
    List.map
      (fun (d : deployment) ->
        let entries = Journal.entries d.journal in
        let state, report =
          Recovery.resume_state old.cloud ~engine:d.engine ~state:d.persisted
            ~entries
        in
        let dep = add_deployment t ~tenant:d.tenant ~dname:d.dname ~src:d.config_src in
        dep.state <- state;
        dep.persisted <- state;
        (* keep journaling into the same (already-replayed) journal:
           op ids continue from [max_op], replay stays idempotent *)
        List.iter (Journal.append dep.journal) entries;
        Drift.Log_tailer.((dep.tailer).cursor <- d.tailer.Drift.Log_tailer.cursor);
        ignore (submit_request t dep ~src:d.config_src);
        ((d.tenant, d.dname), report))
      (deployments old)
  in
  (t, reports)

(** IaC-engine-created resources alive in the cloud that {e no}
    deployment's state tracks — the cross-tenant orphan audit (the
    single-state {!Recovery.orphans} can't see resources another
    deployment legitimately owns). *)
let orphans t =
  let deps = deployments t in
  List.filter_map
    (fun (e : Activity_log.entry) ->
      match (e.Activity_log.op, e.Activity_log.actor) with
      | Activity_log.Log_create, Activity_log.Iac_engine _ ->
          let cid = e.Activity_log.cloud_id in
          if
            Cloud.lookup t.cloud cid <> None
            && List.for_all
                 (fun d -> State.find_by_cloud_id d.state cid = None)
                 deps
          then Some cid
          else None
      | _ -> None)
    (Activity_log.all (Cloud.log t.cloud))
  |> List.sort_uniq compare

(** Total resources across every deployment's state. *)
let managed_resource_count t = Shard.managed_resource_count t.shard
