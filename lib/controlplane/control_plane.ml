(** The multi-tenant reconciliation control plane (§3.4–§3.6).

    Every verb before this PR was a one-shot CLI invocation over one
    deployment.  This module is the paper's endgame instead: cloud
    management as a {e continuous service}.  One deterministic event
    loop on the simulated clock owns N tenants × M deployments and
    drains a prioritized work queue of

    - {b tenant requests} (apply a new configuration revision),
      admitted through a {!Lock_manager} so work on disjoint
      deployments proceeds concurrently while work on the same
      deployment serializes in queue order;
    - {b drift reconciles}, triggered by per-deployment activity-log
      tailer cursors ({!Cloudless_drift.Drift.Log_tailer}) and scoped
      to the impacted subgraph via {!Dag.impact_scope};
    - {b policy ticks}, periodic {!Cloudless_policy.Controller}
      evaluations over service observations.

    Each unit of work runs with the write-ahead journal enabled and is
    emitted as a traced span on completion, so a crash anywhere
    mid-service resumes cleanly ({!resume}: journal replay + orphan
    adoption per deployment) and the whole run is observable.  All
    operational signals land in a {!Metrics} registry whose JSON
    snapshot is byte-deterministic for a fixed seed.

    Two canonical service configurations mirror the experiment axes:

    - {!cloudless_service}: per-resource (here: per-deployment-rooted)
      locks, log-tailer drift detection, scoped reconciles, no
      refresh before apply.
    - {!baseline_service}: the Terraform-style operation — one global
      lock, a full state refresh before every apply, and periodic
      scan-based drift sweeps that read every tracked resource. *)

module Hcl = Cloudless_hcl
module Addr = Hcl.Addr
module Value = Hcl.Value
module Smap = Value.Smap
module Cloud = Cloudless_sim.Cloud
module Activity_log = Cloudless_sim.Activity_log
module Failure = Cloudless_sim.Failure
module Pq = Cloudless_sim.Pqueue
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Plan = Cloudless_plan.Plan
module Dag = Cloudless_graph.Dag
module Lock_manager = Cloudless_lock.Lock_manager
module Drift = Cloudless_drift.Drift
module Recovery = Cloudless_deploy.Recovery
module Controller = Cloudless_policy.Controller
module Policy = Cloudless_policy.Policy
module Trace = Cloudless_obs.Trace
module Metrics = Cloudless_obs.Metrics

type drift_mode = Tailer | Scan

type service_config = {
  sname : string;
  granularity : Lock_manager.granularity;
  drift_mode : drift_mode;
  drift_period : float;  (** tailer poll / scan sweep period, sim s *)
  scoped_reconcile : bool;  (** restrict reconcile applies to impact scope *)
  refresh_before_apply : bool;  (** Terraform's full refresh on every apply *)
  parallelism : int option;  (** per-work-unit in-flight op cap *)
  policy_period : float;  (** 0 = no policy controller *)
  policy_src : string option;
}

let cloudless_service =
  {
    sname = "cloudless";
    granularity = Lock_manager.Per_resource;
    drift_mode = Tailer;
    drift_period = 60.;
    scoped_reconcile = true;
    refresh_before_apply = false;
    parallelism = None;
    policy_period = 0.;
    policy_src = None;
  }

let baseline_service =
  {
    sname = "baseline";
    granularity = Lock_manager.Global;
    drift_mode = Scan;
    drift_period = 60.;
    scoped_reconcile = false;
    refresh_before_apply = true;
    parallelism = Some 10;
    policy_period = 0.;
    policy_src = None;
  }

type deployment = {
  tenant : string;
  dname : string;
  engine : string;
      (** activity-log actor, unique per deployment ("cp/<tenant>/<name>")
          so crash-recovery orphan adoption cannot claim across tenants *)
  root_key : Addr.t;
      (** every unit of work on this deployment locks this key: work on
          one deployment serializes, disjoint deployments don't conflict *)
  mutable config_src : string;  (** desired configuration (latest revision) *)
  mutable state : State.t;  (** live in-memory state *)
  mutable persisted : State.t;
      (** state as of the last *completed* unit of work — what survives
          a crash (end-of-work persistence); resume replays the journal
          over this *)
  journal : Journal.t;  (** one write-ahead journal across all applies *)
  tailer : Drift.Log_tailer.t;
}

type work =
  | Request of { dep : deployment; rid : int; src : string; submitted : float }
  | Reconcile of {
      dep : deployment;
      seeds : Addr.t list;  (** drifted addresses (tailer mode) *)
      detected : float;
    }
  | Scan_sweep of { dep : deployment; swept : float }
  | Policy_tick of { at : float }

type t = {
  cloud : Cloud.t;
  config : service_config;
  lock : Lock_manager.t;
  queue : (int, work) Pq.t;  (** prio = work class; FIFO within class *)
  metrics : Metrics.t;
  trace : Trace.t;
  controller : Controller.t option;
  mutable deployments : deployment list;  (** registration order *)
  mutable next_work : int;
  mutable next_rid : int;
  mutable completed : (int * float) list;  (** requests, completion order *)
  mutable detections : (string * float) list;
      (** (cloud_id, detected_at), first detection per drift event *)
  mutable writes : int;  (** journaled write ops across all tenants *)
  mutable crash : Failure.crash_policy;
  mutable dead : bool;
  mutable until : float;
}

let create ?cloud ?(trace = Trace.null) ?metrics (config : service_config) =
  let cloud =
    match cloud with
    | Some c -> c
    | None ->
        Cloud.create
          ~config:(Cloudless_schema.Cloud_rules.config_with_checks ()) ~seed:42
          ()
  in
  let controller =
    match config.policy_src with
    | Some src when config.policy_period > 0. ->
        Some (Controller.of_source ~file:"<service-policy>" src)
    | _ -> None
  in
  {
    cloud;
    config;
    lock = Lock_manager.create config.granularity;
    queue = Pq.create ~initial_capacity:64 Pq.Min_first;
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
    trace;
    controller;
    deployments = [];
    next_work = 0;
    next_rid = 0;
    completed = [];
    detections = [];
    writes = 0;
    crash = Failure.No_crash;
    dead = false;
    until = 0.;
  }

let metrics t = t.metrics
let cloud t = t.cloud
let lock t = t.lock
let deployments t = List.rev t.deployments
let completed_requests t = List.rev t.completed
let drift_detections t = List.rev t.detections
let set_crash t policy = t.crash <- policy
let alive t () = not t.dead

let find_deployment t ~tenant ~dname =
  List.find_opt
    (fun d -> d.tenant = tenant && d.dname = dname)
    t.deployments

let add_deployment t ~tenant ~dname ~src =
  let engine = Printf.sprintf "cp/%s/%s" tenant dname in
  let dep =
    {
      tenant;
      dname;
      engine;
      root_key =
        Addr.make ~module_path:[ tenant; dname ] ~rtype:"deployment"
          ~rname:dname ();
      config_src = src;
      state = State.empty;
      persisted = State.empty;
      journal = Journal.create ();
      tailer = Drift.Log_tailer.create ();
    }
  in
  t.deployments <- dep :: t.deployments;
  dep

(* ------------------------------------------------------------------ *)
(* Config expansion (shared by requests and reconciles)                *)
(* ------------------------------------------------------------------ *)

let data_resolver ~rtype ~name:_ ~args:_ =
  match rtype with
  | "aws_region" -> Some (Smap.singleton "name" (Value.Vstring "us-east-1"))
  | _ -> None

let expand ~state src =
  let cfg = Hcl.Config.parse ~file:"<service>" src in
  let env =
    {
      Hcl.Eval.default_env with
      Hcl.Eval.data_resolver;
      state_lookup = (fun addr -> State.lookup state addr);
    }
  in
  (Hcl.Eval.expand ~env cfg).Hcl.Eval.instances

(* ------------------------------------------------------------------ *)
(* Crash gate and journaled-write accounting                           *)
(* ------------------------------------------------------------------ *)

(* Called by the applier after each intent is journaled, before the
   cloud call is issued.  One counter across every tenant: the service
   is one process, and [Crash_after k] kills it at its (k+1)-th write
   wherever that lands. *)
let gate t () =
  t.writes <- t.writes + 1;
  match t.crash with
  | Failure.Crash_after k when t.writes > k ->
      t.dead <- true;
      raise (Failure.Engine_crashed k)
  | _ -> ()

let applier_config t dep =
  {
    Applier.engine = dep.engine;
    parallelism = t.config.parallelism;
    max_retries = 12;
    backoff_base = 2.;
  }

let count_api t dep ~read n =
  Metrics.inc t.metrics ~by:n "api_calls";
  Metrics.inc t.metrics ~by:n ("api_calls." ^ dep.tenant);
  if read then Metrics.inc t.metrics ~by:n "api_reads"
  else Metrics.inc t.metrics ~by:n "api_writes"

(* ------------------------------------------------------------------ *)
(* The work queue                                                      *)
(* ------------------------------------------------------------------ *)

(* Priority classes; FIFO within a class via the heap's insertion
   sequence.  Tenant-facing requests outrank background repair, which
   outranks policy bookkeeping. *)
let work_class = function
  | Request _ -> 0.
  | Reconcile _ | Scan_sweep _ -> 1.
  | Policy_tick _ -> 2.

let owner_of dep ~wid = Printf.sprintf "%s#%d" dep.engine wid

(* Forward declaration: executing work needs [drain] (to hand follow-up
   work to the lock manager) and vice versa. *)
let rec drain t =
  if not t.dead then begin
    Metrics.set t.metrics "queue_depth"
      (float_of_int (Pq.length t.queue + Lock_manager.queue_length t.lock));
    match Pq.pop t.queue with
    | None -> ()
    | Some (_, wid, work) ->
        admit t wid work;
        drain t
    end

(* Hand one unit of work to the lock manager.  The grant callback runs
   the work; conflicting work queues FIFO inside the manager, which is
   exactly the serialization order the QCheck property pins down. *)
and admit t wid work =
  match work with
  | Policy_tick { at } ->
      (* read-only bookkeeping: no locks *)
      exec_policy t ~at
  | Request { dep; rid; src; submitted } ->
      Lock_manager.acquire t.lock ~owner:(owner_of dep ~wid)
        ~keys:[ dep.root_key ] (fun () ->
          if not t.dead then exec_request t dep ~wid ~rid ~src ~submitted)
  | Reconcile { dep; seeds; detected } ->
      Lock_manager.acquire t.lock ~owner:(owner_of dep ~wid)
        ~keys:[ dep.root_key ] (fun () ->
          if not t.dead then exec_reconcile t dep ~wid ~seeds ~detected)
  | Scan_sweep { dep; swept } ->
      Lock_manager.acquire t.lock ~owner:(owner_of dep ~wid)
        ~keys:[ dep.root_key ] (fun () ->
          if not t.dead then exec_scan t dep ~wid ~swept)

and enqueue t work =
  let wid = t.next_work in
  t.next_work <- wid + 1;
  Pq.push t.queue ~prio:(work_class work) ~key:wid work;
  drain t

(* Complete a unit of work: persist the deployment's state (end-of-work
   persistence — the crash window the journal covers), release the
   locks, and emit the span. *)
and finish_work t dep ~wid ~span ~sim_start ~meta ~counters =
  dep.persisted <- dep.state;
  Lock_manager.release t.lock ~owner:(owner_of dep ~wid);
  Trace.emit_span t.trace ~meta ~counters ~sim_start span;
  drain t

(* Catch per-work configuration/planning errors without killing the
   service; a crash injection must still propagate. *)
and protected t dep ~wid (f : unit -> unit) =
  try f () with
  | Failure.Engine_crashed _ as e -> raise e
  | e ->
      Metrics.inc t.metrics "work_failures";
      Trace.meta t.trace "work_error" (Printexc.to_string e);
      dep.state <- dep.persisted;
      Lock_manager.release t.lock ~owner:(owner_of dep ~wid);
      drain t

(* --- tenant apply request ------------------------------------------ *)

and exec_request t dep ~wid ~rid ~src ~submitted =
  protected t dep ~wid @@ fun () ->
  let granted = Cloud.now t.cloud in
  Metrics.observe t.metrics "request_queue_wait" (granted -. submitted);
  dep.config_src <- src;
  let continue_with state0 reads =
    let instances = expand ~state:state0 src in
    let plan = Plan.make ~state:state0 instances in
    Applier.apply t.cloud ~config:(applier_config t dep) ~state:state0 ~plan
      ~journal:dep.journal ~gate:(gate t) ~alive:(alive t)
      ~count_api:(count_api t dep ~read:false)
      ~on_done:(fun (o : Applier.outcome) ->
        dep.state <- o.Applier.astate;
        let now = Cloud.now t.cloud in
        Metrics.inc t.metrics "requests_done";
        Metrics.observe t.metrics "request_latency" (now -. submitted);
        Metrics.observe t.metrics
          ("request_latency." ^ dep.tenant)
          (now -. submitted);
        if o.Applier.failed <> [] then Metrics.inc t.metrics "work_failures";
        t.completed <- (rid, now) :: t.completed;
        finish_work t dep ~wid ~span:"request" ~sim_start:submitted
          ~meta:
            [
              ("tenant", dep.tenant);
              ("deployment", dep.dname);
              ("rid", string_of_int rid);
            ]
          ~counters:
            [
              ("applied", List.length o.Applier.applied);
              ("failed", List.length o.Applier.failed);
              ("writes", o.Applier.writes);
              ("refresh_reads", reads);
            ])
      ()
  in
  if t.config.refresh_before_apply && State.size dep.state > 0 then
    Applier.refresh t.cloud ~engine:dep.engine ~state:dep.state
      ~alive:(alive t)
      ~count_api:(count_api t dep ~read:true)
      ~on_done:(fun (r : Applier.refresh_outcome) ->
        protected t dep ~wid @@ fun () ->
        (* rows the refresh proved gone are dropped so the re-plan
           recreates them *)
        let state0 =
          List.fold_left State.remove r.Applier.rstate r.Applier.missing
        in
        dep.state <- state0;
        continue_with state0 r.Applier.reads)
      ()
  else continue_with dep.state 0

(* --- drift: log-tailer polling (cloudless)  ------------------------ *)

and poll_tailer t dep =
  let events = Drift.Log_tailer.poll dep.tailer t.cloud ~state:dep.state in
  if events <> [] then begin
    Metrics.inc t.metrics ~by:(List.length events) "drift_events";
    let seeds =
      List.filter_map (fun (e : Drift.event) -> e.Drift.addr) events
    in
    List.iter
      (fun (e : Drift.event) ->
        t.detections <- (e.Drift.cloud_id, e.Drift.detected_at) :: t.detections;
        match e.Drift.occurred_at with
        | Some at ->
            Metrics.observe t.metrics "drift_detection_latency"
              (e.Drift.detected_at -. at)
        | None -> ())
      events;
    if seeds <> [] then
      enqueue t
        (Reconcile { dep; seeds; detected = Cloud.now t.cloud })
  end

(* --- drift: scoped reconcile apply --------------------------------- *)

and exec_reconcile t dep ~wid ~seeds ~detected =
  protected t dep ~wid @@ fun () ->
  let instances = expand ~state:dep.state dep.config_src in
  let scope =
    if t.config.scoped_reconcile then
      Some (Plan.impact_scope ~graph:(Dag.of_instances instances) ~edited:seeds)
    else None
  in
  let finish_reconcile (o : Applier.outcome) reads =
    dep.state <- o.Applier.astate;
    Metrics.inc t.metrics "reconciles";
    Metrics.observe t.metrics "reconcile_latency" (Cloud.now t.cloud -. detected);
    finish_work t dep ~wid ~span:"reconcile" ~sim_start:detected
      ~meta:
        [
          ("tenant", dep.tenant);
          ("deployment", dep.dname);
          ( "scope",
            match scope with
            | Some s -> string_of_int (Addr.Set.cardinal s)
            | None -> "full" );
        ]
      ~counters:
        [
          ("applied", List.length o.Applier.applied);
          ("writes", o.Applier.writes);
          ("refresh_reads", reads);
          ("seeds", List.length seeds);
        ]
  in
  Applier.refresh t.cloud ~engine:dep.engine ~state:dep.state ?addrs:scope
    ~alive:(alive t)
    ~count_api:(count_api t dep ~read:true)
    ~on_done:(fun (r : Applier.refresh_outcome) ->
      protected t dep ~wid @@ fun () ->
      let state0 =
        List.fold_left State.remove r.Applier.rstate r.Applier.missing
      in
      dep.state <- state0;
      let instances = expand ~state:state0 dep.config_src in
      let plan = Plan.make ~state:state0 instances in
      let plan =
        match scope with Some s -> Plan.restrict plan s | None -> plan
      in
      Applier.apply t.cloud ~config:(applier_config t dep) ~state:state0 ~plan
        ~journal:dep.journal ~gate:(gate t) ~alive:(alive t)
        ~count_api:(count_api t dep ~read:false)
        ~on_done:(fun o -> finish_reconcile o r.Applier.reads)
        ())
    ()

(* --- drift: scan sweep (baseline) ---------------------------------- *)

and exec_scan t dep ~wid ~swept =
  protected t dep ~wid @@ fun () ->
  Applier.scan t.cloud ~engine:dep.engine ~state:dep.state ~alive:(alive t)
    ~count_api:(count_api t dep ~read:true)
    ~on_done:(fun (events, reads) ->
      protected t dep ~wid @@ fun () ->
      Metrics.inc t.metrics ~by:reads "scan_reads";
      if events = [] then
        finish_work t dep ~wid ~span:"scan" ~sim_start:swept
          ~meta:[ ("tenant", dep.tenant); ("deployment", dep.dname) ]
          ~counters:[ ("scan_reads", reads); ("drift", 0) ]
      else begin
        Metrics.inc t.metrics ~by:(List.length events) "drift_events";
        List.iter
          (fun (e : Drift.event) ->
            t.detections <-
              (e.Drift.cloud_id, e.Drift.detected_at) :: t.detections)
          events;
        (* Terraform-style repair, still holding the global lock: fold
           the observed live world into state first (deleted rows
           dropped, drifted attrs overwritten with their live values —
           [Plan.make] diffs desired against state, so without this the
           repair plan is empty and the drift is re-flagged forever),
           then full re-plan + apply. *)
        let state0 =
          List.fold_left
            (fun st (e : Drift.event) ->
              match (e.Drift.kind, e.Drift.addr) with
              | Drift.Deleted_oob, Some addr -> State.remove st addr
              | Drift.Attr_drift { attr; actual; _ }, Some addr -> (
                  match State.find_opt st addr with
                  | Some (r : State.resource_state) ->
                      State.update_attrs st addr
                        (Smap.add attr actual r.State.attrs)
                  | None -> st)
              | _ -> st)
            dep.state events
        in
        dep.state <- state0;
        let instances = expand ~state:state0 dep.config_src in
        let plan = Plan.make ~state:state0 instances in
        let detected = Cloud.now t.cloud in
        Applier.apply t.cloud ~config:(applier_config t dep) ~state:state0
          ~plan ~journal:dep.journal ~gate:(gate t) ~alive:(alive t)
          ~count_api:(count_api t dep ~read:false)
          ~on_done:(fun (o : Applier.outcome) ->
            dep.state <- o.Applier.astate;
            Metrics.inc t.metrics "reconciles";
            Metrics.observe t.metrics "reconcile_latency"
              (Cloud.now t.cloud -. detected);
            finish_work t dep ~wid ~span:"scan" ~sim_start:swept
              ~meta:[ ("tenant", dep.tenant); ("deployment", dep.dname) ]
              ~counters:
                [
                  ("scan_reads", reads);
                  ("drift", List.length events);
                  ("writes", o.Applier.writes);
                ])
          ()
      end)
    ()

(* --- policy ticks --------------------------------------------------- *)

and exec_policy t ~at =
  match t.controller with
  | None -> ()
  | Some c ->
      Metrics.inc t.metrics "policy_ticks";
      let combined_size =
        List.fold_left (fun acc d -> acc + State.size d.state) 0 t.deployments
      in
      let obs =
        Controller.standard_obs
          ~extra:
            [
              ("tenants", Value.Vint (List.length t.deployments));
              ("managed_resources", Value.Vint combined_size);
              ("drift_events", Value.Vint (Metrics.counter t.metrics "drift_events"));
              ( "queue_depth",
                Value.Vint (Pq.length t.queue + Lock_manager.queue_length t.lock)
              );
            ]
          ()
      in
      let r = Controller.tick c ~phase:Policy.On_telemetry ~obs () in
      Metrics.inc t.metrics ~by:(List.length r.Controller.decisions)
        "policy_decisions";
      Trace.emit_span t.trace ~sim_start:at
        ~counters:[ ("decisions", List.length r.Controller.decisions) ]
        "policy_tick"

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

(** Submit an apply request for [dep] with configuration [src] at the
    current simulated time; returns the request id.  Latency metrics
    measure from this instant (queueing + admission + execution). *)
let submit_request t dep ~src =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  Metrics.inc t.metrics "requests";
  enqueue t (Request { dep; rid; src; submitted = Cloud.now t.cloud });
  rid

(* ------------------------------------------------------------------ *)
(* Timers + the event loop                                             *)
(* ------------------------------------------------------------------ *)

let rec arm_drift_timer t dep =
  Cloud.schedule t.cloud ~delay:t.config.drift_period (fun () ->
      if not t.dead then begin
        (match t.config.drift_mode with
        | Tailer -> poll_tailer t dep
        | Scan -> enqueue t (Scan_sweep { dep; swept = Cloud.now t.cloud }));
        if Cloud.now t.cloud +. t.config.drift_period <= t.until then
          arm_drift_timer t dep
      end)

let rec arm_policy_timer t =
  Cloud.schedule t.cloud ~delay:t.config.policy_period (fun () ->
      if not t.dead then begin
        enqueue t (Policy_tick { at = Cloud.now t.cloud });
        if Cloud.now t.cloud +. t.config.policy_period <= t.until then
          arm_policy_timer t
      end)

(** Drive the service until the simulated event queue drains.  Periodic
    timers (drift pollers, policy ticks) re-arm themselves only up to
    [until], so the loop terminates shortly after; request callbacks
    installed by the scenario fire at their scheduled times along the
    way.  Raises {!Failure.Engine_crashed} if a crash policy trips —
    the service process is then dead ({!resume} builds its successor).
    Call once per control-plane instance. *)
let run t ~until =
  t.until <- until;
  List.iter (fun dep -> arm_drift_timer t dep) t.deployments;
  if t.config.policy_period > 0. && t.controller <> None then
    arm_policy_timer t;
  drain t;
  let rec drive () =
    if (not t.dead) && Cloud.step t.cloud then begin
      drain t;
      drive ()
    end
  in
  drive ();
  let grants, waits = Lock_manager.stats t.lock in
  Metrics.set t.metrics "lock_grants" (float_of_int grants);
  Metrics.set t.metrics "lock_waits" (float_of_int waits)

(* ------------------------------------------------------------------ *)
(* Crash recovery and audits                                           *)
(* ------------------------------------------------------------------ *)

(** Build the dead service's successor on the same cloud: per
    deployment, replay its journal over the last persisted state and
    adopt in-flight creates from the activity log
    ({!Recovery.resume_state} — per-deployment engine names keep
    adoption tenant-safe), then enqueue a converge request against the
    deployment's current configuration.  Tailer cursors carry over so
    old events are not re-flagged.  Returns the new control plane and
    the per-deployment recovery reports. *)
let resume (old : t) =
  let t = create ~cloud:old.cloud ~trace:old.trace old.config in
  let reports =
    List.map
      (fun (d : deployment) ->
        let entries = Journal.entries d.journal in
        let state, report =
          Recovery.resume_state old.cloud ~engine:d.engine ~state:d.persisted
            ~entries
        in
        let dep = add_deployment t ~tenant:d.tenant ~dname:d.dname ~src:d.config_src in
        dep.state <- state;
        dep.persisted <- state;
        (* keep journaling into the same (already-replayed) journal:
           op ids continue from [max_op], replay stays idempotent *)
        List.iter (Journal.append dep.journal) entries;
        Drift.Log_tailer.((dep.tailer).cursor <- d.tailer.Drift.Log_tailer.cursor);
        ignore (submit_request t dep ~src:d.config_src);
        ((d.tenant, d.dname), report))
      (deployments old)
  in
  (t, reports)

(** IaC-engine-created resources alive in the cloud that {e no}
    deployment's state tracks — the cross-tenant orphan audit (the
    single-state {!Recovery.orphans} can't see resources another
    deployment legitimately owns). *)
let orphans t =
  List.filter_map
    (fun (e : Activity_log.entry) ->
      match (e.Activity_log.op, e.Activity_log.actor) with
      | Activity_log.Log_create, Activity_log.Iac_engine _ ->
          let cid = e.Activity_log.cloud_id in
          if
            Cloud.lookup t.cloud cid <> None
            && List.for_all
                 (fun d -> State.find_by_cloud_id d.state cid = None)
                 t.deployments
          then Some cid
          else None
      | _ -> None)
    (Activity_log.all (Cloud.log t.cloud))
  |> List.sort_uniq compare

(** Total resources across every deployment's state. *)
let managed_resource_count t =
  List.fold_left (fun acc d -> acc + State.size d.state) 0 t.deployments
