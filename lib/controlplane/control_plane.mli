(** The single-loop multi-tenant reconciliation control plane
    (§3.4–§3.6).

    Since E15 this is a thin host around exactly one {!Shard} — the
    execution engine lives there, shared with the multi-shard {!Fleet}.
    This module keeps the service-process identity the pre-fleet
    experiments depend on: the cross-tenant crash gate, the policy
    controller, crash {!resume} and the {!orphans} audit.  Behavior,
    spans and metric names are unchanged from the pre-shard monolith. *)

module Failure = Cloudless_sim.Failure
module Lock_manager = Cloudless_lock.Lock_manager

type drift_mode = Shard.drift_mode = Tailer | Scan | Subscribe
type admission = Shard.admission = Defer | Reject

type service_config = Shard.service_config = {
  sname : string;
  granularity : Lock_manager.granularity;
  drift_mode : drift_mode;
  drift_period : float;  (** tailer poll / scan sweep period, sim s *)
  scoped_reconcile : bool;  (** restrict reconcile applies to impact scope *)
  refresh_before_apply : bool;  (** Terraform's full refresh on every apply *)
  parallelism : int option;  (** per-work-unit in-flight op cap *)
  policy_period : float;  (** 0 = no policy controller *)
  policy_src : string option;
  max_queue_depth : int;  (** admission bound; 0 = unbounded *)
  admission : admission;  (** what to do with requests over the bound *)
  defer_delay : float;  (** re-admission delay for deferred requests *)
  rebalance_period : float;  (** fleet rebalance check period; 0 = off *)
  breaker : Cloudless_deploy.Breaker.config option;
      (** circuit-breaker cells per (API kind, rtype); [None] = off *)
}

(** Per-resource locks, log-tailer drift detection, scoped reconciles,
    no refresh before apply. *)
val cloudless_service : service_config

(** The Terraform-style operation: one global lock, a full state
    refresh before every apply, periodic scan-based drift sweeps. *)
val baseline_service : service_config

type deployment = Shard.deployment = {
  tenant : string;
  dname : string;
  engine : string;
  root_key : Cloudless_hcl.Addr.t;
  mutable config_src : string;
  mutable state : Cloudless_state.State.t;
  mutable persisted : Cloudless_state.State.t;
  journal : Cloudless_state.Journal.t;
  tailer : Cloudless_drift.Drift.Log_tailer.t;
}

type t

val create :
  ?cloud:Cloudless_sim.Cloud.t ->
  ?trace:Cloudless_obs.Trace.t ->
  ?metrics:Cloudless_obs.Metrics.t ->
  service_config ->
  t

(** The single shard this service hosts. *)
val shard : t -> Shard.t

val metrics : t -> Cloudless_obs.Metrics.t
val cloud : t -> Cloudless_sim.Cloud.t
val lock : t -> Lock_manager.t

(** Deployments in registration order. *)
val deployments : t -> deployment list

(** Completed request (rid, completion time) pairs, completion order. *)
val completed_requests : t -> (int * float) list

(** (cloud_id, detected_at) per drift event, oldest first. *)
val drift_detections : t -> (string * float) list

(** Install the crash-injection policy ([Crash_after k] counts
    journaled writes across every tenant of this one process). *)
val set_crash : t -> Failure.crash_policy -> unit

val find_deployment : t -> tenant:string -> dname:string -> deployment option

val add_deployment :
  t -> tenant:string -> dname:string -> src:string -> deployment

(** Expand a configuration source against a state (shared by requests,
    reconciles, and post-hoc convergence audits). *)
val expand :
  state:Cloudless_state.State.t -> string -> Cloudless_hcl.Eval.instance list

(** Submit an apply request for [dep] with configuration [src] at the
    current simulated time; returns the request id.  Latency metrics
    measure from this instant. *)
val submit_request : t -> deployment -> src:string -> int

(** Drive the service until the simulated event queue drains; periodic
    timers re-arm only up to [until].  Raises
    {!Failure.Engine_crashed} if a crash policy trips — {!resume}
    builds the successor.  Call once per control-plane instance. *)
val run : t -> until:float -> unit

(** Build the dead service's successor on the same cloud: per
    deployment, journal replay over the last persisted state plus
    activity-log orphan adoption, then a converge request.  Returns
    the new control plane and per-deployment recovery reports. *)
val resume :
  t -> t * ((string * string) * Cloudless_deploy.Recovery.resume_report) list

(** IaC-engine-created resources alive in the cloud that no
    deployment's state tracks — the cross-tenant orphan audit. *)
val orphans : t -> string list

(** Total resources across every deployment's state. *)
val managed_resource_count : t -> int
