(** The fleet-wide bulk-change rollout driver (E18).

    Carries a {!Cloudless_wave.Change.t} across a running {!Fleet} in
    canary → geometrically growing waves: per-tenant config rewrites
    submitted through the normal (journaled, locked) request path, a
    polled quiescence check per wave, a policy/health gate at every
    wave boundary ({!Cloudless_wave.Gate}), and wave-scoped
    auto-rollback via {!Fleet.submit_rollback} when the gate trips —
    halting every later wave.

    Deployments are held by [(tenant, dname)] name and the fleet by
    [ref], so scheduled callbacks survive a crash-resume (the successor
    fleet rebuilds deployment records).  Wave transitions are journaled
    as {!Cloudless_state.Journal.Wave_mark}s; {!resume} restores the
    committed-wave boundary and re-submits from the first uncommitted
    wave (idempotent: converged tenants' rewrites plan to nothing). *)

module Cloud = Cloudless_sim.Cloud
module Journal = Cloudless_state.Journal
module Change = Cloudless_wave.Change
module Wave = Cloudless_wave.Wave

type outcome =
  | Converged  (** every wave committed fleet-wide *)
  | Rolled_back of string list
      (** a gate tripped: the failing wave was rolled back, later waves
          halted; the payload is the gate's failure reasons *)
  | Halted of string list
      (** terminal without a rollback of our own — e.g. resumed from a
          journal whose durable record already ended the rollout *)

val outcome_to_string : outcome -> string

type t

(** Build an idle driver.  [check_period] (default 30 sim-seconds) is
    the quiescence-poll cadence; with [journal], wave transitions are
    journaled.  Targets (every tenant with a deployment, lexicographic)
    are captured lazily at first start so the driver can be created
    before deployments register. *)
val create :
  ?journal:Journal.t ->
  ?check_period:float ->
  change:Change.t ->
  Fleet.t ref ->
  unit ->
  t

(** Submit the first (or next uncommitted) wave now. *)
val start : t -> unit

(** Schedule {!start} at absolute sim-instant [at]. *)
val launch : t -> at:float -> unit

(** Mark the driver dead: its scheduled callbacks become no-ops.  Call
    before building a {!resume} successor so both never drive. *)
val abandon : t -> unit

(** Build a successor driver after a crash: restores wave statuses from
    the journal's {!Journal.Wave_mark} record, then {!start} re-submits
    from the first uncommitted wave. *)
val resume :
  ?journal:Journal.t ->
  ?check_period:float ->
  change:Change.t ->
  Fleet.t ref ->
  unit ->
  t

(** One driver per [wave =] line of the scenario, launched at its
    [start=] instant.  Call after {!Scenario.install_fleet} has
    registered the deployments. *)
val install : Scenario.t -> Fleet.t ref -> t list

val change : t -> Change.t

(** [None] while the rollout is still running. *)
val outcome : t -> outcome option

val converged : t -> bool
val wave_machine : t -> Wave.t

(** Tenants a wave submission has ever reached — the blast radius. *)
val touched_tenants : t -> string list

val committed_tenants : t -> string list

(** Management-plane reads spent on gating (quiescence polls, instance
    expansions, live-attr lookups) — the overhead side of the
    blast-radius trade. *)
val mgmt_calls : t -> int

val gate_checks : t -> int
val submitted : t -> int
val rollbacks : t -> int

(** Gate-failure instant to last-rollback-completion instant, sim
    seconds. *)
val rollback_latency : t -> float option

(** Progress log, oldest first. *)
val events : t -> (float * string) list
