(** Callback-style deployment execution for the control plane.

    {!Cloudless_deploy.Executor.apply} is a run-to-completion engine:
    it pumps its ready set and then {e drives the simulated cloud to
    idle} before returning.  That is the right shape for a one-shot
    CLI verb, but it makes true multi-tenant concurrency impossible —
    the first tenant's apply would fast-forward the simulated clock
    past everyone else.  The control plane instead owns the single
    event loop and executes every unit of work through this module:
    the same plan-walk, write-ahead journaling and retry semantics as
    the executor, but purely callback-shaped — [apply] returns
    immediately after seeding its ready set, progress rides on cloud
    callbacks, and completion is announced through [on_done].  Many
    appliers (one per in-flight unit of work, across tenants) then
    interleave on one shared simulated timeline.

    Differences from the executor, all deliberate:

    - no internal [run_until_idle]/[step] calls anywhere;
    - FIFO admission with an optional parallelism cap (critical-path
      priority matters at 10k-resource scale, not at the per-request
      sizes a service multiplexes — and it keeps this module small);
    - deterministic exponential backoff; optional jitter draws from a
      private PRNG seeded from a hash of the engine name, never from
      the cloud's PRNG — the control plane's metrics snapshots are
      asserted byte-identical across runs, and stay so because the
      jitter stream depends only on the tenant, not on timing;
    - an optional circuit {!Cloudless_deploy.Breaker}: writes acquire
      the (kind, rtype) cell before the intent is journaled, fast-fail
      with {!Cloudless_deploy.Breaker.open_reason} while the cell is
      Open, and stop burning retry budget the moment a failure trips
      the cell — the owner parks the work and re-admits it around the
      breaker's half-open probe;
    - the crash gate is injected ([gate]): the control plane counts
      journaled writes {e across all tenants} so a single
      [Crash_after k] kills the whole service process mid-work;
    - every callback first checks [alive]: once the service crashes,
      in-flight cloud operations complete with nobody listening,
      exactly like a killed process (the executor's [crashed] flag,
      hoisted to service scope). *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Smap = Value.Smap
module Cloud = Cloudless_sim.Cloud
module Activity_log = Cloudless_sim.Activity_log
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Plan = Cloudless_plan.Plan
module Dag = Cloudless_graph.Dag
module Executor = Cloudless_deploy.Executor
module Breaker = Cloudless_deploy.Breaker
module Drift = Cloudless_drift.Drift
module Prng = Cloudless_sim.Prng

type config = {
  engine : string;  (** activity-log actor; also the journal's engine name *)
  parallelism : int option;
  max_retries : int;
  backoff_base : float;
  jitter : bool;
      (** multiply each backoff by 0.8–1.2 drawn from a private PRNG
          seeded from the engine name (run-to-run deterministic) *)
}

let default_config engine =
  { engine; parallelism = None; max_retries = 12; backoff_base = 2.;
    jitter = false }

(* Breaker cells are keyed by the management-API verb. *)
let breaker_kind = function
  | Journal.Op_create -> "create"
  | Journal.Op_update -> "update"
  | Journal.Op_delete -> "delete"

(* ------------------------------------------------------------------ *)
(* Asynchronous refresh                                                *)
(* ------------------------------------------------------------------ *)

type refresh_outcome = {
  rstate : State.t;
  reads : int;
  missing : Addr.t list;  (** in state but gone from the cloud *)
}

(** Re-read cloud attributes for tracked resources ([addrs] scopes the
    read set; absent = full refresh).  [count_api] is called once per
    submitted call so the owner can attribute API load per tenant. *)
let refresh (cloud : Cloud.t) ~engine ~(state : State.t) ?addrs
    ?(parallelism = 10) ~alive ~count_api ~on_done () =
  let targets =
    match addrs with
    | None -> State.resources state
    | Some set ->
        List.filter
          (fun (r : State.resource_state) -> Addr.Set.mem r.State.addr set)
          (State.resources state)
  in
  if targets = [] then on_done { rstate = state; reads = 0; missing = [] }
  else begin
    let actor = Activity_log.Iac_engine engine in
    let state_ref = ref state in
    let missing = ref [] in
    let reads = ref 0 in
    let queue = Queue.create () in
    List.iter (fun r -> Queue.add r queue) targets;
    let in_flight = ref 0 in
    let settled = ref 0 in
    let total = List.length targets in
    let rec pump () =
      if alive () && (not (Queue.is_empty queue)) && !in_flight < parallelism
      then begin
        let r = Queue.pop queue in
        incr in_flight;
        incr reads;
        count_api 1;
        Cloud.submit cloud ~actor
          (Cloud.Read { cloud_id = r.State.cloud_id })
          (fun result ->
            if alive () then begin
              decr in_flight;
              (match result with
              | Ok attrs ->
                  incr settled;
                  state_ref := State.update_attrs !state_ref r.State.addr attrs
              | Error (Cloud.Not_found _) ->
                  incr settled;
                  missing := r.State.addr :: !missing
              | Error (Cloud.Throttled _) -> Queue.add r queue
              | Error _ -> incr settled);
              if !settled = total then
                on_done
                  {
                    rstate = !state_ref;
                    reads = !reads;
                    missing = List.rev !missing;
                  }
              else pump ()
            end);
        pump ()
      end
    in
    pump ()
  end

(* ------------------------------------------------------------------ *)
(* Asynchronous apply                                                  *)
(* ------------------------------------------------------------------ *)

type outcome = {
  astate : State.t;  (** state after every successful operation *)
  applied : Addr.t list;
  failed : (Addr.t * string) list;
  skipped : Addr.t list;
  writes : int;  (** cloud write calls journaled (incl. retries) *)
}

(** Walk [plan] over [cloud], calling [on_done] when every change has
    settled.  [gate] runs after each intent is journaled and before
    the cloud call leaves the engine — raising from it models process
    death with the intent durable (the executor's crash semantics,
    supplied by the service so the write counter spans tenants). *)
let apply (cloud : Cloud.t) ~(config : config) ~(state : State.t)
    ~(plan : Plan.t) ?journal ?breaker ~gate ~alive ~count_api ~on_done () =
  let actor = Activity_log.Iac_engine config.engine in
  let journal_append entry =
    match journal with Some j -> Journal.append j entry | None -> ()
  in
  let ops_started =
    ref
      (match journal with
      | Some j -> Journal.max_op (Journal.entries j)
      | None -> 0)
  in
  let dag = Plan.execution_graph plan in
  let nodes = Dag.nodes dag in
  let node_count = Dag.size dag in
  journal_append
    (Journal.Run_started
       { engine = config.engine; changes = node_count; time = Cloud.now cloud });
  let finish_run state_final applied failed skipped writes =
    journal_append (Journal.Run_finished { time = Cloud.now cloud });
    on_done
      {
        astate = state_final;
        applied = List.rev applied;
        failed = List.rev failed;
        skipped;
        writes;
      }
  in
  if node_count = 0 then finish_run state [] [] [] 0
  else begin
    let state_ref = ref state in
    let status : (Addr.t, Executor.node_status) Hashtbl.t =
      Hashtbl.create (2 * node_count)
    in
    List.iter (fun a -> Hashtbl.replace status a Executor.Pending) nodes;
    let remaining_deps : (Addr.t, int) Hashtbl.t =
      Hashtbl.create (2 * node_count)
    in
    List.iter
      (fun a ->
        Hashtbl.replace remaining_deps a (Addr.Set.cardinal (Dag.deps_of dag a)))
      nodes;
    let ready = Queue.create () in
    let in_flight = ref 0 in
    let settled = ref 0 in
    let writes = ref 0 in
    let applied = ref [] in
    let failed = ref [] in
    let jitter_prng =
      (* seeded from the engine name alone, so the stream is the same
         on every run and every resume — timing never feeds it *)
      if config.jitter then
        Some (Prng.create (Hashtbl.hash config.engine land 0x3FFFFFFF))
      else None
    in
    let backoff attempt =
      let b = config.backoff_base *. Float.pow 2. (float_of_int attempt) in
      match jitter_prng with
      | Some p -> b *. Prng.float_range p 0.8 1.2
      | None -> b
    in
    let finish () =
      let skipped =
        Hashtbl.fold
          (fun a s acc ->
            match s with Executor.Skipped -> a :: acc | _ -> acc)
          status []
      in
      finish_run !state_ref !applied !failed skipped !writes
    in
    let rec mark_skipped addr =
      match Hashtbl.find_opt status addr with
      | Some Executor.Pending ->
          Hashtbl.replace status addr Executor.Skipped;
          incr settled;
          Addr.Set.iter mark_skipped (Dag.rdeps_of dag addr)
      | _ -> ()
    in
    let pump_ref = ref (fun () -> ()) in
    let complete addr result =
      decr in_flight;
      incr settled;
      (match result with
      | Ok () ->
          Hashtbl.replace status addr Executor.Done;
          applied := addr :: !applied;
          Addr.Set.iter
            (fun d ->
              let n = Hashtbl.find remaining_deps d - 1 in
              Hashtbl.replace remaining_deps d n;
              if n = 0 && Hashtbl.find_opt status d = Some Executor.Pending
              then Queue.add d ready)
            (Dag.rdeps_of dag addr)
      | Error reason ->
          Hashtbl.replace status addr (Executor.Failed reason);
          failed := (addr, reason) :: !failed;
          Addr.Set.iter mark_skipped (Dag.rdeps_of dag addr));
      if !settled = node_count then finish () else !pump_ref ()
    in
    let rec perform addr (c : Plan.change) attempt =
      let submit_logged kind ~payload ~prior op handler =
        let bkind = breaker_kind kind in
        let issue () =
          incr ops_started;
          incr writes;
          count_api 1;
          let op_id = !ops_started in
          journal_append
            (Journal.Intent
               {
                 Journal.op = op_id;
                 iaddr = addr;
                 kind;
                 rtype = c.Plan.rtype;
                 region = c.Plan.region;
                 payload;
                 prior_cloud_id = prior;
                 deps = c.Plan.deps;
                 log_cursor = Activity_log.length (Cloud.log cloud);
                 itime = Cloud.now cloud;
               });
          gate ();
          (match breaker with
          | Some b -> Breaker.note_issue b ~kind:bkind ~rtype:c.Plan.rtype
          | None -> ());
          Cloud.submit cloud ~actor op (fun result ->
              (match (breaker, result) with
              | Some b, Ok _ ->
                  Breaker.success b ~now:(Cloud.now cloud) ~kind:bkind
                    ~rtype:c.Plan.rtype
              | ( Some b,
                  Error
                    ( Cloud.Throttled _ | Cloud.Transient _
                    | Cloud.Quota_exceeded _ ) ) ->
                  Breaker.failure b ~now:(Cloud.now cloud) ~kind:bkind
                    ~rtype:c.Plan.rtype
              | _ -> ());
              if alive () then handler op_id result)
        in
        match breaker with
        | None -> issue ()
        | Some b -> (
            match
              Breaker.acquire b ~now:(Cloud.now cloud) ~kind:bkind
                ~rtype:c.Plan.rtype
            with
            | `Proceed -> issue ()
            | `Reject remaining ->
                (* fast-fail: no intent journaled, no cloud call, no
                   retry budget burned — the owner parks this work *)
                complete addr
                  (Error
                     (Breaker.open_reason ~kind:bkind ~rtype:c.Plan.rtype
                        remaining)))
      in
      let ok_outcome ~op ~kind ~cloud_id attrs =
        journal_append
          (Journal.Outcome
             {
               Journal.oop = op;
               oaddr = addr;
               okind = kind;
               ok = true;
               cloud_id;
               attrs;
               retried = false;
               reason = None;
               otime = Cloud.now cloud;
             })
      in
      let on_error ~op ~kind err =
        let record retried =
          journal_append
            (Journal.Outcome
               {
                 Journal.oop = op;
                 oaddr = addr;
                 okind = kind;
                 ok = false;
                 cloud_id = None;
                 attrs = Smap.empty;
                 retried;
                 reason = Some (Cloud.error_to_string err);
                 otime = Cloud.now cloud;
               })
        in
        let retry_or_park ~delay =
          (* the failure just recorded may have tripped the breaker:
             checking after [record] means we stop burning the retry
             budget the moment the cell opens *)
          let bkind = breaker_kind kind in
          match breaker with
          | Some b
            when Breaker.state b ~kind:bkind ~rtype:c.Plan.rtype
                 = Breaker.Open ->
              let remaining =
                match Breaker.next_probe_at b with
                | Some at -> at -. Cloud.now cloud
                | None -> 0.
              in
              complete addr
                (Error
                   (Breaker.open_reason ~kind:bkind ~rtype:c.Plan.rtype
                      remaining))
          | _ ->
              Cloud.schedule cloud ~delay (fun () ->
                  if alive () then perform addr c (attempt + 1))
        in
        match err with
        | Cloud.Throttled after when attempt < config.max_retries ->
            record true;
            retry_or_park ~delay:(Float.max (after +. 0.1) (backoff attempt))
        | Cloud.Transient _ when attempt < config.max_retries ->
            record true;
            retry_or_park ~delay:(backoff attempt)
        | Cloud.Quota_exceeded _
          when breaker <> None && attempt < config.max_retries ->
            (* under a breaker a quota rejection is a parkable fault
               (quota-cut episodes lift), not a permanent failure *)
            record true;
            retry_or_park ~delay:(backoff attempt)
        | err ->
            record false;
            complete addr (Error (Cloud.error_to_string err))
      in
      match c.Plan.action with
      | Plan.Noop -> complete addr (Ok ())
      | Plan.Create -> (
          match c.Plan.desired with
          | None -> complete addr (Error "create without desired attributes")
          | Some desired ->
              let attrs = Executor.resolve_attrs !state_ref desired in
              submit_logged Journal.Op_create ~payload:attrs ~prior:None
                (Cloud.Create
                   { rtype = c.Plan.rtype; region = c.Plan.region; attrs })
                (fun op result ->
                  match result with
                  | Ok cloud_attrs ->
                      let cloud_id =
                        match Smap.find_opt "id" cloud_attrs with
                        | Some (Value.Vstring s) -> s
                        | _ -> "?"
                      in
                      ok_outcome ~op ~kind:Journal.Op_create
                        ~cloud_id:(Some cloud_id) cloud_attrs;
                      state_ref :=
                        State.add !state_ref
                          {
                            State.addr = addr;
                            cloud_id;
                            rtype = c.Plan.rtype;
                            region = c.Plan.region;
                            attrs = cloud_attrs;
                            deps = c.Plan.deps;
                          };
                      complete addr (Ok ())
                  | Error err -> on_error ~op ~kind:Journal.Op_create err))
      | Plan.Update changes -> (
          match c.Plan.prior with
          | Some prior ->
              let delta =
                List.fold_left
                  (fun acc (ch : Plan.attr_change) ->
                    match ch.Plan.after with
                    | Some v ->
                        Smap.add ch.Plan.attr
                          (Executor.resolve_value !state_ref v) acc
                    | None -> acc)
                  Smap.empty changes
              in
              submit_logged Journal.Op_update ~payload:delta
                ~prior:(Some prior.State.cloud_id)
                (Cloud.Update { cloud_id = prior.State.cloud_id; attrs = delta })
                (fun op result ->
                  match result with
                  | Ok cloud_attrs ->
                      ok_outcome ~op ~kind:Journal.Op_update
                        ~cloud_id:(Some prior.State.cloud_id) cloud_attrs;
                      state_ref := State.update_attrs !state_ref addr cloud_attrs;
                      complete addr (Ok ())
                  | Error err -> on_error ~op ~kind:Journal.Op_update err)
          | None -> complete addr (Error "update without prior state"))
      | Plan.Delete -> (
          match c.Plan.prior with
          | Some prior ->
              submit_logged Journal.Op_delete ~payload:Smap.empty
                ~prior:(Some prior.State.cloud_id)
                (Cloud.Delete { cloud_id = prior.State.cloud_id })
                (fun op result ->
                  match result with
                  | Ok _ | Error (Cloud.Not_found _) ->
                      ok_outcome ~op ~kind:Journal.Op_delete
                        ~cloud_id:(Some prior.State.cloud_id) Smap.empty;
                      state_ref := State.remove !state_ref addr;
                      complete addr (Ok ())
                  | Error err -> on_error ~op ~kind:Journal.Op_delete err)
          | None -> complete addr (Error "delete without prior state"))
      | Plan.Replace _ -> (
          match (c.Plan.prior, c.Plan.desired) with
          | Some prior, Some desired ->
              let record_new op cloud_attrs k =
                let cloud_id =
                  match Smap.find_opt "id" cloud_attrs with
                  | Some (Value.Vstring s) -> s
                  | _ -> "?"
                in
                ok_outcome ~op ~kind:Journal.Op_create
                  ~cloud_id:(Some cloud_id) cloud_attrs;
                state_ref :=
                  State.add !state_ref
                    {
                      State.addr = addr;
                      cloud_id;
                      rtype = c.Plan.rtype;
                      region = c.Plan.region;
                      attrs = cloud_attrs;
                      deps = c.Plan.deps;
                    };
                k ()
              in
              if c.Plan.cbd then
                let attrs = Executor.resolve_attrs !state_ref desired in
                submit_logged Journal.Op_create ~payload:attrs ~prior:None
                  (Cloud.Create
                     { rtype = c.Plan.rtype; region = c.Plan.region; attrs })
                  (fun op result ->
                    match result with
                    | Ok cloud_attrs ->
                        record_new op cloud_attrs (fun () ->
                            submit_logged Journal.Op_delete ~payload:Smap.empty
                              ~prior:(Some prior.State.cloud_id)
                              (Cloud.Delete { cloud_id = prior.State.cloud_id })
                              (fun op result ->
                                match result with
                                | Ok _ | Error (Cloud.Not_found _) ->
                                    ok_outcome ~op ~kind:Journal.Op_delete
                                      ~cloud_id:(Some prior.State.cloud_id)
                                      Smap.empty;
                                    complete addr (Ok ())
                                | Error err ->
                                    on_error ~op ~kind:Journal.Op_delete err))
                    | Error err -> on_error ~op ~kind:Journal.Op_create err)
              else
                submit_logged Journal.Op_delete ~payload:Smap.empty
                  ~prior:(Some prior.State.cloud_id)
                  (Cloud.Delete { cloud_id = prior.State.cloud_id })
                  (fun op result ->
                    match result with
                    | Ok _ | Error (Cloud.Not_found _) ->
                        ok_outcome ~op ~kind:Journal.Op_delete
                          ~cloud_id:(Some prior.State.cloud_id) Smap.empty;
                        state_ref := State.remove !state_ref addr;
                        let attrs = Executor.resolve_attrs !state_ref desired in
                        submit_logged Journal.Op_create ~payload:attrs
                          ~prior:None
                          (Cloud.Create
                             {
                               rtype = c.Plan.rtype;
                               region = c.Plan.region;
                               attrs;
                             })
                          (fun op result ->
                            match result with
                            | Ok cloud_attrs ->
                                record_new op cloud_attrs (fun () ->
                                    complete addr (Ok ()))
                            | Error err ->
                                on_error ~op ~kind:Journal.Op_create err)
                    | Error err -> on_error ~op ~kind:Journal.Op_delete err)
          | _ -> complete addr (Error "replace without prior state"))
    and pump () =
      let can_start () =
        match config.parallelism with
        | Some cap -> !in_flight < cap
        | None -> true
      in
      if alive () && can_start () && not (Queue.is_empty ready) then begin
        let addr = Queue.pop ready in
        let c = Dag.payload dag addr in
        incr in_flight;
        perform addr c 0;
        pump ()
      end
    in
    pump_ref := pump;
    List.iter
      (fun a -> if Hashtbl.find remaining_deps a = 0 then Queue.add a ready)
      nodes;
    pump ()
  end

(* ------------------------------------------------------------------ *)
(* Asynchronous drift scan (the Terraform-style baseline's detector)   *)
(* ------------------------------------------------------------------ *)

(** Read every tracked resource and compare with state — the
    driftctl-style sweep, shaped for the service event loop
    ({!Cloudless_drift.Drift.Scanner.scan} drives the cloud to idle
    internally, which would freeze every other tenant).  O(state)
    management-API reads per sweep; that cost is the baseline's story
    in E14. *)
let scan (cloud : Cloud.t) ~engine ~(state : State.t) ~alive ~count_api
    ~on_done () =
  let targets = State.resources state in
  if targets = [] then on_done ([], 0)
  else begin
    let actor = Activity_log.Iac_engine engine in
    let events = ref [] in
    let reads = ref 0 in
    let settled = ref 0 in
    let total = List.length targets in
    let comparable attrs = Smap.filter (fun k _ -> k <> "arn") attrs in
    let rec read_resource (r : State.resource_state) =
      incr reads;
      count_api 1;
      Cloud.submit cloud ~actor
        (Cloud.Read { cloud_id = r.State.cloud_id })
        (fun result ->
          if alive () then begin
            match result with
            | Ok actual ->
                Smap.iter
                  (fun attr expected ->
                    match Smap.find_opt attr actual with
                    | Some actual_v when not (Value.equal expected actual_v) ->
                        events :=
                          {
                            Drift.addr = Some r.State.addr;
                            cloud_id = r.State.cloud_id;
                            kind =
                              Drift.Attr_drift
                                { attr; expected; actual = actual_v };
                            detected_at = Cloud.now cloud;
                            occurred_at = None;
                          }
                          :: !events
                    | _ -> ())
                  (comparable r.State.attrs);
                incr settled;
                if !settled = total then on_done (List.rev !events, !reads)
            | Error (Cloud.Not_found _) ->
                events :=
                  {
                    Drift.addr = Some r.State.addr;
                    cloud_id = r.State.cloud_id;
                    kind = Drift.Deleted_oob;
                    detected_at = Cloud.now cloud;
                    occurred_at = None;
                  }
                  :: !events;
                incr settled;
                if !settled = total then on_done (List.rev !events, !reads)
            | Error (Cloud.Throttled after) ->
                Cloud.schedule cloud ~delay:(after +. 0.1) (fun () ->
                    if alive () then read_resource r)
            | Error _ ->
                incr settled;
                if !settled = total then on_done (List.rev !events, !reads)
          end)
    in
    List.iter read_resource targets
  end
