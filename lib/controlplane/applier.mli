(** Callback-style deployment execution for the control plane.

    The same plan-walk, write-ahead journaling and retry semantics as
    {!Cloudless_deploy.Executor.apply}, but purely callback-shaped: no
    internal [run_until_idle]/[step] calls anywhere — {!apply} returns
    immediately after seeding its ready set, progress rides on cloud
    callbacks, and completion is announced through [on_done].  Many
    appliers (one per in-flight unit of work, across tenants and
    shards) interleave on one shared simulated timeline.

    Determinism constraints: exponential backoff whose optional jitter
    draws from a private PRNG seeded from the engine name — never from
    the cloud's PRNG and never from timing — so metrics snapshots stay
    byte-identical across runs; the crash gate is injected ([gate]
    runs after each intent is journaled, before the cloud call is
    issued); every callback first checks [alive] so a crashed
    service's in-flight operations complete with nobody listening.

    When a {!Cloudless_deploy.Breaker} is supplied, every write
    acquires its (kind, rtype) cell first: Open cells fast-fail the
    change with {!Cloudless_deploy.Breaker.open_reason} (no intent
    journaled, no cloud call), failures feed the cell, and a failure
    that trips the cell aborts the remaining retry budget so the owner
    can park the work until the breaker's half-open probe. *)

module Addr = Cloudless_hcl.Addr
module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Plan = Cloudless_plan.Plan
module Drift = Cloudless_drift.Drift
module Breaker = Cloudless_deploy.Breaker

type config = {
  engine : string;  (** activity-log actor; also the journal's engine name *)
  parallelism : int option;  (** in-flight op cap; [None] = unbounded *)
  max_retries : int;
  backoff_base : float;  (** deterministic exponential backoff base *)
  jitter : bool;
      (** multiply each backoff by 0.8–1.2 from the engine-seeded PRNG *)
}

val default_config : string -> config

type refresh_outcome = {
  rstate : State.t;
  reads : int;
  missing : Addr.t list;  (** in state but gone from the cloud *)
}

(** Re-read cloud attributes for tracked resources ([addrs] scopes the
    read set; absent = full refresh).  [count_api] is called once per
    submitted call so the owner can attribute API load per tenant. *)
val refresh :
  Cloud.t ->
  engine:string ->
  state:State.t ->
  ?addrs:Addr.Set.t ->
  ?parallelism:int ->
  alive:(unit -> bool) ->
  count_api:(int -> unit) ->
  on_done:(refresh_outcome -> unit) ->
  unit ->
  unit

type outcome = {
  astate : State.t;  (** state after every successful operation *)
  applied : Addr.t list;
  failed : (Addr.t * string) list;
  skipped : Addr.t list;
  writes : int;  (** cloud write calls journaled (incl. retries) *)
}

(** Walk [plan] over [cloud], calling [on_done] when every change has
    settled.  [gate] runs after each intent is journaled and before
    the cloud call leaves the engine — raising from it models process
    death with the intent durable. *)
val apply :
  Cloud.t ->
  config:config ->
  state:State.t ->
  plan:Plan.t ->
  ?journal:Journal.t ->
  ?breaker:Breaker.t ->
  gate:(unit -> unit) ->
  alive:(unit -> bool) ->
  count_api:(int -> unit) ->
  on_done:(outcome -> unit) ->
  unit ->
  unit

(** Read every tracked resource and compare with state — the
    driftctl-style sweep, shaped for the service event loop.  O(state)
    management-API reads per sweep.  [on_done] receives the drift
    events and the read count. *)
val scan :
  Cloud.t ->
  engine:string ->
  state:State.t ->
  alive:(unit -> bool) ->
  count_api:(int -> unit) ->
  on_done:(Drift.event list * int -> unit) ->
  unit ->
  unit
