(** One control-plane shard: the deterministic event loop that owns a
    subset of tenants (E15).

    The execution engine extracted from the former monolithic
    [Control_plane]: prioritized work queue, lock-managed admission,
    journaled request/reconcile/scan execution, per-deployment drift
    intake, and admission backpressure.  Fleet concerns — crash
    injection, liveness, policy ticks, tenant placement — are injected
    through the {!host} callback record: {!Control_plane} hosts exactly
    one shard (the pre-E15 single-loop service, behavior preserved);
    {!Fleet} hosts [N] of them behind a {!Router}. *)

module Addr = Cloudless_hcl.Addr
module Cloud = Cloudless_sim.Cloud
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Lock_manager = Cloudless_lock.Lock_manager
module Drift = Cloudless_drift.Drift
module Breaker = Cloudless_deploy.Breaker
module Trace = Cloudless_obs.Trace
module Metrics = Cloudless_obs.Metrics

type drift_mode =
  | Tailer  (** per-deployment activity-log cursor, polled on a timer *)
  | Scan  (** periodic full read-every-resource sweep (baseline) *)
  | Subscribe
      (** push: the host routes activity-log entries in via
          {!ingest_drift}; the shard arms no drift timer at all *)

type admission = Defer | Reject

type service_config = {
  sname : string;
  granularity : Lock_manager.granularity;
  drift_mode : drift_mode;
  drift_period : float;  (** tailer poll / scan sweep period, sim s *)
  scoped_reconcile : bool;  (** restrict reconcile applies to impact scope *)
  refresh_before_apply : bool;  (** Terraform's full refresh on every apply *)
  parallelism : int option;  (** per-work-unit in-flight op cap *)
  policy_period : float;  (** 0 = no policy controller *)
  policy_src : string option;
  max_queue_depth : int;  (** admission bound; 0 = unbounded *)
  admission : admission;  (** what to do with requests over the bound *)
  defer_delay : float;  (** re-admission delay for deferred requests *)
  rebalance_period : float;  (** fleet rebalance check period; 0 = off *)
  breaker : Breaker.config option;
      (** circuit-breaker cells per (API kind, rtype); [None] = off.
          With a breaker, applies fast-fail against Open cells, the
          affected work parks until the next half-open probe (degraded
          mode), baseline scan sweeps are shed while any cell is Open,
          and retry backoff gains engine-seeded jitter. *)
}

val cloudless_service : service_config
val baseline_service : service_config

(** The event-driven fleet preset: per-resource locks, push-based drift
    via log subscriptions, scoped reconciles, periodic rebalancing. *)
val fleet_service : service_config

type deployment = {
  tenant : string;
  dname : string;
  engine : string;
      (** activity-log actor, unique per deployment ("cp/<tenant>/<name>")
          so crash-recovery orphan adoption cannot claim across tenants *)
  root_key : Addr.t;
      (** every unit of work on this deployment locks this key: work on
          one deployment serializes, disjoint deployments don't conflict *)
  mutable config_src : string;  (** desired configuration (latest revision) *)
  mutable state : State.t;  (** live in-memory state *)
  mutable persisted : State.t;
      (** state as of the last *completed* unit of work — what survives
          a crash (end-of-work persistence); resume replays the journal
          over this *)
  journal : Journal.t;  (** one write-ahead journal across all applies *)
  tailer : Drift.Log_tailer.t;
}

(** Host callbacks: the seam between a shard and whoever runs it. *)
type host = {
  gate : unit -> unit;
      (** journaled-write crash gate, shared across the whole service *)
  alive : unit -> bool;  (** service liveness; a dead host stops draining *)
  on_policy : (float -> unit) option;
      (** policy-controller tick; [None] disarms the policy timer *)
}

type t

val create :
  ?sid:int ->
  cloud:Cloud.t ->
  config:service_config ->
  scope:Metrics.scope ->
  trace:Trace.t ->
  host:host ->
  unit ->
  t

val sid : t -> int
val config : t -> service_config
val cloud : t -> Cloud.t
val lock : t -> Lock_manager.t
val scope : t -> Metrics.scope
val metrics : t -> Metrics.t

(** This shard's circuit breakers, when configured. *)
val breaker : t -> Breaker.t option

(** Work units currently parked behind an open breaker cell. *)
val parked_work : t -> int

(** Deployments in registration order. *)
val deployments : t -> deployment list

(** Completed request (rid, completion time) pairs, completion order. *)
val completed_requests : t -> (int * float) list

(** (cloud_id, detected_at) per classified drift event, oldest first. *)
val drift_detections : t -> (string * float) list

val find_deployment : t -> tenant:string -> dname:string -> deployment option
val add_deployment : t -> tenant:string -> dname:string -> src:string -> deployment

(** Build an unregistered deployment record (resume reconstructs
    deployments before choosing their shard). *)
val make_deployment : tenant:string -> dname:string -> src:string -> deployment

(** Rebalance support: a deployment record is shard-agnostic, so a move
    is [remove_deployment] on the source and [adopt_deployment] on the
    destination.  Only move tenants whose {!tenant_pending} is 0. *)
val adopt_deployment : t -> deployment -> unit

val remove_deployment : t -> deployment -> unit

(** Queued plus in-flight work units for [tenant] on this shard. *)
val tenant_pending : t -> string -> int

(** Queued plus lock-blocked work — the admission-bound and rebalance
    signal. *)
val queue_depth : t -> int

(** Total resources across this shard's deployments. *)
val managed_resource_count : t -> int

(** Expand a configuration source against a state (shared by requests,
    reconciles, and post-hoc convergence audits). *)
val expand :
  state:State.t -> string -> Cloudless_hcl.Eval.instance list

(** Submit an apply request at the current simulated time.  Always
    [`Accepted rid] when [max_queue_depth = 0]; over the bound,
    [Reject] drops the request (no request id consumed), [Defer]
    assigns the id and re-attempts every [defer_delay] sim-seconds,
    keeping the original submit instant so latency histograms carry
    the deferral cost. *)
val submit_request :
  t ->
  deployment ->
  src:string ->
  [ `Accepted of int | `Deferred of int | `Rejected ]

(** Admit a wave-scoped rollback for [dep] (E18).  Bypasses the
    admission bound like reconciles — repair must not be starved by
    the backlog it repairs.  [plan_of] computes the inverse plan at
    lock-grant time, under the deployment lock, against the latest
    state; [restore_src] is the pre-wave config revision to restore so
    later reconciles do not re-apply the rolled-back change; [notify]
    fires with the completion instant.  Runs at request priority. *)
val submit_rollback :
  t ->
  deployment ->
  label:string ->
  plan_of:(unit -> Cloudless_plan.Plan.t) ->
  ?restore_src:string ->
  notify:(float -> unit) ->
  unit ->
  unit

(** Record classified drift events against [dep] and enqueue the scoped
    repair — the push-mode entry point the fleet's activity-log
    subscriptions feed. *)
val ingest_drift : t -> deployment -> Drift.event list -> unit

(** Arm periodic drift/policy timers up to simulated time [until].
    [Subscribe] mode arms no drift timer. *)
val arm_timers : t -> until:float -> unit

(** Drain the work queue; the host calls this after every simulator
    step it drives. *)
val drain : t -> unit

(** Fold terminal lock-manager stats into metrics; call once when the
    host's drive loop ends. *)
val finish_stats : t -> unit
