(** Service-load scenarios for the control plane.

    A scenario is a small [key = value] text file describing a
    multi-tenant workload: tenant/deployment counts, fleet size,
    revision cadence, out-of-band drift volume, and — since E15 —
    fleet shape (shard count, hot tenants, admission bound,
    rebalance period).  {!install} compiles it into simulated-clock
    callbacks against a single-loop {!Control_plane.t};
    {!install_fleet} does the same against a multi-shard {!Fleet.t}.

    Both installers take the service by [ref] so that a crash-resume
    mid-scenario (which builds a {e new} service instance on the same
    cloud) does not strand the not-yet-fired request callbacks: they
    dereference at fire time and land on the successor. *)

(** One scheduled bulk-change rollout (E18).  One per
    [wave = start=... attr=... value=...] line; sub-keys are
    [start canary growth check budget rtype kind] plus [attr value]
    (kind=set_attr, the default) or [count] (kind=set_count), and an
    optional [forbid=<value>] compiling to an attr-equals gate.
    Unknown sub-keys and kind-inapplicable keys are syntax errors. *)
type wave_spec = {
  wstart : float;  (** rollout submit instant, sim seconds *)
  wcheck : float;  (** gate-check poll period, sim seconds *)
  wchange : Cloudless_wave.Change.t;
}

type t = {
  tenants : int;
  deployments_per_tenant : int;
  resources : int;  (** fleet size per deployment *)
  requests_per_tenant : int;
      (** config revisions pushed per deployment, including the initial
          apply at t=0 (all tenants submit simultaneously) *)
  request_interval : float;  (** sim seconds between revision waves *)
  drift_events : int;  (** OOB injections spread over the drift window *)
  drift_period : float;  (** service tailer-poll / scan-sweep period *)
  policy_period : float;  (** 0 = no policy controller *)
  duration : float;  (** scenario horizon, sim seconds *)
  shards : int;  (** fleet shard count (E15) *)
  hot_tenants : int;
      (** tenants 0..n-1 burst-submit conflicting requests each wave,
          holding their shard's queue deep enough for the rebalancer
          and the admission bound to observe *)
  hot_burst : int;  (** extra same-instant requests per hot tenant wave *)
  max_queue_depth : int;  (** admission bound; 0 = unbounded *)
  admission : Shard.admission;  (** over-bound policy: defer | reject *)
  rebalance_period : float;  (** fleet rebalance check period; 0 = off *)
  episodes : Cloudless_sim.Failure.episode list;
      (** time-windowed fault regimes, in file order (E17).  One per
          [episode = kind=... start=... end=...] line; sub-keys are
          [kind rtype region start end] plus the kind's magnitude
          ([p] for error_storm, [retry_after] for throttle_storm,
          [quota] for quota_cut, [count] for spot).  Unknown sub-keys
          and kind-inapplicable magnitudes are syntax errors. *)
  breaker : bool;
      (** [breaker = on|off]: arm per-shard circuit breakers (E17) *)
  calm_tenants : int;
      (** the last n tenants resubmit only the wave-0 revision — a
          guaranteed-unaffected tenant class for degraded-mode claims *)
  waves : wave_spec list;
      (** scheduled bulk-change rollouts, in file order (E18) *)
}

val default : t

(** Parse [key = value] lines ([#] comments allowed); unknown keys and
    malformed values fail with a scenario-syntax diagnostic. *)
val parse : ?file:string -> string -> t

val load : string -> t

(** The per-deployment configuration source for revision [wave]
    (instance type rotates per wave so every revision actually
    changes the fleet). *)
val fleet_src : t -> wave:int -> string

(** The embedded telemetry policy installed when [policy_period > 0]. *)
val policy_src : string

(** Specialize a service preset (timing knobs + policy + admission) to
    a scenario. *)
val service_config :
  t -> Control_plane.service_config -> Control_plane.service_config

type injection = {
  icloud_id : string;
  injected_at : float;
  deleted : bool;  (** true: delete_oob; false: attr mutation *)
  itenant : string;  (** owning tenant at injection time *)
}

(** Register all deployments on [!cp_ref] and schedule the request
    waves and drift injections on its cloud.  When the scenario has
    episodes, also installs them on the cloud and schedules the
    spot-termination waves (out-of-band deletes under the "spot"
    script, recorded in the injection log).  Returns the injection
    log (filled as injections actually fire). *)
val install : t -> Control_plane.t ref -> injection list ref

(** Same against a multi-shard fleet, plus hot-tenant request bursts
    (see {!t.hot_tenants}). *)
val install_fleet : t -> Fleet.t ref -> injection list ref
