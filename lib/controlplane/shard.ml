(** One control-plane shard: the deterministic event loop that owns a
    subset of tenants (E15).

    This module is the execution engine extracted from the former
    monolithic [Control_plane]: the prioritized work queue, lock-managed
    admission, journaled request/reconcile/scan execution, and the
    per-deployment drift machinery.  What it deliberately does {e not}
    own is fleet policy — crash injection, liveness, policy-controller
    ticks and tenant placement belong to whoever hosts the shard:

    - {!Control_plane} hosts exactly one shard (the pre-E15 single-loop
      service, byte-for-byte compatible with its old behavior);
    - {!Fleet} hosts [N] shards behind a {!Router}, feeding each one
      from a multiplexed activity-log subscription.

    The host is injected as a {!host} record of callbacks, so a shard
    never reaches outside its own tenant subset.  All metrics flow
    through a {!Metrics.scope}: unlabeled for the single-loop service
    (unchanged signal names), labeled ["shard<i>"] in a fleet (each
    signal also recorded as ["name.shard<i>"]).

    Admission backpressure (§3.6): when [max_queue_depth] is positive
    and the shard's queue (heap + lock waiters) is at or above the
    bound, new tenant requests are either deferred (re-submitted after
    [defer_delay] simulated seconds, preserving the original submit
    time so the latency histograms show the cost) or rejected outright,
    per the configured {!admission} policy.  Internal work — drift
    reconciles, scan sweeps, policy ticks — always bypasses the bound:
    repair must not be starved by the very backlog it repairs.

    Degraded mode (E17): with a circuit {!Cloudless_deploy.Breaker}
    configured, work whose apply fast-fails against an Open (kind,
    rtype) cell is {e parked} rather than failed — partial progress is
    persisted, locks release so unaffected tenants keep flowing, the
    original submit time is preserved (latency histograms carry the
    full episode cost), and the unit is re-admitted around the
    breaker's next half-open probe, re-reading the deployment's
    {e latest} config revision so a parked request can never roll a
    tenant back to a stale wave.  While any cell is Open the shard
    also sheds baseline scan sweeps: a sweep would burn O(state) reads
    only to fast-fail its repair. *)

module Hcl = Cloudless_hcl
module Addr = Hcl.Addr
module Value = Hcl.Value
module Smap = Value.Smap
module Cloud = Cloudless_sim.Cloud
module Failure = Cloudless_sim.Failure
module Pq = Cloudless_sim.Pqueue
module State = Cloudless_state.State
module Journal = Cloudless_state.Journal
module Plan = Cloudless_plan.Plan
module Dag = Cloudless_graph.Dag
module Lock_manager = Cloudless_lock.Lock_manager
module Drift = Cloudless_drift.Drift
module Breaker = Cloudless_deploy.Breaker
module Trace = Cloudless_obs.Trace
module Metrics = Cloudless_obs.Metrics

type drift_mode =
  | Tailer  (** per-deployment activity-log cursor, polled on a timer *)
  | Scan  (** periodic full read-every-resource sweep (baseline) *)
  | Subscribe
      (** push: the host routes activity-log entries in via
          {!ingest_drift}; the shard arms no drift timer at all *)

type admission = Defer | Reject

type service_config = {
  sname : string;
  granularity : Lock_manager.granularity;
  drift_mode : drift_mode;
  drift_period : float;  (** tailer poll / scan sweep period, sim s *)
  scoped_reconcile : bool;  (** restrict reconcile applies to impact scope *)
  refresh_before_apply : bool;  (** Terraform's full refresh on every apply *)
  parallelism : int option;  (** per-work-unit in-flight op cap *)
  policy_period : float;  (** 0 = no policy controller *)
  policy_src : string option;
  max_queue_depth : int;  (** admission bound; 0 = unbounded *)
  admission : admission;  (** what to do with requests over the bound *)
  defer_delay : float;  (** re-admission delay for deferred requests *)
  rebalance_period : float;  (** fleet rebalance check period; 0 = off *)
  breaker : Breaker.config option;
      (** circuit-breaker cells per (API kind, rtype); [None] = off *)
}

let cloudless_service =
  {
    sname = "cloudless";
    granularity = Lock_manager.Per_resource;
    drift_mode = Tailer;
    drift_period = 60.;
    scoped_reconcile = true;
    refresh_before_apply = false;
    parallelism = None;
    policy_period = 0.;
    policy_src = None;
    max_queue_depth = 0;
    admission = Defer;
    defer_delay = 5.;
    rebalance_period = 0.;
    breaker = None;
  }

let baseline_service =
  {
    sname = "baseline";
    granularity = Lock_manager.Global;
    drift_mode = Scan;
    drift_period = 60.;
    scoped_reconcile = false;
    refresh_before_apply = true;
    parallelism = Some 10;
    policy_period = 0.;
    policy_src = None;
    max_queue_depth = 0;
    admission = Defer;
    defer_delay = 5.;
    rebalance_period = 0.;
    breaker = None;
  }

(** The event-driven fleet preset: per-resource locks, push-based drift
    via log subscriptions, scoped reconciles, bounded admission. *)
let fleet_service =
  {
    cloudless_service with
    sname = "fleet";
    drift_mode = Subscribe;
    rebalance_period = 120.;
  }

type deployment = {
  tenant : string;
  dname : string;
  engine : string;
      (** activity-log actor, unique per deployment ("cp/<tenant>/<name>")
          so crash-recovery orphan adoption cannot claim across tenants *)
  root_key : Addr.t;
      (** every unit of work on this deployment locks this key: work on
          one deployment serializes, disjoint deployments don't conflict *)
  mutable config_src : string;  (** desired configuration (latest revision) *)
  mutable state : State.t;  (** live in-memory state *)
  mutable persisted : State.t;
      (** state as of the last *completed* unit of work — what survives
          a crash (end-of-work persistence); resume replays the journal
          over this *)
  journal : Journal.t;  (** one write-ahead journal across all applies *)
  tailer : Drift.Log_tailer.t;
}

type work =
  | Request of { dep : deployment; rid : int; src : string; submitted : float }
  | Reconcile of {
      dep : deployment;
      seeds : Addr.t list;  (** drifted addresses (tailer mode) *)
      detected : float;
    }
  | Scan_sweep of { dep : deployment; swept : float }
  | Policy_tick of { at : float }
  | Rollback_op of {
      dep : deployment;
      label : string;  (** e.g. "wave:<change>:<k>" for trace joins *)
      plan_of : unit -> Plan.t;
          (** inverse plan, computed at grant time — under the
              deployment lock, against the *latest* state — so a
              rollback admitted behind in-flight work still reverses
              exactly what that work left behind *)
      restore_src : string option;
          (** pre-wave config revision to restore, so later reconciles
              do not re-apply the rolled-back change *)
      submitted : float;
      notify : float -> unit;  (** completion callback (sim time) *)
    }

type host = {
  gate : unit -> unit;
      (** journaled-write crash gate, shared across the whole service *)
  alive : unit -> bool;  (** service liveness; a dead host stops draining *)
  on_policy : (float -> unit) option;
      (** policy-controller tick; [None] disarms the policy timer *)
}

type t = {
  cloud : Cloud.t;
  sid : int;  (** shard index within the fleet; 0 for a single loop *)
  config : service_config;
  host : host;
  lock : Lock_manager.t;
  queue : (int, work) Pq.t;  (** prio = work class; FIFO within class *)
  scope : Metrics.scope;
  trace : Trace.t;
  mutable deployments : deployment list;  (** registration order *)
  mutable next_work : int;
  mutable next_rid : int;
  mutable completed : (int * float) list;  (** requests, completion order *)
  mutable detections : (string * float) list;
      (** (cloud_id, detected_at), first detection per drift event *)
  pending : (string, int) Hashtbl.t;
      (** tenant -> queued+running work units; a tenant is movable in a
          rebalance only when this is 0 *)
  mutable until : float;
  mutable breaker : Breaker.t option;  (** per-shard circuit breakers *)
  mutable degraded_since : float option;
      (** open while ≥1 breaker cell is Open; closes into the
          ["degraded_time"] histogram *)
  mutable parked : int;  (** work units waiting out an open breaker *)
}

(* Degraded-mode bookkeeping, hung off every breaker cell transition:
   state-change counters, the open-cell gauge, and the time-in-degraded
   histogram (a degraded window opens when the first cell trips and
   closes when the last one does). *)
let on_breaker_transition t ~after ~now =
  (match after with
  | Breaker.Open -> Metrics.scope_inc t.scope "breaker_opened"
  | Breaker.Half_open -> Metrics.scope_inc t.scope "breaker_half_open"
  | Breaker.Closed -> Metrics.scope_inc t.scope "breaker_closed");
  match t.breaker with
  | None -> ()
  | Some b -> (
      let cells = Breaker.open_cells b in
      Metrics.scope_set t.scope "breaker_open_cells" (float_of_int cells);
      match (t.degraded_since, cells) with
      | None, n when n > 0 ->
          t.degraded_since <- Some now;
          Metrics.scope_inc t.scope "degraded_entries"
      | Some s, 0 ->
          Metrics.scope_observe t.scope "degraded_time" (now -. s);
          t.degraded_since <- None
      | _ -> ())

let create ?(sid = 0) ~cloud ~config ~scope ~trace ~host () =
  let t =
    {
      cloud;
      sid;
      config;
      host;
      lock = Lock_manager.create config.granularity;
      queue = Pq.create ~initial_capacity:64 Pq.Min_first;
      scope;
      trace;
      deployments = [];
      next_work = 0;
      next_rid = 0;
      completed = [];
      detections = [];
      pending = Hashtbl.create 16;
      until = 0.;
      breaker = None;
      degraded_since = None;
      parked = 0;
    }
  in
  (match config.breaker with
  | Some bcfg ->
      t.breaker <-
        Some
          (Breaker.create ~config:bcfg
             ~on_transition:(fun ~kind:_ ~rtype:_ ~before:_ ~after ~now ->
               on_breaker_transition t ~after ~now)
             ())
  | None -> ());
  t

let sid t = t.sid
let config t = t.config
let cloud t = t.cloud
let lock t = t.lock
let breaker t = t.breaker
let parked_work t = t.parked
let scope t = t.scope
let metrics t = Metrics.scope_metrics t.scope
let deployments t = List.rev t.deployments
let completed_requests t = List.rev t.completed
let drift_detections t = List.rev t.detections

let find_deployment t ~tenant ~dname =
  List.find_opt
    (fun d -> d.tenant = tenant && d.dname = dname)
    t.deployments

let make_deployment ~tenant ~dname ~src =
  {
    tenant;
    dname;
    engine = Printf.sprintf "cp/%s/%s" tenant dname;
    root_key =
      Addr.make ~module_path:[ tenant; dname ] ~rtype:"deployment" ~rname:dname
        ();
    config_src = src;
    state = State.empty;
    persisted = State.empty;
    journal = Journal.create ();
    tailer = Drift.Log_tailer.create ();
  }

let add_deployment t ~tenant ~dname ~src =
  let dep = make_deployment ~tenant ~dname ~src in
  t.deployments <- dep :: t.deployments;
  dep

(* Rebalance support: a deployment record is shard-agnostic (engine
   name, journal, tailer cursor all travel with it), so a move is just
   list surgery on both sides.  The fleet only moves tenants with no
   pending work, so no lock state needs to transfer. *)
let adopt_deployment t dep = t.deployments <- dep :: t.deployments

let remove_deployment t dep =
  t.deployments <- List.filter (fun d -> d != dep) t.deployments

let tenant_pending t tenant =
  match Hashtbl.find_opt t.pending tenant with Some n -> n | None -> 0

let pending_incr t tenant =
  Hashtbl.replace t.pending tenant (tenant_pending t tenant + 1)

let pending_decr t tenant =
  Hashtbl.replace t.pending tenant (max 0 (tenant_pending t tenant - 1))

(** Total resources across this shard's deployments. *)
let managed_resource_count t =
  List.fold_left (fun acc d -> acc + State.size d.state) 0 t.deployments

(* ------------------------------------------------------------------ *)
(* Config expansion (shared by requests and reconciles)                *)
(* ------------------------------------------------------------------ *)

let data_resolver ~rtype ~name:_ ~args:_ =
  match rtype with
  | "aws_region" -> Some (Smap.singleton "name" (Value.Vstring "us-east-1"))
  | _ -> None

let expand ~state src =
  let cfg = Hcl.Config.parse ~file:"<service>" src in
  let env =
    {
      Hcl.Eval.default_env with
      Hcl.Eval.data_resolver;
      state_lookup = (fun addr -> State.lookup state addr);
    }
  in
  (Hcl.Eval.expand ~env cfg).Hcl.Eval.instances

let applier_config t dep =
  {
    Applier.engine = dep.engine;
    parallelism = t.config.parallelism;
    max_retries = 12;
    backoff_base = 2.;
    (* jitter only rides with the breaker so pre-E17 presets stay
       byte-identical to their committed metrics snapshots *)
    jitter = t.config.breaker <> None;
  }

let count_api t dep ~read n =
  Metrics.scope_inc t.scope ~by:n "api_calls";
  Metrics.inc (metrics t) ~by:n ("api_calls." ^ dep.tenant);
  if read then Metrics.scope_inc t.scope ~by:n "api_reads"
  else Metrics.scope_inc t.scope ~by:n "api_writes"

(* ------------------------------------------------------------------ *)
(* The work queue                                                      *)
(* ------------------------------------------------------------------ *)

(* Priority classes; FIFO within a class via the heap's insertion
   sequence.  Tenant-facing requests outrank background repair, which
   outranks policy bookkeeping. *)
let work_class = function
  | Request _ | Rollback_op _ -> 0.
      (* a rollback is the urgent tail of a tenant-facing change:
         deprioritizing it would leave the bad revision live longer *)
  | Reconcile _ | Scan_sweep _ -> 1.
  | Policy_tick _ -> 2.

let owner_of dep ~wid = Printf.sprintf "%s#%d" dep.engine wid

(** Queued plus lock-blocked work — the admission signal the
    backpressure bound and the fleet rebalancer both read. *)
let queue_depth t = Pq.length t.queue + Lock_manager.queue_length t.lock

(* Forward declaration: executing work needs [drain] (to hand follow-up
   work to the lock manager) and vice versa. *)
let rec drain t =
  if t.host.alive () then begin
    Metrics.scope_set t.scope "queue_depth" (float_of_int (queue_depth t));
    match Pq.pop t.queue with
    | None -> ()
    | Some (_, wid, work) ->
        admit t wid work;
        drain t
    end

(* Hand one unit of work to the lock manager.  The grant callback runs
   the work; conflicting work queues FIFO inside the manager, which is
   exactly the serialization order the QCheck property pins down. *)
and admit t wid work =
  match work with
  | Policy_tick { at } -> (
      (* read-only bookkeeping: no locks *)
      match t.host.on_policy with None -> () | Some f -> f at)
  | Request { dep; rid; src; submitted } ->
      Lock_manager.acquire t.lock ~owner:(owner_of dep ~wid)
        ~keys:[ dep.root_key ] (fun () ->
          if t.host.alive () then exec_request t dep ~wid ~rid ~src ~submitted)
  | Reconcile { dep; seeds; detected } ->
      Lock_manager.acquire t.lock ~owner:(owner_of dep ~wid)
        ~keys:[ dep.root_key ] (fun () ->
          if t.host.alive () then exec_reconcile t dep ~wid ~seeds ~detected)
  | Rollback_op { dep; label; plan_of; restore_src; submitted; notify } ->
      Lock_manager.acquire t.lock ~owner:(owner_of dep ~wid)
        ~keys:[ dep.root_key ] (fun () ->
          if t.host.alive () then
            exec_rollback t dep ~wid ~label ~plan_of ~restore_src ~submitted
              ~notify)
  | Scan_sweep { dep; swept } -> (
      match t.breaker with
      | Some b when Breaker.any_open b ->
          (* degraded mode sheds baseline sweeps: the sweep would burn
             O(state) management reads only to fast-fail its repair;
             the next armed sweep runs once the breaker closes *)
          Metrics.scope_inc t.scope "scans_shed";
          pending_decr t dep.tenant
      | _ ->
          Lock_manager.acquire t.lock ~owner:(owner_of dep ~wid)
            ~keys:[ dep.root_key ] (fun () ->
              if t.host.alive () then exec_scan t dep ~wid ~swept))

and enqueue t work =
  let wid = t.next_work in
  t.next_work <- wid + 1;
  (match work with
  | Request { dep; _ }
  | Reconcile { dep; _ }
  | Scan_sweep { dep; _ }
  | Rollback_op { dep; _ } ->
      pending_incr t dep.tenant
  | Policy_tick _ -> ());
  Pq.push t.queue ~prio:(work_class work) ~key:wid work;
  drain t

(* Complete a unit of work: persist the deployment's state (end-of-work
   persistence — the crash window the journal covers), release the
   locks, and emit the span. *)
and finish_work t dep ~wid ~span ~sim_start ~meta ~counters =
  dep.persisted <- dep.state;
  pending_decr t dep.tenant;
  Lock_manager.release t.lock ~owner:(owner_of dep ~wid);
  Trace.emit_span t.trace ~meta ~counters ~sim_start span;
  drain t

(* Park one unit of work that fast-failed against an open breaker:
   persist partial progress, release the locks so unaffected tenants
   keep flowing, and schedule re-admission just after the breaker's
   next half-open probe becomes available.  The unit stays logically
   pending (the tenant is not movable, and the caller keeps the
   original submit/detected instant so latency accounting spans the
   whole episode).  [rebuild] re-creates the work at re-admission
   time — a request re-reads [dep.config_src] there, so a parked
   request converges to the latest revision, never a stale one. *)
and park_work t dep ~wid ~rebuild =
  dep.persisted <- dep.state;
  Lock_manager.release t.lock ~owner:(owner_of dep ~wid);
  t.parked <- t.parked + 1;
  Metrics.scope_set t.scope "parked_work" (float_of_int t.parked);
  let now = Cloud.now t.cloud in
  let delay =
    match t.breaker with
    | Some b -> (
        match Breaker.next_probe_at b with
        | Some at -> Float.max t.config.defer_delay (at -. now +. 0.5)
        | None ->
            (* cell already probing or closed again: plain defer *)
            t.config.defer_delay)
    | None -> t.config.defer_delay
  in
  Cloud.schedule t.cloud ~delay (fun () ->
      if t.host.alive () then begin
        t.parked <- t.parked - 1;
        Metrics.scope_set t.scope "parked_work" (float_of_int t.parked);
        (* enqueue without pending_incr: the unit never stopped being
           pending while parked *)
        let work = rebuild () in
        let wid = t.next_work in
        t.next_work <- wid + 1;
        Pq.push t.queue ~prio:(work_class work) ~key:wid work;
        drain t
      end);
  drain t

(* Did the apply leave changes fast-failed by an open breaker cell? *)
and breaker_blocked t (o : Applier.outcome) =
  t.breaker <> None
  && List.exists
       (fun (_, reason) -> Breaker.is_open_reason reason)
       o.Applier.failed

(* Catch per-work configuration/planning errors without killing the
   service; a crash injection must still propagate. *)
and protected t dep ~wid (f : unit -> unit) =
  try f () with
  | Failure.Engine_crashed _ as e -> raise e
  | e ->
      Metrics.scope_inc t.scope "work_failures";
      Trace.meta t.trace "work_error" (Printexc.to_string e);
      dep.state <- dep.persisted;
      pending_decr t dep.tenant;
      Lock_manager.release t.lock ~owner:(owner_of dep ~wid);
      drain t

(* --- tenant apply request ------------------------------------------ *)

and exec_request t dep ~wid ~rid ~src ~submitted =
  protected t dep ~wid @@ fun () ->
  let granted = Cloud.now t.cloud in
  Metrics.scope_observe t.scope "request_queue_wait" (granted -. submitted);
  dep.config_src <- src;
  let continue_with state0 reads =
    let instances = expand ~state:state0 src in
    let plan = Plan.make ~state:state0 instances in
    Applier.apply t.cloud ~config:(applier_config t dep) ~state:state0 ~plan
      ~journal:dep.journal ?breaker:t.breaker ~gate:t.host.gate
      ~alive:t.host.alive
      ~count_api:(count_api t dep ~read:false)
      ~on_done:(fun (o : Applier.outcome) ->
        dep.state <- o.Applier.astate;
        if breaker_blocked t o then begin
          Metrics.scope_inc t.scope "requests_parked";
          Metrics.inc (metrics t) ("requests_parked." ^ dep.tenant);
          park_work t dep ~wid ~rebuild:(fun () ->
              Request { dep; rid; src = dep.config_src; submitted })
        end
        else begin
        let now = Cloud.now t.cloud in
        Metrics.scope_inc t.scope "requests_done";
        Metrics.scope_observe t.scope "request_latency" (now -. submitted);
        Metrics.observe (metrics t)
          ("request_latency." ^ dep.tenant)
          (now -. submitted);
        if o.Applier.failed <> [] then
          Metrics.scope_inc t.scope "work_failures";
        t.completed <- (rid, now) :: t.completed;
        finish_work t dep ~wid ~span:"request" ~sim_start:submitted
          ~meta:
            [
              ("tenant", dep.tenant);
              ("deployment", dep.dname);
              ("rid", string_of_int rid);
            ]
          ~counters:
            [
              ("applied", List.length o.Applier.applied);
              ("failed", List.length o.Applier.failed);
              ("writes", o.Applier.writes);
              ("refresh_reads", reads);
            ]
        end)
      ()
  in
  if t.config.refresh_before_apply && State.size dep.state > 0 then
    Applier.refresh t.cloud ~engine:dep.engine ~state:dep.state
      ~alive:t.host.alive
      ~count_api:(count_api t dep ~read:true)
      ~on_done:(fun (r : Applier.refresh_outcome) ->
        protected t dep ~wid @@ fun () ->
        (* rows the refresh proved gone are dropped so the re-plan
           recreates them *)
        let state0 =
          List.fold_left State.remove r.Applier.rstate r.Applier.missing
        in
        dep.state <- state0;
        continue_with state0 r.Applier.reads)
      ()
  else continue_with dep.state 0

(* --- wave rollback (E18) ------------------------------------------- *)

(* Execute a wave-scoped inverse plan.  The plan is computed here, at
   grant time under the deployment lock, so it reverses the latest
   state even when the rollback queued behind in-flight work.  The
   config revision is restored *before* the apply: a crash between the
   two leaves the restored src with an incomplete rollback, which the
   ordinary journal-replay resume then converges — the same idempotent
   window every request has. *)
and exec_rollback t dep ~wid ~label ~plan_of ~restore_src ~submitted ~notify =
  protected t dep ~wid @@ fun () ->
  (match restore_src with Some src -> dep.config_src <- src | None -> ());
  let plan = plan_of () in
  Applier.apply t.cloud ~config:(applier_config t dep) ~state:dep.state ~plan
    ~journal:dep.journal ?breaker:t.breaker ~gate:t.host.gate
    ~alive:t.host.alive
    ~count_api:(count_api t dep ~read:false)
    ~on_done:(fun (o : Applier.outcome) ->
      dep.state <- o.Applier.astate;
      if breaker_blocked t o then begin
        Metrics.scope_inc t.scope "rollbacks_parked";
        park_work t dep ~wid ~rebuild:(fun () ->
            Rollback_op { dep; label; plan_of; restore_src; submitted; notify })
      end
      else begin
        let now = Cloud.now t.cloud in
        Metrics.scope_inc t.scope "rollbacks_done";
        Metrics.scope_observe t.scope "rollback_latency" (now -. submitted);
        if o.Applier.failed <> [] then
          Metrics.scope_inc t.scope "work_failures";
        notify now;
        finish_work t dep ~wid ~span:"rollback" ~sim_start:submitted
          ~meta:
            [
              ("tenant", dep.tenant);
              ("deployment", dep.dname);
              ("label", label);
            ]
          ~counters:
            [
              ("applied", List.length o.Applier.applied);
              ("failed", List.length o.Applier.failed);
              ("writes", o.Applier.writes);
            ]
      end)
    ()

(* --- drift intake (shared by tailer polling and subscriptions) ------ *)

(** Record freshly classified drift events against [dep] and enqueue
    the scoped repair.  Tailer polling batches a period's events into
    one reconcile; the fleet's subscription path delivers per entry. *)
and ingest_drift t dep (events : Drift.event list) =
  if events <> [] then begin
    Metrics.scope_inc t.scope ~by:(List.length events) "drift_events";
    let seeds =
      List.filter_map (fun (e : Drift.event) -> e.Drift.addr) events
    in
    List.iter
      (fun (e : Drift.event) ->
        t.detections <- (e.Drift.cloud_id, e.Drift.detected_at) :: t.detections;
        match e.Drift.occurred_at with
        | Some at ->
            Metrics.scope_observe t.scope "drift_detection_latency"
              (e.Drift.detected_at -. at)
        | None -> ())
      events;
    if seeds <> [] then
      enqueue t (Reconcile { dep; seeds; detected = Cloud.now t.cloud })
  end

(* --- drift: log-tailer polling (cloudless)  ------------------------ *)

and poll_tailer t dep =
  (* each poll is one LookupEvents-style call against the log service —
     the management-read bill the push-based fleet does not pay *)
  Metrics.scope_inc t.scope "log_polls";
  ingest_drift t dep
    (Drift.Log_tailer.poll dep.tailer t.cloud ~state:dep.state)

(* --- drift: scoped reconcile apply --------------------------------- *)

and exec_reconcile t dep ~wid ~seeds ~detected =
  protected t dep ~wid @@ fun () ->
  let instances = expand ~state:dep.state dep.config_src in
  let scope =
    if t.config.scoped_reconcile then
      Some (Plan.impact_scope ~graph:(Dag.of_instances instances) ~edited:seeds)
    else None
  in
  let finish_reconcile (o : Applier.outcome) reads =
    dep.state <- o.Applier.astate;
    if breaker_blocked t o then begin
      Metrics.scope_inc t.scope "reconciles_parked";
      park_work t dep ~wid ~rebuild:(fun () ->
          Reconcile { dep; seeds; detected })
    end
    else begin
    Metrics.scope_inc t.scope "reconciles";
    Metrics.scope_observe t.scope "reconcile_latency"
      (Cloud.now t.cloud -. detected);
    finish_work t dep ~wid ~span:"reconcile" ~sim_start:detected
      ~meta:
        [
          ("tenant", dep.tenant);
          ("deployment", dep.dname);
          ( "scope",
            match scope with
            | Some s -> string_of_int (Addr.Set.cardinal s)
            | None -> "full" );
        ]
      ~counters:
        [
          ("applied", List.length o.Applier.applied);
          ("writes", o.Applier.writes);
          ("refresh_reads", reads);
          ("seeds", List.length seeds);
        ]
    end
  in
  Applier.refresh t.cloud ~engine:dep.engine ~state:dep.state ?addrs:scope
    ~alive:t.host.alive
    ~count_api:(count_api t dep ~read:true)
    ~on_done:(fun (r : Applier.refresh_outcome) ->
      protected t dep ~wid @@ fun () ->
      let state0 =
        List.fold_left State.remove r.Applier.rstate r.Applier.missing
      in
      dep.state <- state0;
      let instances = expand ~state:state0 dep.config_src in
      let plan = Plan.make ~state:state0 instances in
      let plan =
        match scope with Some s -> Plan.restrict plan s | None -> plan
      in
      Applier.apply t.cloud ~config:(applier_config t dep) ~state:state0 ~plan
        ~journal:dep.journal ?breaker:t.breaker ~gate:t.host.gate
      ~alive:t.host.alive
        ~count_api:(count_api t dep ~read:false)
        ~on_done:(fun o -> finish_reconcile o r.Applier.reads)
        ())
    ()

(* --- drift: scan sweep (baseline) ---------------------------------- *)

and exec_scan t dep ~wid ~swept =
  protected t dep ~wid @@ fun () ->
  Applier.scan t.cloud ~engine:dep.engine ~state:dep.state ~alive:t.host.alive
    ~count_api:(count_api t dep ~read:true)
    ~on_done:(fun (events, reads) ->
      protected t dep ~wid @@ fun () ->
      Metrics.scope_inc t.scope ~by:reads "scan_reads";
      if events = [] then
        finish_work t dep ~wid ~span:"scan" ~sim_start:swept
          ~meta:[ ("tenant", dep.tenant); ("deployment", dep.dname) ]
          ~counters:[ ("scan_reads", reads); ("drift", 0) ]
      else begin
        Metrics.scope_inc t.scope ~by:(List.length events) "drift_events";
        List.iter
          (fun (e : Drift.event) ->
            t.detections <-
              (e.Drift.cloud_id, e.Drift.detected_at) :: t.detections)
          events;
        (* Terraform-style repair, still holding the global lock: fold
           the observed live world into state first (deleted rows
           dropped, drifted attrs overwritten with their live values —
           [Plan.make] diffs desired against state, so without this the
           repair plan is empty and the drift is re-flagged forever),
           then full re-plan + apply. *)
        let state0 =
          List.fold_left
            (fun st (e : Drift.event) ->
              match (e.Drift.kind, e.Drift.addr) with
              | Drift.Deleted_oob, Some addr -> State.remove st addr
              | Drift.Attr_drift { attr; actual; _ }, Some addr -> (
                  match State.find_opt st addr with
                  | Some (r : State.resource_state) ->
                      State.update_attrs st addr
                        (Smap.add attr actual r.State.attrs)
                  | None -> st)
              | _ -> st)
            dep.state events
        in
        dep.state <- state0;
        let instances = expand ~state:state0 dep.config_src in
        let plan = Plan.make ~state:state0 instances in
        let detected = Cloud.now t.cloud in
        Applier.apply t.cloud ~config:(applier_config t dep) ~state:state0
          ~plan ~journal:dep.journal ?breaker:t.breaker ~gate:t.host.gate
      ~alive:t.host.alive
          ~count_api:(count_api t dep ~read:false)
          ~on_done:(fun (o : Applier.outcome) ->
            dep.state <- o.Applier.astate;
            Metrics.scope_inc t.scope "reconciles";
            Metrics.scope_observe t.scope "reconcile_latency"
              (Cloud.now t.cloud -. detected);
            finish_work t dep ~wid ~span:"scan" ~sim_start:swept
              ~meta:[ ("tenant", dep.tenant); ("deployment", dep.dname) ]
              ~counters:
                [
                  ("scan_reads", reads);
                  ("drift", List.length events);
                  ("writes", o.Applier.writes);
                ])
          ()
      end)
    ()

(* ------------------------------------------------------------------ *)
(* Requests + admission backpressure                                   *)
(* ------------------------------------------------------------------ *)

let over_bound t =
  t.config.max_queue_depth > 0 && queue_depth t >= t.config.max_queue_depth

(** Submit an apply request for [dep] with configuration [src] at the
    current simulated time.  With [max_queue_depth = 0] this always
    returns [`Accepted rid] — the pre-backpressure behavior.  Over the
    bound, [Reject] drops the request without consuming a request id;
    [Defer] assigns the id, re-attempts admission every [defer_delay]
    simulated seconds, and keeps the original submit instant so the
    queue-wait and latency histograms carry the deferral cost. *)
let submit_request t dep ~src =
  let submitted = Cloud.now t.cloud in
  if over_bound t && t.config.admission = Reject then begin
    Metrics.scope_inc t.scope "requests_rejected";
    `Rejected
  end
  else begin
    let rid = t.next_rid in
    t.next_rid <- rid + 1;
    let rec attempt () =
      if over_bound t then begin
        Metrics.scope_inc t.scope "requests_deferred";
        Cloud.schedule t.cloud ~delay:t.config.defer_delay (fun () ->
            if t.host.alive () then attempt ())
      end
      else begin
        Metrics.scope_inc t.scope "requests";
        enqueue t (Request { dep; rid; src; submitted })
      end
    in
    let deferred = over_bound t in
    attempt ();
    if deferred then `Deferred rid else `Accepted rid
  end

(** Admit a wave-scoped rollback for [dep].  Bypasses the admission
    bound like reconciles do — repair must not be starved by the
    backlog it repairs.  [plan_of] runs at lock-grant time; [notify]
    fires with the completion instant. *)
let submit_rollback t dep ~label ~plan_of ?restore_src ~notify () =
  let submitted = Cloud.now t.cloud in
  Metrics.scope_inc t.scope "rollbacks";
  enqueue t (Rollback_op { dep; label; plan_of; restore_src; submitted; notify })

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

let rec arm_drift_timer t dep =
  Cloud.schedule t.cloud ~delay:t.config.drift_period (fun () ->
      if t.host.alive () then begin
        (match t.config.drift_mode with
        | Tailer -> poll_tailer t dep
        | Scan -> enqueue t (Scan_sweep { dep; swept = Cloud.now t.cloud })
        | Subscribe -> ());
        if Cloud.now t.cloud +. t.config.drift_period <= t.until then
          arm_drift_timer t dep
      end)

let rec arm_policy_timer t =
  Cloud.schedule t.cloud ~delay:t.config.policy_period (fun () ->
      if t.host.alive () then begin
        enqueue t (Policy_tick { at = Cloud.now t.cloud });
        if Cloud.now t.cloud +. t.config.policy_period <= t.until then
          arm_policy_timer t
      end)

(** Arm this shard's periodic timers up to simulated time [until]:
    per-deployment drift timers (tailer polls or scan sweeps — nothing
    in [Subscribe] mode, where drift is pushed in), plus the policy
    tick when the host installed a handler. *)
let arm_timers t ~until =
  t.until <- until;
  (match t.config.drift_mode with
  | Subscribe -> ()
  | Tailer | Scan -> List.iter (fun dep -> arm_drift_timer t dep) t.deployments);
  if t.config.policy_period > 0. && t.host.on_policy <> None then
    arm_policy_timer t

(** Fold terminal lock-manager stats into the metrics registry; call
    once when the host's drive loop ends. *)
let finish_stats t =
  let grants, waits = Lock_manager.stats t.lock in
  Metrics.scope_set t.scope "lock_grants" (float_of_int grants);
  Metrics.scope_set t.scope "lock_waits" (float_of_int waits);
  match t.breaker with
  | None -> ()
  | Some b ->
      Metrics.scope_set t.scope "breaker_fast_fails"
        (float_of_int (Breaker.rejections b));
      Metrics.scope_set t.scope "breaker_violations"
        (float_of_int (Breaker.violations b));
      Metrics.scope_set t.scope "breaker_open_cells"
        (float_of_int (Breaker.open_cells b));
      (* close a still-open degraded window at end of run *)
      (match t.degraded_since with
      | Some s ->
          Metrics.scope_observe t.scope "degraded_time"
            (Cloud.now t.cloud -. s);
          t.degraded_since <- None
      | None -> ())
