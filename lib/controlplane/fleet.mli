(** The event-driven multi-shard control-plane fleet (E15).

    [N] {!Shard}s share one simulated cloud, one metrics registry and
    one crash gate.  A {!Router} owns tenant placement (consistent-hash
    ring + rebalance pins).  Drift detection is push-based: one
    multiplexed activity-log subscription per shard; the shard whose
    {!Router.partition} covers an entry classifies it and routes the
    event to the owning tenant's shard (usually a different one —
    [cross_shard_routed] counts the hops).  Queue-depth-driven
    rebalancing moves quiescent tenants from the deepest to the
    shallowest shard and pins them. *)

module Cloud = Cloudless_sim.Cloud
module Failure = Cloudless_sim.Failure
module Metrics = Cloudless_obs.Metrics

type t

(** [create ?shards config] builds a fleet of [shards] (default 2)
    shards, each recording through a ["shard<i>"]-labeled metrics
    scope. *)
val create :
  ?cloud:Cloud.t ->
  ?trace:Cloudless_obs.Trace.t ->
  ?metrics:Metrics.t ->
  ?shards:int ->
  Shard.service_config ->
  t

val metrics : t -> Metrics.t
val cloud : t -> Cloud.t
val router : t -> Router.t
val shard_count : t -> int
val shards : t -> Shard.t list

(** Install the crash-injection policy; journaled writes are counted
    across the whole fleet. *)
val set_crash : t -> Failure.crash_policy -> unit

val find_deployment :
  t -> tenant:string -> dname:string -> Shard.deployment option

(** Register a deployment on its router-assigned shard. *)
val add_deployment :
  t -> tenant:string -> dname:string -> src:string -> Shard.deployment

(** Submit an apply request to the owning shard, subject to its
    admission bound. *)
val submit_request :
  t ->
  Shard.deployment ->
  src:string ->
  [ `Accepted of int | `Deferred of int | `Rejected ]

(** Admit a wave-scoped rollback on the owning shard (E18); see
    {!Shard.submit_rollback}. *)
val submit_rollback :
  t ->
  Shard.deployment ->
  label:string ->
  plan_of:(unit -> Cloudless_plan.Plan.t) ->
  ?restore_src:string ->
  notify:(float -> unit) ->
  unit ->
  unit

(** The shard the router currently assigns [tenant] to. *)
val owner_shard : t -> string -> Shard.t

(** Every deployment across every shard. *)
val deployments : t -> Shard.deployment list

val managed_resource_count : t -> int

(** (cloud_id, detected_at) across every shard plus unmanaged-entry
    detections, ordered by detection time. *)
val drift_detections : t -> (string * float) list

(** (shard, rid, completion time) across the fleet, by completion
    time. *)
val completed_requests : t -> (int * int * float) list

(** Drive the fleet until the simulated event queue drains: arms shard
    timers, installs the per-shard log subscriptions ([Subscribe]
    mode), steps the shared clock draining every shard round-robin.
    Raises {!Failure.Engine_crashed} when the crash gate trips.  Call
    once per fleet instance. *)
val run : t -> until:float -> unit

(** Build the dead fleet's successor on the same cloud at the same
    shard count: per-deployment journal replay + orphan adoption, a
    fresh unpinned ring, converge requests, and subscription-cursor
    carryover.  Returns the new fleet and per-deployment recovery
    reports. *)
val resume :
  t -> t * ((string * string) * Cloudless_deploy.Recovery.resume_report) list

(** IaC-engine-created resources alive in the cloud that no
    deployment's state tracks. *)
val orphans : t -> string list

(** MD5 over a canonical, cloud-id-free rendering of every deployment's
    state — identical at any shard count once the fleet has converged
    (cloud ids are replaced by owning addresses; id-derived attributes
    dropped). *)
val state_digest : t -> string
