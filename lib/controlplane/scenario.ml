(** Service-load scenarios for the control plane.

    A scenario is a small [key = value] text file describing a
    multi-tenant workload: how many tenants and deployments, how big
    each fleet is, how many configuration revisions each tenant pushes
    and at what cadence, and how much out-of-band drift the world
    injects while the service runs.  {!install} compiles it into
    simulated-clock callbacks against a {!Control_plane.t} — requests
    submitted at their scheduled instants, OOB mutations/deletions
    against live resources — and returns the injection log the E14
    bench joins with the control plane's detection log to measure
    drift-detection latency.

    [install] takes the control plane by [ref] so that a crash-resume
    mid-scenario ({!Control_plane.resume} builds a {e new} service
    instance on the same cloud) does not strand the not-yet-fired
    request callbacks: they dereference at fire time and land on the
    successor. *)

module Cloud = Cloudless_sim.Cloud
module Failure = Cloudless_sim.Failure
module State = Cloudless_state.State
module Workload = Cloudless_workload.Workload
module Breaker = Cloudless_deploy.Breaker
module Hcl = Cloudless_hcl
module Policy = Cloudless_policy.Policy
module Rego_like = Cloudless_policy.Rego_like
module Change = Cloudless_wave.Change
module Err = Cloudless_error

(** One scheduled bulk-change rollout (E18): at [wstart] the rollout
    driver compiles [wchange] into canary → growing waves, gating every
    wave boundary on a [wcheck]-period health check. *)
type wave_spec = { wstart : float; wcheck : float; wchange : Change.t }

type t = {
  tenants : int;
  deployments_per_tenant : int;
  resources : int;  (** fleet size per deployment *)
  requests_per_tenant : int;
      (** config revisions pushed per deployment, including the initial
          apply at t=0 (all tenants submit simultaneously) *)
  request_interval : float;  (** sim seconds between revision waves *)
  drift_events : int;  (** OOB injections spread over the drift window *)
  drift_period : float;  (** service tailer-poll / scan-sweep period *)
  policy_period : float;  (** 0 = no policy controller *)
  duration : float;  (** scenario horizon, sim seconds *)
  shards : int;  (** fleet shard count (E15) *)
  hot_tenants : int;
      (** tenants 0..n-1 burst-submit conflicting requests each wave,
          holding their shard's queue deep enough for the rebalancer
          and the admission bound to observe *)
  hot_burst : int;  (** extra same-instant requests per hot tenant wave *)
  max_queue_depth : int;  (** admission bound; 0 = unbounded *)
  admission : Shard.admission;  (** over-bound policy: defer | reject *)
  rebalance_period : float;  (** fleet rebalance check period; 0 = off *)
  episodes : Failure.episode list;
      (** time-windowed fault regimes, in file order (E17) *)
  breaker : bool;  (** arm per-shard circuit breakers (E17) *)
  calm_tenants : int;
      (** the last n tenants resubmit only the wave-0 revision — a
          guaranteed-unaffected tenant class for degraded-mode claims *)
  waves : wave_spec list;
      (** scheduled bulk-change rollouts, in file order (E18) *)
}

let default =
  {
    tenants = 4;
    deployments_per_tenant = 1;
    resources = 8;
    requests_per_tenant = 3;
    request_interval = 600.;
    drift_events = 8;
    drift_period = 60.;
    policy_period = 300.;
    duration = 3600.;
    shards = 2;
    hot_tenants = 0;
    hot_burst = 6;
    max_queue_depth = 0;
    admission = Shard.Defer;
    rebalance_period = 0.;
    episodes = [];
    breaker = false;
    calm_tenants = 0;
    waves = [];
  }

(* One [episode = k=v k=v ...] value.  The sub-grammar is as strict as
   the top-level one: unknown sub-keys, malformed values, missing
   required keys and kind-inapplicable magnitudes all fail with a
   located scenario-syntax diagnostic. *)
let episode_of_spec ~file ~line spec =
  let failf fmt =
    Printf.ksprintf
      (fun msg ->
        Err.fail ~stage:Err.Diagnostic.Syntax ~code:"scenario-syntax"
          "%s:%d: %s" file line msg)
      fmt
  in
  let pairs =
    String.split_on_char ' ' spec
    |> List.filter (fun s -> s <> "")
    |> List.map (fun tok ->
           match String.index_opt tok '=' with
           | None ->
               failf "episode expects space-separated k=v pairs, got %S" tok
           | Some i ->
               ( String.sub tok 0 i,
                 String.sub tok (i + 1) (String.length tok - i - 1) ))
  in
  let kind =
    match List.assoc_opt "kind" pairs with
    | None ->
        failf
          "episode requires kind=outage|error_storm|throttle_storm|spot|quota_cut"
    | Some k -> (
        match Failure.episode_kind_of_string k with
        | Some k -> k
        | None -> failf "unknown episode kind %S" k)
  in
  let fl key v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> failf "episode %s expects a number, got %S" key v
  in
  let rtype = ref None and region = ref None in
  let start_ = ref None and finish = ref None and mag = ref None in
  let mag_for want key v =
    if kind <> want then
      failf "episode key %s only applies to kind=%s" key
        (Failure.episode_kind_to_string want)
    else mag := Some (fl key v)
  in
  List.iter
    (fun (k, v) ->
      match k with
      | "kind" -> ()
      | "rtype" -> rtype := Some v
      | "region" -> region := Some v
      | "start" -> start_ := Some (fl k v)
      | "end" -> finish := Some (fl k v)
      | "p" -> mag_for Failure.Error_storm k v
      | "retry_after" -> mag_for Failure.Throttle_storm k v
      | "quota" -> mag_for Failure.Quota_cut k v
      | "count" -> mag_for Failure.Spot_termination k v
      | _ -> failf "unknown episode key %S" k)
    pairs;
  let start_ =
    match !start_ with
    | Some s -> s
    | None -> failf "episode requires start=<sim seconds>"
  in
  let finish =
    match (!finish, kind) with
    | Some f, _ -> f
    | None, Failure.Spot_termination -> start_ +. 1.
    | None, _ -> failf "episode requires end=<sim seconds>"
  in
  if finish <= start_ then
    failf "episode end %g must be after start %g" finish start_;
  let magnitude =
    match (!mag, kind) with
    | Some m, _ -> m
    | None, Failure.Outage -> 1.
    | None, Failure.Error_storm -> failf "kind=error_storm requires p=<prob>"
    | None, Failure.Throttle_storm ->
        failf "kind=throttle_storm requires retry_after=<seconds>"
    | None, Failure.Quota_cut -> failf "kind=quota_cut requires quota=<level>"
    | None, Failure.Spot_termination ->
        failf "kind=spot requires count=<instances>"
  in
  Failure.episode ?rtype:!rtype ?region:!region ~magnitude ~start_ ~finish kind

(* One [wave = k=v k=v ...] value — a bulk-change rollout compiled into
   a {!Change.t} without a separate change file.  Same strictness as
   [episode =]: unknown sub-keys, malformed values, missing required
   keys and kind-inapplicable keys all fail with a located
   scenario-syntax diagnostic. *)
let wave_of_spec ~file ~line spec =
  let failf fmt =
    Printf.ksprintf
      (fun msg ->
        Err.fail ~stage:Err.Diagnostic.Syntax ~code:"scenario-syntax"
          "%s:%d: %s" file line msg)
      fmt
  in
  let pairs =
    String.split_on_char ' ' spec
    |> List.filter (fun s -> s <> "")
    |> List.map (fun tok ->
           match String.index_opt tok '=' with
           | None -> failf "wave expects space-separated k=v pairs, got %S" tok
           | Some i ->
               ( String.sub tok 0 i,
                 String.sub tok (i + 1) (String.length tok - i - 1) ))
  in
  let fl key v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> failf "wave %s expects a number, got %S" key v
  in
  let it key v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> failf "wave %s expects an integer, got %S" key v
  in
  let kind = ref `Set_attr and rtype = ref "aws_instance" in
  let attr = ref None and value = ref None and count = ref None in
  let start_ = ref None and canary = ref 1 and growth = ref 2 in
  let forbid = ref None and budget = ref None and check = ref 60. in
  List.iter
    (fun (k, v) ->
      match k with
      | "kind" -> (
          match v with
          | "set_attr" -> kind := `Set_attr
          | "set_count" -> kind := `Set_count
          | _ -> failf "unknown wave kind %S (expected set_attr|set_count)" v)
      | "rtype" -> rtype := v
      | "attr" -> attr := Some v
      | "value" -> value := Some v
      | "count" -> count := Some (it k v)
      | "start" -> start_ := Some (fl k v)
      | "canary" -> canary := it k v
      | "growth" -> growth := it k v
      | "forbid" -> forbid := Some v
      | "budget" -> budget := Some (fl k v)
      | "check" -> check := fl k v
      | _ -> failf "unknown wave key %S" k)
    pairs;
  let wstart =
    match !start_ with
    | Some s -> s
    | None -> failf "wave requires start=<sim seconds>"
  in
  if !canary < 1 then failf "wave canary must be >= 1, got %d" !canary;
  if !growth < 1 then failf "wave growth must be >= 1, got %d" !growth;
  let target = !rtype ^ ".*" in
  let str s = Hcl.Ast.mk (Hcl.Ast.Template [ Hcl.Ast.Lit s ]) in
  let action =
    match !kind with
    | `Set_attr ->
        let attr =
          match !attr with
          | Some a -> a
          | None -> failf "kind=set_attr requires attr=<name>"
        in
        let value =
          match !value with
          | Some v -> v
          | None -> failf "kind=set_attr requires value=<string>"
        in
        if !count <> None then
          failf "wave key count only applies to kind=set_count";
        {
          Policy.aname = "bulk";
          kind = Policy.Set_attr { target; attr; value = str value };
        }
    | `Set_count ->
        let n =
          match !count with
          | Some n -> n
          | None -> failf "kind=set_count requires count=<int>"
        in
        if !attr <> None || !value <> None then
          failf "wave keys attr/value only apply to kind=set_attr";
        {
          Policy.aname = "bulk";
          kind = Policy.Set_count { target; value = Hcl.Ast.mk (Hcl.Ast.Int n) };
        }
  in
  let gates =
    match !forbid with
    | None -> []
    | Some fv ->
        let attr =
          match !attr with
          | Some a -> a
          | None -> failf "wave forbid= requires attr=<name>"
        in
        [
          {
            Rego_like.cname = "forbid";
            predicate =
              Rego_like.Attr_equals
                { rtype = !rtype; attr; value = Hcl.Value.Vstring fv };
            deny_message =
              Printf.sprintf "%s.%s = %S is forbidden" !rtype attr fv;
          };
        ]
  in
  {
    wstart;
    wcheck = !check;
    wchange =
      {
        Change.cname = Printf.sprintf "wave@%s:%d" file line;
        actions = [ action ];
        canary = !canary;
        growth = !growth;
        gates;
        budget = !budget;
        cspan = Hcl.Loc.dummy;
      };
  }

let parse ?(file = "<scenario>") src =
  let scn = ref default in
  String.split_on_char '\n' src
  |> List.iteri (fun lineno line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if line <> "" then
           match String.index_opt line '=' with
           | None ->
               Err.fail ~stage:Err.Diagnostic.Syntax ~code:"scenario-syntax"
                 "%s:%d: expected 'key = value', got %S" file (lineno + 1) line
           | Some i ->
               let key = String.trim (String.sub line 0 i) in
               let v =
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1))
               in
               let int_v () =
                 match int_of_string_opt v with
                 | Some n -> n
                 | None ->
                     Err.fail ~stage:Err.Diagnostic.Syntax
                       ~code:"scenario-syntax" "%s:%d: %s expects an integer, got %S"
                       file (lineno + 1) key v
               in
               let float_v () =
                 match float_of_string_opt v with
                 | Some f -> f
                 | None ->
                     Err.fail ~stage:Err.Diagnostic.Syntax
                       ~code:"scenario-syntax" "%s:%d: %s expects a number, got %S"
                       file (lineno + 1) key v
               in
               scn :=
                 match key with
                 | "tenants" -> { !scn with tenants = int_v () }
                 | "deployments_per_tenant" ->
                     { !scn with deployments_per_tenant = int_v () }
                 | "resources" -> { !scn with resources = int_v () }
                 | "requests_per_tenant" ->
                     { !scn with requests_per_tenant = int_v () }
                 | "request_interval" ->
                     { !scn with request_interval = float_v () }
                 | "drift_events" -> { !scn with drift_events = int_v () }
                 | "drift_period" -> { !scn with drift_period = float_v () }
                 | "policy_period" -> { !scn with policy_period = float_v () }
                 | "duration" -> { !scn with duration = float_v () }
                 | "shards" -> { !scn with shards = int_v () }
                 | "hot_tenants" -> { !scn with hot_tenants = int_v () }
                 | "hot_burst" -> { !scn with hot_burst = int_v () }
                 | "max_queue_depth" ->
                     { !scn with max_queue_depth = int_v () }
                 | "admission" -> (
                     match v with
                     | "defer" -> { !scn with admission = Shard.Defer }
                     | "reject" -> { !scn with admission = Shard.Reject }
                     | _ ->
                         Err.fail ~stage:Err.Diagnostic.Syntax
                           ~code:"scenario-syntax"
                           "%s:%d: admission expects defer|reject, got %S"
                           file (lineno + 1) v)
                 | "rebalance_period" ->
                     { !scn with rebalance_period = float_v () }
                 | "episode" ->
                     {
                       !scn with
                       episodes =
                         !scn.episodes
                         @ [ episode_of_spec ~file ~line:(lineno + 1) v ];
                     }
                 | "breaker" -> (
                     match v with
                     | "on" -> { !scn with breaker = true }
                     | "off" -> { !scn with breaker = false }
                     | _ ->
                         Err.fail ~stage:Err.Diagnostic.Syntax
                           ~code:"scenario-syntax"
                           "%s:%d: breaker expects on|off, got %S" file
                           (lineno + 1) v)
                 | "calm_tenants" -> { !scn with calm_tenants = int_v () }
                 | "wave" ->
                     {
                       !scn with
                       waves =
                         !scn.waves
                         @ [ wave_of_spec ~file ~line:(lineno + 1) v ];
                     }
                 | _ ->
                     Err.fail ~stage:Err.Diagnostic.Syntax
                       ~code:"scenario-syntax" "%s:%d: unknown scenario key %S"
                       file (lineno + 1) key);
  !scn

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse ~file:path src

(* ------------------------------------------------------------------ *)
(* Workload generation                                                 *)
(* ------------------------------------------------------------------ *)

(* One instance group sized so the fleet is exactly [resources] rows
   with at least one aws_instance to drift: vpc + subnet + sg + tg +
   (resources - 4) instances. *)
let fleet_src scn ~wave =
  let types = [| "t3.small"; "t3.medium"; "t3.large"; "t3.xlarge" |] in
  Workload.fleet
    ~instances_per_group:(max 1 (scn.resources - 4))
    ~instance_type:types.(wave mod Array.length types)
    ~resources:scn.resources ()

(* Embedded service policy: flag any accumulated drift at each tick. *)
let policy_src =
  {|
policy "drift_watch" {
  on   = "telemetry"
  when = obs.drift_events > 0

  action "note_drift" {
    kind    = "notify"
    message = "service observed ${obs.drift_events} drift event(s) across ${obs.tenants} tenant(s)"
  }
}
|}

(** Specialize a service preset (timing knobs + policy + admission) to
    a scenario. *)
let service_config scn (base : Control_plane.service_config) =
  {
    base with
    Control_plane.drift_period = scn.drift_period;
    policy_period = scn.policy_period;
    policy_src = (if scn.policy_period > 0. then Some policy_src else None);
    max_queue_depth = scn.max_queue_depth;
    admission = scn.admission;
    rebalance_period = scn.rebalance_period;
    breaker = (if scn.breaker then Some Breaker.default_config else None);
  }

(* ------------------------------------------------------------------ *)
(* Installation                                                        *)
(* ------------------------------------------------------------------ *)

type injection = {
  icloud_id : string;
  injected_at : float;
  deleted : bool;  (** true: delete_oob; false: attr mutation *)
  itenant : string;  (** owning tenant at injection time *)
}

(* Spot-termination waves.  The cloud only *judges* API calls against
   episodes; actually killing instances is the installer's job.  At
   each spot episode's start we stride-pick [count] running rows of
   the episode's rtype (default aws_instance) across every tenant,
   delete them out-of-band under the "spot" script, and record them in
   the injection log so benches can attribute the loss per tenant. *)
let schedule_spot_waves scn cloud injections ~live_rows =
  List.iter
    (fun (e : Failure.episode) ->
      if e.Failure.ekind = Failure.Spot_termination then
        Cloud.schedule cloud
          ~delay:(Float.max 0. e.Failure.estart)
          (fun () ->
            let rt = Option.value e.Failure.ertype ~default:"aws_instance" in
            let rows =
              List.sort
                (fun (_, a) (_, b) -> String.compare a b)
                (live_rows rt)
            in
            let n = List.length rows in
            let want = int_of_float e.Failure.emag in
            if n > 0 && want > 0 then begin
              let stride = max 1 (n / want) in
              let killed = ref 0 in
              List.iteri
                (fun i (tenant, cid) ->
                  if i mod stride = 0 && !killed < want then
                    match
                      Cloud.delete_oob cloud ~script:"spot" ~cloud_id:cid
                    with
                    | Ok () ->
                        incr killed;
                        injections :=
                          {
                            icloud_id = cid;
                            injected_at = Cloud.now cloud;
                            deleted = true;
                            itenant = tenant;
                          }
                          :: !injections
                    | Error _ -> ())
                rows
            end))
    scn.episodes

(** Register all deployments on [!cp_ref] and schedule the request
    waves and drift injections on its cloud.  Returns the injection
    log (filled as injections actually fire). *)
let install scn cp_ref =
  let cp = !cp_ref in
  let cloud = Control_plane.cloud cp in
  let injections = ref [] in
  let deps = ref [] in
  for ti = 0 to scn.tenants - 1 do
    let tenant = Printf.sprintf "tenant%d" ti in
    let calm = ti >= scn.tenants - scn.calm_tenants in
    for di = 0 to scn.deployments_per_tenant - 1 do
      let dname = Printf.sprintf "d%d" di in
      ignore
        (Control_plane.add_deployment cp ~tenant ~dname
           ~src:(fleet_src scn ~wave:0));
      deps := (tenant, dname) :: !deps;
      for w = 0 to scn.requests_per_tenant - 1 do
        let wave = if calm then 0 else w in
        Cloud.schedule cloud
          ~delay:(float_of_int w *. scn.request_interval)
          (fun () ->
            let cp = !cp_ref in
            match Control_plane.find_deployment cp ~tenant ~dname with
            | Some dep ->
                ignore
                  (Control_plane.submit_request cp dep
                     ~src:(fleet_src scn ~wave))
            | None -> ())
      done
    done
  done;
  let deps = Array.of_list (List.rev !deps) in
  let ndeps = Array.length deps in
  (* Drift window: after the revision waves settle, ending early enough
     that the last detection and reconcile fit inside [duration]. *)
  if scn.drift_events > 0 && ndeps > 0 then begin
    let base =
      (float_of_int (scn.requests_per_tenant - 1) *. scn.request_interval)
      +. (2. *. scn.drift_period)
    in
    let window =
      Float.max scn.drift_period
        (scn.duration -. base -. (3. *. scn.drift_period))
    in
    let gap = window /. float_of_int scn.drift_events in
    for i = 0 to scn.drift_events - 1 do
      let tenant, dname = deps.(i mod ndeps) in
      Cloud.schedule cloud
        ~delay:(base +. (float_of_int i *. gap))
        (fun () ->
          let cp = !cp_ref in
          match Control_plane.find_deployment cp ~tenant ~dname with
          | None -> ()
          | Some dep ->
              let instances =
                List.filter
                  (fun (r : State.resource_state) ->
                    r.State.rtype = "aws_instance")
                  (State.resources dep.Control_plane.state)
              in
              let n = List.length instances in
              if n > 0 then begin
                let row = List.nth instances (i / ndeps mod n) in
                let cid = row.State.cloud_id in
                let deleted = i mod 4 = 3 in
                let r =
                  if deleted then
                    Cloud.delete_oob cloud ~script:"ops" ~cloud_id:cid
                  else
                    Cloud.mutate_oob cloud ~script:"ops" ~cloud_id:cid
                      ~attr:"instance_type"
                      ~value:(Cloudless_hcl.Value.Vstring "t2.nano")
                in
                ignore (r : (unit, Cloud.error) result);
                injections :=
                  {
                    icloud_id = cid;
                    injected_at = Cloud.now cloud;
                    deleted;
                    itenant = tenant;
                  }
                  :: !injections
              end)
    done
  end;
  if scn.episodes <> [] then begin
    Cloud.set_episodes cloud scn.episodes;
    schedule_spot_waves scn cloud injections ~live_rows:(fun rt ->
        List.concat_map
          (fun (dep : Control_plane.deployment) ->
            List.filter_map
              (fun (r : State.resource_state) ->
                if r.State.rtype = rt then
                  Some (dep.Control_plane.tenant, r.State.cloud_id)
                else None)
              (State.resources dep.Control_plane.state))
          (Control_plane.deployments !cp_ref))
  end;
  injections

(** Register all deployments on [!fleet_ref] (tenants landing on their
    router-assigned shards) and schedule the same request waves and
    drift injections as {!install}, plus hot-tenant bursts: tenants
    [0 .. hot_tenants-1] submit [hot_burst] extra same-instant
    requests against the same deployment each wave.  The duplicates
    conflict on the deployment's root lock and sit in the owning
    shard's queue, which is exactly the depth signal the admission
    bound and the fleet rebalancer react to.  Returns the injection
    log. *)
let install_fleet scn fleet_ref =
  let fleet = !fleet_ref in
  let cloud = Fleet.cloud fleet in
  let injections = ref [] in
  let deps = ref [] in
  for ti = 0 to scn.tenants - 1 do
    let tenant = Printf.sprintf "tenant%d" ti in
    let hot = ti < scn.hot_tenants in
    let calm = ti >= scn.tenants - scn.calm_tenants in
    for di = 0 to scn.deployments_per_tenant - 1 do
      let dname = Printf.sprintf "d%d" di in
      ignore
        (Fleet.add_deployment fleet ~tenant ~dname
           ~src:(fleet_src scn ~wave:0));
      deps := (tenant, dname) :: !deps;
      for w = 0 to scn.requests_per_tenant - 1 do
        let wave = if calm then 0 else w in
        let repeats = if hot && di = 0 then 1 + scn.hot_burst else 1 in
        for _ = 1 to repeats do
          Cloud.schedule cloud
            ~delay:(float_of_int w *. scn.request_interval)
            (fun () ->
              let fleet = !fleet_ref in
              match Fleet.find_deployment fleet ~tenant ~dname with
              | Some dep ->
                  ignore
                    (Fleet.submit_request fleet dep
                       ~src:(fleet_src scn ~wave)
                      : [ `Accepted of int | `Deferred of int | `Rejected ])
              | None -> ())
        done
      done
    done
  done;
  let deps = Array.of_list (List.rev !deps) in
  let ndeps = Array.length deps in
  (* Drift window: after the revision waves settle, ending early enough
     that the last detection and reconcile fit inside [duration]. *)
  if scn.drift_events > 0 && ndeps > 0 then begin
    let base =
      (float_of_int (scn.requests_per_tenant - 1) *. scn.request_interval)
      +. (2. *. scn.drift_period)
    in
    let window =
      Float.max scn.drift_period
        (scn.duration -. base -. (3. *. scn.drift_period))
    in
    let gap = window /. float_of_int scn.drift_events in
    for i = 0 to scn.drift_events - 1 do
      let tenant, dname = deps.(i mod ndeps) in
      Cloud.schedule cloud
        ~delay:(base +. (float_of_int i *. gap))
        (fun () ->
          let fleet = !fleet_ref in
          match Fleet.find_deployment fleet ~tenant ~dname with
          | None -> ()
          | Some dep ->
              let instances =
                List.filter
                  (fun (r : State.resource_state) ->
                    r.State.rtype = "aws_instance")
                  (State.resources dep.Shard.state)
              in
              let n = List.length instances in
              if n > 0 then begin
                let row = List.nth instances (i / ndeps mod n) in
                let cid = row.State.cloud_id in
                let deleted = i mod 4 = 3 in
                let r =
                  if deleted then
                    Cloud.delete_oob cloud ~script:"ops" ~cloud_id:cid
                  else
                    Cloud.mutate_oob cloud ~script:"ops" ~cloud_id:cid
                      ~attr:"instance_type"
                      ~value:(Cloudless_hcl.Value.Vstring "t2.nano")
                in
                ignore (r : (unit, Cloud.error) result);
                injections :=
                  {
                    icloud_id = cid;
                    injected_at = Cloud.now cloud;
                    deleted;
                    itenant = tenant;
                  }
                  :: !injections
              end)
    done
  end;
  if scn.episodes <> [] then begin
    Cloud.set_episodes cloud scn.episodes;
    schedule_spot_waves scn cloud injections ~live_rows:(fun rt ->
        List.concat_map
          (fun (dep : Shard.deployment) ->
            List.filter_map
              (fun (r : State.resource_state) ->
                if r.State.rtype = rt then
                  Some (dep.Shard.tenant, r.State.cloud_id)
                else None)
              (State.resources dep.Shard.state))
          (Fleet.deployments !fleet_ref))
  end;
  injections
