(** Deployment planning: diff desired instances against recorded state
    and produce an executable, dependency-ordered change set (§2.1's
    "execution plan", §3.3's acceleration substrate).

    Replace decisions use the knowledge base's [force_new] attribute
    flags, mirroring Terraform's create-before-destroy/replace
    semantics. *)

module Addr = Cloudless_hcl.Addr
module Value = Cloudless_hcl.Value
module Eval = Cloudless_hcl.Eval
module Smap = Value.Smap
module State = Cloudless_state.State
module Dag = Cloudless_graph.Dag
module Schema = Cloudless_schema

type attr_change = {
  attr : string;
  before : Value.t option;
  after : Value.t option;
}

type action =
  | Create
  | Update of attr_change list
  | Replace of { changes : attr_change list; reasons : string list }
  | Delete
  | Noop

let action_symbol = function
  | Create -> "+"
  | Update _ -> "~"
  | Replace _ -> "-/+"
  | Delete -> "-"
  | Noop -> " "

type change = {
  addr : Addr.t;
  rtype : string;
  region : string;
  action : action;
  desired : Value.t Smap.t option;  (** None for deletes *)
  prior : State.resource_state option;  (** None for creates *)
  deps : Addr.t list;  (** forward dependencies (for create/update) *)
  cbd : bool;
      (** lifecycle create_before_destroy: a Replace creates the new
          resource before deleting the old one *)
}

type t = {
  changes : change list;  (** stable order *)
  default_region : string;
}

exception Prevented of Addr.t * string
(** Raised by {!make} when the plan would destroy or replace a resource
    whose lifecycle sets [prevent_destroy] — Terraform's guard against
    accidental destruction of critical infrastructure. *)

let is_noop c = c.action = Noop

let actionable t = List.filter (fun c -> not (is_noop c)) t.changes

let count pred t = List.length (List.filter pred (actionable t))

type summary = {
  to_create : int;
  to_update : int;
  to_replace : int;
  to_delete : int;
  unchanged : int;
}

let summarize t =
  {
    to_create = count (fun c -> c.action = Create) t;
    to_update = count (fun c -> match c.action with Update _ -> true | _ -> false) t;
    to_replace =
      count (fun c -> match c.action with Replace _ -> true | _ -> false) t;
    to_delete = count (fun c -> c.action = Delete) t;
    unchanged = List.length (List.filter is_noop t.changes);
  }

let is_empty t = actionable t = []

(* ------------------------------------------------------------------ *)
(* Diffing                                                             *)
(* ------------------------------------------------------------------ *)

let region_of_attrs ~default attrs =
  match Smap.find_opt "region" attrs with
  | Some (Value.Vstring r) -> r
  | _ -> (
      match Smap.find_opt "location" attrs with
      | Some (Value.Vstring r) -> r
      | _ -> default)

(* Compare desired config attrs with prior state attrs.  Only
   attributes the configuration sets participate; computed attributes
   and unknowns are skipped (an unknown desired value cannot prove a
   change). *)
let diff_attrs ~ignore_changes desired prior_attrs : attr_change list =
  Smap.fold
    (fun name dv acc ->
      if List.mem name ignore_changes then acc
      else if Value.has_unknown dv then acc
      else
        match Smap.find_opt name prior_attrs with
        | Some pv when Value.equal dv pv -> acc
        | Some pv -> { attr = name; before = Some pv; after = Some dv } :: acc
        | None -> { attr = name; before = None; after = Some dv } :: acc)
    desired []
  |> List.rev

let force_new_reasons rtype (changes : attr_change list) =
  match Schema.Catalog.find rtype with
  | None -> []
  | Some schema ->
      let force = Schema.Resource_schema.force_new_attrs schema in
      List.filter_map
        (fun c -> if List.mem c.attr force then Some c.attr else None)
        changes

(** Compute the plan for the full configuration.  With a live [trace],
    planning runs in a ["plan"] span counting the diff it produced
    (creates/updates/replaces/deletes/noops). *)
let make ?(default_region = "us-east-1") ?(trace = Cloudless_obs.Trace.null)
    ~(state : State.t) (instances : Eval.instance list) : t =
  let module Trace = Cloudless_obs.Trace in
  Trace.with_span trace "plan" @@ fun () ->
  let desired_addrs = List.map (fun (i : Eval.instance) -> i.Eval.addr) instances in
  let forward =
    List.map
      (fun (i : Eval.instance) ->
        let addr = i.Eval.addr in
        let rtype = addr.Addr.rtype in
        let deps =
          List.sort_uniq Addr.compare (i.Eval.ref_deps @ i.Eval.explicit_deps)
        in
        let desired = i.Eval.attrs in
        let region = region_of_attrs ~default:default_region desired in
        let cbd = i.Eval.lifecycle.Cloudless_hcl.Config.create_before_destroy in
        match State.find_opt state addr with
        | None ->
            {
              addr;
              rtype;
              region;
              action = Create;
              desired = Some desired;
              prior = None;
              deps;
              cbd;
            }
        | Some prior ->
            let ignore_changes = i.Eval.lifecycle.Cloudless_hcl.Config.ignore_changes in
            let changes =
              diff_attrs ~ignore_changes desired prior.State.attrs
            in
            let action =
              if changes = [] then Noop
              else
                match force_new_reasons rtype changes with
                | [] -> Update changes
                | reasons ->
                    if i.Eval.lifecycle.Cloudless_hcl.Config.prevent_destroy then
                      raise
                        (Prevented
                           ( addr,
                             Printf.sprintf
                               "replacement forced by %s, but lifecycle sets \
                                prevent_destroy"
                               (String.concat ", " reasons) ))
                    else Replace { changes; reasons }
            in
            {
              addr;
              rtype;
              region = prior.State.region;
              action;
              desired = Some desired;
              prior = Some prior;
              deps;
              cbd;
            })
      instances
  in
  let deletes =
    State.orphans state desired_addrs
    |> List.map (fun addr ->
           let prior = Option.get (State.find_opt state addr) in
           {
             addr;
             rtype = prior.State.rtype;
             region = prior.State.region;
             action = Delete;
             desired = None;
             prior = Some prior;
             deps = prior.State.deps;
             cbd = false;
           })
  in
  let changes = deletes @ forward in
  List.iter
    (fun c ->
      let key =
        match c.action with
        | Create -> "creates"
        | Update _ -> "updates"
        | Replace _ -> "replaces"
        | Delete -> "deletes"
        | Noop -> "noops"
      in
      Trace.count trace key 1)
    changes;
  Trace.count trace "changes" (List.length changes);
  { changes; default_region }

(* ------------------------------------------------------------------ *)
(* Execution graph                                                     *)
(* ------------------------------------------------------------------ *)

(* Edge construction shared by the indexed and reference builders;
   [resolve] maps a recorded dependency to the plan addresses it
   denotes. *)
let graph_of_changes (changes : change list) ~(resolve : Addr.t -> Addr.t list)
    : change Dag.t =
  let dag =
    List.fold_left (fun acc c -> Dag.add_node acc c.addr c) Dag.empty changes
  in
  let dag =
    List.fold_left
      (fun acc c ->
        match c.action with
        | Delete -> acc
        | Create | Update _ | Replace _ | Noop ->
            List.fold_left
              (fun acc dep ->
                List.fold_left
                  (fun acc d ->
                    (* only depend on other non-delete changes *)
                    match Dag.find_opt acc d with
                    | Some { action = Delete; _ } -> acc
                    | Some _ when not (Addr.equal d c.addr) ->
                        Dag.add_edge acc ~dependent:c.addr ~dependency:d
                    | _ -> acc)
                  acc (resolve dep))
              acc c.deps)
      dag changes
  in
  (* reverse edges among deletes *)
  let delete_changes = List.filter (fun c -> c.action = Delete) changes in
  let dag =
    List.fold_left
      (fun acc c ->
        List.fold_left
          (fun acc dep ->
            List.fold_left
              (fun acc d ->
                match Dag.find_opt acc d with
                | Some { action = Delete; _ } when not (Addr.equal d c.addr) ->
                    (* dependency d is deleted after dependent c *)
                    Dag.add_edge acc ~dependent:d ~dependency:c.addr
                | _ -> acc)
              acc (resolve dep))
          acc c.deps)
      dag delete_changes
  in
  dag

(** Build the execution DAG over actionable changes.

    - create/update/replace nodes depend on their forward dependencies
      (when those are also in the plan);
    - delete nodes run in reverse dependency order: a resource is
      deleted only after everything that depended on it is deleted;
    - deletes of an address precede a create of the same address (not
      applicable to Replace, which is atomic here). *)
let execution_graph (t : t) : change Dag.t =
  let changes = actionable t in
  let in_plan = Addr.Set.of_list (List.map (fun c -> c.addr) changes) in
  (* base -> plan addresses sharing it, in plan order, so resolving a
     base-granularity dep is a map lookup instead of a scan over the
     whole change list *)
  let by_base =
    List.fold_left
      (fun acc c ->
        let b = Addr.base c.addr in
        let prev = Option.value ~default:[] (Addr.Map.find_opt b acc) in
        Addr.Map.add b (c.addr :: prev) acc)
      Addr.Map.empty changes
    |> Addr.Map.map List.rev
  in
  let resolve dep =
    (* a dep may be recorded at instance granularity already; fall back
       to matching all instances sharing the base *)
    if Addr.Set.mem dep in_plan then [ dep ]
    else
      match Addr.Map.find_opt (Addr.base dep) by_base with
      | Some addrs -> addrs
      | None -> []
  in
  graph_of_changes changes ~resolve

(* ------------------------------------------------------------------ *)
(* Flat execution graph (interned hot path)                            *)
(* ------------------------------------------------------------------ *)

(* Growable int vector for edge collection — the edge count is unknown
   up front and a pair list would cost ~6 words per edge at 1M scale. *)
module Ivec = struct
  type t = { mutable a : int array; mutable n : int }

  let create capacity = { a = Array.make (max 1 capacity) 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let a = Array.make (2 * Array.length v.a) 0 in
      Array.blit v.a 0 a 0 v.n;
      v.a <- a
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1
end

type exec_graph = {
  xintern : Cloudless_graph.Intern.t;
      (** id = index of the change in [xchanges] *)
  xchanges : change array;  (** actionable changes, plan order *)
  xdeps : int array array;
      (** per node: dependency ids, ascending-address order, dedup'd —
          the exact order/multiplicity {!execution_graph}'s
          [Addr.Set]s expose *)
  xrdeps : int array array;  (** reverse adjacency, same discipline *)
}

let exec_size xg = Array.length xg.xchanges

(** Flat-array equivalent of {!execution_graph}: same nodes (actionable
    changes, plan order), same edge set, adjacency frozen into int
    arrays sorted in ascending-address order so scans over it visit
    neighbours exactly as [Addr.Set.iter] would — the executor's
    ready-set push order (and therefore scheduling tie-breaks) must
    not change.  The executor and the domain sharder run on this; the
    [Dag]-returning {!execution_graph} stays for analyses and as the
    equivalence oracle. *)
let exec_graph (t : t) : exec_graph =
  let changes = Array.of_list (actionable t) in
  let n = Array.length changes in
  let intern = Cloudless_graph.Intern.create ~capacity:(max 1 n) () in
  Array.iter (fun c -> ignore (Cloudless_graph.Intern.intern intern c.addr)) changes;
  (* duplicate plan addresses would desynchronize ids from array
     indices; [make] never produces them (orphans are disjoint from
     desired addresses) *)
  if Cloudless_graph.Intern.length intern <> n then
    Cloudless_error.fail ~stage:Cloudless_error.Diagnostic.Internal
      ~code:"duplicate-change" "Plan.exec_graph: duplicate change addresses";
  (* lazy: deps recorded at instance granularity (the common case —
     references bind to concrete instances) resolve through the intern
     table alone, so most plans never pay for the base index *)
  let by_base =
    lazy
      (let tbl = Hashtbl.create (2 * n) in
       for id = n - 1 downto 0 do
         (* downward so each bucket ends up in ascending plan order *)
         let b = Addr.base changes.(id).addr in
         let prev = Option.value ~default:[] (Hashtbl.find_opt tbl b) in
         Hashtbl.replace tbl b (id :: prev)
       done;
       tbl)
  in
  let resolve dep =
    match Cloudless_graph.Intern.find_opt intern dep with
    | Some id -> [ id ]
    | None ->
        Option.value ~default:[]
          (Hashtbl.find_opt (Lazy.force by_base) (Addr.base dep))
  in
  let e_dependent = Ivec.create (2 * n) and e_dependency = Ivec.create (2 * n) in
  let add_edge ~dependent ~dependency =
    if dependent <> dependency then begin
      Ivec.push e_dependent dependent;
      Ivec.push e_dependency dependency
    end
  in
  Array.iteri
    (fun id c ->
      match c.action with
      | Delete ->
          (* reverse edges among deletes: dependency d is deleted after
             dependent c *)
          List.iter
            (fun dep ->
              List.iter
                (fun d ->
                  if changes.(d).action = Delete then
                    add_edge ~dependent:d ~dependency:id)
                (resolve dep))
            c.deps
      | Create | Update _ | Replace _ | Noop ->
          List.iter
            (fun dep ->
              List.iter
                (fun d ->
                  (* only depend on other non-delete changes *)
                  if changes.(d).action <> Delete then
                    add_edge ~dependent:id ~dependency:d)
                (resolve dep))
            c.deps)
    changes;
  (* rank: position of each id's address in ascending-address order,
     so sorting an adjacency row by rank reproduces [Addr.Set.iter];
     [by_addr] is the inverse permutation (rank -> id) *)
  let rank = Array.make n 0 in
  let by_addr = Array.init n (fun id -> id) in
  (* stable_sort (mergesort, ~n log n comparisons) over sort (heapsort,
     ~2n log n): the [Addr.compare] calls are the whole cost of this
     pass at 1M nodes, so halving them matters; stability is moot
     (addresses are distinct) *)
  Array.stable_sort
    (fun a b -> Addr.compare changes.(a).addr changes.(b).addr)
    by_addr;
  Array.iteri (fun pos id -> rank.(id) <- pos) by_addr;
  let freeze ~src ~dst =
    let cnt = Array.make n 0 in
    for k = 0 to src.Ivec.n - 1 do
      let s = src.Ivec.a.(k) in
      cnt.(s) <- cnt.(s) + 1
    done;
    let rows = Array.init n (fun id -> Array.make cnt.(id) 0) in
    let fill = Array.make n 0 in
    for k = 0 to src.Ivec.n - 1 do
      let s = src.Ivec.a.(k) in
      rows.(s).(fill.(s)) <- dst.Ivec.a.(k);
      fill.(s) <- fill.(s) + 1
    done;
    (* sort each row by address via rank space: map ids to their ranks,
       heapsort the plain ints (no comparator closure, no [rank]
       indirection per comparison), dedup (ranks are unique per id so
       duplicates are adjacent and exact), then map back through the
       inverse permutation *)
    Array.map
      (fun row ->
        let m = Array.length row in
        for r = 0 to m - 1 do
          row.(r) <- rank.(row.(r))
        done;
        Dag.sort_slice row 0 m;
        let row =
          if m <= 1 then row
          else begin
            let w = ref 1 in
            for r = 1 to m - 1 do
              if row.(r) <> row.(!w - 1) then begin
                row.(!w) <- row.(r);
                incr w
              end
            done;
            if !w = m then row else Array.sub row 0 !w
          end
        in
        for r = 0 to Array.length row - 1 do
          row.(r) <- by_addr.(row.(r))
        done;
        row)
      rows
  in
  let xdeps = freeze ~src:e_dependent ~dst:e_dependency in
  let xrdeps = freeze ~src:e_dependency ~dst:e_dependent in
  { xintern = intern; xchanges = changes; xdeps; xrdeps }

(** Kahn rounds over the flat graph into caller-supplied scratch via
    {!Dag.rounds_kernel}: [order.(offsets.(k)) ..
    order.(offsets.(k+1)-1)] is round k (ids ascending inside each
    round = plan order, matching [Dag.levels] on {!execution_graph});
    returns the round count.  Requires [Array.length order >= exec_size
    xg] and [Array.length offsets >= exec_size xg + 1].  Raises
    [Dag.Cycle] with the blocked addresses. *)
let exec_rounds_into (xg : exec_graph) ~order ~offsets =
  let n = exec_size xg in
  let indeg = Array.map Array.length xg.xdeps in
  let rounds = Dag.rounds_kernel ~rdeps:xg.xrdeps ~indeg ~order ~offsets in
  if offsets.(rounds) < n then begin
    let blocked = ref [] in
    for id = n - 1 downto 0 do
      if indeg.(id) > 0 then blocked := xg.xchanges.(id).addr :: !blocked
    done;
    raise (Dag.Cycle !blocked)
  end;
  rounds

(** List view of {!exec_rounds_into} (allocates its own scratch). *)
let exec_rounds (xg : exec_graph) : int list list =
  let n = exec_size xg in
  let order = Array.make (max 1 n) 0 in
  let offsets = Array.make (n + 1) 0 in
  let rounds = exec_rounds_into xg ~order ~offsets in
  List.init rounds (fun k ->
      Array.to_list (Array.sub order offsets.(k) (offsets.(k + 1) - offsets.(k))))

(* ------------------------------------------------------------------ *)
(* Incremental planning (§3.3)                                         *)
(* ------------------------------------------------------------------ *)

(** Given the previous full graph and the set of directly-edited
    resource addresses, the impact scope is the only part of the
    configuration whose plan can change.  Returns the scoped address
    set; the engine then refreshes and replans just those. *)
let impact_scope ~(graph : 'a Dag.t) ~(edited : Addr.t list) : Addr.Set.t =
  (* built on first base-granularity edit only: most edits name exact
     instances and never pay for the index *)
  let by_base =
    lazy
      (List.fold_left
         (fun acc node ->
           let b = Addr.base node in
           let prev =
             Option.value ~default:Addr.Set.empty (Addr.Map.find_opt b acc)
           in
           Addr.Map.add b (Addr.Set.add node prev) acc)
         Addr.Map.empty (Dag.nodes graph))
  in
  let seeds =
    List.fold_left
      (fun acc a ->
        if Dag.mem graph a then Addr.Set.add a acc
        else
          (* edited base address: include all its instances *)
          match Addr.Map.find_opt (Addr.base a) (Lazy.force by_base) with
          | Some insts -> Addr.Set.union insts acc
          | None -> acc)
      Addr.Set.empty edited
  in
  Dag.impact_scope graph seeds

(** Restrict a plan to an address set (everything else forced to Noop).
    Used by the incremental engine after scoping. *)
let restrict (t : t) (keep : Addr.Set.t) : t =
  {
    t with
    changes =
      List.map
        (fun c ->
          if Addr.Set.mem c.addr keep then c else { c with action = Noop })
        t.changes;
  }

(* ------------------------------------------------------------------ *)
(* Reference implementations                                           *)
(* ------------------------------------------------------------------ *)

(** The seed's list-scan planners, kept in-tree (like the executor's
    [Sched_list] and [Dag.Reference]) so tests and E12 can assert the
    indexed implementations produce byte-identical plans and scopes. *)
module Reference = struct
  (* Per-dependency O(n) scan over the whole change list. *)
  let execution_graph (t : t) : change Dag.t =
    let changes = actionable t in
    let resolve dep =
      if List.exists (fun c -> Addr.equal c.addr dep) changes then [ dep ]
      else
        List.filter_map
          (fun c -> if Addr.same_base c.addr dep then Some c.addr else None)
          changes
    in
    graph_of_changes changes ~resolve

  (* Per-edited-base O(V) scan over all graph nodes. *)
  let impact_scope ~(graph : 'a Dag.t) ~(edited : Addr.t list) : Addr.Set.t =
    let seeds =
      List.fold_left
        (fun acc a ->
          if Dag.mem graph a then Addr.Set.add a acc
          else
            List.fold_left
              (fun acc node ->
                if Addr.same_base node a then Addr.Set.add node acc else acc)
              acc (Dag.nodes graph))
        Addr.Set.empty edited
    in
    Dag.impact_scope graph seeds

  (* List-scan diff classification: the same verdicts as {!make} but
     with O(n) state lookup and orphan detection per resource, so the
     whole pass is O(n^2).  E12 checks the indexed plan's action list
     against this on capped sizes. *)
  let action_symbols ~(state : State.t) (instances : Eval.instance list) :
      (Addr.t * string) list =
    let resources = State.resources state in
    let find_prior addr =
      List.find_opt (fun r -> Addr.equal r.State.addr addr) resources
    in
    let forward =
      List.map
        (fun (i : Eval.instance) ->
          let addr = i.Eval.addr in
          match find_prior addr with
          | None -> (addr, action_symbol Create)
          | Some prior ->
              let ignore_changes =
                i.Eval.lifecycle.Cloudless_hcl.Config.ignore_changes
              in
              let changes =
                diff_attrs ~ignore_changes i.Eval.attrs prior.State.attrs
              in
              let action =
                if changes = [] then Noop
                else
                  match force_new_reasons addr.Addr.rtype changes with
                  | [] -> Update changes
                  | reasons -> Replace { changes; reasons }
              in
              (addr, action_symbol action))
        instances
    in
    let deletes =
      List.filter
        (fun (r : State.resource_state) ->
          not
            (List.exists
               (fun (i : Eval.instance) -> Addr.equal i.Eval.addr r.State.addr)
               instances))
        resources
      |> List.map (fun (r : State.resource_state) ->
             (r.State.addr, action_symbol Delete))
    in
    deletes @ forward
end

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_change ppf c =
  match c.action with
  | Noop -> ()
  | Create -> Fmt.pf ppf "  + %s@." (Addr.to_string c.addr)
  | Delete -> Fmt.pf ppf "  - %s@." (Addr.to_string c.addr)
  | Update changes ->
      Fmt.pf ppf "  ~ %s@." (Addr.to_string c.addr);
      List.iter
        (fun ch ->
          Fmt.pf ppf "      %s: %s -> %s@." ch.attr
            (match ch.before with Some v -> Value.show v | None -> "(none)")
            (match ch.after with Some v -> Value.show v | None -> "(none)"))
        changes
  | Replace { reasons; _ } ->
      Fmt.pf ppf "  -/+ %s (forces replacement: %s)@." (Addr.to_string c.addr)
        (String.concat ", " reasons)

let pp ppf t =
  let s = summarize t in
  List.iter (pp_change ppf) t.changes;
  Fmt.pf ppf "Plan: %d to add, %d to change, %d to replace, %d to destroy.@."
    s.to_create s.to_update s.to_replace s.to_delete

let to_string t = Fmt.str "%a" pp t
